#!/usr/bin/env python3
"""Tests for tools/privhp_lint.py.

Drives the linter over the fixture corpus (tests/tools/fixtures/) and
the real tree, asserting exact rule IDs:

  * every bad/ fixture trips exactly the rules it seeds (file, rule,
    line), and nothing else;
  * the clean/ mirror — same shapes, invariants respected — is silent;
  * src/ itself is silent (the gate the CI job enforces);
  * --check-tidy-config accepts the repo config and rejects configs
    with undocumented opt-outs or a missing WarningsAsErrors.

Run directly or via ctest (lint.privhp_test).
"""

import os
import re
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(ROOT, "tools", "privhp_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT] + list(args),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stdout, proc.stderr


def parse_findings(stderr):
    """Returns a list of (relative_path, line, rule) triples."""
    findings = []
    for line in stderr.splitlines():
        m = re.match(r"(.+?):(\d+): (PHL\d{3}): ", line)
        if m:
            path = os.path.relpath(os.path.abspath(m.group(1)), FIXTURES)
            findings.append((path.replace(os.sep, "/"), int(m.group(2)),
                             m.group(3)))
    return findings


class BadFixturesTest(unittest.TestCase):
    """Each seeded violation must be reported with the exact rule ID."""

    @classmethod
    def setUpClass(cls):
        code, _, err = run_lint(os.path.join(FIXTURES, "bad"))
        cls.exit_code = code
        cls.findings = parse_findings(err)

    def test_exit_nonzero(self):
        self.assertEqual(self.exit_code, 1)

    def expect(self, path, rule, lines):
        got = sorted(l for p, l, r in self.findings
                     if p == path and r == rule)
        self.assertEqual(
            got, sorted(lines),
            "%s: expected %s at lines %s, got %s (all findings: %s)" %
            (path, rule, sorted(lines), got, self.findings))

    def test_phl001_wire_counts(self):
        self.expect("bad/service/protocol.cc", "PHL001", [15, 25])

    def test_phl002_simd_rounding(self):
        self.expect("bad/common/simd_avx2.cc", "PHL002", [14, 20, 26])

    def test_phl003_rng_discipline(self):
        self.expect("bad/core/sampler.cc", "PHL003", [10, 15, 15, 20, 25])

    def test_phl004_naked_mutex(self):
        self.expect("bad/service/queue.cc", "PHL004",
                    [12, 12, 18, 18, 27, 28])

    def test_no_cross_rule_noise(self):
        # A file seeded for one rule must not trip a different rule.
        for path, _, rule in self.findings:
            expected = {"bad/service/protocol.cc": "PHL001",
                        "bad/common/simd_avx2.cc": "PHL002",
                        "bad/core/sampler.cc": "PHL003",
                        "bad/service/queue.cc": "PHL004"}[path]
            self.assertEqual(rule, expected,
                             "unexpected %s in %s" % (rule, path))


class CleanTest(unittest.TestCase):
    def test_clean_mirror_is_silent(self):
        code, _, err = run_lint(os.path.join(FIXTURES, "clean"))
        self.assertEqual(code, 0, "clean fixtures flagged:\n" + err)

    def test_src_tree_is_silent(self):
        code, _, err = run_lint(os.path.join(ROOT, "src"))
        self.assertEqual(code, 0, "src/ flagged:\n" + err)


class TidyConfigTest(unittest.TestCase):
    def test_repo_config_accepted(self):
        tidy = os.path.join(ROOT, ".clang-tidy")
        if not os.path.exists(tidy):
            self.skipTest(".clang-tidy not present")
        code, _, err = run_lint("--check-tidy-config", tidy)
        self.assertEqual(code, 0, err)

    def check_config(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".clang-tidy", delete=False) as f:
            f.write(text)
            path = f.name
        try:
            return run_lint("--check-tidy-config", path)
        finally:
            os.unlink(path)

    def test_undocumented_optout_rejected(self):
        code, _, err = self.check_config(
            "Checks: >\n"
            "  -*, bugprone-*,\n"
            "  -bugprone-easily-swappable-parameters\n"
            "WarningsAsErrors: '*'\n")
        self.assertEqual(code, 1)
        self.assertIn("no documented reason", err)

    def test_documented_optout_accepted(self):
        code, _, err = self.check_config(
            "#   -bugprone-easily-swappable-parameters: noisy on decoders\n"
            "Checks: >\n"
            "  -*, bugprone-*,\n"
            "  -bugprone-easily-swappable-parameters\n"
            "WarningsAsErrors: '*'\n")
        self.assertEqual(code, 0, err)

    def test_missing_warnings_as_errors_rejected(self):
        code, _, err = self.check_config("Checks: '-*,bugprone-*'\n")
        self.assertEqual(code, 1)
        self.assertIn("WarningsAsErrors", err)


if __name__ == "__main__":
    unittest.main(verbosity=2)
