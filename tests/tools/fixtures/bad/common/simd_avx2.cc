// PHL002 fixture: non-correctly-rounded math in a SIMD kernel TU.
#include <cmath>
#include <immintrin.h>

namespace privhp {

double EvilHorizontal(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    // Violation: fused multiply-add rounds once, the scalar reference
    // rounds twice — bit-equality gates fail.
    acc = _mm256_fmadd_pd(va, vb, acc);  // PHL002
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  // Violation: scalar FMA tail has the same rounding problem.
  total = std::fma(a[0], b[0], total);  // PHL002
  return total;
}

float EvilReciprocal(float x) {
  // Violation: rcp is an approximation, not correctly rounded.
  const __m128 r = _mm_rcp_ss(_mm_set_ss(x));  // PHL002
  return _mm_cvtss_f32(r);
}

}  // namespace privhp
