// PHL003 fixture: ad-hoc randomness outside common/random.*.
#include <cstdlib>
#include <ctime>
#include <random>

namespace privhp {

double EvilUniform() {
  // Violation: libc rand() — unseedable, non-reproducible draws.
  return static_cast<double>(rand()) / RAND_MAX;  // PHL003
}

void EvilSeed() {
  // Violation: wall-clock seeding destroys run-to-run determinism.
  srand(static_cast<unsigned>(time(nullptr)));  // PHL003 (x2: srand, time)
}

uint64_t EvilDeviceSeed() {
  // Violation: std::random_device is nondeterministic by design.
  std::random_device rd;  // PHL003
  return rd();
}

double EvilDrand() {
  return drand48();  // PHL003
}

}  // namespace privhp
