// PHL001 fixture: wire-read counts feeding allocations unbounded.
// Each violation below must be reported by tools/privhp_lint.py.
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "service/protocol.h"

namespace privhp {

Status DecodeEvilVector(WireReader& payload, std::vector<double>* out) {
  // Violation: tainted identifier feeds reserve() with no BoundedCount.
  PRIVHP_ASSIGN_OR_RETURN(uint32_t count, payload.U32());
  out->reserve(count);  // PHL001
  for (uint32_t i = 0; i < count; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(double v, payload.Double());
    out->push_back(v);
  }
  return Status::OK();
}

Status DecodeEvilInline(WireReader& payload, std::string* out) {
  // Violation: raw wire read inline in the resize() argument.
  out->resize(*payload.U64());  // PHL001
  return Status::OK();
}

Status DecodeFine(WireReader& payload, std::vector<uint64_t>* out) {
  // Not a violation: the canonical bounded read sanitizes the count.
  PRIVHP_ASSIGN_OR_RETURN(uint64_t count,
                          payload.BoundedCount(sizeof(uint64_t)));
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(uint64_t v, payload.U64());
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace privhp
