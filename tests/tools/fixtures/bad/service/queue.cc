// PHL004 fixture: naked standard-library locking primitives.
#include <condition_variable>
#include <deque>
#include <mutex>

namespace privhp {

class EvilQueue {
 public:
  void Push(int v) {
    // Violation: std::lock_guard bypasses the annotated wrappers.
    std::lock_guard<std::mutex> lock(mu_);  // PHL004 (x2)
    items_.push_back(v);
    cv_.notify_one();
  }

  int Pop() {
    std::unique_lock<std::mutex> lock(mu_);  // PHL004 (x2)
    cv_.wait(lock, [this] { return !items_.empty(); });
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  // Violation: fields invisible to -Wthread-safety analysis.
  std::mutex mu_;                // PHL004
  std::condition_variable cv_;   // PHL004
  std::deque<int> items_;
};

}  // namespace privhp
