// Clean mirror of bad/common/simd_avx2.cc: add/sub/mul/div/cmp only,
// all correctly rounded — the same sequence the scalar reference runs.
#include <immintrin.h>

namespace privhp {

double CleanHorizontal(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    // Separate mul + add: two roundings, matching scalar evaluation
    // under -ffp-contract=off.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

float CleanReciprocal(float x) {
  // Full-precision divide, correctly rounded.
  const __m128 r = _mm_div_ss(_mm_set_ss(1.0f), _mm_set_ss(x));
  return _mm_cvtss_f32(r);
}

}  // namespace privhp
