// Clean mirror of bad/core/sampler.cc: all draws come from the seeded
// RandomEngine in common/random.h.
#include <cstdint>

#include "common/random.h"

namespace privhp {

double CleanUniform(RandomEngine* rng) { return rng->Uniform(); }

RandomEngine CleanSeeded(uint64_t seed) { return RandomEngine(seed); }

// Mentioning rand() or std::random_device in a comment — or in a log
// string like "do not call rand()" — must not trip the linter.
const char* kAdvice = "never call rand() or time(0) here";

}  // namespace privhp
