// Clean mirror of bad/service/protocol.cc: every wire-read count flows
// through WireReader::BoundedCount() (or an explicit clamp) before it
// sizes an allocation. privhp_lint must report nothing here.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "service/protocol.h"

namespace privhp {

Status DecodeVector(WireReader& payload, std::vector<double>* out) {
  PRIVHP_ASSIGN_OR_RETURN(uint64_t count,
                          payload.BoundedCount(sizeof(double)));
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(double v, payload.Double());
    out->push_back(v);
  }
  return Status::OK();
}

Status DecodeBlob(WireReader& payload, std::string* out) {
  PRIVHP_ASSIGN_OR_RETURN(uint64_t total, payload.U64());
  // Clamped reservation: tainted, but bounded by an explicit std::min.
  out->reserve(static_cast<size_t>(std::min<uint64_t>(total, 64u << 20)));
  return Status::OK();
}

Status DecodeInternal(std::vector<uint64_t>* out) {
  // Internally-sized allocations are never flagged.
  out->resize(128);
  return Status::OK();
}

}  // namespace privhp
