// Clean mirror of bad/service/queue.cc: the annotated wrappers from
// common/sync.h, explicit while-loop waits, GUARDED_BY on every field.
#include <deque>

#include "common/sync.h"

namespace privhp {

class CleanQueue {
 public:
  void Push(int v) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    items_.push_back(v);
    cv_.NotifyOne();
  }

  int Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty()) cv_.Wait(mu_);
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::deque<int> items_ GUARDED_BY(mu_);
};

}  // namespace privhp
