// Shared statistical helpers for the test suites.
//
// Several suites gate sampler output with a chi-square goodness-of-fit
// statistic (hierarchy/property_test, hierarchy/compiled_sampler_test,
// common/simd_test). The computation and the acceptance threshold live
// here so every suite applies the same validity guard (small expected
// counts are skipped, and skipped bins shrink the degrees of freedom)
// and the same deterministic-seed bound.

#ifndef PRIVHP_TESTS_TESTING_STATS_H_
#define PRIVHP_TESTS_TESTING_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace privhp {
namespace testing {

/// \brief One-sample chi-square statistic of observed counts against
/// expected counts (same length, expected already scaled to the draw
/// total). Bins with expected < \p min_expected are skipped — the usual
/// validity guard for the chi-square approximation — and \p dof_out
/// (when given) receives the resulting degrees of freedom: one per
/// retained bin, minus one for the fixed total.
inline double ChiSquare(const std::vector<double>& observed,
                        const std::vector<double>& expected,
                        double min_expected = 0.0, int* dof_out = nullptr) {
  double chi2 = 0.0;
  int used = 0;
  for (size_t i = 0; i < observed.size() && i < expected.size(); ++i) {
    if (expected[i] < min_expected || expected[i] <= 0.0) continue;
    const double diff = observed[i] - expected[i];
    chi2 += diff * diff / expected[i];
    ++used;
  }
  if (dof_out != nullptr) *dof_out = used > 0 ? used - 1 : 0;
  return chi2;
}

/// \brief Two-sample chi-square statistic: both count vectors estimate
/// the same distribution over equal draw totals, so each bin contributes
/// (a-b)^2 / (a+b). Empty bins (a+b == 0) are skipped.
inline double ChiSquarePaired(const std::vector<double>& a,
                              const std::vector<double>& b) {
  double chi2 = 0.0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double total = a[i] + b[i];
    if (total <= 0.0) continue;
    const double diff = a[i] - b[i];
    chi2 += diff * diff / total;
  }
  return chi2;
}

/// \brief Deterministic-seed acceptance bound for a chi-square statistic
/// with \p dof degrees of freedom: mean + 5.5 standard deviations
/// (mean = dof, variance = 2*dof). Far beyond sampling jitter for the
/// seeded tests, but a wrong normalization or a dropped cell lands well
/// above it. For 15 dof this is ~45, the bound the suites historically
/// hard-coded.
inline double ChiSquareBound(int dof) {
  return dof + 5.5 * std::sqrt(2.0 * static_cast<double>(dof));
}

}  // namespace testing
}  // namespace privhp

#endif  // PRIVHP_TESTS_TESTING_STATS_H_
