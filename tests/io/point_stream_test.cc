#include "io/point_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/random.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

TEST(ParseCsvPointTest, ParsesWellFormedLines) {
  Point p;
  ASSERT_TRUE(ParseCsvPoint("0.5,0.25", 2, &p).ok());
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.25);
  ASSERT_TRUE(ParseCsvPoint("  1e-3 ,  2.5e2 ", 2, &p).ok());
  EXPECT_DOUBLE_EQ(p[0], 1e-3);
  EXPECT_DOUBLE_EQ(p[1], 250.0);
}

TEST(ParseCsvPointTest, RejectsMalformedLines) {
  Point p;
  EXPECT_FALSE(ParseCsvPoint("abc,1", 2, &p).ok());
  EXPECT_FALSE(ParseCsvPoint("0.5", 2, &p).ok());       // too few
  EXPECT_FALSE(ParseCsvPoint("0.5;0.6", 2, &p).ok());   // wrong separator
  EXPECT_FALSE(ParseCsvPoint("0.5,0.6 junk", 2, &p).ok());
}

// Regression: a 3-column file read with dimension 2 used to parse
// cleanly, silently dropping the third column — the classic wrong
// `--dim` footgun. Extra columns must be an error.
TEST(ParseCsvPointTest, RejectsExtraColumns) {
  Point p;
  EXPECT_TRUE(ParseCsvPoint("1,2,3", 2, &p).IsInvalidArgument());
  EXPECT_TRUE(ParseCsvPoint("1,2,3,4", 2, &p).IsInvalidArgument());
  EXPECT_TRUE(ParseCsvPoint("1,2, 3", 2, &p).IsInvalidArgument());
  EXPECT_TRUE(ParseCsvPoint("1,2,x", 2, &p).IsInvalidArgument());
  EXPECT_TRUE(ParseCsvPoint("1,2,,", 2, &p).IsInvalidArgument());
}

TEST(ParseCsvPointTest, AcceptsBareTrailingCommaAndWhitespace) {
  Point p;
  ASSERT_TRUE(ParseCsvPoint("1,2,", 2, &p).ok());  // bare trailing comma
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
  EXPECT_TRUE(ParseCsvPoint("1,2 ,", 2, &p).ok());
  EXPECT_TRUE(ParseCsvPoint("1,2,\r", 2, &p).ok());
  EXPECT_TRUE(ParseCsvPoint("1,2, \t", 2, &p).ok());
  EXPECT_TRUE(ParseCsvPoint("1,2 \r", 2, &p).ok());
  EXPECT_TRUE(ParseCsvPoint("1,2\t", 2, &p).ok());
}

// Regression: errno == ERANGE on underflow (a denormal result) was
// treated as malformed, rejecting valid tiny coordinates. Only overflow
// (+-HUGE_VAL) is malformed.
TEST(ParseCsvPointTest, AcceptsUnderflowRejectsOverflow) {
  Point p;
  ASSERT_TRUE(ParseCsvPoint("1e-320,0.5", 2, &p).ok());
  ASSERT_EQ(p.size(), 2u);
  EXPECT_GT(p[0], 0.0);
  EXPECT_LT(p[0], 1e-300);
  ASSERT_TRUE(ParseCsvPoint("1e-400,0.5", 2, &p).ok());  // rounds to 0
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_TRUE(ParseCsvPoint("1e400,0.5", 2, &p).IsInvalidArgument());
  EXPECT_TRUE(ParseCsvPoint("0.5,-1e400", 2, &p).IsInvalidArgument());
}

TEST(CsvRoundTripTest, WriteThenReadPreservesPoints) {
  RandomEngine rng(1);
  const auto points = GenerateUniform(3, 200, &rng);
  const std::string path = TempPath("points_roundtrip.csv");
  ASSERT_TRUE(WritePointsCsv(path, points).ok());
  auto loaded = ReadPointsCsv(path, 3);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ((*loaded)[i][c], points[i][c]);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvPointReaderTest, SkipsCommentsAndBlanks) {
  const std::string path = TempPath("commented.csv");
  WriteFile(path, "# header\n0.1,0.2\n\n   \n# mid comment\n0.3,0.4\n");
  auto reader = CsvPointReader::Open(path, 2);
  ASSERT_TRUE(reader.ok());
  Point p;
  auto r1 = reader->Next(&p);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(*r1);
  EXPECT_DOUBLE_EQ(p[0], 0.1);
  auto r2 = reader->Next(&p);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  EXPECT_DOUBLE_EQ(p[1], 0.4);
  auto r3 = reader->Next(&p);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(*r3);  // EOF
  std::remove(path.c_str());
}

TEST(CsvPointReaderTest, ReportsLineNumberOnError) {
  const std::string path = TempPath("badline.csv");
  WriteFile(path, "0.1,0.2\nbroken\n");
  auto reader = CsvPointReader::Open(path, 2);
  ASSERT_TRUE(reader.ok());
  Point p;
  ASSERT_TRUE(reader->Next(&p).ok());
  auto bad = reader->Next(&p);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvPointReaderTest, NextBatchReadsChunksAndSkipsComments) {
  const std::string path = TempPath("batched.csv");
  std::string contents = "# header\n";
  for (int i = 0; i < 10; ++i) {
    contents += std::to_string(i * 0.01) + "," + std::to_string(i * 0.02) +
                "\n";
  }
  WriteFile(path, contents);
  auto reader = CsvPointReader::Open(path, 2);
  ASSERT_TRUE(reader.ok());
  std::vector<Point> batch;
  auto r1 = reader->NextBatch(4, &batch);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(*r1, 4u);
  EXPECT_DOUBLE_EQ(batch[3][1], 3 * 0.02);
  auto r2 = reader->NextBatch(100, &batch);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(*r2, 6u);
  EXPECT_DOUBLE_EQ(batch[5][0], 9 * 0.01);
  auto r3 = reader->NextBatch(100, &batch);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 0u);  // EOF
  std::remove(path.c_str());
}

TEST(CsvPointReaderTest, NextBatchReportsLineNumberOnError) {
  const std::string path = TempPath("badbatch.csv");
  WriteFile(path, "0.1,0.2\n0.3,0.4\nbroken\n");
  auto reader = CsvPointReader::Open(path, 2);
  ASSERT_TRUE(reader.ok());
  std::vector<Point> batch;
  auto bad = reader->NextBatch(100, &batch);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvPointReaderTest, MissingFileFails) {
  EXPECT_TRUE(
      CsvPointReader::Open("/no/such/file.csv", 1).status().IsIOError());
  EXPECT_FALSE(CsvPointReader::Open("/dev/null", 0).ok());
}

TEST(Ipv4TraceFileTest, ParsesAddresses) {
  const std::string path = TempPath("trace.txt");
  WriteFile(path, "# trace\n10.0.0.1\n192.168.1.77\n");
  auto points = ReadIpv4TraceFile(path);
  ASSERT_TRUE(points.ok()) << points.status();
  ASSERT_EQ(points->size(), 2u);
  std::remove(path.c_str());
}

TEST(Ipv4TraceFileTest, RejectsGarbageWithLineNumber) {
  const std::string path = TempPath("badtrace.txt");
  WriteFile(path, "10.0.0.1\nnot-an-ip\n");
  auto points = ReadIpv4TraceFile(path);
  ASSERT_FALSE(points.ok());
  EXPECT_NE(points.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privhp
