#include "io/socket_point_stream.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <deque>
#include <thread>
#include <vector>

#include "io/frame_socket.h"
#include "io/point_sink.h"
#include "io/wire_format.h"

namespace privhp {
namespace {

TEST(WireFormatTest, RoundTripsScalars) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefULL);
  w.PutDouble(-1.5e-7);
  w.PutString("privhp");

  WireReader r(w.str());
  EXPECT_EQ(*r.U8(), 0xab);
  EXPECT_EQ(*r.U32(), 0xdeadbeefu);
  EXPECT_EQ(*r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.Double(), -1.5e-7);
  EXPECT_EQ(*r.String(), "privhp");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireFormatTest, TruncatedReadsFailCleanly) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.str());
  EXPECT_TRUE(r.U64().status().IsIOError());

  // A declared string length larger than the buffer must not read past it.
  WireWriter lying;
  lying.PutU32(1000);
  lying.PutBytes("abc", 3);
  WireReader r2(lying.str());
  EXPECT_TRUE(r2.String().status().IsIOError());

  WireReader empty;
  EXPECT_TRUE(empty.U8().status().IsIOError());
}

TEST(FrameSocketTest, FramesRoundTripOverSocketPair) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(SendFrame(pair->first, "hello").ok());
  ASSERT_TRUE(SendFrame(pair->first, "").ok());

  std::string payload;
  auto more = RecvFrame(pair->second, &payload);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(payload, "hello");
  more = RecvFrame(pair->second, &payload);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(payload, "");

  // Clean EOF at a frame boundary is `false`, not an error.
  pair->first.Close();
  more = RecvFrame(pair->second, &payload);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(FrameSocketTest, OversizedFrameLengthIsRejected) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  // Hand-craft a header declaring 2 GiB.
  const uint32_t huge = 2u << 30;
  std::string header(4, '\0');
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  ASSERT_EQ(::send(pair->first.fd(), header.data(), 4, 0), 4);
  std::string payload;
  EXPECT_TRUE(RecvFrame(pair->second, &payload).status().IsIOError());
}

TEST(SocketPointStreamTest, SinkToSourceRoundTrip) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  std::vector<Point> sent;
  for (int i = 0; i < 1000; ++i) {
    sent.push_back({i / 1000.0, 1.0 - i / 1000.0});
  }

  // Small batch size forces multiple frames; the writer runs in a thread
  // so the test does not rely on socket buffering for large streams.
  std::thread writer([&]() {
    SocketPointSink sink(&pair->first, /*batch_size=*/64);
    ASSERT_TRUE(sink.AddAll(sent).ok());
    ASSERT_TRUE(sink.FinishStream().ok());
    EXPECT_EQ(sink.num_processed(), sent.size());
  });

  SocketPointSource source(&pair->second, /*expected_dim=*/2);
  CollectingSink received;
  EXPECT_TRUE(Drain(&source, &received).ok());
  writer.join();
  EXPECT_EQ(received.points(), sent);
  EXPECT_TRUE(source.finished());
  EXPECT_EQ(source.num_received(), sent.size());

  // The source stays at end-of-stream.
  Point scratch;
  auto more = source.Next(&scratch);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(SocketPointStreamTest, NextBatchHandsOverWholeFrames) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  std::vector<Point> sent;
  for (int i = 0; i < 500; ++i) {
    sent.push_back({i / 500.0});
  }

  std::thread writer([&]() {
    SocketPointSink sink(&pair->first, /*batch_size=*/100);
    ASSERT_TRUE(sink.AddAll(sent).ok());
    ASSERT_TRUE(sink.FinishStream().ok());
  });

  SocketPointSource source(&pair->second, /*expected_dim=*/1);
  std::vector<Point> received;
  std::vector<Point> batch;
  std::vector<size_t> batch_sizes;
  for (;;) {
    auto n = source.NextBatch(/*max_points=*/8, &batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    batch_sizes.push_back(*n);
    for (Point& p : batch) received.push_back(std::move(p));
  }
  writer.join();
  EXPECT_EQ(received, sent);
  EXPECT_TRUE(source.finished());
  EXPECT_EQ(source.num_received(), sent.size());
  // max_points is advisory: a whole 100-point frame comes through as one
  // batch rather than being re-staged into 8-point slices.
  for (size_t n : batch_sizes) EXPECT_EQ(n, 100u);
}

TEST(SocketPointStreamTest, NextBatchInterleavesWithNext) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  std::vector<Point> sent;
  for (int i = 0; i < 90; ++i) sent.push_back({i / 90.0});

  std::thread writer([&]() {
    SocketPointSink sink(&pair->first, /*batch_size=*/40);
    ASSERT_TRUE(sink.AddAll(sent).ok());
    ASSERT_TRUE(sink.FinishStream().ok());
  });

  SocketPointSource source(&pair->second, /*expected_dim=*/1);
  std::vector<Point> received;
  // Next() stages a frame internally; NextBatch must serve the staged
  // remainder first so the stream order is preserved.
  Point one;
  auto more = source.Next(&one);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  received.push_back(one);
  std::vector<Point> batch;
  for (;;) {
    auto n = source.NextBatch(1000, &batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    for (Point& p : batch) received.push_back(std::move(p));
  }
  writer.join();
  EXPECT_EQ(received, sent);
  EXPECT_EQ(source.num_received(), sent.size());
}

TEST(SocketPointStreamTest, NextBatchVerifiesStreamTotal) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  std::vector<Point> sent = {{0.1}, {0.2}, {0.3}};
  ASSERT_TRUE(SendFrame(pair->first, EncodePointBatch(sent, 0, 3)).ok());
  // Lying end frame: declares 5 but delivered 3.
  ASSERT_TRUE(SendFrame(pair->first, EncodePointStreamEnd(5)).ok());

  SocketPointSource source(&pair->second, /*expected_dim=*/1);
  std::vector<Point> batch;
  auto n = source.NextBatch(1000, &batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_TRUE(source.NextBatch(1000, &batch).status().IsIOError());
}

TEST(SocketPointStreamTest, DimensionMismatchIsAnError) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  SocketPointSink sink(&pair->first, 8);
  ASSERT_TRUE(sink.Add({0.5, 0.5}).ok());
  ASSERT_TRUE(sink.Flush().ok());

  SocketPointSource source(&pair->second, /*expected_dim=*/1);
  Point scratch;
  EXPECT_TRUE(source.Next(&scratch).status().IsInvalidArgument());
}

TEST(SocketPointStreamTest, BatchHeaderBeyondPayloadIsRejected) {
  // A batch header declaring a huge count or dim that the payload cannot
  // possibly carry must fail before any reserve() sized from it.
  WireWriter huge_count;
  huge_count.PutU8(kPointBatchTag);
  huge_count.PutU32(0xFFFFFFFFu);  // count
  huge_count.PutU32(1);            // dim
  huge_count.PutDouble(0.5);
  std::deque<Point> out;
  EXPECT_TRUE(DecodePointBatch(huge_count.Take(), /*expected_dim=*/1, &out)
                  .IsIOError());

  // With expected_dim <= 0 the dim check is skipped, so the payload bound
  // is the only guard against an absurd declared dimension.
  WireWriter huge_dim;
  huge_dim.PutU8(kPointBatchTag);
  huge_dim.PutU32(1);              // count
  huge_dim.PutU32(0xFFFFFFFFu);    // dim
  huge_dim.PutDouble(0.5);
  EXPECT_TRUE(DecodePointBatch(huge_dim.Take(), /*expected_dim=*/0, &out)
                  .IsIOError());
  EXPECT_TRUE(out.empty());
}

TEST(SocketPointStreamTest, TruncatedStreamIsAnError) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  {
    SocketPointSink sink(&pair->first, 8);
    ASSERT_TRUE(sink.Add({0.25}).ok());
    ASSERT_TRUE(sink.Flush().ok());
    // No end frame: the connection just drops.
    pair->first.Close();
  }
  SocketPointSource source(&pair->second, 1);
  Point scratch;
  auto first = source.Next(&scratch);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  EXPECT_TRUE(source.Next(&scratch).status().IsIOError());
}

TEST(SocketPointStreamTest, EndFrameTotalIsVerified) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  const std::vector<Point> points = {{0.1}, {0.2}};
  ASSERT_TRUE(
      SendFrame(pair->first, EncodePointBatch(points, 0, points.size()))
          .ok());
  // Lie about the total.
  ASSERT_TRUE(SendFrame(pair->first, EncodePointStreamEnd(5)).ok());

  SocketPointSource source(&pair->second, 1);
  Point scratch;
  EXPECT_TRUE(*source.Next(&scratch));
  EXPECT_TRUE(*source.Next(&scratch));
  EXPECT_TRUE(source.Next(&scratch).status().IsIOError());
}

TEST(SocketPointStreamTest, FinishedSinkRejectsFurtherPoints) {
  auto pair = SocketPair();
  ASSERT_TRUE(pair.ok());
  SocketPointSink sink(&pair->first, 8);
  ASSERT_TRUE(sink.FinishStream().ok());
  EXPECT_TRUE(sink.Add({0.5}).IsFailedPrecondition());
  EXPECT_TRUE(sink.FinishStream().IsFailedPrecondition());
}

TEST(FrameSocketTest, TcpListenConnectRoundTrip) {
  uint16_t port = 0;
  auto listener = ListenTcp("127.0.0.1", 0, &port);
  ASSERT_TRUE(listener.ok());
  ASSERT_GT(port, 0);

  std::thread client([&]() {
    auto conn = ConnectTcp("127.0.0.1", port);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(SendFrame(*conn, "over tcp").ok());
  });
  auto accepted = Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  std::string payload;
  auto more = RecvFrame(*accepted, &payload);
  client.join();
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(payload, "over tcp");
}

TEST(FrameSocketTest, UnixListenConnectRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fs_rt.sock";
  auto listener = ListenUnix(path);
  ASSERT_TRUE(listener.ok());

  std::thread client([&]() {
    auto conn = ConnectUnix(path);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(SendFrame(*conn, "over unix").ok());
  });
  auto accepted = Accept(*listener);
  ASSERT_TRUE(accepted.ok());
  std::string payload;
  auto more = RecvFrame(*accepted, &payload);
  client.join();
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  EXPECT_EQ(payload, "over unix");
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace privhp
