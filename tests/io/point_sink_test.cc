#include "io/point_sink.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include "baselines/nonprivate.h"
#include "common/macros.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "io/point_stream.h"

namespace privhp {
namespace {

// Conformance checks every PointSink implementation must satisfy:
// Add() counts accepted points, the move overload behaves like the
// copying one, AddAll() behaves like repeated Add().
void CheckSinkConformance(PointSink* sink) {
  const uint64_t before = sink->num_processed();
  ASSERT_TRUE(sink->Add({0.25}).ok());
  EXPECT_EQ(sink->num_processed(), before + 1);
  ASSERT_TRUE(sink->AddAll({{0.5}, {0.75}}).ok());
  EXPECT_EQ(sink->num_processed(), before + 3);
  Point moved = {0.125};
  ASSERT_TRUE(sink->Add(std::move(moved)).ok());
  EXPECT_EQ(sink->num_processed(), before + 4);
}

TEST(PointSinkTest, CollectingSinkConforms) {
  CollectingSink sink;
  CheckSinkConformance(&sink);
  EXPECT_EQ(sink.points().size(), 4u);
  EXPECT_EQ(sink.TakePoints().size(), 4u);
}

TEST(PointSinkTest, MoveAddTakesOwnershipWithoutCopying) {
  CollectingSink sink;
  Point p = {0.5};
  const double* storage = p.data();
  ASSERT_TRUE(sink.Add(std::move(p)).ok());
  // The collected point reuses the moved-in allocation: no copy was made
  // on the move path.
  ASSERT_EQ(sink.points().size(), 1u);
  EXPECT_EQ(sink.points()[0].data(), storage);
}

TEST(PointSinkTest, MoveAddStillValidatesAgainstDomain) {
  IntervalDomain domain;
  CollectingSink sink(&domain);
  EXPECT_TRUE(sink.Add(Point{1.5}).IsOutOfRange());
  EXPECT_TRUE(sink.Add(Point{0.5}).ok());
  EXPECT_EQ(sink.num_processed(), 1u);
}

// Read-only sinks (shard, builder, CSV writer) fall back to the base
// forwarding overload: a moved-in point must behave exactly like a
// copied one.
TEST(PointSinkTest, MoveAddForwardsForReadOnlySinks) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 1024;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  PointSink* sink = &*builder;
  ASSERT_TRUE(sink->Add(Point{0.5}).ok());
  EXPECT_EQ(sink->num_processed(), 1u);
}

TEST(PointSinkTest, CollectingSinkValidatesAgainstDomain) {
  IntervalDomain domain;
  CollectingSink sink(&domain);
  EXPECT_TRUE(sink.Add({0.5}).ok());
  EXPECT_TRUE(sink.Add({1.5}).IsOutOfRange());
  EXPECT_TRUE(sink.Add({0.5, 0.5}).IsInvalidArgument());
  EXPECT_EQ(sink.num_processed(), 1u);
}

TEST(PointSinkTest, ResamplerConforms) {
  NonPrivateResampler resampler;
  CheckSinkConformance(&resampler);
  RandomEngine rng(1);
  EXPECT_EQ(resampler.Generate(5, &rng).size(), 5u);
}

TEST(PointSinkTest, ShardAndBuilderConform) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 1024;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  CheckSinkConformance(&*builder);
  auto shard = builder->NewShard();
  ASSERT_TRUE(shard.ok());
  CheckSinkConformance(&*shard);
}

TEST(PointSinkTest, VectorSourceDrainsIntoSink) {
  const std::vector<Point> data = {{0.1}, {0.2}, {0.3}};
  VectorPointSource source(&data);
  CollectingSink sink;
  ASSERT_TRUE(Drain(&source, &sink).ok());
  EXPECT_EQ(sink.points(), data);
  // A drained source stays at EOF.
  Point scratch;
  auto more = source.Next(&scratch);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(PointSinkTest, DefaultNextBatchLoopsNext) {
  std::vector<Point> data;
  for (int i = 0; i < 10; ++i) data.push_back({i * 0.1});
  VectorPointSource source(&data);
  std::vector<Point> batch;
  auto r1 = source.NextBatch(4, &batch);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 4u);
  EXPECT_EQ(batch[3], data[3]);
  auto r2 = source.NextBatch(100, &batch);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 6u);
  EXPECT_EQ(batch[5], data[9]);
  auto r3 = source.NextBatch(100, &batch);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, 0u);
}

TEST(PointSinkTest, DrainStopsAtFirstSinkError) {
  IntervalDomain domain;
  const std::vector<Point> data = {{0.1}, {1.7}, {0.3}};
  VectorPointSource source(&data);
  CollectingSink sink(&domain);
  EXPECT_TRUE(Drain(&source, &sink).IsOutOfRange());
  EXPECT_EQ(sink.num_processed(), 1u);
}

TEST(PointSinkTest, DrainRequiresBothEnds) {
  CollectingSink sink;
  const std::vector<Point> data;
  VectorPointSource source(&data);
  EXPECT_TRUE(Drain(nullptr, &sink).IsInvalidArgument());
  EXPECT_TRUE(Drain(&source, nullptr).IsInvalidArgument());
}

// CsvPointReader is a PointSource: the same plumbing that feeds shards
// reads files.
TEST(PointSinkTest, CsvReaderFeedsSinkThroughDrain) {
  const std::string path = ::testing::TempDir() + "/point_sink_test.csv";
  {
    std::ofstream out(path);
    out << "# comment\n0.1,0.2\n\n0.3,0.4\n";
  }
  auto reader = CsvPointReader::Open(path, 2);
  ASSERT_TRUE(reader.ok());
  CollectingSink sink;
  ASSERT_TRUE(Drain(&*reader, &sink).ok());
  const std::vector<Point> expected = {{0.1, 0.2}, {0.3, 0.4}};
  EXPECT_EQ(sink.points(), expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privhp
