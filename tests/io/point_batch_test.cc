// PointBatch round-trips: vector<Point> <-> arena <-> wire frame. The
// columnar paths (shard ingest, sampler output, socket streaming) all
// assume the arena layout matches both the Point currency and the wire
// point-batch frame bit-for-bit; these tests pin that equivalence,
// including non-full tail batches, dim-1, and sign/precision edge
// values that a float->text->float round trip would lose.

#include "domain/point_batch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <limits>
#include <vector>

#include "io/socket_point_stream.h"

namespace privhp {
namespace {

std::vector<Point> EdgePoints() {
  // Values chosen to break lossy round trips: negative zero, denormal,
  // 1/3 (infinite binary expansion), extreme magnitudes.
  return {
      {-0.0, 0.25, 1.0 / 3.0},
      {5e-324, -1.0 / 3.0, 1e308},
      {std::numeric_limits<double>::min(), -2.5e-10, 42.0},
  };
}

TEST(PointBatchTest, AppendFormsAgreeAndRoundTripToPoints) {
  const std::vector<Point> points = EdgePoints();
  PointBatch via_point(3), via_points(3), via_flat(3), via_rows(3);
  for (const Point& p : points) via_point.AppendPoint(p);
  via_points.AppendPoints(points);
  const PointBatch from = PointBatch::FromPoints(points);
  via_flat.AppendFlat(from.data(), from.size());
  for (const Point& p : points) {
    std::memcpy(via_rows.AppendRow(), p.data(), 3 * sizeof(double));
  }

  EXPECT_EQ(via_point, via_points);
  EXPECT_EQ(via_point, via_flat);
  EXPECT_EQ(via_point, from);
  EXPECT_EQ(via_point, via_rows);
  ASSERT_EQ(via_point.size(), points.size());
  EXPECT_EQ(via_point.dim(), 3);
  EXPECT_EQ(via_point.ToPoints(), points);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(via_point.At(i), points[i]);
    // Bit-exact, not just ==: -0.0 == 0.0 would pass operator== but the
    // arena must hold the original bit pattern.
    EXPECT_EQ(std::memcmp(via_point.row(i), points[i].data(),
                          3 * sizeof(double)),
              0);
  }
}

TEST(PointBatchTest, ResetKeepsCapacityClearKeepsDim) {
  PointBatch batch(2);
  batch.Reserve(100);
  for (int i = 0; i < 100; ++i) batch.AppendPoint({1.0 * i, 2.0 * i});
  const size_t bytes = batch.MemoryBytes();
  batch.Clear();
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.dim(), 2);
  EXPECT_EQ(batch.MemoryBytes(), bytes);  // capacity survived Clear
  batch.Reset(5);
  EXPECT_EQ(batch.dim(), 5);
  EXPECT_TRUE(batch.empty());
}

TEST(PointBatchTest, AppendRowsReturnsWritableBlock) {
  PointBatch batch(2);
  batch.AppendPoint({9.0, 9.0});
  double* rows = batch.AppendRows(3);
  for (int i = 0; i < 6; ++i) rows[i] = 0.5 * i;
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.At(0), Point({9.0, 9.0}));
  EXPECT_EQ(batch.At(2), Point({1.0, 1.5}));
  EXPECT_EQ(batch.At(3), Point({2.0, 2.5}));
}

TEST(PointBatchTest, DimOneBatchIsAFlatArray) {
  PointBatch batch(1);
  for (int i = 0; i < 7; ++i) batch.AppendPoint({static_cast<double>(i)});
  ASSERT_EQ(batch.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(batch.data()[i], i);
}

TEST(PointBatchWireTest, EncodersAgreeOnPayloadBytes) {
  const std::vector<Point> points = EdgePoints();
  const PointBatch batch = PointBatch::FromPoints(points);
  const std::string from_vector = EncodePointBatch(points, 0, points.size());
  const std::string from_flat = EncodePointBatch(batch.data(), 3, batch.size());
  const std::string from_batch = EncodePointBatch(batch);
  EXPECT_EQ(from_vector, from_flat);
  EXPECT_EQ(from_vector, from_batch);
  EXPECT_EQ(static_cast<uint8_t>(from_vector[0]), kPointBatchTag);
  // [tag][count:u32][dim:u32][count*dim doubles]
  EXPECT_EQ(from_vector.size(), 1 + 4 + 4 + points.size() * 3 * 8);
}

TEST(PointBatchWireTest, WireRoundTripIsBitExact) {
  const std::vector<Point> points = EdgePoints();
  const PointBatch batch = PointBatch::FromPoints(points);
  const std::string payload = EncodePointBatch(batch);

  PointBatch decoded;
  ASSERT_TRUE(DecodePointBatch(payload, 3, &decoded).ok());
  ASSERT_EQ(decoded.size(), batch.size());
  EXPECT_EQ(std::memcmp(decoded.data(), batch.data(),
                        batch.size() * 3 * sizeof(double)),
            0);

  // All three decode targets agree with each other.
  std::deque<Point> dq;
  std::vector<Point> vec;
  ASSERT_TRUE(DecodePointBatch(payload, 3, &dq).ok());
  ASSERT_TRUE(DecodePointBatch(payload, 3, &vec).ok());
  EXPECT_EQ(vec, points);
  EXPECT_EQ(std::vector<Point>(dq.begin(), dq.end()), points);
}

TEST(PointBatchWireTest, DecodeAppendsAcrossFrames) {
  // A stream split into a full frame and a non-full tail must
  // reassemble into one arena, mirroring SocketPointSource delivery.
  std::vector<Point> all;
  for (int i = 0; i < 10; ++i) {
    all.push_back({0.1 * i, 0.2 * i});
  }
  const std::string head = EncodePointBatch(all, 0, 8);
  const std::string tail = EncodePointBatch(all, 8, 10);

  PointBatch decoded;
  ASSERT_TRUE(DecodePointBatch(head, 2, &decoded).ok());
  ASSERT_TRUE(DecodePointBatch(tail, 2, &decoded).ok());
  EXPECT_EQ(decoded, PointBatch::FromPoints(all));
}

TEST(PointBatchWireTest, DecodeRejectsDimMismatchWithNonEmptyBatch) {
  PointBatch decoded(2);
  decoded.AppendPoint({1.0, 2.0});
  const std::string frame3 =
      EncodePointBatch({{1.0, 2.0, 3.0}}, 0, 1);
  // expected_dim = 0 skips the protocol-level check; the batch itself
  // must still refuse to mix dimensions.
  EXPECT_TRUE(DecodePointBatch(frame3, 0, &decoded).IsInvalidArgument());
  EXPECT_EQ(decoded.size(), 1u);  // untouched on error
}

TEST(PointBatchWireTest, EmptyFrameDecodesToNoPoints) {
  const std::string empty = EncodePointBatch(std::vector<Point>{}, 0, 0);
  PointBatch decoded;
  ASSERT_TRUE(DecodePointBatch(empty, 3, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

}  // namespace
}  // namespace privhp
