#include "io/file_util.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace privhp {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

// ctest runs each test of this binary as its own process, often in
// parallel, so scratch names must be per-process.
std::string TestPath(const std::string& leaf) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         leaf;
}

TEST(WriteFileAtomicTest, WritesAndReplaces) {
  const std::string path = TestPath("atomic_basic.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "first contents\n").ok());
  EXPECT_EQ(ReadAll(path), "first contents\n");
  // Replacement is whole-file: no prefix of the old contents survives.
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_EQ(ReadAll(path), "x");
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, PreservesBinaryBytes) {
  const std::string path = TestPath("atomic_binary.bin");
  std::string contents;
  for (int i = 0; i < 256; ++i) contents.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  EXPECT_EQ(ReadAll(path), contents);
  std::remove(path.c_str());
}

TEST(WriteFileAtomicTest, FailsCleanlyOnBadDirectory) {
  const Status written =
      WriteFileAtomic("/nonexistent-dir-privhp/file.bin", "x");
  EXPECT_TRUE(written.IsIOError());
}

TEST(AtomicFileWriterTest, AppendWriteAtCommit) {
  const std::string path = TestPath("writer_patch.bin");
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  // Placeholder header, then body, then patch the header — the packer's
  // write pattern.
  ASSERT_TRUE(writer->Append("????", 4).ok());
  ASSERT_TRUE(writer->Append("body", 4).ok());
  EXPECT_EQ(writer->size(), 8u);
  ASSERT_TRUE(writer->WriteAt(0, "HEAD", 4).ok());
  EXPECT_EQ(writer->size(), 8u);
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(ReadAll(path), "HEADbody");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, AbandonedWriterLeavesNothingBehind) {
  const std::string dir = ::testing::TempDir() + "/atomic_abandon_dir";
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string path = dir + "/never_committed.bin";
  {
    auto writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("doomed", 6).ok());
    // No Commit: destruction must unlink the temp file.
  }
  EXPECT_TRUE(ListDir(dir).empty());
  ::rmdir(dir.c_str());
}

TEST(AtomicFileWriterTest, UncommittedWriterDoesNotTouchTarget) {
  const std::string path = TestPath("writer_keep_old.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "old bytes").ok());
  {
    auto writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("new bytes that never land", 25).ok());
  }
  EXPECT_EQ(ReadAll(path), "old bytes");
  std::remove(path.c_str());
}

TEST(AtomicFileWriterTest, TempFilesAreDistinctUnderConcurrentCreates) {
  const std::string path = TestPath("writer_concurrent.bin");
  auto a = AtomicFileWriter::Create(path);
  auto b = AtomicFileWriter::Create(path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Append("aa", 2).ok());
  ASSERT_TRUE(b->Append("bb", 2).ok());
  ASSERT_TRUE(a->Commit().ok());
  ASSERT_TRUE(b->Commit().ok());
  // Last committer wins; neither corrupts the other.
  EXPECT_EQ(ReadAll(path), "bb");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privhp
