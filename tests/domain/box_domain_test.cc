#include "domain/box_domain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privhp {
namespace {

// Property sweep over ambient dimensions: the box decomposition invariants
// must hold for every d.
class BoxDomainDimTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxDomainDimTest, LocateIsConsistentWithCellBounds) {
  const int d = GetParam();
  BoxDomain box("box", std::vector<double>(d, 0.0),
                std::vector<double>(d, 1.0));
  RandomEngine rng(100 + d);
  for (int trial = 0; trial < 200; ++trial) {
    Point x(d);
    for (double& c : x) c = rng.UniformDouble();
    for (int level : {0, 1, 3, 7}) {
      const uint64_t idx = box.Locate(x, level);
      ASSERT_LT(idx, uint64_t{1} << level);
      std::vector<double> lo, hi;
      box.CellBounds(level, idx, &lo, &hi);
      for (int c = 0; c < d; ++c) {
        EXPECT_GE(x[c], lo[c]);
        EXPECT_LE(x[c], hi[c]);
      }
    }
  }
}

TEST_P(BoxDomainDimTest, SampleCellLandsInsideItsCell) {
  const int d = GetParam();
  BoxDomain box("box", std::vector<double>(d, 0.0),
                std::vector<double>(d, 1.0));
  RandomEngine rng(200 + d);
  for (int level : {1, 4, 6}) {
    for (int trial = 0; trial < 50; ++trial) {
      const uint64_t idx = rng.UniformInt(uint64_t{1} << level);
      const Point p = box.SampleCell(level, idx, &rng);
      EXPECT_EQ(box.Locate(p, level), idx);
    }
  }
}

TEST_P(BoxDomainDimTest, DiameterHalvesEveryDLevels) {
  const int d = GetParam();
  BoxDomain box("box", std::vector<double>(d, 0.0),
                std::vector<double>(d, 1.0));
  for (int l = 0; l + d <= 20; ++l) {
    EXPECT_NEAR(box.CellDiameter(l + d), box.CellDiameter(l) / 2.0, 1e-12);
  }
}

TEST_P(BoxDomainDimTest, LevelDiameterSumMatchesCongruentCells) {
  const int d = GetParam();
  BoxDomain box("box", std::vector<double>(d, 0.0),
                std::vector<double>(d, 1.0));
  for (int l = 0; l <= 12; ++l) {
    EXPECT_NEAR(box.LevelDiameterSum(l),
                std::ldexp(1.0, l) * box.CellDiameter(l), 1e-9);
  }
}

TEST_P(BoxDomainDimTest, LocatePathIsPrefixConsistent) {
  const int d = GetParam();
  BoxDomain box("box", std::vector<double>(d, 0.0),
                std::vector<double>(d, 1.0));
  RandomEngine rng(300 + d);
  Point x(d);
  for (double& c : x) c = rng.UniformDouble();
  std::vector<uint64_t> path;
  box.LocatePath(x, 10, &path);
  ASSERT_EQ(path.size(), 11u);
  EXPECT_EQ(path[0], 0u);
  for (int l = 1; l <= 10; ++l) {
    EXPECT_EQ(path[l] >> 1, path[l - 1]) << "level " << l;
    EXPECT_EQ(path[l], box.Locate(x, l));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BoxDomainDimTest, ::testing::Values(1, 2, 3, 5));

TEST(BoxDomainTest, NonUnitBoundsRespected) {
  BoxDomain box("box", {-2.0, 10.0}, {2.0, 30.0});
  EXPECT_TRUE(box.Contains(Point{0.0, 20.0}));
  EXPECT_FALSE(box.Contains(Point{3.0, 20.0}));
  EXPECT_FALSE(box.Contains(Point{0.0, 31.0}));
  // Level 1 cuts coordinate 0 at 0: negative side is cell 0.
  EXPECT_EQ(box.Locate(Point{-1.0, 15.0}, 1), 0u);
  EXPECT_EQ(box.Locate(Point{1.0, 15.0}, 1), 1u);
}

TEST(BoxDomainTest, DiameterUsesWidestCoordinate) {
  BoxDomain box("box", {0.0, 0.0}, {1.0, 8.0});
  // l_inf diameter at level 0 is the widest extent.
  EXPECT_DOUBLE_EQ(box.CellDiameter(0), 8.0);
  // One cut (coord 0) leaves the other coordinate dominating.
  EXPECT_DOUBLE_EQ(box.CellDiameter(1), 8.0);
  // Two cuts halve both.
  EXPECT_DOUBLE_EQ(box.CellDiameter(2), 4.0);
}

TEST(BoxDomainTest, UpperBoundaryPointsLocate) {
  BoxDomain box("box", {0.0}, {1.0});
  EXPECT_EQ(box.Locate(Point{1.0}, 3), 7u);  // clamped into the last cell
  EXPECT_EQ(box.Locate(Point{0.0}, 3), 0u);
}

TEST(BoxDomainTest, DistanceIsLInfinity) {
  BoxDomain box("box", {0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(box.Distance(Point{0.1, 0.2}, Point{0.4, 0.3}), 0.3);
}

TEST(BoxDomainTest, ValidatePointChecksDimensionAndRange) {
  BoxDomain box("box", {0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(box.ValidatePoint(Point{0.5, 0.5}).ok());
  EXPECT_TRUE(box.ValidatePoint(Point{0.5}).IsInvalidArgument());
  EXPECT_TRUE(box.ValidatePoint(Point{0.5, 1.5}).IsOutOfRange());
}

}  // namespace
}  // namespace privhp
