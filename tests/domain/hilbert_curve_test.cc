#include "domain/hilbert_curve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace privhp {
namespace {

class HilbertOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertOrderTest, IndexCellBijection) {
  HilbertCurve2D curve(GetParam());
  const uint64_t cells = curve.num_cells();
  for (uint64_t d = 0; d < cells; ++d) {
    const auto [x, y] = curve.Cell(d);
    EXPECT_EQ(curve.Index(x, y), d);
  }
}

TEST_P(HilbertOrderTest, ConsecutiveIndicesAreGridNeighbors) {
  HilbertCurve2D curve(GetParam());
  for (uint64_t d = 0; d + 1 < curve.num_cells(); ++d) {
    const auto [x1, y1] = curve.Cell(d);
    const auto [x2, y2] = curve.Cell(d + 1);
    const int dist = std::abs(static_cast<int>(x1) - static_cast<int>(x2)) +
                     std::abs(static_cast<int>(y1) - static_cast<int>(y2));
    EXPECT_EQ(dist, 1) << "jump at index " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrderTest, ::testing::Values(1, 2, 3,
                                                                     5));

TEST(HilbertCurveTest, PointMappingRoundTrips) {
  HilbertCurve2D curve(6);
  for (uint64_t d = 0; d < curve.num_cells(); d += 17) {
    const auto [x, y] = curve.PointAt(d);
    EXPECT_EQ(curve.IndexOfPoint(x, y), d);
  }
}

TEST(HilbertCurveTest, IndexOfPointClampsBoundary) {
  HilbertCurve2D curve(4);
  EXPECT_LT(curve.IndexOfPoint(1.0, 1.0), curve.num_cells());
  EXPECT_LT(curve.IndexOfPoint(0.0, 0.0), curve.num_cells());
}

// Locality in the continuous sense: points close on the curve are close in
// the square (the property the SRRW lift relies on).
TEST(HilbertCurveTest, CurveLocalityBound) {
  HilbertCurve2D curve(8);
  const uint64_t cells = curve.num_cells();
  for (uint64_t d = 0; d + 16 < cells; d += 997) {
    const auto [x1, y1] = curve.PointAt(d);
    const auto [x2, y2] = curve.PointAt(d + 16);
    const double dist =
        std::max(std::abs(x1 - x2), std::abs(y1 - y2));
    // Hilbert: |p(s) - p(t)| <= C sqrt(|s - t|) with C ~ 2.5 in normalized
    // units; 16 cells apart of 65536 => sqrt(16/65536) = 1/64.
    EXPECT_LT(dist, 2.5 / 64.0);
  }
}

}  // namespace
}  // namespace privhp
