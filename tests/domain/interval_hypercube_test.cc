#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

TEST(IntervalDomainTest, DyadicGeometry) {
  IntervalDomain interval;
  EXPECT_EQ(interval.dimension(), 1);
  // gamma_l = 2^-l, Gamma_l = 1 — the quantities in the d = 1 case of
  // Corollary 1.
  for (int l = 0; l <= 20; ++l) {
    EXPECT_DOUBLE_EQ(interval.CellDiameter(l), std::ldexp(1.0, -l));
    EXPECT_DOUBLE_EQ(interval.LevelDiameterSum(l), 1.0);
  }
}

TEST(IntervalDomainTest, LocateMatchesDyadicInterval) {
  IntervalDomain interval;
  EXPECT_EQ(interval.Locate(IntervalDomain::Make(0.3), 2), 1u);  // [0.25,0.5)
  EXPECT_EQ(interval.Locate(IntervalDomain::Make(0.75), 2), 3u);
  EXPECT_EQ(interval.Locate(IntervalDomain::Make(0.0), 5), 0u);
}

TEST(HypercubeDomainTest, GammaScalesAsTwoToMinusLOverD) {
  for (int d : {2, 3, 4}) {
    HypercubeDomain cube(d);
    // After d*m cuts each side has been halved m times.
    for (int m = 0; m <= 5; ++m) {
      EXPECT_NEAR(cube.CellDiameter(d * m), std::ldexp(1.0, -m), 1e-12)
          << "d=" << d << " m=" << m;
    }
  }
}

TEST(HypercubeDomainTest, GammaSumMatchesCorollaryOneFormula) {
  // Gamma_l = 2^l * gamma_l ~ 2^{(1-1/d) l} at multiples of d.
  HypercubeDomain cube(2);
  for (int m = 1; m <= 6; ++m) {
    const int l = 2 * m;
    EXPECT_NEAR(cube.LevelDiameterSum(l), std::pow(2.0, l * 0.5), 1e-9);
  }
}

TEST(HypercubeDomainTest, CellsPartitionTheCube) {
  HypercubeDomain cube(2);
  RandomEngine rng(5);
  // Every point lands in exactly one level-6 cell, and cells are hit
  // roughly uniformly for uniform data.
  std::vector<int> hits(64, 0);
  for (int i = 0; i < 6400; ++i) {
    Point p{rng.UniformDouble(), rng.UniformDouble()};
    ++hits[cube.Locate(p, 6)];
  }
  for (int h : hits) EXPECT_GT(h, 40);  // expected 100 per cell
}

TEST(HypercubeDomainTest, SampleCellRoundTrips) {
  HypercubeDomain cube(3);
  RandomEngine rng(9);
  for (int level : {1, 5, 9}) {
    for (int t = 0; t < 40; ++t) {
      const uint64_t idx = rng.UniformInt(uint64_t{1} << level);
      EXPECT_EQ(cube.Locate(cube.SampleCell(level, idx, &rng), level), idx);
    }
  }
}

TEST(HypercubeDomainTest, NamesEncodeDimension) {
  EXPECT_EQ(HypercubeDomain(3).Name(), "hypercube[0,1]^3");
  EXPECT_EQ(IntervalDomain().Name(), "interval[0,1]");
}

}  // namespace
}  // namespace privhp
