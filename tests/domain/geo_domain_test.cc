#include "domain/geo_domain.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace privhp {
namespace {

// A city-scale box: roughly the Sydney metro area.
GeoDomain Sydney() { return GeoDomain(-34.2, -33.5, 150.5, 151.5); }

TEST(GeoDomainTest, ContainsBoxPoints) {
  GeoDomain geo = Sydney();
  EXPECT_TRUE(geo.Contains(GeoDomain::Make(-33.87, 151.21)));
  EXPECT_FALSE(geo.Contains(GeoDomain::Make(-35.0, 151.0)));
  EXPECT_FALSE(geo.Contains(GeoDomain::Make(-33.9, 152.0)));
}

TEST(GeoDomainTest, FirstCutSplitsLatitude) {
  GeoDomain geo = Sydney();
  // Level 1 cuts coordinate 0 (latitude) at -33.85.
  EXPECT_EQ(geo.Locate(GeoDomain::Make(-34.0, 151.0), 1), 0u);
  EXPECT_EQ(geo.Locate(GeoDomain::Make(-33.6, 151.0), 1), 1u);
}

TEST(GeoDomainTest, DiameterReflectsDegreeExtents) {
  GeoDomain geo = Sydney();
  // Level 0 diameter = max extent = 1.0 degree (longitude).
  EXPECT_NEAR(geo.CellDiameter(0), 1.0, 1e-12);
}

TEST(GeoDomainTest, SampleCellRoundTrips) {
  GeoDomain geo = Sydney();
  RandomEngine rng(7);
  for (int level : {2, 6, 10}) {
    for (int t = 0; t < 30; ++t) {
      const uint64_t idx = rng.UniformInt(uint64_t{1} << level);
      EXPECT_EQ(geo.Locate(geo.SampleCell(level, idx, &rng), level), idx);
    }
  }
}

}  // namespace
}  // namespace privhp
