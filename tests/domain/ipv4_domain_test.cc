#include "domain/ipv4_domain.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace privhp {
namespace {

TEST(Ipv4DomainTest, ParseAndFormatRoundTrip) {
  auto r = Ipv4Domain::ParseAddress("10.1.2.3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (10u << 24) | (1u << 16) | (2u << 8) | 3u);
  EXPECT_EQ(Ipv4Domain::FormatAddress(*r), "10.1.2.3");
}

TEST(Ipv4DomainTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Domain::ParseAddress("10.1.2").ok());
  EXPECT_FALSE(Ipv4Domain::ParseAddress("10.1.2.300").ok());
  EXPECT_FALSE(Ipv4Domain::ParseAddress("hello").ok());
  EXPECT_FALSE(Ipv4Domain::ParseAddress("1.2.3.4.5").ok());
}

TEST(Ipv4DomainTest, AddressPointRoundTrip) {
  for (uint32_t addr : {0u, 1u, 0x0A000001u, 0xFFFFFFFFu}) {
    const Point p = Ipv4Domain::FromAddress(addr);
    EXPECT_EQ(Ipv4Domain::ToAddress(p), addr);
  }
}

TEST(Ipv4DomainTest, LocateExtractsPrefixBits) {
  Ipv4Domain domain;
  const Point p = Ipv4Domain::FromAddress(0xC0A80101);  // 192.168.1.1
  EXPECT_EQ(domain.Locate(p, 8), 0xC0u);
  EXPECT_EQ(domain.Locate(p, 16), 0xC0A8u);
  EXPECT_EQ(domain.Locate(p, 0), 0u);
  EXPECT_EQ(domain.Locate(p, 32), 0xC0A80101u);
}

TEST(Ipv4DomainTest, CellsAreCidrBlocks) {
  EXPECT_EQ(Ipv4Domain::FormatCidr(8, 10), "10.0.0.0/8");
  EXPECT_EQ(Ipv4Domain::FormatCidr(16, 0xC0A8), "192.168.0.0/16");
  EXPECT_EQ(Ipv4Domain::FormatCidr(0, 0), "0.0.0.0/0");
}

TEST(Ipv4DomainTest, SampleCellStaysInsidePrefix) {
  Ipv4Domain domain;
  RandomEngine rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Point p = domain.SampleCell(8, 10, &rng);  // inside 10.0.0.0/8
    EXPECT_EQ(Ipv4Domain::ToAddress(p) >> 24, 10u);
    EXPECT_EQ(domain.Locate(p, 8), 10u);
  }
}

TEST(Ipv4DomainTest, DiameterMatchesDyadic) {
  Ipv4Domain domain;
  EXPECT_DOUBLE_EQ(domain.CellDiameter(8), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(domain.LevelDiameterSum(8), 1.0);
  EXPECT_EQ(domain.max_level(), 32);
}

TEST(Ipv4DomainTest, ContainsRejectsOutOfRange) {
  Ipv4Domain domain;
  EXPECT_TRUE(domain.Contains(Point{0.5}));
  EXPECT_FALSE(domain.Contains(Point{1.0}));
  EXPECT_FALSE(domain.Contains(Point{-0.1}));
  EXPECT_FALSE(domain.Contains(Point{0.5, 0.5}));
}

}  // namespace
}  // namespace privhp
