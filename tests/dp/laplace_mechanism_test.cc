#include "dp/laplace_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privhp {
namespace {

TEST(LaplaceMechanismTest, MakeValidates) {
  EXPECT_FALSE(LaplaceMechanism::Make(0.0, 1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Make(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Make(-1.0, 1.0).ok());
  EXPECT_TRUE(LaplaceMechanism::Make(1.0, 1.0).ok());
}

TEST(LaplaceMechanismTest, ScaleIsSensitivityOverEpsilon) {
  LaplaceMechanism mech(3.0, 1.5);
  EXPECT_DOUBLE_EQ(mech.scale(), 2.0);
}

TEST(LaplaceMechanismTest, ReleaseIsUnbiased) {
  LaplaceMechanism mech(1.0, 1.0);
  RandomEngine rng(3);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += mech.Release(10.0, &rng);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(LaplaceMechanismTest, ReleaseAbsoluteDeviationMatchesScale) {
  LaplaceMechanism mech(2.0, 0.5);  // scale 4
  RandomEngine rng(5);
  const int n = 100000;
  double dev = 0.0;
  for (int i = 0; i < n; ++i) dev += std::abs(mech.Release(0.0, &rng));
  EXPECT_NEAR(dev / n, 4.0, 0.15);
}

TEST(LaplaceMechanismTest, ReleaseVectorNoisesEveryCoordinate) {
  LaplaceMechanism mech(1.0, 1.0);
  RandomEngine rng(7);
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const std::vector<double> out = mech.ReleaseVector(values, &rng);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NE(out[i], values[i]);
}

TEST(GeometricMechanismTest, ReleasesIntegers) {
  auto mech = GeometricMechanism::Make(1.0, 1.0);
  ASSERT_TRUE(mech.ok());
  RandomEngine rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(mech->Release(100, &rng));
  }
  EXPECT_NEAR(sum / n, 100.0, 0.2);
}

TEST(GeometricMechanismTest, MakeValidates) {
  EXPECT_FALSE(GeometricMechanism::Make(0.0, 1.0).ok());
  EXPECT_FALSE(GeometricMechanism::Make(1.0, -1.0).ok());
}

}  // namespace
}  // namespace privhp
