// EXP-PRIV: empirical validation of Theorem 2's building blocks. The
// histogram-ratio auditor estimates the observable privacy loss of each
// mechanism on a fixed neighboring pair; the estimate must stay below the
// analytic epsilon (plus estimator slack), and must be clearly positive
// for a mechanism with real signal.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/dp_audit.h"
#include "sketch/private_sketch.h"

namespace privhp {
namespace {

// Laplace counter: count on X is c, on X' is c+1 (one added element).
TEST(EmpiricalPrivacyTest, LaplaceCounterRespectsEpsilon) {
  const double epsilon = 1.0;
  DpAuditOptions options;
  options.trials = 60000;
  RandomEngine rng(42);
  auto run_x = [&](RandomEngine* r) { return 10.0 + r->Laplace(1.0 / epsilon); };
  auto run_xp = [&](RandomEngine* r) { return 11.0 + r->Laplace(1.0 / epsilon); };
  auto result = EstimateEpsilon(run_x, run_xp, options, &rng);
  ASSERT_TRUE(result.ok());
  // The estimator lower-bounds the true loss; it must not exceed epsilon
  // by more than sampling slack, and must detect some loss.
  EXPECT_LE(result->epsilon_hat, epsilon + 0.35);
  EXPECT_GT(result->epsilon_hat, 0.2);
}

TEST(EmpiricalPrivacyTest, HigherEpsilonLeaksMore) {
  DpAuditOptions options;
  options.trials = 60000;
  RandomEngine rng(43);
  auto audit = [&](double epsilon) {
    auto run_x = [epsilon](RandomEngine* r) {
      return 5.0 + r->Laplace(1.0 / epsilon);
    };
    auto run_xp = [epsilon](RandomEngine* r) {
      return 6.0 + r->Laplace(1.0 / epsilon);
    };
    auto result = EstimateEpsilon(run_x, run_xp, options, &rng);
    EXPECT_TRUE(result.ok());
    return result->epsilon_hat;
  };
  EXPECT_LT(audit(0.25), audit(4.0));
}

// A *non-private* counter (no noise) must be flagged with large loss.
TEST(EmpiricalPrivacyTest, NoiselessCounterIsCaught) {
  DpAuditOptions options;
  options.trials = 2000;
  RandomEngine rng(44);
  auto run_x = [](RandomEngine*) { return 10.0; };
  auto run_xp = [](RandomEngine*) { return 11.0; };
  auto result = EstimateEpsilon(run_x, run_xp, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isinf(result->epsilon_hat) || result->epsilon_hat > 3.0);
}

// One cell of a private count-min sketch: neighboring inputs differ by one
// update, which touches each row once; the per-cell view must stay within
// the sketch's budget. (The full-table loss is epsilon by sensitivity j;
// a single cell sees at most epsilon/j... bounded by epsilon.)
TEST(EmpiricalPrivacyTest, PrivateSketchCellRespectsEpsilon) {
  const double epsilon = 1.0;
  const size_t width = 32, depth = 4;
  DpAuditOptions options;
  options.trials = 40000;
  RandomEngine rng(45);
  uint64_t noise_seed = 0;
  auto make_output = [&](bool with_extra_element) {
    return [=](RandomEngine* r) mutable {
      PrivateCountMinSketch sketch =
          PrivateCountMinSketch::Make(width, depth, epsilon,
                                      /*seed=*/7, r)
              .ValueOrDie();
      sketch.Update(3, 5.0);
      if (with_extra_element) sketch.Update(3, 1.0);
      return sketch.Estimate(3);
    };
  };
  (void)noise_seed;
  auto result = EstimateEpsilon(make_output(false), make_output(true),
                                options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->epsilon_hat, epsilon + 0.4);
}

}  // namespace
}  // namespace privhp
