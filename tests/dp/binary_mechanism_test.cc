#include "dp/binary_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privhp {
namespace {

TEST(BinaryMechanismTest, MakeValidates) {
  EXPECT_FALSE(BinaryMechanismCounter::Make(0, 1.0, 1).ok());
  EXPECT_FALSE(BinaryMechanismCounter::Make(100, 0.0, 1).ok());
  EXPECT_TRUE(BinaryMechanismCounter::Make(100, 1.0, 1).ok());
}

TEST(BinaryMechanismTest, RejectsNonBinaryIncrements) {
  BinaryMechanismCounter counter(16, 1.0, 2);
  EXPECT_TRUE(counter.Add(2).IsInvalidArgument());
  EXPECT_TRUE(counter.Add(1).ok());
}

TEST(BinaryMechanismTest, HorizonEnforced) {
  BinaryMechanismCounter counter(4, 1.0, 3);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(counter.Add(1).ok());
  EXPECT_TRUE(counter.Add(1).IsFailedPrecondition());
  EXPECT_EQ(counter.steps(), 4u);
}

TEST(BinaryMechanismTest, CountTracksPrefixSums) {
  // With a large budget the noise is negligible and every prefix must be
  // nearly exact — checked at every step, which exercises all p-sum
  // absorb/reset paths.
  const uint64_t horizon = 256;
  BinaryMechanismCounter counter(horizon, 1e6, 4);
  double exact = 0.0;
  for (uint64_t t = 0; t < horizon; ++t) {
    const uint64_t bit = (t * 7 + 3) % 3 == 0 ? 1 : 0;
    ASSERT_TRUE(counter.Add(bit).ok());
    exact += static_cast<double>(bit);
    ASSERT_NEAR(counter.Count(), exact, 1e-3) << "step " << t + 1;
  }
}

TEST(BinaryMechanismTest, ErrorScalesWithLogHorizonOverEpsilon) {
  // Mean absolute error of the final count across seeds should be within
  // a small factor of levels^{1.5}/eps (each prefix sums <= levels noisy
  // p-sums of scale levels/eps).
  const uint64_t horizon = 1024;
  const double epsilon = 1.0;
  const int trials = 200;
  double abs_err = 0.0;
  for (int s = 0; s < trials; ++s) {
    BinaryMechanismCounter counter(horizon, epsilon, 100 + s);
    for (uint64_t t = 0; t < horizon; ++t) {
      ASSERT_TRUE(counter.Add(1).ok());
    }
    abs_err += std::abs(counter.Count() - static_cast<double>(horizon));
  }
  abs_err /= trials;
  const double levels = std::log2(static_cast<double>(horizon)) + 1;
  EXPECT_LT(abs_err, 2.0 * std::pow(levels, 1.5) / epsilon);
  EXPECT_GT(abs_err, 0.1);  // noise is actually present
}

TEST(BinaryMechanismTest, NoiseScaleIsLevelsOverEpsilon) {
  BinaryMechanismCounter counter(1024, 2.0, 5);
  // levels = log2(1024) + 1 = 11.
  EXPECT_DOUBLE_EQ(counter.NoiseScale(), 11.0 / 2.0);
  EXPECT_GT(counter.MemoryBytes(), 0u);
}

TEST(BinaryMechanismTest, ContinualReleaseBeatsNaiveComposition) {
  // Publishing T prefixes with independent Laplace(T/eps) noise each (the
  // naive approach) has error ~ T/eps; the binary mechanism's final-count
  // error must be far smaller.
  const uint64_t horizon = 2048;
  const double epsilon = 1.0;
  double mech_err = 0.0;
  RandomEngine naive_rng(9);
  double naive_err = 0.0;
  const int trials = 100;
  for (int s = 0; s < trials; ++s) {
    BinaryMechanismCounter counter(horizon, epsilon, 200 + s);
    for (uint64_t t = 0; t < horizon; ++t) {
      ASSERT_TRUE(counter.Add(t % 2).ok());
    }
    mech_err += std::abs(counter.Count() - horizon / 2.0);
    naive_err +=
        std::abs(naive_rng.Laplace(static_cast<double>(horizon) / epsilon));
  }
  EXPECT_LT(mech_err / trials, 0.25 * naive_err / trials);
}

}  // namespace
}  // namespace privhp
