#include "dp/noisy_counter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privhp {
namespace {

TEST(NoisyCounterTest, ZeroSigmaIsExact) {
  NoisyCounter counter(0.0, nullptr);
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  EXPECT_DOUBLE_EQ(counter.initial_noise(), 0.0);
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
}

TEST(NoisyCounterTest, NoiseAppliedAtInit) {
  RandomEngine rng(11);
  NoisyCounter counter(1.0, &rng);
  EXPECT_EQ(counter.value(), counter.initial_noise());
  EXPECT_NE(counter.initial_noise(), 0.0);
}

TEST(NoisyCounterTest, IncrementsAddOnTopOfNoise) {
  RandomEngine rng(13);
  NoisyCounter counter(2.0, &rng);
  const double noise = counter.initial_noise();
  for (int i = 0; i < 10; ++i) counter.Increment();
  EXPECT_DOUBLE_EQ(counter.value(), noise + 10.0);
}

TEST(NoisyCounterTest, NoiseScaleMatchesSigma) {
  // Mean |noise| over many counters should be ~ 1/sigma.
  RandomEngine rng(17);
  const double sigma = 0.5;
  const int n = 50000;
  double dev = 0.0;
  for (int i = 0; i < n; ++i) {
    NoisyCounter counter(sigma, &rng);
    dev += std::abs(counter.initial_noise());
  }
  EXPECT_NEAR(dev / n, 1.0 / sigma, 0.05);
}

}  // namespace
}  // namespace privhp
