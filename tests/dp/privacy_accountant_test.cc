#include "dp/privacy_accountant.h"

#include <gtest/gtest.h>

namespace privhp {
namespace {

TEST(PrivacyAccountantTest, MakeRejectsNonPositiveBudget) {
  EXPECT_FALSE(PrivacyAccountant::Make(0.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Make(-1.0).ok());
  EXPECT_TRUE(PrivacyAccountant::Make(1.0).ok());
}

TEST(PrivacyAccountantTest, ChargesAccumulate) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(0.25, "a").ok());
  EXPECT_TRUE(acc.Charge(0.5, "b").ok());
  EXPECT_DOUBLE_EQ(acc.Spent(), 0.75);
  EXPECT_DOUBLE_EQ(acc.Remaining(), 0.25);
  ASSERT_EQ(acc.ledger().size(), 2u);
  EXPECT_EQ(acc.ledger()[0].first, "a");
}

TEST(PrivacyAccountantTest, OverdraftFails) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(0.9, "a").ok());
  const Status s = acc.Charge(0.2, "b");
  EXPECT_TRUE(s.IsFailedPrecondition());
  // Failed charge must not be recorded.
  EXPECT_DOUBLE_EQ(acc.Spent(), 0.9);
  EXPECT_EQ(acc.ledger().size(), 1u);
}

TEST(PrivacyAccountantTest, NegativeChargeRejected) {
  PrivacyAccountant acc(1.0);
  EXPECT_TRUE(acc.Charge(-0.1, "a").IsInvalidArgument());
}

TEST(PrivacyAccountantTest, ExactBudgetSumToleratesFloatAccumulation) {
  // Summing many sigma_l values that analytically equal eps must succeed.
  PrivacyAccountant acc(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(acc.Charge(0.1, "level " + std::to_string(i)).ok());
  }
  EXPECT_NEAR(acc.Spent(), 1.0, 1e-12);
}

TEST(PrivacyAccountantTest, ToStringListsLedger) {
  PrivacyAccountant acc(2.0);
  ASSERT_TRUE(acc.Charge(0.5, "counters").ok());
  const std::string s = acc.ToString();
  EXPECT_NE(s.find("counters"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

}  // namespace
}  // namespace privhp
