#include "dp/budget_allocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

TEST(BudgetAllocatorTest, ValidatesArguments) {
  IntervalDomain interval;
  EXPECT_FALSE(AllocateBudget(interval, 0.0, 2, 8, 4, 4,
                              BudgetPolicy::kOptimal)
                   .ok());
  EXPECT_FALSE(AllocateBudget(interval, 1.0, 5, 4, 4, 4,
                              BudgetPolicy::kOptimal)
                   .ok());
  EXPECT_FALSE(AllocateBudget(interval, 1.0, 2, 8, 0, 4,
                              BudgetPolicy::kOptimal)
                   .ok());
  EXPECT_TRUE(AllocateBudget(interval, 1.0, 2, 8, 4, 4,
                             BudgetPolicy::kOptimal)
                  .ok());
}

TEST(BudgetAllocatorTest, UniformSplitsEvenly) {
  IntervalDomain interval;
  auto plan =
      AllocateBudget(interval, 1.0, 2, 9, 4, 4, BudgetPolicy::kUniform);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->sigma.size(), 10u);
  for (double s : plan->sigma) EXPECT_DOUBLE_EQ(s, 0.1);
}

// Property sweep: every plan must sum to eps, and the optimal plan must
// not lose to uniform on the Delta_noise objective it optimizes.
class BudgetSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(BudgetSweepTest, SumsToEpsilonAndOptimalBeatsUniform) {
  const auto [d, l_star, l_max, epsilon] = GetParam();
  HypercubeDomain cube(d);
  const size_t k = 8;
  const size_t j = 6;
  auto optimal =
      AllocateBudget(cube, epsilon, l_star, l_max, k, j,
                     BudgetPolicy::kOptimal);
  auto uniform =
      AllocateBudget(cube, epsilon, l_star, l_max, k, j,
                     BudgetPolicy::kUniform);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(uniform.ok());

  const double sum_opt =
      std::accumulate(optimal->sigma.begin(), optimal->sigma.end(), 0.0);
  const double sum_uni =
      std::accumulate(uniform->sigma.begin(), uniform->sigma.end(), 0.0);
  EXPECT_NEAR(sum_opt, epsilon, 1e-9);
  EXPECT_NEAR(sum_uni, epsilon, 1e-9);
  for (double s : optimal->sigma) EXPECT_GT(s, 0.0);

  const double n = 10000.0;
  EXPECT_LE(NoiseObjective(cube, *optimal, l_star, k, j, n),
            NoiseObjective(cube, *uniform, l_star, k, j, n) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BudgetSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3),      // d
                       ::testing::Values(1, 3, 5),      // l_star
                       ::testing::Values(8, 12),        // l_max
                       ::testing::Values(0.5, 1.0, 4.0)));

// Lemma 5 closed form on [0,1]: Gamma_l = 1 for all l, so all counter
// levels get equal sigma; sketch levels decay like sqrt(gamma_{l-1}) =
// 2^{-(l-1)/2}.
TEST(BudgetAllocatorTest, ClosedFormOnInterval) {
  IntervalDomain interval;
  const int l_star = 3, l_max = 8;
  auto plan = AllocateBudget(interval, 1.0, l_star, l_max, 4, 5,
                             BudgetPolicy::kOptimal);
  ASSERT_TRUE(plan.ok());
  for (int l = 1; l <= l_star; ++l) {
    EXPECT_NEAR(plan->sigma[l], plan->sigma[0], 1e-12);
  }
  for (int l = l_star + 2; l <= l_max; ++l) {
    EXPECT_NEAR(plan->sigma[l] / plan->sigma[l - 1], 1.0 / std::sqrt(2.0),
                1e-9);
  }
}

// A perturbed plan should never beat the Lagrange optimum.
TEST(BudgetAllocatorTest, PerturbationsDoNotImproveObjective) {
  HypercubeDomain cube(2);
  const int l_star = 2, l_max = 9;
  const size_t k = 8, j = 5;
  auto plan = AllocateBudget(cube, 1.0, l_star, l_max, k, j,
                             BudgetPolicy::kOptimal);
  ASSERT_TRUE(plan.ok());
  const double base = NoiseObjective(cube, *plan, l_star, k, j, 1e4);
  for (size_t a = 0; a + 1 < plan->sigma.size(); a += 2) {
    BudgetPlan perturbed = *plan;
    const double delta = 0.25 * perturbed.sigma[a];
    perturbed.sigma[a] -= delta;
    perturbed.sigma[a + 1] += delta;  // budget still sums to eps
    EXPECT_GE(NoiseObjective(cube, perturbed, l_star, k, j, 1e4),
              base - 1e-12);
  }
}

}  // namespace
}  // namespace privhp
