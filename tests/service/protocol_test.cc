#include "service/protocol.h"

#include <gtest/gtest.h>

namespace privhp {
namespace {

TEST(ProtocolTest, SimpleRequestsRoundTrip) {
  auto ping = ParseRequest(EncodePingRequest());
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, ServiceOp::kPing);

  auto list = ParseRequest(EncodeListRequest());
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->op, ServiceOp::kList);
}

TEST(ProtocolTest, SampleRequestRoundTrips) {
  auto req = ParseRequest(EncodeSampleRequest("flows", 100000, 77));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->op, ServiceOp::kSample);
  EXPECT_EQ(req->artifact, "flows");
  EXPECT_EQ(req->m, 100000u);
  EXPECT_EQ(req->seed, 77u);
}

TEST(ProtocolTest, RangeRequestRoundTrips) {
  auto req = ParseRequest(EncodeRangeRequest("geo", 12, (1u << 12) - 1));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->op, ServiceOp::kRange);
  EXPECT_EQ(req->artifact, "geo");
  EXPECT_EQ(req->level, 12u);
  EXPECT_EQ(req->index, (1u << 12) - 1);
}

TEST(ProtocolTest, QuantileRequestRoundTrips) {
  auto req =
      ParseRequest(EncodeQuantileRequest("latency", {0.5, 0.9, 0.999}));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->op, ServiceOp::kQuantile);
  EXPECT_EQ(req->qs, (std::vector<double>{0.5, 0.9, 0.999}));
}

TEST(ProtocolTest, HeavyAndExportRoundTrip) {
  auto heavy = ParseRequest(EncodeHeavyRequest("ip", 0.05));
  ASSERT_TRUE(heavy.ok());
  EXPECT_EQ(heavy->op, ServiceOp::kHeavy);
  EXPECT_EQ(heavy->threshold, 0.05);

  auto exp = ParseRequest(EncodeExportRequest("ip"));
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->op, ServiceOp::kExport);
  EXPECT_EQ(exp->artifact, "ip");
}

TEST(ProtocolTest, IngestRequestRoundTrips) {
  ServiceRequest spec;
  spec.op = ServiceOp::kIngest;
  spec.artifact = "fresh";
  spec.dim = 2;
  spec.epsilon = 0.25;
  spec.k = 64;
  spec.n = 1 << 20;
  spec.seed = 9;
  spec.threads = 4;
  auto req = ParseRequest(EncodeIngestRequest(spec));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->op, ServiceOp::kIngest);
  EXPECT_EQ(req->artifact, "fresh");
  EXPECT_EQ(req->dim, 2u);
  EXPECT_EQ(req->epsilon, 0.25);
  EXPECT_EQ(req->k, 64u);
  EXPECT_EQ(req->n, uint64_t{1} << 20);
  EXPECT_EQ(req->seed, 9u);
  EXPECT_EQ(req->threads, 4u);
}

TEST(ProtocolTest, MalformedRequestsAreRejected) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("\xff").ok());
  // Truncated: SAMPLE opcode with no fields.
  std::string truncated(1, static_cast<char>(ServiceOp::kSample));
  EXPECT_FALSE(ParseRequest(truncated).ok());
  // Trailing garbage after a valid request.
  std::string trailing = EncodePingRequest() + "x";
  EXPECT_FALSE(ParseRequest(trailing).ok());
}

TEST(ProtocolTest, QuantileCountBeyondPayloadIsRejected) {
  // A tiny frame whose declared quantile count (0xFFFFFFFF) vastly
  // exceeds the bytes it carries must be rejected up front, not drive a
  // multi-GiB reserve().
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(ServiceOp::kQuantile));
  w.PutString("latency");
  w.PutU32(0xFFFFFFFFu);
  w.PutDouble(0.5);
  const auto req = ParseRequest(w.Take());
  ASSERT_FALSE(req.ok());
  EXPECT_TRUE(req.status().IsIOError());
}

TEST(ProtocolTest, ResponsesCarryStatusAndPayload) {
  WireWriter ok = BeginOkResponse();
  ok.PutDouble(0.125);
  const std::string ok_frame = ok.Take();
  WireReader payload;
  ASSERT_TRUE(ParseResponse(ok_frame, &payload).ok());
  EXPECT_EQ(*payload.Double(), 0.125);

  const std::string err_frame =
      EncodeErrorResponse(Status::InvalidArgument("no such artifact"));
  const Status err = ParseResponse(err_frame, &payload);
  EXPECT_TRUE(err.IsInvalidArgument());
  EXPECT_EQ(err.message(), "no such artifact");
}

}  // namespace
}  // namespace privhp
