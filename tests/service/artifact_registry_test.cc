#include "service/artifact_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "domain/interval_domain.h"
#include "domain/ipv4_domain.h"

namespace privhp {
namespace {

// Builds a small released artifact over its own interval domain.
std::shared_ptr<const ServedArtifact> MakeArtifact(uint64_t seed,
                                                   size_t n = 2000) {
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = n;
  options.seed = seed;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  EXPECT_TRUE(builder.ok());
  RandomEngine rng(seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(builder->Add({rng.UniformDouble()}).ok());
  }
  auto generator = std::move(*builder).Finish();
  EXPECT_TRUE(generator.ok());
  return ServedArtifact::Make(std::move(domain), std::move(*generator),
                              "test");
}

TEST(ArtifactRegistryTest, PublishGetListRemove) {
  ArtifactRegistry registry;
  EXPECT_TRUE(registry.Get("a").status().IsInvalidArgument());
  ASSERT_TRUE(registry.Publish("a", MakeArtifact(1)).ok());
  ASSERT_TRUE(registry.Publish("b", MakeArtifact(2)).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.List(), (std::vector<std::string>{"a", "b"}));

  auto artifact = registry.Get("a");
  ASSERT_TRUE(artifact.ok());
  EXPECT_EQ((*artifact)->domain().dimension(), 1);
  EXPECT_GT((*artifact)->generator().TotalMass(), 0.0);

  EXPECT_TRUE(registry.Remove("a"));
  EXPECT_FALSE(registry.Remove("a"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ArtifactRegistryTest, RejectsEmptyNameAndNullArtifact) {
  ArtifactRegistry registry;
  EXPECT_TRUE(registry.Publish("", MakeArtifact(1)).IsInvalidArgument());
  EXPECT_TRUE(registry.Publish("x", nullptr).IsInvalidArgument());
}

TEST(ArtifactRegistryTest, GetKeepsArtifactAliveAcrossHotSwapAndRemove) {
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Publish("live", MakeArtifact(1)).ok());
  auto held = registry.Get("live");
  ASSERT_TRUE(held.ok());
  const double mass_before = (*held)->generator().TotalMass();

  // Hot-swap, then remove entirely; the held reference must stay valid.
  ASSERT_TRUE(registry.Publish("live", MakeArtifact(99)).ok());
  EXPECT_TRUE(registry.Remove("live"));
  RandomEngine rng(3);
  EXPECT_EQ((*held)->generator().Sample(&rng).size(), 1u);
  EXPECT_EQ((*held)->generator().TotalMass(), mass_before);
}

TEST(ArtifactRegistryTest, LoadFileReconstructsDomainFromHeader) {
  const std::string path = ::testing::TempDir() + "/registry_load.tree";
  auto artifact = MakeArtifact(5);
  ASSERT_TRUE(artifact->generator().Save(path).ok());

  ArtifactRegistry registry;
  ASSERT_TRUE(registry.LoadFile("loaded", path).ok());
  auto loaded = registry.Get("loaded");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->domain().Name(), "interval[0,1]");
  EXPECT_EQ((*loaded)->generator().TotalMass(),
            artifact->generator().TotalMass());
  EXPECT_EQ((*loaded)->source(), "file:" + path);
  std::remove(path.c_str());
}

TEST(ArtifactRegistryTest, LoadFileRejectsMissingAndV1Files) {
  ArtifactRegistry registry;
  EXPECT_TRUE(
      registry.LoadFile("x", "/nonexistent/path.tree").IsIOError());

  const std::string path = ::testing::TempDir() + "/registry_v1.tree";
  {
    std::ofstream out(path);
    out << "privhp-tree-v1\ninterval[0,1]\n1\n0 0 1 -1 -1\n";
  }
  EXPECT_TRUE(registry.LoadFile("x", path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(ArtifactRegistryTest, LoadFileRejectsUnknownDomainName) {
  const std::string path = ::testing::TempDir() + "/registry_geo.tree";
  {
    std::ofstream out(path);
    // GeoDomain trees carry bounding-box geometry the name cannot encode.
    out << "privhp-tree-v2\ngeo\n2\n1\n0 0 1 -1 -1\n";
  }
  ArtifactRegistry registry;
  EXPECT_TRUE(registry.LoadFile("x", path).IsNotImplemented());
  std::remove(path.c_str());
}

// The hot-swap contract under concurrency: readers sample whatever
// version they hold while a writer republishes; run under TSan in CI.
TEST(ArtifactRegistryTest, HotSwapUnderConcurrentReaders) {
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.Publish("hot", MakeArtifact(0, 500)).ok());

  constexpr int kReaders = 4;
  constexpr int kSwaps = 20;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> samples{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      RandomEngine rng(1000 + t);
      while (!stop.load()) {
        auto artifact = registry.Get("hot");
        ASSERT_TRUE(artifact.ok());
        for (int i = 0; i < 50; ++i) {
          const Point p = (*artifact)->generator().Sample(&rng);
          ASSERT_EQ(p.size(), 1u);
          ASSERT_GE(p[0], 0.0);
          ASSERT_LE(p[0], 1.0);
        }
        samples.fetch_add(50);
      }
    });
  }
  for (int swap = 1; swap <= kSwaps; ++swap) {
    ASSERT_TRUE(
        registry.Publish("hot", MakeArtifact(swap, 500)).ok());
  }
  // On a loaded single-core machine the swaps can finish before any
  // reader is scheduled; keep serving until every reader has progressed
  // so the test always exercises read-during-swap interleavings.
  while (samples.load() < kReaders * 50u) std::this_thread::yield();
  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_GT(samples.load(), 0u);
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace privhp
