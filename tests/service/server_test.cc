#include "service/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "core/queries.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"
#include "service/client.h"

namespace privhp {
namespace {

std::vector<Point> MakeData(size_t n, int dim, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<Point> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p;
    p.reserve(dim);
    // Mild skew so the tree is not trivial.
    for (int c = 0; c < dim; ++c) p.push_back(rng.UniformDouble() *
                                              rng.UniformDouble());
    data.push_back(std::move(p));
  }
  return data;
}

// Server + registry with one 1-D artifact named "beta", over a Unix
// socket in the test tmpdir.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/srv_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    auto domain = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = kN;
    options.seed = 42;
    auto builder = PrivHPBuilder::Make(domain.get(), options);
    ASSERT_TRUE(builder.ok());
    for (const Point& p : MakeData(kN, 1, 7)) {
      ASSERT_TRUE(builder->Add(p).ok());
    }
    auto generator = std::move(*builder).Finish();
    ASSERT_TRUE(generator.ok());
    tree_copy_ = std::make_unique<PartitionTree>(generator->tree());
    ASSERT_TRUE(registry_
                    .Publish("beta", ServedArtifact::Make(
                                         std::move(domain),
                                         std::move(*generator), "test"))
                    .ok());

    ServerOptions server_options;
    server_options.unix_path = socket_path_;
    server_options.num_workers = 4;
    auto server = PrivHPServer::Start(&registry_, server_options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(socket_path_.c_str());
  }

  Result<PrivHPClient> Connect() {
    return PrivHPClient::ConnectUnix(socket_path_);
  }

  static constexpr size_t kN = 4000;
  std::string socket_path_;
  ArtifactRegistry registry_;
  std::unique_ptr<PartitionTree> tree_copy_;
  std::unique_ptr<PrivHPServer> server_;
};

TEST_F(ServerTest, PingAndList) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  auto names = client->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"beta"});
}

TEST_F(ServerTest, SeededSampleIsReproducibleAcrossConnections) {
  auto c1 = Connect();
  auto c2 = Connect();
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto s1 = c1->Sample("beta", 500, /*seed=*/123);
  auto s2 = c2->Sample("beta", 500, /*seed=*/123);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*s1, *s2);

  // And identical to sampling the artifact locally with the same seed:
  // the server adds no hidden randomness. SampleBatch on the artifact's
  // cached compiled table is the local ground truth, so this also pins
  // wire-level byte determinism of the compiled path.
  auto artifact = registry_.Get("beta");
  ASSERT_TRUE(artifact.ok());
  RandomEngine rng(123);
  EXPECT_EQ(*s1, (*artifact)->generator().sampler().SampleBatch(500, &rng));
  RandomEngine rng2(123);
  EXPECT_EQ(*s1, (*artifact)->generator().Generate(500, &rng2));

  // A different seed gives a different stream.
  auto s3 = c1->Sample("beta", 500, /*seed=*/124);
  ASSERT_TRUE(s3.ok());
  EXPECT_NE(*s1, *s3);
}

TEST_F(ServerTest, SeedlessSamplesDiffer) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto s1 = client->Sample("beta", 100, 0);
  auto s2 = client->Sample("beta", 100, 0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(*s1, *s2);
}

TEST_F(ServerTest, QueriesMatchDirectEvaluation) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  auto quantiles = client->Quantiles("beta", {0.25, 0.5, 0.9});
  ASSERT_TRUE(quantiles.ok());
  auto direct = TreeQuantiles(*tree_copy_, {0.25, 0.5, 0.9});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*quantiles, *direct);

  auto mass = client->RangeMass("beta", CellId{1, 0});
  ASSERT_TRUE(mass.ok());
  EXPECT_EQ(*mass, CellMassFraction(*tree_copy_, CellId{1, 0}));

  auto heavy = client->Heavy("beta", 0.05);
  ASSERT_TRUE(heavy.ok());
  auto direct_heavy = HierarchicalHeavyHitters(*tree_copy_, 0.05);
  ASSERT_TRUE(direct_heavy.ok());
  ASSERT_EQ(heavy->size(), direct_heavy->size());
  for (size_t i = 0; i < heavy->size(); ++i) {
    EXPECT_EQ((*heavy)[i].cell, (*direct_heavy)[i].cell);
    EXPECT_EQ((*heavy)[i].fraction, (*direct_heavy)[i].fraction);
  }
}

TEST_F(ServerTest, ExportIsByteIdenticalToLocalSave) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto exported = client->Export("beta");
  ASSERT_TRUE(exported.ok());
  std::ostringstream local;
  ASSERT_TRUE(SaveTree(*tree_copy_, &local).ok());
  EXPECT_EQ(*exported, local.str());
}

TEST_F(ServerTest, ErrorsComeBackAsStatuses) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Sample("nope", 10, 1).status().IsInvalidArgument());
  // The connection survives an application error.
  EXPECT_TRUE(client->Ping().ok());
  // Quantiles of a high-dimensional request still work point-wise (dim 1
  // artifact), but an out-of-range cell is rejected.
  EXPECT_TRUE(client->RangeMass("beta", CellId{2, 17})
                  .status()
                  .IsInvalidArgument());
}

// The acceptance bar: >= 4 concurrent client threads hammering SAMPLE
// with per-request seeds, each response reproducible and race-clean
// (this test runs under TSan in CI).
TEST_F(ServerTest, ConcurrentSeededSamplesAreReproducible) {
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  constexpr size_t kM = 400;

  auto artifact = registry_.Get("beta");
  ASSERT_TRUE(artifact.ok());

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      auto client = Connect();
      ASSERT_TRUE(client.ok());
      for (int r = 0; r < kRequests; ++r) {
        const uint64_t seed = 1 + t * 100 + r;
        auto points = client->Sample("beta", kM, seed);
        ASSERT_TRUE(points.ok());
        ASSERT_EQ(points->size(), kM);
        RandomEngine rng(seed);
        ASSERT_EQ(*points, (*artifact)->generator().Generate(kM, &rng));
      }
    });
  }
  for (std::thread& c : clients) c.join();

  const PrivHPServer::Stats stats = server_->stats();
  EXPECT_GE(stats.requests, uint64_t{kClients * kRequests});
  EXPECT_GE(stats.sampled_points, uint64_t{kClients * kRequests * kM});
}

// Concurrent SAMPLE clients all pin the same ServedArtifact, so they
// share the one CompiledSampler alias table its generator carries —
// this test hammers that shared table from >= 4 threads (race-clean
// under TSan in CI) while the registry publishes an unrelated artifact
// mid-flight, and checks every response byte-for-byte against local
// draws from the same table.
TEST_F(ServerTest, ConcurrentSamplesShareOneCompiledTable) {
  constexpr int kClients = 4;
  constexpr int kRequests = 6;
  constexpr size_t kM = 300;

  auto artifact = registry_.Get("beta");
  ASSERT_TRUE(artifact.ok());
  const CompiledSampler& table = (*artifact)->generator().sampler();
  EXPECT_GT(table.num_cells(), 1u);

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      auto client = Connect();
      ASSERT_TRUE(client.ok());
      for (int r = 0; r < kRequests; ++r) {
        const uint64_t seed = 900 + t * 37 + r;
        auto points = client->Sample("beta", kM, seed);
        ASSERT_TRUE(points.ok());
        RandomEngine rng(seed);
        ASSERT_EQ(*points, table.SampleBatch(kM, &rng));
      }
    });
  }
  // Publish a different artifact while the samplers run: registry
  // mutation must not perturb concurrent reads of the cached table.
  {
    auto domain = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = 500;
    options.seed = 1234;
    auto builder = PrivHPBuilder::Make(domain.get(), options);
    ASSERT_TRUE(builder.ok());
    for (const Point& p : MakeData(500, 1, 99)) {
      ASSERT_TRUE(builder->Add(p).ok());
    }
    auto other = std::move(*builder).Finish();
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE(registry_
                    .Publish("gamma", ServedArtifact::Make(
                                          std::move(domain),
                                          std::move(*other), "swap"))
                    .ok());
  }
  for (std::thread& c : clients) c.join();
}

// Ingest over the socket == build from the same data locally, bit for
// bit: the served artifact is exactly the released artifact.
TEST_F(ServerTest, IngestPublishesByteIdenticalArtifact) {
  const std::vector<Point> data = MakeData(3000, 2, 11);

  PrivHPClient::IngestSpec spec;
  spec.dim = 2;
  spec.epsilon = 1.0;
  spec.k = 16;
  spec.n = data.size();
  spec.seed = 5;
  spec.threads = 2;

  auto client = Connect();
  ASSERT_TRUE(client.ok());
  VectorPointSource source(&data);
  auto report = client->Ingest("fresh", spec, &source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->points_sent, data.size());
  EXPECT_GT(report->nodes, 0u);

  // Build the same artifact locally (sequential reference build).
  HypercubeDomain domain(2);
  PrivHPOptions options;
  options.epsilon = spec.epsilon;
  options.k = spec.k;
  options.expected_n = spec.n;
  options.seed = spec.seed;
  auto local = PrivHPBuilder::BuildParallel(&domain, options, data, 1);
  ASSERT_TRUE(local.ok());
  std::ostringstream local_bytes;
  ASSERT_TRUE(SaveTree(local->tree(), &local_bytes).ok());

  auto exported = client->Export("fresh");
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(*exported, local_bytes.str());

  // The new artifact serves immediately alongside the old one.
  auto names = client->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"beta", "fresh"}));
  auto sampled = client->Sample("fresh", 50, 3);
  ASSERT_TRUE(sampled.ok());
  EXPECT_EQ((*sampled)[0].size(), 2u);
}

TEST_F(ServerTest, IngestValidatesBeforeStreaming) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  PrivHPClient::IngestSpec spec;
  spec.dim = 1;
  spec.n = 0;  // missing horizon
  const std::vector<Point> data = {{0.5}};
  VectorPointSource source(&data);
  EXPECT_TRUE(
      client->Ingest("bad", spec, &source).status().IsInvalidArgument());
  // Connection still usable.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, IngestHotSwapsLiveArtifact) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  // A reader pins the current version.
  auto before = registry_.Get("beta");
  ASSERT_TRUE(before.ok());
  const double mass_before = (*before)->generator().TotalMass();

  const std::vector<Point> data = MakeData(2000, 1, 23);
  PrivHPClient::IngestSpec spec;
  spec.dim = 1;
  spec.n = data.size();
  spec.seed = 77;
  VectorPointSource source(&data);
  auto report = client->Ingest("beta", spec, &source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The registry now serves the new artifact; the pinned one is intact.
  auto after = registry_.Get("beta");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  EXPECT_EQ((*before)->generator().TotalMass(), mass_before);
  EXPECT_EQ((*after)->source(), "ingest");
}

TEST_F(ServerTest, SampleBeyondServerLimitIsRejected) {
  // Default max_sample_points is 2^24; a 13-byte request must not be able
  // to park a worker generating points for centuries.
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Sample("beta", uint64_t{1} << 60, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, LocalSourceFailureMidIngestClosesCleanly) {
  // The local source dies mid-stream: the client must abort the
  // connection (no end frame — a clean finish would publish a silently
  // truncated artifact) and later calls must fail loudly, not desync.
  struct FailingSource : PointSource {
    int left = 10;
    Result<bool> Next(Point* out) override {
      if (left-- <= 0) return Status::IOError("source exploded");
      *out = Point{0.5};
      return true;
    }
  };
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  FailingSource src;
  PrivHPClient::IngestSpec spec;
  spec.dim = 1;
  spec.n = 100;
  auto report = client->Ingest("partial", spec, &src);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsIOError());
  EXPECT_FALSE(client->Ping().ok());  // connection closed, not desynced

  // Nothing was published from the truncated stream, and the worker is
  // free to serve a fresh connection.
  auto fresh = Connect();
  ASSERT_TRUE(fresh.ok());
  auto names = fresh->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"beta"});
}

TEST_F(ServerTest, StopReturnsWhileClientStallsMidIngest) {
  // A peer that opens an ingest session and then goes silent must not
  // wedge shutdown: the worker's blocked recv polls the stop flag.
  auto sock = ConnectUnix(socket_path_);
  ASSERT_TRUE(sock.ok());
  ServiceRequest spec;
  spec.op = ServiceOp::kIngest;
  spec.artifact = "stalled";
  spec.dim = 1;
  spec.n = 100;
  ASSERT_TRUE(SendFrame(*sock, EncodeIngestRequest(spec)).ok());
  std::string frame;
  WireReader payload;
  auto more = RecvFrame(*sock, &frame);
  ASSERT_TRUE(more.ok() && *more);
  ASSERT_TRUE(ParseResponse(frame, &payload).ok());
  // ... and now send nothing. Stop() must still return promptly (the
  // ctest TIMEOUT would flag a hang).
  server_->Stop();
}

TEST(ServerTcpTest, ServesOverTcp) {
  ArtifactRegistry registry;
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = 1000;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  ASSERT_TRUE(builder.ok());
  for (const Point& p : MakeData(1000, 1, 3)) {
    ASSERT_TRUE(builder->Add(p).ok());
  }
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
  ASSERT_TRUE(registry
                  .Publish("tcp", ServedArtifact::Make(
                                      std::move(domain),
                                      std::move(*generator), "test"))
                  .ok());

  ServerOptions server_options;
  server_options.tcp_port = 0;  // ephemeral
  server_options.num_workers = 2;
  auto server = PrivHPServer::Start(&registry, server_options);
  ASSERT_TRUE(server.ok());
  ASSERT_GT((*server)->tcp_port(), 0);

  auto client = PrivHPClient::ConnectTcp("127.0.0.1", (*server)->tcp_port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  auto points = client->Sample("tcp", 100, 9);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 100u);
  (*server)->Stop();
}

TEST(ServerIdleTimeoutTest, StalledConnectionFreesTheWorker) {
  const std::string path = ::testing::TempDir() + "/srv_idle_" +
                           std::to_string(::getpid()) + ".sock";
  ArtifactRegistry registry;
  ServerOptions options;
  options.unix_path = path;
  options.num_workers = 1;
  options.idle_timeout_seconds = 1;
  auto server = PrivHPServer::Start(&registry, options);
  ASSERT_TRUE(server.ok());

  // A peer that connects and never sends a request parks the only
  // worker; the idle timeout must drop it so the queued client below
  // still gets served.
  auto stalled = ConnectUnix(path);
  ASSERT_TRUE(stalled.ok());

  auto client = PrivHPClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  (*server)->Stop();
  std::remove(path.c_str());
}

TEST(ServerIdleTimeoutTest, StalledIngestFreesTheWorker) {
  const std::string path = ::testing::TempDir() + "/srv_ingest_idle_" +
                           std::to_string(::getpid()) + ".sock";
  ArtifactRegistry registry;
  ServerOptions options;
  options.unix_path = path;
  options.num_workers = 1;
  options.idle_timeout_seconds = 1;
  auto server = PrivHPServer::Start(&registry, options);
  ASSERT_TRUE(server.ok());

  // Open an ingest session, receive the acknowledgment, then go silent:
  // the idle timeout must abandon the stream mid-ingest, not just
  // between requests.
  auto sock = ConnectUnix(path);
  ASSERT_TRUE(sock.ok());
  ServiceRequest spec;
  spec.op = ServiceOp::kIngest;
  spec.artifact = "stalled";
  spec.dim = 1;
  spec.n = 100;
  ASSERT_TRUE(SendFrame(*sock, EncodeIngestRequest(spec)).ok());
  std::string frame;
  WireReader payload;
  auto more = RecvFrame(*sock, &frame);
  ASSERT_TRUE(more.ok() && *more);
  ASSERT_TRUE(ParseResponse(frame, &payload).ok());

  auto client = PrivHPClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
  (*server)->Stop();
  std::remove(path.c_str());
}

TEST(ServerStartTest, RejectsBadConfigurations) {
  ArtifactRegistry registry;
  ServerOptions no_listener;
  EXPECT_TRUE(
      PrivHPServer::Start(&registry, no_listener).status().IsInvalidArgument());

  ServerOptions bad_workers;
  bad_workers.tcp_port = 0;
  bad_workers.num_workers = 0;
  EXPECT_TRUE(PrivHPServer::Start(&registry, bad_workers)
                  .status()
                  .IsInvalidArgument());

  ServerOptions null_registry;
  null_registry.tcp_port = 0;
  EXPECT_TRUE(PrivHPServer::Start(nullptr, null_registry)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace privhp
