// End-to-end STATS coverage: drive a scripted request sequence against
// a live server and assert that the per-endpoint counters, latency /
// byte histograms, server gauges, and registry/artifact inventory all
// advance the way the sequence dictates — both read through
// PrivHPServer::StatsSnapshot() and round-tripped over the wire via
// PrivHPClient::Stats().

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "domain/interval_domain.h"
#include "obs/metrics_registry.h"
#include "service/client.h"
#include "service/server.h"

namespace privhp {
namespace {

class StatsRequestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/stats_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    auto domain = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = kN;
    options.seed = 42;
    auto builder = PrivHPBuilder::Make(domain.get(), options);
    ASSERT_TRUE(builder.ok());
    RandomEngine rng(7);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(builder->Add({rng.UniformDouble()}).ok());
    }
    auto generator = std::move(*builder).Finish();
    ASSERT_TRUE(generator.ok());
    ASSERT_TRUE(registry_
                    .Publish("alpha", ServedArtifact::Make(
                                          std::move(domain),
                                          std::move(*generator), "test"))
                    .ok());

    ServerOptions server_options;
    server_options.unix_path = socket_path_;
    server_options.num_workers = 2;
    server_options.metrics = &metrics_;
    auto server = PrivHPServer::Start(&registry_, server_options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(socket_path_.c_str());
  }

  Result<PrivHPClient> Connect() {
    return PrivHPClient::ConnectUnix(socket_path_);
  }

  static constexpr size_t kN = 2000;
  std::string socket_path_;
  obs::MetricsRegistry metrics_;
  ArtifactRegistry registry_;
  std::unique_ptr<PrivHPServer> server_;
};

TEST_F(StatsRequestTest, ScriptedSequenceAdvancesCountersAndHistograms) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  // The script: 3 SAMPLEs, 2 RANGEs, 1 failing RANGE (bad artifact),
  // 1 failing SAMPLE (bad artifact).
  for (int i = 0; i < 3; ++i) {
    auto s = client->Sample("alpha", 100, /*seed=*/uint64_t(i + 1));
    ASSERT_TRUE(s.ok());
  }
  for (int i = 0; i < 2; ++i) {
    auto r = client->RangeMass("alpha", CellId{1, 0});
    ASSERT_TRUE(r.ok());
  }
  EXPECT_FALSE(client->RangeMass("ghost", CellId{1, 0}).ok());
  EXPECT_FALSE(client->Sample("ghost", 10, 1).ok());

  // The server records a request's histograms *after* sending its
  // response, so the newest request can race a snapshot. One trailing
  // request (not asserted on) serializes everything scripted above:
  // the worker records request N's metrics before reading frame N+1.
  ASSERT_TRUE(client->List().ok());

  const obs::MetricsSnapshot snap = server_->StatsSnapshot();

  EXPECT_EQ(snap.CounterOr("op.sample.requests"), 4u);
  EXPECT_EQ(snap.CounterOr("op.sample.errors"), 1u);
  EXPECT_EQ(snap.CounterOr("op.range.requests"), 3u);
  EXPECT_EQ(snap.CounterOr("op.range.errors"), 1u);
  EXPECT_EQ(snap.CounterOr("op.ping.requests"), 0u);
  EXPECT_EQ(snap.CounterOr("sample.points"), 300u);

  // Latency histograms: one entry per request, all nonzero durations.
  const obs::HistogramSnapshot* sample_lat =
      snap.FindHistogram("op.sample.latency_ns");
  ASSERT_NE(sample_lat, nullptr);
  EXPECT_EQ(sample_lat->Count(), 4u);
  EXPECT_GT(sample_lat->ValueAtQuantile(0.5), 0u);
  const obs::HistogramSnapshot* range_lat =
      snap.FindHistogram("op.range.latency_ns");
  ASSERT_NE(range_lat, nullptr);
  EXPECT_EQ(range_lat->Count(), 3u);

  // Byte accounting: every request recorded its wire sizes. A RANGE
  // request frame is opcode + name + level + index = 22 bytes.
  const obs::HistogramSnapshot* range_in =
      snap.FindHistogram("op.range.bytes_in");
  ASSERT_NE(range_in, nullptr);
  EXPECT_EQ(range_in->Count(), 3u);
  EXPECT_EQ(range_in->max, 22u);
  // A successful SAMPLE of 100 doubles streams > 800 payload bytes out.
  const obs::HistogramSnapshot* sample_out =
      snap.FindHistogram("op.sample.bytes_out");
  ASSERT_NE(sample_out, nullptr);
  EXPECT_EQ(sample_out->Count(), 4u);
  EXPECT_GT(sample_out->max, 800u);

  // Server-level instrumentation.
  EXPECT_EQ(snap.GaugeOr("server.workers_total"), 2);
  EXPECT_EQ(snap.GaugeOr("server.queue_depth"), 0);
  const obs::HistogramSnapshot* queue_wait =
      snap.FindHistogram("server.queue_wait_ns");
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_GE(queue_wait->Count(), 1u);  // our one connection was queued

  // Registry / artifact inventory, composed at snapshot time.
  EXPECT_EQ(snap.CounterOr("registry.publishes"), 1u);
  EXPECT_EQ(snap.GaugeOr("registry.artifacts"), 1);
  EXPECT_GT(snap.GaugeOr("registry.resident_bytes"), 0);
  EXPECT_GT(snap.GaugeOr("artifact.alpha.nodes"), 0);
  EXPECT_EQ(snap.GaugeOr("artifact.alpha.repr", -1), 0);  // heap

  // Legacy server totals ride along under "server.*".
  EXPECT_EQ(snap.CounterOr("server.errors"), 2u);
  EXPECT_EQ(snap.CounterOr("server.sampled_points"), 300u);
}

TEST_F(StatsRequestTest, WireRoundTripMatchesServerSnapshot) {
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  auto sampled = client->Sample("alpha", 50, 9);
  ASSERT_TRUE(sampled.ok());

  auto remote = client->Stats();
  ASSERT_TRUE(remote.ok());

  // The STATS request itself was counted before the snapshot encoded.
  EXPECT_EQ(remote->CounterOr("op.stats.requests"), 1u);
  EXPECT_EQ(remote->CounterOr("op.ping.requests"), 1u);
  EXPECT_EQ(remote->CounterOr("op.sample.requests"), 1u);
  EXPECT_EQ(remote->CounterOr("sample.points"), 50u);

  // Histograms survive the sparse-bucket encoding exactly: compare the
  // wire copy of a histogram against the server's own snapshot.
  const obs::MetricsSnapshot local = server_->StatsSnapshot();
  const obs::HistogramSnapshot* remote_lat =
      remote->FindHistogram("op.sample.latency_ns");
  const obs::HistogramSnapshot* local_lat =
      local.FindHistogram("op.sample.latency_ns");
  ASSERT_NE(remote_lat, nullptr);
  ASSERT_NE(local_lat, nullptr);
  EXPECT_EQ(remote_lat->buckets, local_lat->buckets);
  EXPECT_EQ(remote_lat->sum, local_lat->sum);
  EXPECT_EQ(remote_lat->max, local_lat->max);

  // Names arrive sorted (the snapshot invariant the CLI relies on).
  for (size_t i = 1; i < remote->counters.size(); ++i) {
    EXPECT_LT(remote->counters[i - 1].name, remote->counters[i].name);
  }
  for (size_t i = 1; i < remote->histograms.size(); ++i) {
    EXPECT_LT(remote->histograms[i - 1].name, remote->histograms[i].name);
  }
}

TEST_F(StatsRequestTest, SharedRegistryIsReadableOutsideTheServer) {
  // The test passed its own registry in ServerOptions, so the same
  // counters are visible without any wire call — the embedding pattern
  // (one process-wide registry shared by several subsystems).
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  const obs::MetricsSnapshot snap = metrics_.Snapshot();
  EXPECT_EQ(snap.CounterOr("op.ping.requests"), 1u);
  EXPECT_EQ(snap.GaugeOr("server.workers_total"), 2);
}

}  // namespace
}  // namespace privhp
