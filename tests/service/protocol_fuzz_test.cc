// Deterministic fuzz for the byte-level protocol surface: every decoder
// that accepts raw network bytes — ParseRequest (server side),
// ParseResponse (client side), and the three DecodePointBatch overloads
// (deque / vector / columnar PointBatch) — must turn ANY input into a
// clean Status, never a crash, hang, or unbounded allocation. Seeded
// RandomEngine draws keep every case reproducible (a failing seed is a
// regression test by itself), and the whole file runs under the ASan/
// UBSan and TSan CI legs, which is where parser bugs actually surface.
//
// Three layers:
//   1. random bytes at random lengths (pure noise),
//   2. structure-aware mutations of VALID frames (bit flips, truncation,
//      integer-field boundary overwrites, splices) — these reach deep
//      decoder states that noise almost never finds,
//   3. a fixed regression corpus: the huge-count / huge-dim batch
//      headers that once pointed reserve() at ~2^35 elements.

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common/random.h"
#include "domain/point_batch.h"
#include "io/socket_point_stream.h"
#include "io/wire_format.h"
#include "service/protocol.h"

namespace privhp {
namespace {

// Runs one payload through every byte-level decoder. The decoders must
// not crash; on success the three point-batch decoders must agree with
// each other exactly.
void DriveDecoders(const std::string& payload) {
  // Server request path.
  auto request = ParseRequest(payload);
  (void)request;  // any Status is fine, crashing is not

  // Client response path.
  WireReader reader(payload);
  const Status response = ParseResponse(payload, &reader);
  (void)response;

  // STATS snapshot path (client side of the kStats op). The decoder's
  // BoundedCount discipline must hold against arbitrary bytes.
  WireReader stats_reader(payload);
  auto stats = DecodeStatsSnapshot(&stats_reader);
  (void)stats;

  // Point-frame path, all three decode targets. expected_dim = 2 for
  // the protocol-checked flavor, 0 for the unchecked one.
  for (int expected_dim : {0, 2}) {
    std::deque<Point> dq;
    std::vector<Point> vec;
    PointBatch batch;
    const Status s_dq = DecodePointBatch(payload, expected_dim, &dq);
    const Status s_vec = DecodePointBatch(payload, expected_dim, &vec);
    const Status s_batch = DecodePointBatch(payload, expected_dim, &batch);
    ASSERT_EQ(s_dq.ok(), s_vec.ok()) << s_dq.ToString() << " vs "
                                     << s_vec.ToString();
    ASSERT_EQ(s_dq.ok(), s_batch.ok()) << s_dq.ToString() << " vs "
                                       << s_batch.ToString();
    if (s_dq.ok()) {
      ASSERT_EQ(dq.size(), vec.size());
      ASSERT_EQ(dq.size(), batch.size());
      // Compare bitwise, not with operator==: mutated frames can carry
      // NaN coordinates, where == is false even for identical bytes.
      for (size_t i = 0; i < vec.size(); ++i) {
        ASSERT_EQ(vec[i].size(), dq[i].size());
        ASSERT_EQ(std::memcmp(vec[i].data(), dq[i].data(),
                              vec[i].size() * sizeof(double)),
                  0);
        ASSERT_EQ(std::memcmp(batch.row(i), vec[i].data(),
                              vec[i].size() * sizeof(double)),
                  0);
      }
    }
  }
}

class RandomBytesFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBytesFuzzTest, NoiseNeverCrashesAnyDecoder) {
  RandomEngine rng(42000 + GetParam());
  for (int round = 0; round < 64; ++round) {
    const size_t len = rng.UniformInt(300);
    std::string payload(len, '\0');
    for (char& b : payload) {
      b = static_cast<char>(rng.UniformInt(256));
    }
    // Bias half the rounds toward plausible first bytes so decoding gets
    // past the opcode/tag check and into the field parsers.
    if (round % 2 == 0 && !payload.empty()) {
      static const uint8_t kTags[] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                      0x07, 0x09, 0x10, 0x20, 0x21, 0x00};
      payload[0] = static_cast<char>(
          kTags[rng.UniformInt(sizeof(kTags))]);
    }
    DriveDecoders(payload);
    if (HasFatalFailure()) {
      FAIL() << "seed " << GetParam() << ", round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzzTest, ::testing::Range(0, 8));

// Valid frames of every kind: the mutation corpus.
std::vector<std::string> ValidCorpus() {
  std::vector<std::string> corpus;
  corpus.push_back(EncodePingRequest());
  corpus.push_back(EncodeListRequest());
  corpus.push_back(EncodeSampleRequest("demo", 1000, 7));
  corpus.push_back(EncodeRangeRequest("demo", 3, 5));
  corpus.push_back(EncodeQuantileRequest("demo", {0.1, 0.5, 0.9}));
  corpus.push_back(EncodeHeavyRequest("demo", 0.01));
  corpus.push_back(EncodeExportRequest("demo"));
  corpus.push_back(EncodeStatsRequest());
  corpus.push_back(EncodeAuthRequest("fuzz-token"));
  {
    // A populated stats snapshot, so mutations explore the sparse-bucket
    // decode states (version, counts, names, index/count pairs).
    obs::MetricsRegistry registry;
    registry.GetCounter("op.range.requests")->Add(3);
    registry.GetGauge("server.queue_depth")->Set(1);
    registry.GetHistogram("op.range.latency_ns")->Record(1500);
    registry.GetHistogram("op.range.latency_ns")->Record(90000);
    WireWriter stats;
    EncodeStatsSnapshot(registry.Snapshot(), &stats);
    corpus.push_back(stats.Take());
  }
  ServiceRequest ingest;
  ingest.op = ServiceOp::kIngest;
  ingest.artifact = "demo";
  ingest.dim = 2;
  ingest.epsilon = 0.5;
  ingest.k = 16;
  ingest.n = 4096;
  ingest.threads = 2;
  corpus.push_back(EncodeIngestRequest(ingest));
  corpus.push_back(EncodePointBatch({{0.25, 0.75}, {0.5, 0.5}}, 0, 2));
  corpus.push_back(EncodePointStreamEnd(2));
  corpus.push_back(BeginOkResponse().Take());
  corpus.push_back(
      EncodeErrorResponse(Status::InvalidArgument("fuzz probe")));
  return corpus;
}

class MutationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzzTest, MutatedValidFramesNeverCrashAnyDecoder) {
  RandomEngine rng(73000 + GetParam());
  const std::vector<std::string> corpus = ValidCorpus();
  for (int round = 0; round < 96; ++round) {
    std::string payload = corpus[rng.UniformInt(corpus.size())];
    switch (rng.UniformInt(6)) {
      case 0:  // single bit flip
        if (!payload.empty()) {
          const size_t pos = rng.UniformInt(payload.size());
          payload[pos] = static_cast<char>(
              payload[pos] ^ (1 << rng.UniformInt(8)));
        }
        break;
      case 1:  // truncate
        payload.resize(rng.UniformInt(payload.size() + 1));
        break;
      case 2:  // extend with noise
        for (size_t i = rng.UniformInt(16) + 1; i > 0; --i) {
          payload.push_back(static_cast<char>(rng.UniformInt(256)));
        }
        break;
      case 3: {  // overwrite an aligned u32 with a boundary value
        if (payload.size() >= 4) {
          static const uint32_t kBoundary[] = {0u, 1u, 0x7FFFFFFFu,
                                               0xFFFFFFFFu, 0x80000000u};
          const uint32_t v = kBoundary[rng.UniformInt(5)];
          const size_t pos = rng.UniformInt(payload.size() - 3);
          std::memcpy(&payload[pos], &v, sizeof(v));
        }
        break;
      }
      case 4: {  // splice two corpus entries
        const std::string& other = corpus[rng.UniformInt(corpus.size())];
        const size_t keep = rng.UniformInt(payload.size() + 1);
        payload.resize(keep);
        const size_t from = rng.UniformInt(other.size() + 1);
        payload.append(other, from, std::string::npos);
        break;
      }
      default:  // double mutation: flip then truncate
        if (!payload.empty()) {
          payload[rng.UniformInt(payload.size())] =
              static_cast<char>(rng.UniformInt(256));
          payload.resize(rng.UniformInt(payload.size() + 1));
        }
        break;
    }
    DriveDecoders(payload);
    if (HasFatalFailure()) {
      FAIL() << "seed " << GetParam() << ", round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest, ::testing::Range(0, 8));

// Unmutated valid frames must still decode cleanly after a trip through
// the fuzz driver (guards against a driver that "passes" only because
// everything errors out).
TEST(ProtocolFuzzCorpusTest, ValidFramesStillParse) {
  for (const std::string& payload : ValidCorpus()) {
    DriveDecoders(payload);
  }
  auto ping = ParseRequest(EncodePingRequest());
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, ServiceOp::kPing);
  auto stats_req = ParseRequest(EncodeStatsRequest());
  ASSERT_TRUE(stats_req.ok());
  EXPECT_EQ(stats_req->op, ServiceOp::kStats);
  auto sample = ParseRequest(EncodeSampleRequest("demo", 1000, 7));
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->artifact, "demo");
  EXPECT_EQ(sample->m, 1000u);
  EXPECT_EQ(sample->seed, 7u);
  auto auth = ParseRequest(EncodeAuthRequest("fuzz-token"));
  ASSERT_TRUE(auth.ok());
  EXPECT_EQ(auth->op, ServiceOp::kAuth);
  EXPECT_EQ(auth->token, "fuzz-token");
}

// The PR-3 regression corpus: batch headers whose declared count or dim
// outruns the payload must be rejected BEFORE any allocation sized from
// the header — by every decode target, including the columnar arena.
TEST(ProtocolFuzzCorpusTest, HugeHeaderFramesRejectedByAllDecoders) {
  WireWriter huge_count;
  huge_count.PutU8(kPointBatchTag);
  huge_count.PutU32(0xFFFFFFFFu);  // count
  huge_count.PutU32(1);            // dim
  huge_count.PutDouble(0.5);

  WireWriter huge_dim;
  huge_dim.PutU8(kPointBatchTag);
  huge_dim.PutU32(1);              // count
  huge_dim.PutU32(0xFFFFFFFFu);    // dim
  huge_dim.PutDouble(0.5);

  // count*dim overflows 32 bits; the guard must do the math in 64.
  WireWriter overflow;
  overflow.PutU8(kPointBatchTag);
  overflow.PutU32(0x10000u);       // count
  overflow.PutU32(0x10000u);       // dim
  overflow.PutDouble(0.5);

  for (const std::string& payload :
       {huge_count.Take(), huge_dim.Take(), overflow.Take()}) {
    std::deque<Point> dq;
    std::vector<Point> vec;
    PointBatch batch;
    EXPECT_TRUE(DecodePointBatch(payload, 0, &dq).IsIOError());
    EXPECT_TRUE(DecodePointBatch(payload, 0, &vec).IsIOError());
    EXPECT_TRUE(DecodePointBatch(payload, 0, &batch).IsIOError());
    EXPECT_TRUE(dq.empty());
    EXPECT_TRUE(vec.empty());
    EXPECT_TRUE(batch.empty());
  }
}

// STATS frames whose declared counts outrun the payload must be
// rejected by the BoundedCount guards before any reserve(), and bucket
// indexes past the fixed array must never be used to index it.
TEST(ProtocolFuzzCorpusTest, HugeStatsFramesRejectedBeforeAllocation) {
  WireWriter huge_counters;
  huge_counters.PutU32(kStatsSnapshotVersion);
  huge_counters.PutU32(0xFFFFFFFFu);  // counter count, nothing behind it

  WireWriter huge_buckets;
  huge_buckets.PutU32(kStatsSnapshotVersion);
  huge_buckets.PutU32(0);  // counters
  huge_buckets.PutU32(0);  // gauges
  huge_buckets.PutU32(1);  // one histogram
  huge_buckets.PutString("h");
  huge_buckets.PutU64(0);              // sum
  huge_buckets.PutU64(0);              // max
  huge_buckets.PutU32(0xFFFFFFFFu);    // bucket count, nothing behind it

  WireWriter bad_index;
  bad_index.PutU32(kStatsSnapshotVersion);
  bad_index.PutU32(0);  // counters
  bad_index.PutU32(0);  // gauges
  bad_index.PutU32(1);  // one histogram
  bad_index.PutString("h");
  bad_index.PutU64(10);
  bad_index.PutU64(10);
  bad_index.PutU32(1);                     // one bucket entry
  bad_index.PutU32(obs::kHistogramBuckets);  // first out-of-range index
  bad_index.PutU64(1);

  WireWriter bad_version;
  bad_version.PutU32(kStatsSnapshotVersion + 1);

  for (const std::string& payload :
       {huge_counters.Take(), huge_buckets.Take(), bad_index.Take(),
        bad_version.Take()}) {
    WireReader r(payload);
    auto decoded = DecodeStatsSnapshot(&r);
    EXPECT_FALSE(decoded.ok());
  }
}

}  // namespace
}  // namespace privhp
