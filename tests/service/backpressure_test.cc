// Slow-reader backpressure coverage for the event-loop server.
//
// A peer that requests a large SAMPLE and never reads must not grow an
// unbounded response queue: the producer parks at max_output_queue_bytes
// and the write-stall deadline eventually drops the connection, counted
// under server.connections_dropped.backpressure. Other clients on the
// same server keep being served throughout. All assertions go through
// the STATS op, so this also exercises the metrics path end to end.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/builder.h"
#include "domain/interval_domain.h"
#include "io/frame_socket.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace privhp {
namespace {

void PublishArtifact(ArtifactRegistry* registry, const std::string& name) {
  RandomEngine rng(7);
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = 4000;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  ASSERT_TRUE(builder.ok());
  for (size_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        builder->Add({rng.UniformDouble() * rng.UniformDouble()}).ok());
  }
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
  ASSERT_TRUE(registry
                  ->Publish(name, ServedArtifact::Make(std::move(domain),
                                                       std::move(*generator),
                                                       "test"))
                  .ok());
}

// Polls \p pred every 50 ms until it holds or \p timeout_ms elapses.
bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return pred();
}

TEST(BackpressureTest, SlowReaderStaysBoundedAndIsEventuallyDropped) {
  constexpr size_t kQueueCap = 64 * 1024;
  const std::string path = ::testing::TempDir() + "/bp_slow_" +
                           std::to_string(::getpid()) + ".sock";
  ArtifactRegistry registry;
  PublishArtifact(&registry, "beta");

  ServerOptions options;
  options.unix_path = path;
  options.num_workers = 2;
  options.max_output_queue_bytes = kQueueCap;
  options.send_timeout_seconds = 1;
  auto server = PrivHPServer::Start(&registry, options);
  ASSERT_TRUE(server.ok());

  // The slow reader: ask for ~8 MB of sample points, then never read.
  // The kernel socket buffer fills, the writer parks, and the SAMPLE
  // producer stalls at the queue cap.
  auto staller = ConnectUnix(path);
  ASSERT_TRUE(staller.ok());
  ASSERT_TRUE(
      SendFrame(*staller, EncodeSampleRequest("beta", 1u << 20, 1)).ok());

  auto client = PrivHPClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok());

  // The stalled connection's queue never exceeds the cap by more than
  // one frame, no matter how large the requested sample is. The gauge
  // covers all peers, so observing it anywhere near 8 MB would mean the
  // bound failed; if the deadline sweep already dropped the staller the
  // gauge has snapped back to zero, which the drop counter confirms.
  bool saw_parked_bytes = false;
  ASSERT_TRUE(WaitFor(
      [&] {
        auto stats = client->Stats();
        if (!stats.ok()) return false;
        const int64_t queued = stats->GaugeOr("server.output_queue_bytes");
        EXPECT_LE(queued, int64_t(2 * kQueueCap));
        if (queued > 0) saw_parked_bytes = true;
        return saw_parked_bytes ||
               stats->CounterOr(
                   "server.connections_dropped.backpressure") > 0;
      },
      5000));

  // Other clients are unaffected while the staller clogs its queue.
  EXPECT_TRUE(client->Ping().ok());
  auto names = client->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"beta"});

  // The write-stall deadline (1 s, swept at reactor-tick granularity)
  // drops the staller and counts it as a backpressure casualty.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto stats = client->Stats();
        return stats.ok() &&
               stats->CounterOr(
                   "server.connections_dropped.backpressure") > 0;
      },
      10000));

  // Once dropped, the queue gauge drains back to zero and the healthy
  // client is the only remaining peer.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto stats = client->Stats();
        return stats.ok() &&
               stats->GaugeOr("server.output_queue_bytes") == 0 &&
               stats->GaugeOr("server.connections_open") == 1;
      },
      5000));
  EXPECT_TRUE(client->Ping().ok());

  (*server)->Stop();
  std::remove(path.c_str());
}

TEST(BackpressureTest, ConnectionsOpenGaugeTracksAcceptAndDrop) {
  const std::string path = ::testing::TempDir() + "/bp_gauge_" +
                           std::to_string(::getpid()) + ".sock";
  ArtifactRegistry registry;
  ServerOptions options;
  options.unix_path = path;
  options.num_workers = 2;
  auto server = PrivHPServer::Start(&registry, options);
  ASSERT_TRUE(server.ok());

  auto client = PrivHPClient::ConnectUnix(path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(WaitFor(
      [&] {
        auto stats = client->Stats();
        return stats.ok() && stats->GaugeOr("server.connections_open") == 1;
      },
      3000));

  // Two more raw peers: the gauge counts them as soon as the reactor
  // accepts (no request needed).
  {
    auto a = ConnectUnix(path);
    auto b = ConnectUnix(path);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(WaitFor(
        [&] {
          auto stats = client->Stats();
          return stats.ok() &&
                 stats->GaugeOr("server.connections_open") == 3;
        },
        3000));
  }  // both close here

  // Peer-closed connections decrement the gauge once the reactor sees
  // the EOF.
  ASSERT_TRUE(WaitFor(
      [&] {
        auto stats = client->Stats();
        return stats.ok() && stats->GaugeOr("server.connections_open") == 1;
      },
      3000));

  (*server)->Stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privhp
