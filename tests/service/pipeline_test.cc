// Pipelined-mode and AUTH-handshake coverage for the event-loop server.
//
// The contract under test: responses come back strictly in request
// order regardless of how SAMPLE / RANGE / QUANTILE / PING interleave,
// a seeded SAMPLE is byte-identical whether pipelined or issued
// one-at-a-time, and the preshared-token handshake gates TCP while
// leaving Unix-domain connections exempt (though a wrong token is
// rejected on any transport).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/queries.h"
#include "domain/interval_domain.h"
#include "io/point_sink.h"
#include "service/client.h"
#include "service/server.h"

namespace privhp {
namespace {

std::vector<Point> MakeData(size_t n, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<Point> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    data.push_back({rng.UniformDouble() * rng.UniformDouble()});
  }
  return data;
}

void PublishArtifact(ArtifactRegistry* registry, const std::string& name) {
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = 4000;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  ASSERT_TRUE(builder.ok());
  for (const Point& p : MakeData(4000, 7)) {
    ASSERT_TRUE(builder->Add(p).ok());
  }
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
  ASSERT_TRUE(registry
                  ->Publish(name, ServedArtifact::Make(std::move(domain),
                                                       std::move(*generator),
                                                       "test"))
                  .ok());
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/pipe_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    PublishArtifact(&registry_, "beta");
    ServerOptions options;
    options.unix_path = socket_path_;
    options.num_workers = 4;
    auto server = PrivHPServer::Start(&registry_, options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(socket_path_.c_str());
  }

  Result<PrivHPClient> Connect() {
    return PrivHPClient::ConnectUnix(socket_path_);
  }

  std::string socket_path_;
  ArtifactRegistry registry_;
  std::unique_ptr<PrivHPServer> server_;
};

// Many rounds of SAMPLE / RANGE / QUANTILE / PING are in flight at
// once; every response must land in request order. Exact (not
// approximate) equality against a one-at-a-time client pins both the
// ordering and the payload bytes — a response delivered out of order
// would pair with the wrong collect and mismatch.
TEST_F(PipelineTest, InterleavedResponsesArriveInRequestOrder) {
  constexpr int kRounds = 24;
  constexpr size_t kM = 64;
  const std::vector<double> kQs = {0.1, 0.5, 0.9};

  // One-at-a-time ground truth (seeded SAMPLE makes it deterministic).
  auto reference = Connect();
  ASSERT_TRUE(reference.ok());
  std::vector<double> expected_mass(16);
  for (int c = 0; c < 16; ++c) {
    auto mass = reference->RangeMass("beta", CellId{4, uint64_t(c)});
    ASSERT_TRUE(mass.ok());
    expected_mass[c] = *mass;
  }
  auto expected_qs = reference->Quantiles("beta", kQs);
  ASSERT_TRUE(expected_qs.ok());

  auto client = Connect();
  ASSERT_TRUE(client.ok());
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(client->SendRangeMass("beta", CellId{4, uint64_t(r % 16)})
                    .ok());
    ASSERT_TRUE(client->SendSample("beta", kM, /*seed=*/1000 + r).ok());
    ASSERT_TRUE(client->SendQuantiles("beta", kQs).ok());
    ASSERT_TRUE(client->SendPing().ok());
  }
  for (int r = 0; r < kRounds; ++r) {
    auto mass = client->CollectRangeMass();
    ASSERT_TRUE(mass.ok());
    EXPECT_EQ(*mass, expected_mass[r % 16]) << "round " << r;

    CollectingSink sink;
    ASSERT_TRUE(client->CollectSample(kM, &sink).ok());
    auto expected_points = reference->Sample("beta", kM, 1000 + r);
    ASSERT_TRUE(expected_points.ok());
    EXPECT_EQ(sink.points(), *expected_points) << "round " << r;

    auto qs = client->CollectQuantiles(kQs.size());
    ASSERT_TRUE(qs.ok());
    EXPECT_EQ(*qs, *expected_qs) << "round " << r;

    ASSERT_TRUE(client->CollectPing().ok());
  }
  // The connection is healthy after the burst.
  EXPECT_TRUE(client->Ping().ok());
}

// A seeded SAMPLE streamed through the pipelined path is byte-identical
// to the same request issued synchronously: pipelining changes
// scheduling, never payloads.
TEST_F(PipelineTest, PipelinedSeededSampleMatchesOneAtATime) {
  constexpr size_t kM = 500;
  constexpr uint64_t kSeed = 123;

  auto sync_client = Connect();
  ASSERT_TRUE(sync_client.ok());
  auto sync_points = sync_client->Sample("beta", kM, kSeed);
  ASSERT_TRUE(sync_points.ok());

  auto pipelined = Connect();
  ASSERT_TRUE(pipelined.ok());
  // Surround the sample with other in-flight requests so its frames
  // really do interleave with other responses on the server side.
  ASSERT_TRUE(pipelined->SendPing().ok());
  ASSERT_TRUE(pipelined->SendSample("beta", kM, kSeed).ok());
  ASSERT_TRUE(pipelined->SendRangeMass("beta", CellId{1, 0}).ok());
  ASSERT_TRUE(pipelined->CollectPing().ok());
  CollectingSink sink;
  ASSERT_TRUE(pipelined->CollectSample(kM, &sink).ok());
  ASSERT_TRUE(pipelined->CollectRangeMass().ok());

  EXPECT_EQ(sink.points(), *sync_points);
}

// AUTH handshake over TCP with a configured token: right token in,
// wrong token out, missing token out.
class AuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/auth_" +
                   std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".sock";
    PublishArtifact(&registry_, "beta");
    ServerOptions options;
    options.unix_path = socket_path_;
    options.tcp_port = 0;  // ephemeral
    options.num_workers = 2;
    options.auth_token = "sesame";
    auto server = PrivHPServer::Start(&registry_, options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(*server);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_;
  ArtifactRegistry registry_;
  std::unique_ptr<PrivHPServer> server_;
};

TEST_F(AuthTest, CorrectTokenIsAccepted) {
  auto client =
      PrivHPClient::ConnectTcp("127.0.0.1", server_->tcp_port(), "sesame");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());
  auto names = client->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"beta"});
}

TEST_F(AuthTest, WrongTokenIsRejected) {
  auto client =
      PrivHPClient::ConnectTcp("127.0.0.1", server_->tcp_port(), "swordfish");
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsFailedPrecondition());
}

TEST_F(AuthTest, MissingTokenFirstFrameIsRejected) {
  // Connect without running the handshake; the first non-AUTH frame
  // must be answered with an error and the connection closed.
  auto client = PrivHPClient::ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_TRUE(client.ok());
  Status ping = client->Ping();
  ASSERT_FALSE(ping.ok());
  EXPECT_TRUE(ping.IsFailedPrecondition());
  // The server dropped the connection after the rejection.
  EXPECT_FALSE(client->Ping().ok());
}

TEST_F(AuthTest, UnixConnectionsAreExempt) {
  auto client = PrivHPClient::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(AuthTest, WrongTokenIsRejectedOnUnixToo) {
  // Unix peers skip the mandatory handshake, but a token they do
  // present is still checked.
  auto client = PrivHPClient::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  Status auth = client->Auth("swordfish");
  ASSERT_FALSE(auth.ok());
  EXPECT_TRUE(auth.IsFailedPrecondition());

  auto good = PrivHPClient::ConnectUnix(socket_path_);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->Auth("sesame").ok());
  EXPECT_TRUE(good->Ping().ok());
}

}  // namespace
}  // namespace privhp
