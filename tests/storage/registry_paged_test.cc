// Registry-level behaviour of paged artifacts: format sniffing in
// FromFile / LoadFile, the memory budget picking buffer-pool mode, and
// query identity across the heap / mmap / pooled representations behind
// the ServedArtifact surface.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/builder.h"
#include "core/generator.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"
#include "service/artifact_registry.h"
#include "storage/artifact_packer.h"
#include "storage/file_io.h"

namespace privhp {
namespace {

// ctest runs each test of this binary as its own process, often in
// parallel, so scratch names must be per-process.
std::string TestPath(const std::string& leaf) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         leaf;
}

class RegistryPagedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    domain_ = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = kN;
    options.seed = 42;
    auto builder = PrivHPBuilder::Make(domain_.get(), options);
    ASSERT_TRUE(builder.ok());
    RandomEngine rng(7);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(
          builder->Add({rng.UniformDouble() * rng.UniformDouble()}).ok());
    }
    auto generator = std::move(*builder).Finish();
    ASSERT_TRUE(generator.ok());
    generator_ =
        std::make_unique<PrivHPGenerator>(std::move(*generator));

    tree_path_ = TestPath("registry.tree");
    packed_path_ = TestPath("registry.phx");
    ASSERT_TRUE(SaveTreeToFile(generator_->tree(), tree_path_).ok());
    storage::PackOptions pack;
    pack.page_size = 4096;
    ASSERT_TRUE(
        storage::PackArtifact(generator_->tree(), packed_path_, pack).ok());
  }

  void TearDown() override {
    std::remove(tree_path_.c_str());
    std::remove(packed_path_.c_str());
  }

  static constexpr size_t kN = 3000;
  std::unique_ptr<IntervalDomain> domain_;
  std::unique_ptr<PrivHPGenerator> generator_;
  std::string tree_path_;
  std::string packed_path_;
};

TEST_F(RegistryPagedTest, FromFileSniffsTheFormat) {
  auto paged = ServedArtifact::FromFile(packed_path_);
  ASSERT_TRUE(paged.ok()) << paged.status().message();
  EXPECT_TRUE((*paged)->is_paged());
  EXPECT_EQ((*paged)->source(), "paged-mmap:" + packed_path_);

  auto heap = ServedArtifact::FromFile(tree_path_);
  ASSERT_TRUE(heap.ok()) << heap.status().message();
  EXPECT_FALSE((*heap)->is_paged());
}

TEST_F(RegistryPagedTest, NoBudgetLoadsPagedFilesMmapped) {
  ArtifactRegistry registry;  // memory_budget_bytes = 0: unlimited
  ASSERT_TRUE(registry.LoadFile("alpha", packed_path_).ok());
  auto artifact = registry.Get("alpha");
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE((*artifact)->is_paged());
  EXPECT_FALSE((*artifact)->paged()->pooled());
}

TEST_F(RegistryPagedTest, TightBudgetForcesBufferPool) {
  auto file_size = storage::FileSize(packed_path_);
  ASSERT_TRUE(file_size.ok());

  RegistryOptions options;
  options.memory_budget_bytes = static_cast<size_t>(*file_size / 2);
  options.pool_bytes_per_artifact = 32u << 10;
  ArtifactRegistry registry(options);
  ASSERT_TRUE(registry.LoadFile("alpha", packed_path_).ok());

  auto artifact = registry.Get("alpha");
  ASSERT_TRUE(artifact.ok());
  ASSERT_TRUE((*artifact)->is_paged());
  EXPECT_TRUE((*artifact)->paged()->pooled());
  EXPECT_EQ((*artifact)->source(), "paged-pool:" + packed_path_);
  // Resident memory reflects the pool, not the file.
  EXPECT_LT(registry.resident_bytes(), static_cast<size_t>(*file_size));
}

TEST_F(RegistryPagedTest, GenerousBudgetStillMmaps) {
  auto file_size = storage::FileSize(packed_path_);
  ASSERT_TRUE(file_size.ok());
  RegistryOptions options;
  options.memory_budget_bytes = static_cast<size_t>(*file_size) * 10;
  ArtifactRegistry registry(options);
  ASSERT_TRUE(registry.LoadFile("alpha", packed_path_).ok());
  auto artifact = registry.Get("alpha");
  ASSERT_TRUE(artifact.ok());
  EXPECT_FALSE((*artifact)->paged()->pooled());
}

TEST_F(RegistryPagedTest, AllRepresentationsAnswerIdentically) {
  // heap (from the v2 file), mmap, pooled — one query surface.
  auto heap = ServedArtifact::FromFile(tree_path_);
  ASSERT_TRUE(heap.ok());
  auto mmapped = ServedArtifact::FromFile(packed_path_);
  ASSERT_TRUE(mmapped.ok());
  storage::PagedReadOptions pooled_options;
  pooled_options.use_buffer_pool = true;
  pooled_options.pool_bytes = 32u << 10;
  auto pooled = ServedArtifact::FromPagedFile(packed_path_, pooled_options);
  ASSERT_TRUE(pooled.ok());

  const std::vector<std::shared_ptr<const ServedArtifact>> reps = {
      *heap, *mmapped, *pooled};

  auto blob0 = reps[0]->ExportBlob();
  ASSERT_TRUE(blob0.ok());
  auto q0 = reps[0]->Quantiles({0.1, 0.5, 0.9});
  ASSERT_TRUE(q0.ok());
  auto h0 = reps[0]->Heavy(0.05);
  ASSERT_TRUE(h0.ok());
  auto r0 = reps[0]->RangeMass({3, 2});
  ASSERT_TRUE(r0.ok());
  RandomEngine rng0(99);
  CollectingSink sink0;
  ASSERT_TRUE(reps[0]->GenerateTo(500, &rng0, &sink0).ok());
  const std::vector<Point> points0 = sink0.TakePoints();

  for (size_t i = 1; i < reps.size(); ++i) {
    EXPECT_EQ(reps[i]->num_nodes(), reps[0]->num_nodes());
    EXPECT_EQ(reps[i]->TotalMass(), reps[0]->TotalMass());
    auto blob = reps[i]->ExportBlob();
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(*blob, *blob0) << "rep " << i;
    auto q = reps[i]->Quantiles({0.1, 0.5, 0.9});
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(*q, *q0) << "rep " << i;
    auto h = reps[i]->Heavy(0.05);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(h->size(), h0->size()) << "rep " << i;
    for (size_t j = 0; j < h->size(); ++j) {
      EXPECT_EQ((*h)[j].cell, (*h0)[j].cell);
      EXPECT_EQ((*h)[j].fraction, (*h0)[j].fraction);
    }
    auto r = reps[i]->RangeMass({3, 2});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, *r0) << "rep " << i;
    RandomEngine rng(99);
    CollectingSink sink;
    ASSERT_TRUE(reps[i]->GenerateTo(500, &rng, &sink).ok());
    EXPECT_EQ(sink.points(), points0) << "rep " << i;
  }
}

TEST_F(RegistryPagedTest, HotSwapAcrossRepresentations) {
  ArtifactRegistry registry;
  ASSERT_TRUE(registry.LoadFile("alpha", tree_path_).ok());
  auto before = registry.Get("alpha");
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE((*before)->is_paged());

  // Swap the heap artifact for the packed one; the old reference stays
  // serviceable.
  ASSERT_TRUE(registry.LoadFile("alpha", packed_path_).ok());
  auto after = registry.Get("alpha");
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE((*after)->is_paged());
  EXPECT_EQ(registry.size(), 1u);

  auto old_blob = (*before)->ExportBlob();
  auto new_blob = (*after)->ExportBlob();
  ASSERT_TRUE(old_blob.ok());
  ASSERT_TRUE(new_blob.ok());
  EXPECT_EQ(*old_blob, *new_blob);
}

TEST_F(RegistryPagedTest, GeneratorAccessorIsHeapOnly) {
  auto heap = ServedArtifact::FromFile(tree_path_);
  ASSERT_TRUE(heap.ok());
  // Heap artifacts still expose the generator (the ingest tests rely on
  // it); paged artifacts answer only through the query surface.
  EXPECT_GT((*heap)->generator().TotalMass(), 0.0);
  EXPECT_GT((*heap)->ResidentBytes(), 0u);
}

}  // namespace
}  // namespace privhp
