#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "common/status.h"

namespace privhp {
namespace storage {
namespace {

constexpr size_t kPage = 4096;

// Loader that fills the page with a byte pattern derived from page_no.
PageLoader PatternLoader(uint64_t page_no) {
  return [page_no](uint8_t* dst) {
    std::memset(dst, static_cast<int>(page_no & 0xff), kPage);
    return Status::OK();
  };
}

bool PageMatches(const uint8_t* data, uint64_t page_no) {
  for (size_t i = 0; i < kPage; ++i) {
    if (data[i] != static_cast<uint8_t>(page_no & 0xff)) return false;
  }
  return true;
}

TEST(BufferPoolTest, HitMissAndStats) {
  BufferPool pool(kPage, 4);
  EXPECT_EQ(pool.num_frames(), 4u);
  {
    auto ref = pool.Fetch(7, PatternLoader(7));
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(PageMatches(ref->data(), 7));
  }
  {
    auto ref = pool.Fetch(7, PatternLoader(7));
    ASSERT_TRUE(ref.ok());
  }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsedUnpinnedFrame) {
  BufferPool pool(kPage, 2);
  { auto r = pool.Fetch(1, PatternLoader(1)); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2, PatternLoader(2)); ASSERT_TRUE(r.ok()); }
  // Touch page 2 so page 1 is the LRU victim.
  { auto r = pool.Fetch(2, PatternLoader(2)); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(3, PatternLoader(3)); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.stats().evictions, 1u);
  // Page 2 must still be resident; page 1 must have been evicted.
  { auto r = pool.Fetch(2, PatternLoader(2)); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.stats().hits, 2u);
  { auto r = pool.Fetch(1, PatternLoader(1)); ASSERT_TRUE(r.ok()); }
  EXPECT_EQ(pool.stats().misses, 4u);
}

TEST(BufferPoolTest, PinnedFrameSurvivesPressure) {
  BufferPool pool(kPage, 2);
  auto pinned = pool.Fetch(42, PatternLoader(42));
  ASSERT_TRUE(pinned.ok());
  // Churn the other frame hard; the pinned page must never be evicted.
  for (uint64_t p = 100; p < 110; ++p) {
    auto r = pool.Fetch(p, PatternLoader(p));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(PageMatches(r->data(), p));
  }
  EXPECT_TRUE(PageMatches(pinned->data(), 42));
  const uint64_t misses_before = pool.stats().misses;
  auto again = pool.Fetch(42, PatternLoader(42));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.stats().misses, misses_before);  // hit, not reload
}

TEST(BufferPoolTest, AllFramesPinnedFailsCleanly) {
  BufferPool pool(kPage, 1);
  auto pinned = pool.Fetch(1, PatternLoader(1));
  ASSERT_TRUE(pinned.ok());
  auto blocked = pool.Fetch(2, PatternLoader(2));
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsFailedPrecondition());
  // Dropping the pin frees the frame for the next fetch.
  *pinned = PageRef();
  auto retried = pool.Fetch(2, PatternLoader(2));
  ASSERT_TRUE(retried.ok());
  EXPECT_TRUE(PageMatches(retried->data(), 2));
}

TEST(BufferPoolTest, LoaderFailureLeavesFrameReusable) {
  BufferPool pool(kPage, 1);
  auto failed = pool.Fetch(5, [](uint8_t*) {
    return Status::IOError("disk exploded");
  });
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError());
  // The frame must not be leaked or left claiming page 5.
  auto ok = pool.Fetch(5, PatternLoader(5));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(PageMatches(ok->data(), 5));
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, ChecksumVerifiesCountedFromLoaders) {
  BufferPool pool(kPage, 2);
  // A loader that verifies (as the paged-artifact loader does) reports
  // each verification through the pool's lock-free side channel — from
  // *inside* the loader, which runs under the pool mutex.
  auto verifying_loader = [&pool](uint64_t page_no) {
    return [&pool, page_no](uint8_t* dst) {
      std::memset(dst, static_cast<int>(page_no & 0xff), kPage);
      pool.NoteChecksumVerify();
      return Status::OK();
    };
  };
  { auto r = pool.Fetch(1, verifying_loader(1)); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(2, verifying_loader(2)); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Fetch(1, verifying_loader(1)); ASSERT_TRUE(r.ok()); }
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  // Every miss re-read and verified; the hit did not.
  EXPECT_EQ(stats.checksum_verifies, 2u);
}

TEST(BufferPoolTest, MovedFromRefIsInvalid) {
  BufferPool pool(kPage, 2);
  auto ref = pool.Fetch(9, PatternLoader(9));
  ASSERT_TRUE(ref.ok());
  PageRef moved = std::move(*ref);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(ref->valid());
  EXPECT_TRUE(PageMatches(moved.data(), 9));
}

TEST(BufferPoolTest, ZeroFramesClampsToOne) {
  BufferPool pool(kPage, 0);
  EXPECT_EQ(pool.num_frames(), 1u);
  auto ref = pool.Fetch(3, PatternLoader(3));
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(PageMatches(ref->data(), 3));
}

TEST(BufferPoolTest, ConcurrentFetchesSeeConsistentPages) {
  BufferPool pool(kPage, 4);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &corrupt, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t page = static_cast<uint64_t>((t * 31 + i) % 16);
        auto ref = pool.Fetch(page, PatternLoader(page));
        if (!ref.ok() || !PageMatches(ref->data(), page)) {
          corrupt.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace storage
}  // namespace privhp
