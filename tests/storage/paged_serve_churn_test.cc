// End-to-end serving churn: a packed artifact served through a
// deliberately tiny buffer pool, hammered by concurrent SAMPLE / RANGE
// clients. Gates (a) bit-identity with heap serving under concurrency,
// (b) bounded resident memory while the pool evicts, (c) TSan
// cleanliness of the pool's locking (this suite is in the CI TSan
// filter).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/builder.h"
#include "core/generator.h"
#include "core/queries.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"
#include "service/artifact_registry.h"
#include "service/client.h"
#include "service/server.h"
#include "storage/artifact_packer.h"
#include "storage/file_io.h"

namespace privhp {
namespace {

constexpr size_t kN = 3000;

class PagedServeChurnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = ::testing::TempDir() + "/churn_" +
                   std::to_string(::getpid()) + ".sock";
    packed_path_ = ::testing::TempDir() + "/churn_" +
                   std::to_string(::getpid()) + ".phx";

    // Build the reference generator and pack its tree.
    domain_ = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = kN;
    options.seed = 42;
    auto builder = PrivHPBuilder::Make(domain_.get(), options);
    ASSERT_TRUE(builder.ok());
    RandomEngine rng(7);
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(
          builder->Add({rng.UniformDouble() * rng.UniformDouble()}).ok());
    }
    auto generator = std::move(*builder).Finish();
    ASSERT_TRUE(generator.ok());
    generator_ =
        std::make_unique<PrivHPGenerator>(std::move(*generator));
    storage::PackOptions pack;
    pack.page_size = 4096;
    ASSERT_TRUE(
        storage::PackArtifact(generator_->tree(), packed_path_, pack).ok());

    // A budget far below the file size forces buffer-pool serving with
    // a pool small enough that concurrent queries contend and evict.
    auto file_size = storage::FileSize(packed_path_);
    ASSERT_TRUE(file_size.ok());
    RegistryOptions registry_options;
    registry_options.memory_budget_bytes =
        static_cast<size_t>(*file_size / 4);
    registry_options.pool_bytes_per_artifact = 16u << 10;
    registry_ = std::make_unique<ArtifactRegistry>(registry_options);
    ASSERT_TRUE(registry_->LoadFile("paged", packed_path_).ok());
    auto artifact = registry_->Get("paged");
    ASSERT_TRUE(artifact.ok());
    ASSERT_TRUE((*artifact)->is_paged());
    ASSERT_TRUE((*artifact)->paged()->pooled());

    ServerOptions server_options;
    server_options.unix_path = socket_path_;
    server_options.num_workers = 4;
    auto server = PrivHPServer::Start(registry_.get(), server_options);
    ASSERT_TRUE(server.ok()) << server.status().message();
    server_ = std::move(*server);
  }

  void TearDown() override {
    server_.reset();
    registry_.reset();
    std::remove(packed_path_.c_str());
    std::remove(socket_path_.c_str());
  }

  std::string socket_path_;
  std::string packed_path_;
  std::unique_ptr<IntervalDomain> domain_;
  std::unique_ptr<PrivHPGenerator> generator_;
  std::unique_ptr<ArtifactRegistry> registry_;
  std::unique_ptr<PrivHPServer> server_;
};

TEST_F(PagedServeChurnTest, ConcurrentClientsMatchHeapServing) {
  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  constexpr uint64_t kPoints = 400;

  // Per-(client, round) heap references, computed up front: a seeded
  // SAMPLE must come back identical no matter which worker (and which
  // pool state) serves it.
  std::vector<std::vector<std::vector<Point>>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    expected[c].resize(kRounds);
    for (int r = 0; r < kRounds; ++r) {
      const uint64_t seed = 1000 + c * 100 + r;
      RandomEngine rng(seed);
      CollectingSink sink;
      ASSERT_TRUE(generator_->GenerateTo(kPoints, &rng, &sink).ok());
      expected[c][r] = sink.TakePoints();
    }
  }
  const double expected_mass_30 =
      CellMassFraction(generator_->tree(), {3, 0});

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = PrivHPClient::ConnectUnix(socket_path_);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        const uint64_t seed = 1000 + c * 100 + r;
        auto points = client->Sample("paged", kPoints, seed);
        if (!points.ok() || *points != expected[c][r]) {
          failures.fetch_add(1);
          return;
        }
        auto mass = client->RangeMass("paged", {3, 0});
        if (!mass.ok() || *mass != expected_mass_30) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The tiny pool must actually have churned while staying bounded.
  auto artifact = registry_->Get("paged");
  ASSERT_TRUE(artifact.ok());
  const storage::BufferPool* pool = (*artifact)->paged()->pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_GT(pool->stats().evictions, 0u);
  auto file_size = storage::FileSize(packed_path_);
  ASSERT_TRUE(file_size.ok());
  EXPECT_LT((*artifact)->ResidentBytes(),
            static_cast<size_t>(*file_size));
}

TEST_F(PagedServeChurnTest, ExportStreamsThePagedArtifact) {
  auto client = PrivHPClient::ConnectUnix(socket_path_);
  ASSERT_TRUE(client.ok());
  auto blob = client->Export("paged");
  ASSERT_TRUE(blob.ok()) << blob.status().message();
  // Byte-identical to serializing the reference tree locally.
  std::ostringstream os;
  ASSERT_TRUE(SaveTree(generator_->tree(), &os).ok());
  EXPECT_EQ(*blob, os.str());
  // The connection stays usable after the streamed export.
  ASSERT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace privhp
