// Format-level tests (layout, header round-trip) plus end-to-end
// pack → open bit-identity against the heap serving path, in both mmap
// and buffer-pool read modes.

#include "storage/paged_format.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/builder.h"
#include "core/generator.h"
#include "core/queries.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"
#include "storage/artifact_packer.h"
#include "storage/paged_artifact.h"

namespace privhp {
namespace storage {
namespace {

// ctest runs each test of this binary as its own process, often in
// parallel, so scratch names must be per-process.
std::string TestPath(const std::string& leaf) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         leaf;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// A real released generator over IntervalDomain — the same build idiom
// the service tests use. The domain must outlive the generator.
struct BuiltArtifact {
  std::unique_ptr<IntervalDomain> domain;
  std::unique_ptr<PrivHPGenerator> generator;
};

BuiltArtifact BuildArtifact(size_t n, uint64_t data_seed) {
  BuiltArtifact out;
  out.domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = n;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(out.domain.get(), options);
  EXPECT_TRUE(builder.ok());
  RandomEngine rng(data_seed);
  for (size_t i = 0; i < n; ++i) {
    // Mild skew so the tree is not trivial.
    Point p{rng.UniformDouble() * rng.UniformDouble()};
    EXPECT_TRUE(builder->Add(p).ok());
  }
  auto generator = std::move(*builder).Finish();
  EXPECT_TRUE(generator.ok());
  out.generator =
      std::make_unique<PrivHPGenerator>(std::move(*generator));
  return out;
}

// ---------------------------------------------------------------------
// ComputeLayout / header page
// ---------------------------------------------------------------------

TEST(ComputeLayoutTest, RejectsBadShapes) {
  const std::string name = "interval[0,1]";
  // Page size must be a power of two in [4 KiB, 1 MiB].
  EXPECT_FALSE(ComputeLayout(1000, 1, 8, 8, true, 1.0, name).ok());
  EXPECT_FALSE(ComputeLayout(2048, 1, 8, 8, true, 1.0, name).ok());
  EXPECT_FALSE(ComputeLayout(2u << 20, 1, 8, 8, true, 1.0, name).ok());
  // Dimension in [1, kMaxPagedDimension].
  EXPECT_FALSE(ComputeLayout(4096, 0, 8, 8, true, 1.0, name).ok());
  EXPECT_FALSE(
      ComputeLayout(4096, kMaxPagedDimension + 1, 8, 8, true, 1.0, name)
          .ok());
  // At least one node and one slot.
  EXPECT_FALSE(ComputeLayout(4096, 1, 0, 8, true, 1.0, name).ok());
  EXPECT_FALSE(ComputeLayout(4096, 1, 8, 0, true, 1.0, name).ok());
  // Domain name must be non-empty and fit the header page.
  EXPECT_FALSE(ComputeLayout(4096, 1, 8, 8, true, 1.0, "").ok());
  EXPECT_FALSE(ComputeLayout(4096, 1, 8, 8, true, 1.0,
                             std::string(kMaxDomainNameBytes + 1, 'x'))
                   .ok());
  // Mass must be finite and non-negative.
  EXPECT_FALSE(ComputeLayout(4096, 1, 8, 8, true,
                             std::numeric_limits<double>::quiet_NaN(), name)
                   .ok());
  EXPECT_FALSE(ComputeLayout(4096, 1, 8, 8, true, -1.0, name).ok());
}

TEST(ComputeLayoutTest, SectionsArePageAlignedAndOrdered) {
  auto layout = ComputeLayout(4096, 2, 1000, 512, true, 123.5,
                              "hypercube[0,1]^2");
  ASSERT_TRUE(layout.ok());
  const PagedHeader& h = *layout;
  EXPECT_EQ(h.page_size, 4096u);
  EXPECT_EQ(h.num_nodes, 1000u);
  EXPECT_EQ(h.num_slots, 512u);
  uint64_t prev_end = h.data_offset;
  for (int s = 0; s < kNumSections; ++s) {
    ASSERT_GT(h.sections[s].num_elements, 0u) << "section " << s;
    EXPECT_EQ(h.sections[s].file_offset % h.page_size, 0u);
    EXPECT_EQ(h.sections[s].file_offset, prev_end);
    const uint64_t bytes =
        h.sections[s].num_elements * kSectionElemSize[s];
    prev_end += (bytes + h.page_size - 1) / h.page_size * h.page_size;
  }
  EXPECT_EQ(prev_end, h.file_bytes());
  EXPECT_EQ(h.data_pages(),
            (h.file_bytes() - h.data_offset) / h.page_size);
}

TEST(ComputeLayoutTest, NoBoundsOmitsSlotSections) {
  auto layout = ComputeLayout(4096, 1, 10, 8, false, 1.0, "ipv4");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->sections[kSectionSlotLo].num_elements, 0u);
  EXPECT_EQ(layout->sections[kSectionSlotExt].num_elements, 0u);
  EXPECT_EQ(layout->sections[kSectionSlotLo].file_offset, 0u);
}

TEST(PagedHeaderTest, EncodeParseRoundTrip) {
  auto layout =
      ComputeLayout(4096, 3, 777, 333, true, 42.25, "hypercube[0,1]^3");
  ASSERT_TRUE(layout.ok());
  // Parse requires the file-size cross-check to hold.
  const std::string page = EncodeHeaderPage(*layout);
  ASSERT_EQ(page.size(), 4096u);
  auto parsed =
      ParseHeaderPage(reinterpret_cast<const uint8_t*>(page.data()),
                      page.size(), layout->file_bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->page_size, layout->page_size);
  EXPECT_EQ(parsed->dimension, layout->dimension);
  EXPECT_EQ(parsed->num_pages, layout->num_pages);
  EXPECT_EQ(parsed->num_nodes, layout->num_nodes);
  EXPECT_EQ(parsed->num_slots, layout->num_slots);
  EXPECT_EQ(parsed->has_bounds, layout->has_bounds);
  EXPECT_EQ(parsed->total_mass, layout->total_mass);
  EXPECT_EQ(parsed->domain_name, layout->domain_name);
  EXPECT_EQ(parsed->data_offset, layout->data_offset);
  for (int s = 0; s < kNumSections; ++s) {
    EXPECT_EQ(parsed->sections[s].file_offset,
              layout->sections[s].file_offset);
    EXPECT_EQ(parsed->sections[s].num_elements,
              layout->sections[s].num_elements);
  }
}

TEST(PagedHeaderTest, ParseRejectsWrongFileSize) {
  auto layout = ComputeLayout(4096, 1, 10, 8, true, 1.0, "interval[0,1]");
  ASSERT_TRUE(layout.ok());
  const std::string page = EncodeHeaderPage(*layout);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(page.data());
  EXPECT_FALSE(
      ParseHeaderPage(bytes, page.size(), layout->file_bytes() - 4096).ok());
  EXPECT_FALSE(
      ParseHeaderPage(bytes, page.size(), layout->file_bytes() + 4096).ok());
}

TEST(PagedHeaderTest, MagicSniffing) {
  EXPECT_TRUE(HasPagedMagic(
      reinterpret_cast<const uint8_t*>("privhp-paged-v1\0xxxx"), 20));
  EXPECT_FALSE(HasPagedMagic(
      reinterpret_cast<const uint8_t*>("privhp-tree-v2\n"), 15));
  EXPECT_FALSE(HasPagedMagic(
      reinterpret_cast<const uint8_t*>("privhp-paged-v1"), 8));
}

// ---------------------------------------------------------------------
// Pack → open, bit-identity with the heap path
// ---------------------------------------------------------------------

class PackedArtifactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    built_ = BuildArtifact(4000, 7);
    ASSERT_NE(built_.generator, nullptr);
    path_ = TestPath("paged_identity.phx");
    PackOptions options;
    options.page_size = 4096;  // small pages exercise many checksums
    ASSERT_TRUE(
        PackArtifact(built_.generator->tree(), path_, options).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<const PagedArtifact> OpenMode(bool pooled,
                                                size_t pool_bytes = 64u
                                                                    << 10) {
    PagedReadOptions options;
    options.use_buffer_pool = pooled;
    options.pool_bytes = pool_bytes;
    auto artifact = PagedArtifact::Open(path_, options);
    EXPECT_TRUE(artifact.ok()) << artifact.status().message();
    return artifact.ok() ? std::move(*artifact) : nullptr;
  }

  BuiltArtifact built_;
  std::string path_;
};

TEST_F(PackedArtifactTest, SniffsAsPagedAndSized) {
  EXPECT_TRUE(PagedArtifact::SniffPagedFile(path_));

  const std::string tree_path = TestPath("sniff_v2.tree");
  ASSERT_TRUE(SaveTreeToFile(built_.generator->tree(), tree_path).ok());
  EXPECT_FALSE(PagedArtifact::SniffPagedFile(tree_path));
  std::remove(tree_path.c_str());

  auto artifact = OpenMode(/*pooled=*/false);
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(ReadAll(path_).size(), artifact->header().file_bytes());
  EXPECT_EQ(artifact->num_nodes(),
            static_cast<uint64_t>(built_.generator->tree().num_nodes()));
  EXPECT_EQ(artifact->TotalMass(), built_.generator->TotalMass());
}

TEST_F(PackedArtifactTest, RangeMassMatchesHeapBitForBit) {
  const PartitionTree& tree = built_.generator->tree();
  for (const bool pooled : {false, true}) {
    auto artifact = OpenMode(pooled);
    ASSERT_NE(artifact, nullptr);
    EXPECT_EQ(artifact->pooled(), pooled);
    for (int level = 0; level <= 6; ++level) {
      for (uint64_t index = 0; index < (uint64_t{1} << level); ++index) {
        const CellId cell{level, index};
        auto mass = artifact->RangeMass(cell);
        ASSERT_TRUE(mass.ok());
        EXPECT_EQ(*mass, CellMassFraction(tree, cell))
            << "pooled=" << pooled << " level=" << level
            << " index=" << index;
      }
    }
  }
}

TEST_F(PackedArtifactTest, QuantilesAndHeavyMatchHeapBitForBit) {
  const PartitionTree& tree = built_.generator->tree();
  const std::vector<double> qs = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};
  auto heap_q = TreeQuantiles(tree, qs);
  ASSERT_TRUE(heap_q.ok());
  auto heap_h = HierarchicalHeavyHitters(tree, 0.02);
  ASSERT_TRUE(heap_h.ok());
  for (const bool pooled : {false, true}) {
    auto artifact = OpenMode(pooled);
    ASSERT_NE(artifact, nullptr);
    auto q = artifact->Quantiles(qs);
    ASSERT_TRUE(q.ok());
    ASSERT_EQ(q->size(), heap_q->size());
    for (size_t i = 0; i < q->size(); ++i) {
      EXPECT_EQ((*q)[i], (*heap_q)[i]) << "pooled=" << pooled;
    }
    auto h = artifact->Heavy(0.02);
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(h->size(), heap_h->size());
    for (size_t i = 0; i < h->size(); ++i) {
      EXPECT_EQ((*h)[i].cell, (*heap_h)[i].cell);
      EXPECT_EQ((*h)[i].fraction, (*heap_h)[i].fraction);
    }
  }
}

TEST_F(PackedArtifactTest, ExportMatchesSaveTreeByteForByte) {
  std::ostringstream heap_os;
  ASSERT_TRUE(SaveTree(built_.generator->tree(), &heap_os).ok());
  const std::string heap_bytes = heap_os.str();
  for (const bool pooled : {false, true}) {
    auto artifact = OpenMode(pooled);
    ASSERT_NE(artifact, nullptr);
    std::ostringstream os;
    ASSERT_TRUE(artifact->ExportTo(&os).ok());
    EXPECT_EQ(os.str(), heap_bytes) << "pooled=" << pooled;
  }
}

TEST_F(PackedArtifactTest, SeededSamplingIsIdenticalAcrossModes) {
  constexpr size_t kM = 3000;
  constexpr uint64_t kSeed = 1234;

  RandomEngine heap_rng(kSeed);
  CollectingSink heap_sink;
  ASSERT_TRUE(
      built_.generator->GenerateTo(kM, &heap_rng, &heap_sink).ok());
  const std::vector<Point> expected = heap_sink.TakePoints();
  ASSERT_EQ(expected.size(), kM);

  for (const bool pooled : {false, true}) {
    auto artifact = OpenMode(pooled);
    ASSERT_NE(artifact, nullptr);
    RandomEngine rng(kSeed);
    CollectingSink sink;
    ASSERT_TRUE(artifact->GenerateTo(kM, &rng, &sink).ok());
    const std::vector<Point> got = sink.TakePoints();
    ASSERT_EQ(got.size(), kM) << "pooled=" << pooled;
    for (size_t i = 0; i < kM; ++i) {
      ASSERT_EQ(got[i], expected[i])
          << "pooled=" << pooled << " point " << i;
    }
  }
}

TEST_F(PackedArtifactTest, PooledModeBoundsResidentMemory) {
  const uint64_t file_bytes = ReadAll(path_).size();
  auto artifact = OpenMode(/*pooled=*/true, /*pool_bytes=*/16u << 10);
  ASSERT_NE(artifact, nullptr);
  ASSERT_TRUE(artifact->pooled());
  // Touch every part of the artifact.
  RandomEngine rng(5);
  CollectingSink sink;
  ASSERT_TRUE(artifact->GenerateTo(2000, &rng, &sink).ok());
  ASSERT_TRUE(artifact->Quantiles({0.1, 0.5, 0.9}).ok());
  // Resident memory stays near the pool size, far below the file.
  EXPECT_LT(artifact->ResidentBytes(), file_bytes);
  ASSERT_NE(artifact->pool(), nullptr);
  EXPECT_GT(artifact->pool()->stats().evictions, 0u)
      << "pool too large to exercise eviction";
}

TEST_F(PackedArtifactTest, PackingIsDeterministic) {
  const std::string other = TestPath("paged_identity_again.phx");
  PackOptions options;
  options.page_size = 4096;
  ASSERT_TRUE(
      PackArtifact(built_.generator->tree(), other, options).ok());
  EXPECT_EQ(ReadAll(other), ReadAll(path_));
  std::remove(other.c_str());
}

TEST_F(PackedArtifactTest, PackTreeFileRoundTrip) {
  const std::string tree_path = TestPath("roundtrip.tree");
  const std::string packed_path = TestPath("roundtrip.phx");
  ASSERT_TRUE(SaveTreeToFile(built_.generator->tree(), tree_path).ok());
  PackOptions options;
  options.page_size = 4096;
  ASSERT_TRUE(PackTreeFile(tree_path, packed_path, options).ok());
  // The packed result must be identical to packing the live tree.
  EXPECT_EQ(ReadAll(packed_path), ReadAll(path_));
  // Packing a paged file as if it were a v2 tree must fail cleanly.
  EXPECT_FALSE(PackTreeFile(packed_path, TestPath("nope.phx")).ok());
  std::remove(tree_path.c_str());
  std::remove(packed_path.c_str());
}

TEST(PackArtifactTest, DefaultPageSizeWorks) {
  BuiltArtifact built = BuildArtifact(500, 3);
  ASSERT_NE(built.generator, nullptr);
  const std::string path = TestPath("paged_default_pages.phx");
  ASSERT_TRUE(PackArtifact(built.generator->tree(), path).ok());
  auto artifact = PagedArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().message();
  EXPECT_EQ((*artifact)->header().page_size, kDefaultPageSize);
  auto mass = (*artifact)->RangeMass({0, 0});
  ASSERT_TRUE(mass.ok());
  EXPECT_EQ(*mass, 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace privhp
