// Corruption injection: every mangled artifact must surface as a clean
// Status (IOError), never a crash, OOB read, or silent wrong answer.
// This suite runs under ASan/UBSan in CI, so an out-of-bounds walk of a
// truncated mapping fails loudly here.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/builder.h"
#include "core/generator.h"
#include "domain/interval_domain.h"
#include "io/file_util.h"
#include "io/point_sink.h"
#include "storage/artifact_packer.h"
#include "storage/paged_artifact.h"
#include "storage/paged_format.h"

namespace privhp {
namespace storage {
namespace {

constexpr uint32_t kPage = 4096;

// ctest runs each test of this binary as its own process, often in
// parallel, so scratch names must be per-process.
std::string TestPath(const std::string& leaf) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" +
         leaf;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// One packed artifact shared by every test case (packing builds a real
// generator, which is the expensive part).
class CorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto domain = std::make_unique<IntervalDomain>();
    PrivHPOptions options;
    options.expected_n = 2000;
    options.seed = 42;
    auto builder = PrivHPBuilder::Make(domain.get(), options);
    ASSERT_TRUE(builder.ok());
    RandomEngine rng(7);
    for (size_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          builder->Add({rng.UniformDouble() * rng.UniformDouble()}).ok());
    }
    auto generator = std::move(*builder).Finish();
    ASSERT_TRUE(generator.ok());
    packed_path_ = new std::string(TestPath("corruption_base.phx"));
    PackOptions pack;
    pack.page_size = kPage;
    ASSERT_TRUE(PackArtifact(generator->tree(), *packed_path_, pack).ok());
    pristine_ = new std::string(ReadAll(*packed_path_));
    ASSERT_GT(pristine_->size(), size_t{3} * kPage);
  }

  static void TearDownTestSuite() {
    std::remove(packed_path_->c_str());
    delete packed_path_;
    delete pristine_;
    packed_path_ = nullptr;
    pristine_ = nullptr;
  }

  // Writes a mangled copy and returns its path.
  std::string WriteVariant(const std::string& leaf,
                           const std::string& bytes) {
    const std::string path = TestPath(leaf);
    EXPECT_TRUE(WriteFileAtomic(path, bytes).ok());
    variants_.push_back(path);
    return path;
  }

  std::string Truncated(size_t keep) {
    return pristine_->substr(0, keep);
  }

  std::string BitFlipped(size_t offset) {
    std::string bytes = *pristine_;
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    return bytes;
  }

  // Both read modes must reject the file at Open.
  void ExpectOpenFails(const std::string& path, const char* what) {
    for (const bool pooled : {false, true}) {
      PagedReadOptions options;
      options.use_buffer_pool = pooled;
      auto artifact = PagedArtifact::Open(path, options);
      EXPECT_FALSE(artifact.ok())
          << what << " (pooled=" << pooled << ")";
      if (!artifact.ok()) {
        EXPECT_TRUE(artifact.status().IsIOError())
            << what << ": " << artifact.status().message();
      }
    }
  }

  void TearDown() override {
    for (const std::string& path : variants_) std::remove(path.c_str());
    variants_.clear();
  }

  static std::string* packed_path_;
  static std::string* pristine_;
  std::vector<std::string> variants_;
};

std::string* CorruptionTest::packed_path_ = nullptr;
std::string* CorruptionTest::pristine_ = nullptr;

TEST_F(CorruptionTest, PristineFileOpensInBothModes) {
  for (const bool pooled : {false, true}) {
    PagedReadOptions options;
    options.use_buffer_pool = pooled;
    auto artifact = PagedArtifact::Open(*packed_path_, options);
    ASSERT_TRUE(artifact.ok()) << artifact.status().message();
    auto mass = (*artifact)->RangeMass({0, 0});
    ASSERT_TRUE(mass.ok());
    EXPECT_EQ(*mass, 1.0);
  }
}

TEST_F(CorruptionTest, MissingAndEmptyFiles) {
  EXPECT_FALSE(PagedArtifact::SniffPagedFile(TestPath("no_such.phx")));
  ExpectOpenFails(TestPath("no_such.phx"), "missing file");
  ExpectOpenFails(WriteVariant("empty.phx", ""), "empty file");
}

TEST_F(CorruptionTest, TruncationsFailCleanly) {
  // Shorter than the magic, shorter than a page, a torn final page, and
  // whole pages missing off the end.
  ExpectOpenFails(WriteVariant("trunc_8.phx", Truncated(8)), "8 bytes");
  ExpectOpenFails(WriteVariant("trunc_100.phx", Truncated(100)),
                  "100 bytes");
  ExpectOpenFails(WriteVariant("trunc_subpage.phx", Truncated(kPage - 1)),
                  "under one page");
  ExpectOpenFails(
      WriteVariant("trunc_headeronly.phx", Truncated(kPage)),
      "header page only");
  ExpectOpenFails(
      WriteVariant("trunc_torn.phx", Truncated(pristine_->size() - 1)),
      "torn final page");
  ExpectOpenFails(
      WriteVariant("trunc_page.phx", Truncated(pristine_->size() - kPage)),
      "missing final page");
}

TEST_F(CorruptionTest, ExtendedFileFailsCleanly) {
  ExpectOpenFails(
      WriteVariant("extended_1.phx", *pristine_ + std::string(1, '\0')),
      "one trailing byte");
  ExpectOpenFails(
      WriteVariant("extended_page.phx",
                   *pristine_ + std::string(kPage, '\0')),
      "one trailing page");
}

TEST_F(CorruptionTest, WrongMagicAndVersion) {
  std::string wrong_magic = *pristine_;
  wrong_magic[0] = 'P';
  ExpectOpenFails(WriteVariant("magic.phx", wrong_magic), "magic");

  // Version field lives after magic(16) + header checksum(8) + endian(4).
  ExpectOpenFails(WriteVariant("version.phx", BitFlipped(28)), "version");
  // Endian tag.
  ExpectOpenFails(WriteVariant("endian.phx", BitFlipped(24)), "endian");
}

TEST_F(CorruptionTest, HeaderBitFlipsFailTheHeaderChecksum) {
  // Flip one bit in several header fields; the header checksum (or the
  // canonical-layout cross-check) must catch each.
  for (const size_t offset : {size_t{33}, size_t{48}, size_t{80},
                              size_t{120}, size_t{216}}) {
    ExpectOpenFails(WriteVariant("hdr_" + std::to_string(offset) + ".phx",
                                 BitFlipped(offset)),
                    "header flip");
  }
  // Flipping the stored header checksum itself must also fail.
  ExpectOpenFails(WriteVariant("hdr_cksum.phx", BitFlipped(16)),
                  "header checksum flip");
}

TEST_F(CorruptionTest, ChecksumTableFlipFailsBothModes) {
  // The checksum table starts at page 1; its own checksum in the header
  // covers it, so both the eager (mmap) and lazy (pooled) paths reject
  // the file at Open.
  ExpectOpenFails(WriteVariant("table.phx", BitFlipped(kPage + 3)),
                  "checksum table flip");
}

TEST_F(CorruptionTest, DataPageFlipFailsEagerlyUnderMmap) {
  // Any data-page flip fails the eager sweep at Open in mmap mode.
  PagedReadOptions header_probe;
  auto pristine = PagedArtifact::Open(*packed_path_, header_probe);
  ASSERT_TRUE(pristine.ok());
  const uint64_t data_offset = (*pristine)->header().data_offset;

  const std::string first_flip =
      WriteVariant("data_first.phx", BitFlipped(data_offset + 100));
  const std::string last_flip = WriteVariant(
      "data_last.phx", BitFlipped(pristine_->size() - kPage + 50));
  for (const std::string& path : {first_flip, last_flip}) {
    auto artifact = PagedArtifact::Open(path);
    ASSERT_FALSE(artifact.ok()) << path;
    EXPECT_TRUE(artifact.status().IsIOError());
  }
}

TEST_F(CorruptionTest, DataPageFlipSurfacesLazilyUnderPool) {
  // Pooled mode defers data-page verification to first touch: Open only
  // reads the root node's page, so a flip elsewhere opens fine and the
  // first query that pulls the bad page gets IOError.
  PagedReadOptions probe;
  auto pristine = PagedArtifact::Open(*packed_path_, probe);
  ASSERT_TRUE(pristine.ok());
  const PagedSection& nodes =
      (*pristine)->header().sections[kSectionNodes];
  const uint64_t nodes_bytes = nodes.num_elements * sizeof(PackedTreeNode);
  // Flip a byte in the *last* nodes page, which Open never touches.
  ASSERT_GT(nodes_bytes, uint64_t{kPage}) << "tree too small for this test";
  const size_t flip_offset =
      static_cast<size_t>(nodes.file_offset + nodes_bytes - 8);

  const std::string path =
      WriteVariant("data_lazy.phx", BitFlipped(flip_offset));
  PagedReadOptions options;
  options.use_buffer_pool = true;
  options.pool_bytes = 16u << 10;
  auto artifact = PagedArtifact::Open(path, options);
  ASSERT_TRUE(artifact.ok()) << artifact.status().message();

  // The root lives in an intact page: queries that stay there succeed.
  auto mass = (*artifact)->RangeMass({0, 0});
  ASSERT_TRUE(mass.ok());
  EXPECT_EQ(*mass, 1.0);

  // A full-tree walk must hit the flipped page and fail cleanly.
  std::ostringstream os;
  const Status exported = (*artifact)->ExportTo(&os);
  ASSERT_FALSE(exported.ok());
  EXPECT_TRUE(exported.IsIOError());
}

TEST_F(CorruptionTest, SectionGeometryTamperingIsRejected) {
  // Rewriting the node count (and nothing else) breaks either the header
  // checksum or — if an attacker fixed that up — the canonical-layout
  // cross-check. Here we only flip the count; the checksum catches it.
  ExpectOpenFails(WriteVariant("nodes_field.phx", BitFlipped(49)),
                  "num_nodes flip");
  // Section table entry (first section's offset).
  ExpectOpenFails(WriteVariant("section_field.phx", BitFlipped(121)),
                  "section offset flip");
}

}  // namespace
}  // namespace storage
}  // namespace privhp
