#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace privhp {
namespace obs {
namespace {

TEST(MetricsRegistryTest, LookupIsCreateOnFirstUseAndStable) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.requests");
  ASSERT_NE(c, nullptr);
  // Same name -> same object; values persist across lookups.
  c->Add(3);
  EXPECT_EQ(registry.GetCounter("a.requests"), c);
  EXPECT_EQ(registry.GetCounter("a.requests")->value(), 3u);
  // Counters, gauges and histograms are separate namespaces.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("a.requests")),
            static_cast<void*>(c));
}

TEST(MetricsRegistryTest, GaugeIsSignedAndSettable) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("queue.depth");
  g->Add(5);
  g->Add(-7);
  EXPECT_EQ(g->value(), -2);
  g->Set(42);
  EXPECT_EQ(g->value(), 42);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(2);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("z.gauge")->Set(-5);
  registry.GetHistogram("m.hist")->Record(100);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "b.count");
  EXPECT_EQ(snap.counters[1].value, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "m.hist");
  EXPECT_EQ(snap.histograms[0].hist.Count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotAccessors) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Add(9);
  registry.GetGauge("depth")->Set(4);
  registry.GetHistogram("lat")->Record(50);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("hits"), 9u);
  EXPECT_EQ(snap.CounterOr("absent", 123), 123u);
  EXPECT_EQ(snap.GaugeOr("depth"), 4);
  EXPECT_EQ(snap.GaugeOr("absent", -1), -1);
  ASSERT_NE(snap.FindHistogram("lat"), nullptr);
  EXPECT_EQ(snap.FindHistogram("lat")->Count(), 1u);
  EXPECT_EQ(snap.FindHistogram("absent"), nullptr);
}

// Concurrent first-lookups of the same names must converge on one
// metric each (the rendezvous contract), and recording during Snapshot()
// must be race-free.
TEST(MetricsRegistryTest, ConcurrentLookupAndRecord) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("shared.count")->Inc();
        registry.GetHistogram("shared.hist")->Record(
            static_cast<uint64_t>(i));
      }
    });
  }
  for (int polls = 0; polls < 20; ++polls) {
    (void)registry.Snapshot();
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterOr("shared.count"),
            static_cast<uint64_t>(kThreads) * kIters);
  ASSERT_NE(snap.FindHistogram("shared.hist"), nullptr);
  EXPECT_EQ(snap.FindHistogram("shared.hist")->Count(),
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace obs
}  // namespace privhp
