#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace privhp {
namespace obs {
namespace {

TEST(HistogramBucketTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 8; ++v) {
    const uint32_t index = HistogramBucketIndex(v);
    EXPECT_EQ(index, v);
    EXPECT_EQ(HistogramBucketLowerBound(index), v);
    EXPECT_EQ(HistogramBucketUpperBound(index), v + 1);
  }
}

TEST(HistogramBucketTest, BoundsBracketEveryProbedValue) {
  // Walk powers of two and their neighbours across the whole range: the
  // bucket an index maps to must contain the value, with lower bound
  // inclusive and upper bound exclusive.
  std::vector<uint64_t> probes = {8, 9, 15, 16, 17, 1000, 4096, 65535};
  for (int o = 3; o < kHistogramMaxOctave; ++o) {
    const uint64_t base = uint64_t{1} << o;
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + base / 2);
    probes.push_back(2 * base - 1);
  }
  for (uint64_t v : probes) {
    const uint32_t index = HistogramBucketIndex(v);
    ASSERT_LT(index, kHistogramBuckets);
    EXPECT_LE(HistogramBucketLowerBound(index), v) << "value " << v;
    EXPECT_GT(HistogramBucketUpperBound(index), v) << "value " << v;
  }
}

TEST(HistogramBucketTest, BucketBoundariesAreContiguous) {
  // Every non-overflow bucket's upper bound is the next bucket's lower
  // bound: no value can fall between buckets or into two of them.
  for (uint32_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketUpperBound(i), HistogramBucketLowerBound(i + 1))
        << "bucket " << i;
  }
}

TEST(HistogramBucketTest, RelativeBucketWidthIsBounded) {
  // The design contract: above the exact range, bucket width is at most
  // 12.5% of the bucket's lower bound (1 sub-bucket out of 8).
  for (uint32_t i = 8; i + 1 < kHistogramBuckets; ++i) {
    const uint64_t lo = HistogramBucketLowerBound(i);
    const uint64_t hi = HistogramBucketUpperBound(i);
    EXPECT_LE((hi - lo) * 8, lo) << "bucket " << i;
  }
}

TEST(HistogramBucketTest, OverflowBucketCatchesHugeValues) {
  const uint32_t overflow = kHistogramBuckets - 1;
  EXPECT_EQ(HistogramBucketIndex(uint64_t{1} << kHistogramMaxOctave),
            overflow);
  EXPECT_EQ(HistogramBucketIndex(UINT64_MAX), overflow);
  EXPECT_EQ(HistogramBucketLowerBound(overflow),
            uint64_t{1} << kHistogramMaxOctave);
  EXPECT_EQ(HistogramBucketUpperBound(overflow), UINT64_MAX);
}

TEST(HistogramTest, CountSumMeanMax) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), 3u);
  EXPECT_EQ(snap.sum, 60u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 20.0);
  EXPECT_EQ(snap.max, 30u);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Count(), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0u);
}

TEST(HistogramTest, QuantilesOfUniformRecordingAreAccurate) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  // Log-scale buckets guarantee <= 12.5% relative error on any quantile.
  const uint64_t p50 = snap.ValueAtQuantile(0.5);
  const uint64_t p99 = snap.ValueAtQuantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.125);
  // Quantiles never report past the recorded max, and the extremes pin
  // to the smallest/largest buckets touched.
  EXPECT_LE(snap.ValueAtQuantile(1.0), snap.max);
  EXPECT_LE(snap.ValueAtQuantile(0.0), snap.ValueAtQuantile(1.0));
}

TEST(HistogramTest, OverflowQuantileFallsBackToMax) {
  Histogram h;
  const uint64_t huge = (uint64_t{1} << kHistogramMaxOctave) + 12345;
  h.Record(huge);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ValueAtQuantile(0.5), huge);
  EXPECT_EQ(snap.max, huge);
}

TEST(HistogramTest, MergeAddsComponentwise) {
  Histogram a;
  Histogram b;
  a.Record(5);
  a.Record(100);
  b.Record(100);
  b.Record(7000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.Count(), 4u);
  EXPECT_EQ(merged.sum, 5u + 100u + 100u + 7000u);
  EXPECT_EQ(merged.max, 7000u);
  EXPECT_EQ(merged.buckets[HistogramBucketIndex(100)], 2u);
}

TEST(HistogramTest, DeltaIsTheIntervalView) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  const HistogramSnapshot before = h.Snapshot();
  h.Record(30);
  h.Record(40);
  const HistogramSnapshot delta = h.Snapshot().Delta(before);
  EXPECT_EQ(delta.Count(), 2u);
  EXPECT_EQ(delta.sum, 70u);
  EXPECT_EQ(delta.buckets[HistogramBucketIndex(10)], 0u);
  EXPECT_EQ(delta.buckets[HistogramBucketIndex(30)], 1u);
  EXPECT_EQ(delta.buckets[HistogramBucketIndex(40)], 1u);
}

// The TSan-gated contract: snapshots taken while other threads record
// concurrently are valid histograms (no torn counters, no data race
// reports), and the final snapshot sees every recorded event.
TEST(HistogramTest, SnapshotUnderConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 1000 + (i % 997)));
      }
    });
  }
  uint64_t last_seen = 0;
  for (int polls = 0; polls < 50; ++polls) {
    const HistogramSnapshot snap = h.Snapshot();
    const uint64_t count = snap.Count();
    // Counts observed mid-flight only grow.
    EXPECT_GE(count, last_seen);
    last_seen = count;
  }
  for (auto& t : recorders) t.join();
  const HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace privhp
