#include "sketch/private_misra_gries.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(PrivateMisraGriesTest, ReleaseValidates) {
  MisraGries mg(8);
  mg.Update(1, 10.0);
  RandomEngine rng(1);
  EXPECT_FALSE(PrivateMisraGries::Release(mg, 0.0, 0.01, &rng).ok());
  EXPECT_FALSE(PrivateMisraGries::Release(mg, 1.0, 0.0, &rng).ok());
  EXPECT_FALSE(PrivateMisraGries::Release(mg, 1.0, 1.5, &rng).ok());
  EXPECT_FALSE(PrivateMisraGries::Release(mg, 1.0, 0.01, nullptr).ok());
  EXPECT_TRUE(PrivateMisraGries::Release(mg, 1.0, 0.01, &rng).ok());
}

TEST(PrivateMisraGriesTest, ThresholdFormula) {
  MisraGries mg(4);
  mg.Update(1, 100.0);
  RandomEngine rng(2);
  auto released = PrivateMisraGries::Release(mg, 2.0, 0.03, &rng);
  ASSERT_TRUE(released.ok());
  EXPECT_NEAR(released->threshold(), 1.0 + 2.0 * std::log(100.0) / 2.0,
              1e-9);
}

TEST(PrivateMisraGriesTest, HeavyKeysSurviveLightKeysSuppressed) {
  MisraGries mg(16);
  mg.Update(1, 1000.0);  // heavy
  mg.Update(2, 2.0);     // below any reasonable threshold
  RandomEngine rng(3);
  auto released = PrivateMisraGries::Release(mg, 1.0, 0.01, &rng);
  ASSERT_TRUE(released.ok());
  EXPECT_NEAR(released->Estimate(1), 1000.0, 50.0);
  EXPECT_DOUBLE_EQ(released->Estimate(2), 0.0);
  EXPECT_DOUBLE_EQ(released->Estimate(999), 0.0);  // never stored
}

TEST(PrivateMisraGriesTest, ReleasedValuesAreNoisy) {
  MisraGries mg(4);
  mg.Update(7, 500.0);
  RandomEngine rng(4);
  auto released = PrivateMisraGries::Release(mg, 1.0, 0.01, &rng);
  ASSERT_TRUE(released.ok());
  EXPECT_NE(released->Estimate(7), 500.0);
}

TEST(PrivateMisraGriesTest, AllReleasedCountsClearThreshold) {
  MisraGries mg(32);
  RandomEngine data_rng(5);
  const auto masses = ZipfMasses(200, 1.3);
  for (size_t key = 0; key < 200; ++key) {
    mg.Update(key, masses[key] * 20000.0);
  }
  RandomEngine rng(6);
  auto released = PrivateMisraGries::Release(mg, 0.5, 0.05, &rng);
  ASSERT_TRUE(released.ok());
  EXPECT_GT(released->NumReleased(), 0u);
  for (size_t key = 0; key < 200; ++key) {
    const double est = released->Estimate(key);
    if (est != 0.0) {
      EXPECT_GE(est, released->threshold());
    }
  }
}

// The composition argument from paper Section 2.1: at matched memory the
// hash-based sketch retains tail mass (overestimates a bit everywhere)
// while the counter-based release zeroes everything below threshold, so
// on the *tail* keys Misra-Gries loses all mass.
TEST(PrivateMisraGriesTest, TailMassVanishesUnlikeCountMin) {
  const auto masses = ZipfMasses(512, 1.0);
  const double n = 50000.0;
  MisraGries mg(64);
  for (size_t key = 0; key < 512; ++key) mg.Update(key, masses[key] * n);
  RandomEngine rng(7);
  auto released = PrivateMisraGries::Release(mg, 1.0, 0.01, &rng);
  ASSERT_TRUE(released.ok());
  double tail_mass_released = 0.0;
  double tail_mass_true = 0.0;
  for (size_t key = 128; key < 512; ++key) {  // tail keys
    tail_mass_released += released->Estimate(key);
    tail_mass_true += masses[key] * n;
  }
  EXPECT_LT(tail_mass_released, 0.1 * tail_mass_true);
}

}  // namespace
}  // namespace privhp
