#include "sketch/misra_gries.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(MisraGriesTest, MakeRejectsZeroCapacity) {
  EXPECT_FALSE(MisraGries::Make(0).ok());
  EXPECT_TRUE(MisraGries::Make(4).ok());
}

TEST(MisraGriesTest, ExactWhenUnderCapacity) {
  MisraGries mg(8);
  mg.Update(1, 3.0);
  mg.Update(2, 5.0);
  mg.Update(1, 1.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(1), 4.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(2), 5.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(3), 0.0);
}

TEST(MisraGriesTest, NeverOverestimates) {
  MisraGries mg(4);
  RandomEngine rng(3);
  std::vector<double> truth(64, 0.0);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.UniformInt(64);
    mg.Update(key, 1.0);
    truth[key] += 1.0;
  }
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_LE(mg.Estimate(key), truth[key] + 1e-9);
  }
}

TEST(MisraGriesTest, UndershootBoundedByTotalOverCapacity) {
  const size_t capacity = 9;
  MisraGries mg(capacity);
  RandomEngine rng(5);
  std::vector<double> truth(128, 0.0);
  const int n = 5000;
  const std::vector<double> masses = ZipfMasses(128, 1.2);
  for (int i = 0; i < n; ++i) {
    double u = rng.UniformDouble();
    uint64_t key = 127;
    for (size_t j = 0; j < masses.size(); ++j) {
      u -= masses[j];
      if (u <= 0.0) {
        key = j;
        break;
      }
    }
    mg.Update(key, 1.0);
    truth[key] += 1.0;
  }
  const double bound = mg.TotalWeight() / (capacity + 1);
  for (uint64_t key = 0; key < 128; ++key) {
    EXPECT_GE(mg.Estimate(key), truth[key] - bound - 1e-9) << "key " << key;
  }
}

TEST(MisraGriesTest, HeavyHitterAlwaysSurvives) {
  MisraGries mg(4);
  // One key holds 60% of a long stream: it must retain a large counter.
  RandomEngine rng(7);
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.6)) {
      mg.Update(999, 1.0);
    } else {
      mg.Update(rng.UniformInt(500), 1.0);
    }
  }
  EXPECT_GT(mg.Estimate(999), 0.6 * mg.TotalWeight() -
                                  mg.TotalWeight() / 5.0);
}

TEST(MisraGriesTest, CapacityIsRespected) {
  MisraGries mg(5);
  RandomEngine rng(9);
  for (int i = 0; i < 10000; ++i) mg.Update(rng.UniformInt(1000), 1.0);
  EXPECT_LE(mg.NumCounters(), 5u);
  EXPECT_GT(mg.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace privhp
