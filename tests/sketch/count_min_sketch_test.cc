#include "sketch/count_min_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(CountMinTest, MakeRejectsZeroDimensions) {
  EXPECT_FALSE(CountMinSketch::Make(0, 4, 1).ok());
  EXPECT_FALSE(CountMinSketch::Make(16, 0, 1).ok());
  EXPECT_TRUE(CountMinSketch::Make(16, 4, 1).ok());
}

TEST(CountMinTest, ExactForFewDistinctKeys) {
  CountMinSketch sketch(1024, 4, 7);
  sketch.Update(1, 5.0);
  sketch.Update(2, 3.0);
  sketch.Update(1, 2.0);
  // With a wide sketch and 2 keys, collisions across all 4 rows are
  // essentially impossible.
  EXPECT_DOUBLE_EQ(sketch.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(2), 3.0);
}

TEST(CountMinTest, NeverUnderestimatesWithoutNoise) {
  CountMinSketch sketch(16, 3, 11);
  RandomEngine rng(5);
  std::vector<double> truth(200, 0.0);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.UniformInt(200);
    sketch.Update(key, 1.0);
    truth[key] += 1.0;
  }
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth[key] - 1e-9);
  }
}

TEST(CountMinTest, RowSumsEqualTotalWeight) {
  CountMinSketch sketch(32, 5, 13);
  double total = 0.0;
  RandomEngine rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double w = rng.UniformDouble();
    sketch.Update(rng.UniformInt(100), w);
    total += w;
  }
  for (size_t row = 0; row < 5; ++row) {
    EXPECT_NEAR(sketch.RowSum(row), total, 1e-6);
  }
}

TEST(CountMinTest, MemoryScalesWithDimensions) {
  CountMinSketch small(16, 2, 1);
  CountMinSketch large(64, 8, 1);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_EQ(small.L1Sensitivity(), 2u);
}

TEST(CountMinTest, LaplaceNoiseShiftsCells) {
  CountMinSketch a(16, 2, 3);
  CountMinSketch b(16, 2, 3);
  RandomEngine rng(9);
  b.AddLaplaceNoise(&rng, 1.0);
  int differing = 0;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 16; ++c) {
      if (a.CellValue(r, c) != b.CellValue(r, c)) ++differing;
    }
  }
  EXPECT_EQ(differing, 32);
}

// Lemma 4 sweep: with width 2w and depth j, the expected overestimate is
// at most (||tail_w||_1 + 2^{-j+1} ||v||_1) / w. Parameters: (w, j, zipf
// exponent).
class Lemma4Test
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(Lemma4Test, ExpectedErrorWithinBound) {
  const auto [w, j, zipf] = GetParam();
  const size_t num_keys = 512;
  const size_t n = 20000;
  const std::vector<double> masses = ZipfMasses(num_keys, zipf);

  // Average the estimation error over several hash seeds (the expectation
  // in Lemma 4 is over the hash draw).
  double total_err = 0.0;
  size_t measured = 0;
  const int kSeeds = 8;
  std::vector<double> truth(num_keys);
  for (size_t key = 0; key < num_keys; ++key) {
    truth[key] = masses[key] * static_cast<double>(n);
  }
  double l1 = 0.0;
  for (double t : truth) l1 += t;
  std::vector<double> sorted = truth;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double tail_w = 0.0;
  for (size_t i = w; i < sorted.size(); ++i) tail_w += sorted[i];

  for (int seed = 0; seed < kSeeds; ++seed) {
    CountMinSketch sketch(2 * w, j, 1000 + seed);
    for (size_t key = 0; key < num_keys; ++key) {
      sketch.Update(key, truth[key]);
    }
    for (size_t key = 0; key < num_keys; key += 7) {
      total_err += sketch.Estimate(key) - truth[key];
      ++measured;
    }
  }
  const double mean_err = total_err / static_cast<double>(measured);
  const double bound =
      (tail_w + std::ldexp(2.0, -j) * l1) / static_cast<double>(w);
  // Allow 1.5x slack: the bound is an expectation, we average finitely
  // many seeds.
  EXPECT_LE(mean_err, 1.5 * bound + 1e-9)
      << "w=" << w << " j=" << j << " zipf=" << zipf;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma4Test,
    ::testing::Combine(::testing::Values(8, 32, 64),
                       ::testing::Values(3, 6, 10),
                       ::testing::Values(0.5, 1.1, 2.0)));

// Linearity: merging two sketches of disjoint streams equals sketching
// the concatenated stream, cell for cell.
TEST(CountMinSketchTest, MergeEqualsCombinedStream) {
  CountMinSketch a = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  CountMinSketch b = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  CountMinSketch combined = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  for (uint64_t key = 0; key < 50; ++key) {
    a.Update(key % 11, 1.0);
    combined.Update(key % 11, 1.0);
  }
  for (uint64_t key = 0; key < 80; ++key) {
    b.Update(key % 7, 2.0);
    combined.Update(key % 7, 2.0);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (size_t row = 0; row < 4; ++row) {
    for (size_t col = 0; col < 32; ++col) {
      EXPECT_DOUBLE_EQ(a.CellValue(row, col), combined.CellValue(row, col));
    }
  }
}

TEST(CountMinSketchTest, MergeRejectsShapeMismatch) {
  CountMinSketch a = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  CountMinSketch narrow = CountMinSketch::Make(16, 4, 9).ValueOrDie();
  CountMinSketch shallow = CountMinSketch::Make(32, 3, 9).ValueOrDie();
  EXPECT_TRUE(a.Merge(narrow).IsInvalidArgument());
  EXPECT_TRUE(a.Merge(shallow).IsInvalidArgument());
}

TEST(CountMinSketchTest, MergeRejectsSeedMismatch) {
  CountMinSketch a = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  CountMinSketch other = CountMinSketch::Make(32, 4, 10).ValueOrDie();
  EXPECT_TRUE(a.Merge(other).IsInvalidArgument());
  EXPECT_EQ(a.seed(), 9u);
  EXPECT_EQ(other.seed(), 10u);
}

}  // namespace
}  // namespace privhp
