#include "sketch/private_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privhp {
namespace {

TEST(PrivateSketchTest, MakeValidatesArguments) {
  RandomEngine rng(1);
  EXPECT_FALSE(PrivateCountMinSketch::Make(0, 4, 1.0, 1, &rng).ok());
  EXPECT_FALSE(PrivateCountMinSketch::Make(16, 0, 1.0, 1, &rng).ok());
  EXPECT_FALSE(PrivateCountMinSketch::Make(16, 4, 1.0, 1, nullptr).ok());
  EXPECT_TRUE(PrivateCountMinSketch::Make(16, 4, 1.0, 1, &rng).ok());
  // epsilon <= 0 disables noise and needs no rng.
  EXPECT_TRUE(PrivateCountMinSketch::Make(16, 4, 0.0, 1, nullptr).ok());
}

TEST(PrivateSketchTest, NoiseScaleIsDepthOverEpsilon) {
  RandomEngine rng(2);
  PrivateCountMinSketch sketch(16, 8, 2.0, 1, &rng);
  EXPECT_DOUBLE_EQ(sketch.NoiseScale(), 4.0);
  EXPECT_DOUBLE_EQ(sketch.epsilon(), 2.0);
}

TEST(PrivateSketchTest, ZeroEpsilonIsExact) {
  PrivateCountMinSketch sketch(1024, 4, 0.0, 3, nullptr);
  sketch.Update(5, 10.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(5), 10.0);
}

TEST(PrivateSketchTest, NoisyEstimatesDeviateFromTruth) {
  RandomEngine rng(4);
  PrivateCountMinSketch sketch(64, 4, 0.5, 5, &rng);
  sketch.Update(7, 100.0);
  EXPECT_NE(sketch.Estimate(7), 100.0);
}

// The min-estimator over j cells each carrying Laplace(j/eps) noise:
// its deviation should scale roughly linearly in j/eps. We check the
// ordering across two epsilons.
TEST(PrivateSketchTest, MoreBudgetMeansLessNoise) {
  const int trials = 200;
  double dev_small_eps = 0.0, dev_large_eps = 0.0;
  for (int t = 0; t < trials; ++t) {
    RandomEngine rng_a(1000 + t);
    RandomEngine rng_b(1000 + t);  // same underlying noise stream
    PrivateCountMinSketch tight(256, 4, 4.0, 9, &rng_a);
    PrivateCountMinSketch loose(256, 4, 0.25, 9, &rng_b);
    tight.Update(3, 50.0);
    loose.Update(3, 50.0);
    dev_large_eps += std::abs(tight.Estimate(3) - 50.0);
    dev_small_eps += std::abs(loose.Estimate(3) - 50.0);
  }
  EXPECT_LT(dev_large_eps, dev_small_eps);
}

TEST(PrivateSketchTest, MemoryMatchesBase) {
  RandomEngine rng(6);
  PrivateCountMinSketch sketch(32, 4, 1.0, 7, &rng);
  EXPECT_GE(sketch.MemoryBytes(), sketch.base().MemoryBytes());
}

}  // namespace
}  // namespace privhp
