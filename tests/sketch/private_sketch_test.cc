#include "sketch/private_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privhp {
namespace {

PrivateCountMinSketch MakeSketch(size_t width, size_t depth, double epsilon,
                                 uint64_t seed, RandomEngine* rng) {
  return PrivateCountMinSketch::Make(width, depth, epsilon, seed, rng)
      .ValueOrDie();
}

TEST(PrivateSketchTest, MakeValidatesArguments) {
  RandomEngine rng(1);
  EXPECT_FALSE(PrivateCountMinSketch::Make(0, 4, 1.0, 1, &rng).ok());
  EXPECT_FALSE(PrivateCountMinSketch::Make(16, 0, 1.0, 1, &rng).ok());
  EXPECT_FALSE(PrivateCountMinSketch::Make(16, 4, 1.0, 1, nullptr).ok());
  EXPECT_TRUE(PrivateCountMinSketch::Make(16, 4, 1.0, 1, &rng).ok());
  // epsilon <= 0 disables noise and needs no rng.
  EXPECT_TRUE(PrivateCountMinSketch::Make(16, 4, 0.0, 1, nullptr).ok());
}

TEST(PrivateSketchTest, PrivatizeValidatesNoiseSource) {
  CountMinSketch base = CountMinSketch::Make(16, 4, 1).ValueOrDie();
  EXPECT_FALSE(
      PrivateCountMinSketch::Privatize(std::move(base), 1.0, nullptr).ok());
}

TEST(PrivateSketchTest, NoiseScaleIsDepthOverEpsilon) {
  RandomEngine rng(2);
  PrivateCountMinSketch sketch = MakeSketch(16, 8, 2.0, 1, &rng);
  EXPECT_DOUBLE_EQ(sketch.NoiseScale(), 4.0);
  EXPECT_DOUBLE_EQ(sketch.epsilon(), 2.0);
}

TEST(PrivateSketchTest, ZeroEpsilonIsExact) {
  PrivateCountMinSketch sketch = MakeSketch(1024, 4, 0.0, 3, nullptr);
  sketch.Update(5, 10.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(5), 10.0);
}

TEST(PrivateSketchTest, NoisyEstimatesDeviateFromTruth) {
  RandomEngine rng(4);
  PrivateCountMinSketch sketch = MakeSketch(64, 4, 0.5, 5, &rng);
  sketch.Update(7, 100.0);
  EXPECT_NE(sketch.Estimate(7), 100.0);
}

// Noise-at-finish equivalence: the noise is data-independent, so
// privatizing an already-accumulated sketch (the sharded build path)
// yields exactly the cells of updating a noise-at-init sketch — each
// cell is one (commutative) addition of the same two values.
TEST(PrivateSketchTest, PrivatizeAfterAccumulationMatchesNoiseAtInit) {
  RandomEngine rng_init(11), rng_finish(11);
  PrivateCountMinSketch at_init = MakeSketch(32, 4, 1.0, 9, &rng_init);

  CountMinSketch base = CountMinSketch::Make(32, 4, 9).ValueOrDie();
  for (uint64_t key = 0; key < 100; ++key) {
    at_init.Update(key % 7, 1.0);
    base.Update(key % 7, 1.0);
  }
  PrivateCountMinSketch at_finish =
      PrivateCountMinSketch::Privatize(std::move(base), 1.0, &rng_finish)
          .ValueOrDie();
  for (size_t row = 0; row < 4; ++row) {
    for (size_t col = 0; col < 32; ++col) {
      EXPECT_DOUBLE_EQ(at_init.base().CellValue(row, col),
                       at_finish.base().CellValue(row, col));
    }
  }
}

// The min-estimator over j cells each carrying Laplace(j/eps) noise:
// its deviation should scale roughly linearly in j/eps. We check the
// ordering across two epsilons.
TEST(PrivateSketchTest, MoreBudgetMeansLessNoise) {
  const int trials = 200;
  double dev_small_eps = 0.0, dev_large_eps = 0.0;
  for (int t = 0; t < trials; ++t) {
    RandomEngine rng_a(1000 + t);
    RandomEngine rng_b(1000 + t);  // same underlying noise stream
    PrivateCountMinSketch tight = MakeSketch(256, 4, 4.0, 9, &rng_a);
    PrivateCountMinSketch loose = MakeSketch(256, 4, 0.25, 9, &rng_b);
    tight.Update(3, 50.0);
    loose.Update(3, 50.0);
    dev_large_eps += std::abs(tight.Estimate(3) - 50.0);
    dev_small_eps += std::abs(loose.Estimate(3) - 50.0);
  }
  EXPECT_LT(dev_large_eps, dev_small_eps);
}

TEST(PrivateSketchTest, MemoryMatchesBase) {
  RandomEngine rng(6);
  PrivateCountMinSketch sketch = MakeSketch(32, 4, 1.0, 7, &rng);
  EXPECT_GE(sketch.MemoryBytes(), sketch.base().MemoryBytes());
}

}  // namespace
}  // namespace privhp
