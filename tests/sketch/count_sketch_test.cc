#include "sketch/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace privhp {
namespace {

TEST(CountSketchTest, MakeRejectsZeroDimensions) {
  EXPECT_FALSE(CountSketch::Make(0, 4, 1).ok());
  EXPECT_FALSE(CountSketch::Make(16, 0, 1).ok());
  EXPECT_TRUE(CountSketch::Make(16, 5, 1).ok());
}

TEST(CountSketchTest, ExactForFewDistinctKeys) {
  CountSketch sketch(512, 5, 3);
  sketch.Update(10, 4.0);
  sketch.Update(11, 9.0);
  EXPECT_NEAR(sketch.Estimate(10), 4.0, 1e-9);
  EXPECT_NEAR(sketch.Estimate(11), 9.0, 1e-9);
  EXPECT_NEAR(sketch.Estimate(999), 0.0, 1e-9);
}

TEST(CountSketchTest, SignedUpdatesCancel) {
  CountSketch sketch(64, 5, 7);
  sketch.Update(42, 10.0);
  sketch.Update(42, -10.0);
  EXPECT_NEAR(sketch.Estimate(42), 0.0, 1e-9);
}

TEST(CountSketchTest, ApproximatelyUnbiasedUnderLoad) {
  // Many colliding keys: the median estimate should track the true count
  // far better than the total load suggests.
  RandomEngine rng(13);
  const int trials = 30;
  double err_sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    CountSketch sketch(64, 7, 100 + t);
    for (uint64_t key = 0; key < 2000; ++key) sketch.Update(key, 1.0);
    sketch.Update(77, 50.0);
    err_sum += sketch.Estimate(77) - 51.0;
  }
  // Unbiased up to median-vs-mean effects: average error well under the
  // per-row load of 2000/64 ~ 31.
  EXPECT_LT(std::abs(err_sum / trials), 10.0);
}

TEST(CountSketchTest, NoiseCoversAllCells) {
  CountSketch a(8, 3, 5);
  RandomEngine rng(3);
  const double before = a.Estimate(1);
  a.AddLaplaceNoise(&rng, 2.0);
  EXPECT_NE(a.Estimate(1), before);
}

TEST(CountSketchTest, MemoryAndSensitivity) {
  CountSketch sketch(32, 6, 1);
  EXPECT_EQ(sketch.L1Sensitivity(), 6u);
  EXPECT_GE(sketch.MemoryBytes(), 32 * 6 * sizeof(double));
}

}  // namespace
}  // namespace privhp
