#include "sketch/exact_oracle.h"

#include <gtest/gtest.h>

namespace privhp {
namespace {

TEST(ExactOracleTest, TracksCountsExactly) {
  ExactOracle oracle;
  oracle.Update(1, 2.0);
  oracle.Update(2, 3.0);
  oracle.Update(1, 1.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(1), 3.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(2), 3.0);
  EXPECT_DOUBLE_EQ(oracle.Estimate(99), 0.0);
  EXPECT_DOUBLE_EQ(oracle.TotalWeight(), 6.0);
}

TEST(ExactOracleTest, SortedCountsDescending) {
  ExactOracle oracle;
  oracle.Update(1, 5.0);
  oracle.Update(2, 9.0);
  oracle.Update(3, 1.0);
  const auto sorted = oracle.SortedCountsDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0], 9.0);
  EXPECT_DOUBLE_EQ(sorted[1], 5.0);
  EXPECT_DOUBLE_EQ(sorted[2], 1.0);
}

TEST(ExactOracleTest, TailNormSkipsTopK) {
  ExactOracle oracle;
  oracle.Update(1, 10.0);
  oracle.Update(2, 5.0);
  oracle.Update(3, 2.0);
  oracle.Update(4, 1.0);
  EXPECT_DOUBLE_EQ(oracle.TailNorm(0), 18.0);
  EXPECT_DOUBLE_EQ(oracle.TailNorm(1), 8.0);
  EXPECT_DOUBLE_EQ(oracle.TailNorm(2), 3.0);
  EXPECT_DOUBLE_EQ(oracle.TailNorm(4), 0.0);
  EXPECT_DOUBLE_EQ(oracle.TailNorm(10), 0.0);
}

}  // namespace
}  // namespace privhp
