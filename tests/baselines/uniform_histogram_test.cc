#include "baselines/uniform_histogram.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(UniformHistogramTest, ValidatesArguments) {
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 100, &rng);
  UniformHistogramOptions options;
  EXPECT_FALSE(BuildUniformHistogram(nullptr, data, options).ok());
  EXPECT_FALSE(BuildUniformHistogram(&domain, {}, options).ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(BuildUniformHistogram(&domain, data, options).ok());
}

TEST(UniformHistogramTest, SamplesInDomain) {
  HypercubeDomain domain(2);
  RandomEngine rng(2);
  const auto data = GenerateGaussianMixture(2, 2048, 2, 0.06, &rng);
  UniformHistogramOptions options;
  options.epsilon = 1.0;
  auto hist = BuildUniformHistogram(&domain, data, options);
  ASSERT_TRUE(hist.ok()) << hist.status();
  for (const Point& p : (*hist)->Generate(400, &rng)) {
    EXPECT_TRUE(domain.Contains(p));
  }
  EXPECT_EQ((*hist)->Name(), "flat-histogram");
}

TEST(UniformHistogramTest, LevelOverrideControlsResolution) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateUniform(1, 1000, &rng);
  UniformHistogramOptions coarse, fine;
  coarse.level = 2;
  fine.level = 10;
  auto h_coarse = BuildUniformHistogram(&domain, data, coarse);
  auto h_fine = BuildUniformHistogram(&domain, data, fine);
  ASSERT_TRUE(h_coarse.ok() && h_fine.ok());
  EXPECT_LT((*h_coarse)->BuildMemoryBytes(), (*h_fine)->BuildMemoryBytes());
}

TEST(UniformHistogramTest, ApproximatesDataAtHighEpsilon) {
  IntervalDomain domain;
  RandomEngine rng(4);
  const auto data = GenerateGaussianMixture(1, 8192, 2, 0.05, &rng);
  UniformHistogramOptions options;
  options.epsilon = 8.0;
  // A flat histogram needs its resolution chosen by hand: the default
  // eps*n-deep grid drowns in per-bucket noise (that failure mode is
  // exactly what the hierarchy fixes, and is measured in the benches).
  options.level = 8;
  auto hist = BuildUniformHistogram(&domain, data, options);
  ASSERT_TRUE(hist.ok());
  RandomEngine gen(5);
  const double w1 =
      Wasserstein1DPoints((*hist)->Generate(8192, &gen), data);
  EXPECT_LT(w1, 0.03);
}

}  // namespace
}  // namespace privhp
