#include "baselines/srrw.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(SrrwTest, ValidatesArguments) {
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 100, &rng);
  SrrwOptions options;
  EXPECT_FALSE(BuildSrrw(3, data, options).ok());
  EXPECT_FALSE(BuildSrrw(1, {}, options).ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(BuildSrrw(1, data, options).ok());
}

TEST(SrrwTest, OneDimensionalSamplesInRange) {
  RandomEngine rng(2);
  const auto data = GenerateGaussianMixture(1, 2048, 2, 0.05, &rng);
  SrrwOptions options;
  options.epsilon = 1.0;
  auto srrw = BuildSrrw(1, data, options);
  ASSERT_TRUE(srrw.ok()) << srrw.status();
  EXPECT_EQ((*srrw)->Name(), "srrw");
  IntervalDomain interval;
  for (const Point& p : (*srrw)->Generate(500, &rng)) {
    EXPECT_TRUE(interval.Contains(p));
  }
  EXPECT_GT((*srrw)->BuildMemoryBytes(), 0u);
}

TEST(SrrwTest, OneDimensionalTracksDistribution) {
  RandomEngine rng(3);
  const auto data = GenerateGaussianMixture(1, 8192, 2, 0.05, &rng);
  SrrwOptions options;
  options.epsilon = 4.0;
  auto srrw = BuildSrrw(1, data, options);
  ASSERT_TRUE(srrw.ok());
  RandomEngine gen(4);
  const double w1 =
      Wasserstein1DPoints((*srrw)->Generate(8192, &gen), data);
  EXPECT_LT(w1, 0.03);
  // And much better than uniform.
  const auto uniform = GenerateUniform(1, 8192, &gen);
  EXPECT_LT(w1, Wasserstein1DPoints(uniform, data));
}

TEST(SrrwTest, HilbertLiftProducesInSquareSamples) {
  RandomEngine rng(5);
  const auto data = GenerateGaussianMixture(2, 4096, 3, 0.05, &rng);
  SrrwOptions options;
  options.epsilon = 2.0;
  auto srrw = BuildSrrw(2, data, options);
  ASSERT_TRUE(srrw.ok()) << srrw.status();
  EXPECT_EQ((*srrw)->Name(), "srrw-hilbert");
  HypercubeDomain square(2);
  for (const Point& p : (*srrw)->Generate(500, &rng)) {
    EXPECT_TRUE(square.Contains(p));
  }
}

TEST(SrrwTest, HilbertLiftPreservesSpatialStructure) {
  RandomEngine rng(6);
  // Mass concentrated in one corner: synthetic data must follow.
  std::vector<Point> data;
  for (int i = 0; i < 4096; ++i) {
    data.push_back(Point{rng.UniformDouble(0.0, 0.25),
                         rng.UniformDouble(0.0, 0.25)});
  }
  SrrwOptions options;
  options.epsilon = 4.0;
  auto srrw = BuildSrrw(2, data, options);
  ASSERT_TRUE(srrw.ok());
  RandomEngine gen(7);
  const auto synthetic = (*srrw)->Generate(2000, &gen);
  int inside = 0;
  for (const Point& p : synthetic) {
    if (p[0] <= 0.3 && p[1] <= 0.3) ++inside;
  }
  EXPECT_GT(inside, 1500);  // >75% in the (slightly padded) corner
}

}  // namespace
}  // namespace privhp
