#include "baselines/smooth.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(SmoothTest, ValidatesArguments) {
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 100, &rng);
  SmoothOptions options;
  EXPECT_FALSE(BuildSmooth(3, data, options).ok());
  EXPECT_FALSE(BuildSmooth(1, {}, options).ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(BuildSmooth(1, data, options).ok());
  options.epsilon = 1.0;
  options.order = 0;
  EXPECT_FALSE(BuildSmooth(1, data, options).ok());
}

TEST(SmoothTest, SamplesStayInUnitInterval) {
  RandomEngine rng(2);
  const auto data = GenerateGaussianMixture(1, 2048, 2, 0.08, &rng);
  SmoothOptions options;
  options.epsilon = 1.0;
  auto smooth = BuildSmooth(1, data, options);
  ASSERT_TRUE(smooth.ok()) << smooth.status();
  IntervalDomain interval;
  for (const Point& p : (*smooth)->Generate(500, &rng)) {
    EXPECT_TRUE(interval.Contains(p));
  }
}

TEST(SmoothTest, TracksSmoothDensity) {
  RandomEngine rng(3);
  // A single wide Gaussian is exactly the smooth regime Smooth targets.
  const auto data = GenerateGaussianMixture(1, 8192, 1, 0.12, &rng);
  SmoothOptions options;
  options.epsilon = 4.0;
  options.order = 12;
  auto smooth = BuildSmooth(1, data, options);
  ASSERT_TRUE(smooth.ok());
  RandomEngine gen(4);
  const double w1 =
      Wasserstein1DPoints((*smooth)->Generate(8192, &gen), data);
  const auto uniform = GenerateUniform(1, 8192, &gen);
  EXPECT_LT(w1, 0.05);
  EXPECT_LT(w1, Wasserstein1DPoints(uniform, data));
}

TEST(SmoothTest, TwoDimensionalBuildWorks) {
  RandomEngine rng(5);
  const auto data = GenerateGaussianMixture(2, 4096, 1, 0.1, &rng);
  SmoothOptions options;
  options.epsilon = 2.0;
  options.order = 6;
  auto smooth = BuildSmooth(2, data, options);
  ASSERT_TRUE(smooth.ok()) << smooth.status();
  HypercubeDomain square(2);
  for (const Point& p : (*smooth)->Generate(300, &rng)) {
    EXPECT_TRUE(square.Contains(p));
  }
  // Memory is dominated by the dataset (the O(dn) column of Table 1).
  EXPECT_GE((*smooth)->BuildMemoryBytes(),
            data.size() * 2 * sizeof(double));
}

TEST(SmoothTest, SurvivesExtremeNoise) {
  RandomEngine rng(6);
  const auto data = GenerateUniform(1, 200, &rng);
  SmoothOptions options;
  options.epsilon = 1e-4;  // noise swamps every coefficient
  auto smooth = BuildSmooth(1, data, options);
  ASSERT_TRUE(smooth.ok());
  // Degenerate density falls back to something sampleable.
  const auto pts = (*smooth)->Generate(100, &rng);
  EXPECT_EQ(pts.size(), 100u);
}

}  // namespace
}  // namespace privhp
