#include "baselines/nonprivate.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include <set>

#include "common/random.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(NonPrivateResamplerTest, SamplesComeFromTheData) {
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 50, &rng);
  std::set<double> values;
  for (const Point& p : data) values.insert(p[0]);
  NonPrivateResampler resampler(data);
  for (const Point& p : resampler.Generate(200, &rng)) {
    EXPECT_TRUE(values.count(p[0])) << "sample not in dataset";
  }
}

TEST(NonPrivateResamplerTest, MemoryScalesWithData) {
  RandomEngine rng(2);
  NonPrivateResampler small(GenerateUniform(1, 100, &rng));
  NonPrivateResampler large(GenerateUniform(1, 10000, &rng));
  EXPECT_GT(large.BuildMemoryBytes(), small.BuildMemoryBytes());
}

TEST(BuildPrivHPSourceTest, DefaultsExpectedNToDataSize) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateUniform(1, 777, &rng);
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 8;
  // expected_n deliberately left 0: the adapter fills it from the data.
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_NE((*source)->Name().find("privhp"), std::string::npos);
  EXPECT_GT((*source)->BuildMemoryBytes(), 0u);
  const auto synthetic = (*source)->Generate(100, &rng);
  EXPECT_EQ(synthetic.size(), 100u);
}

TEST(BuildPrivHPSourceTest, ReportsBuilderPeakNotTreeMemory) {
  IntervalDomain domain;
  RandomEngine rng(4);
  const auto data = GenerateUniform(1, 4096, &rng);
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 4;
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok());
  // The builder footprint includes the sketches, which dominate the
  // pruned tree: peak memory must exceed a trivial tree's few nodes.
  EXPECT_GT((*source)->BuildMemoryBytes(), size_t{10000});
}

}  // namespace
}  // namespace privhp
