#include "baselines/pmm.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include "common/random.h"
#include "domain/interval_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(PmmTest, ValidatesArguments) {
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 100, &rng);
  PmmOptions options;
  EXPECT_FALSE(BuildPmm(nullptr, data, options).ok());
  EXPECT_FALSE(BuildPmm(&domain, {}, options).ok());
  options.epsilon = -1.0;
  EXPECT_FALSE(BuildPmm(&domain, data, options).ok());
}

TEST(PmmTest, ProducesConsistentCompleteTree) {
  IntervalDomain domain;
  RandomEngine rng(2);
  const auto data = GenerateUniform(1, 2048, &rng);
  PmmOptions options;
  options.epsilon = 1.0;
  auto pmm = BuildPmm(&domain, data, options);
  ASSERT_TRUE(pmm.ok()) << pmm.status();
  const PartitionTree& tree = (*pmm)->tree();
  EXPECT_EQ(tree.MaxDepth(), 11);  // ceil(log2 2048)
  EXPECT_EQ(tree.num_nodes(), (size_t{2} << 11) - 1);
  EXPECT_TRUE(tree.Validate(1e-6).ok());
  EXPECT_EQ((*pmm)->BuildMemoryBytes(), tree.MemoryBytes());
}

TEST(PmmTest, DepthOverrideRespected) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateUniform(1, 1000, &rng);
  PmmOptions options;
  options.depth = 6;
  auto pmm = BuildPmm(&domain, data, options);
  ASSERT_TRUE(pmm.ok());
  EXPECT_EQ((*pmm)->tree().MaxDepth(), 6);
}

TEST(PmmTest, AccuracyImprovesWithEpsilon) {
  IntervalDomain domain;
  RandomEngine rng(4);
  const auto data = GenerateGaussianMixture(1, 4096, 3, 0.05, &rng);
  auto w1_at = [&](double epsilon) {
    double total = 0.0;
    for (int s = 0; s < 3; ++s) {
      PmmOptions options;
      options.epsilon = epsilon;
      options.seed = 100 + s;
      auto pmm = BuildPmm(&domain, data, options);
      PRIVHP_CHECK(pmm.ok());
      RandomEngine gen(200 + s);
      total += Wasserstein1DPoints((*pmm)->Generate(4096, &gen), data);
    }
    return total / 3;
  };
  EXPECT_LT(w1_at(8.0), w1_at(0.1));
}

TEST(PmmTest, CloseToDataAtModerateEpsilon) {
  IntervalDomain domain;
  RandomEngine rng(5);
  const auto data = GenerateGaussianMixture(1, 8192, 2, 0.04, &rng);
  PmmOptions options;
  options.epsilon = 4.0;
  auto pmm = BuildPmm(&domain, data, options);
  ASSERT_TRUE(pmm.ok());
  RandomEngine gen(6);
  const double w1 =
      Wasserstein1DPoints((*pmm)->Generate(8192, &gen), data);
  // PMM at eps n = 2^15 should track the distribution closely.
  EXPECT_LT(w1, 0.02);
}

}  // namespace
}  // namespace privhp
