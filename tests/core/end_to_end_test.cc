// Integration tests across the whole stack: epsilon / k / skew trends,
// cross-domain builds, and downstream range-query utility.

#include <gtest/gtest.h>

#include "common/macros.h"

#include "baselines/nonprivate.h"
#include "baselines/uniform_histogram.h"
#include "common/random.h"
#include "core/builder.h"
#include "domain/geo_domain.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "domain/ipv4_domain.h"
#include "eval/metrics.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

double MeasureW1(const Domain& domain, const std::vector<Point>& data,
                 PrivHPOptions options, int num_seeds) {
  double total = 0.0;
  for (int s = 0; s < num_seeds; ++s) {
    options.seed = 1000 + s;
    options.expected_n = data.size();
    auto source = BuildPrivHPSource(&domain, data, options);
    PRIVHP_CHECK(source.ok());
    RandomEngine rng(2000 + s);
    const auto synthetic = (*source)->Generate(data.size(), &rng);
    if (domain.dimension() == 1) {
      total += Wasserstein1DPoints(synthetic, data);
    } else {
      RandomEngine proj_rng(3000 + s);
      total += SlicedW1(synthetic, data, 16, &proj_rng);
    }
  }
  return total / num_seeds;
}

TEST(EndToEndTest, MoreBudgetMoreUtility) {
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateGaussianMixture(1, 4096, 3, 0.05, &rng);
  PrivHPOptions low, high;
  low.epsilon = 0.1;
  high.epsilon = 8.0;
  low.k = high.k = 16;
  const double w1_low_eps = MeasureW1(domain, data, low, 3);
  const double w1_high_eps = MeasureW1(domain, data, high, 3);
  EXPECT_LT(w1_high_eps, w1_low_eps);
}

TEST(EndToEndTest, MoreMemoryMoreUtilityOnSkewedData) {
  IntervalDomain domain;
  RandomEngine rng(2);
  const auto data = GenerateZipfCells(1, 4096, 9, 1.4, &rng);
  // Fix L* low so pruning (not the exact-counter prefix) carries the deep
  // levels — the regime where k is the memory knob — and keep the sketch
  // depth modest so the jk noise term does not mask the tail term.
  PrivHPOptions small_k, large_k;
  small_k.epsilon = large_k.epsilon = 1.0;
  small_k.l_star = large_k.l_star = 3;
  small_k.l_max = large_k.l_max = 9;
  small_k.sketch_depth = large_k.sketch_depth = 5;
  small_k.k = 2;
  large_k.k = 64;
  const double w1_small = MeasureW1(domain, data, small_k, 3);
  const double w1_large = MeasureW1(domain, data, large_k, 3);
  EXPECT_LT(w1_large, w1_small);
}

TEST(EndToEndTest, BeatsFlatHistogramOnSkewedData) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateZipfCells(1, 4096, 10, 1.8, &rng);
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 32;
  const double w1_privhp = MeasureW1(domain, data, options, 3);

  double w1_flat = 0.0;
  for (int s = 0; s < 3; ++s) {
    UniformHistogramOptions flat;
    flat.epsilon = 1.0;
    flat.seed = 500 + s;
    auto hist = BuildUniformHistogram(&domain, data, flat);
    PRIVHP_CHECK(hist.ok());
    RandomEngine gen_rng(600 + s);
    w1_flat +=
        Wasserstein1DPoints((*hist)->Generate(data.size(), &gen_rng), data);
  }
  w1_flat /= 3;
  EXPECT_LT(w1_privhp, w1_flat);
}

TEST(EndToEndTest, HypercubeBuildProducesUsableSynthetic) {
  HypercubeDomain domain(3);
  RandomEngine rng(4);
  const auto data = GenerateGaussianMixture(3, 3000, 2, 0.06, &rng);
  PrivHPOptions options;
  options.epsilon = 2.0;
  options.k = 32;
  options.expected_n = data.size();
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok()) << source.status();
  const auto synthetic = (*source)->Generate(3000, &rng);
  for (const Point& p : synthetic) EXPECT_TRUE(domain.Contains(p));
  // Synthetic must be much closer to the data than a uniform cloud.
  const auto uniform = GenerateUniform(3, 3000, &rng);
  RandomEngine proj(5);
  EXPECT_LT(SlicedW1(synthetic, data, 16, &proj),
            0.8 * SlicedW1(uniform, data, 16, &proj));
}

TEST(EndToEndTest, Ipv4StreamYieldsSubnetFidelity) {
  Ipv4Domain domain;
  RandomEngine rng(6);
  const auto data = GenerateIpv4Trace(6000, 12, 1.3, &rng);
  PrivHPOptions options;
  options.epsilon = 2.0;
  options.k = 32;
  options.expected_n = data.size();
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok()) << source.status();
  const auto synthetic = (*source)->Generate(6000, &rng);
  auto err = RangeQueryError(domain, data, synthetic, 50, 8, &rng);
  ASSERT_TRUE(err.ok());
  // Random /1../8 queries answered from synthetic data: small average
  // absolute error (frequencies live in [0,1]).
  EXPECT_LT(*err, 0.08);
}

TEST(EndToEndTest, GeoDomainRoundTrip) {
  GeoDomain domain(-34.2, -33.5, 150.5, 151.5);
  RandomEngine rng(7);
  const auto data =
      GenerateGeoHotspots(-34.2, -33.5, 150.5, 151.5, 4000, 4, &rng);
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 32;
  options.expected_n = data.size();
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok()) << source.status();
  for (const Point& p : (*source)->Generate(1000, &rng)) {
    EXPECT_TRUE(domain.Contains(p));
  }
}

TEST(EndToEndTest, DisabledPrivacyHighKApproachesResampling) {
  IntervalDomain domain;
  RandomEngine rng(8);
  const auto data = GenerateGaussianMixture(1, 4096, 2, 0.05, &rng);
  PrivHPOptions options;
  options.disable_privacy_for_ablation = true;
  options.k = 1 << 12;
  options.expected_n = data.size();
  auto source = BuildPrivHPSource(&domain, data, options);
  ASSERT_TRUE(source.ok());
  const auto synthetic = (*source)->Generate(4096, &rng);
  NonPrivateResampler resampler(data);
  const auto resampled = resampler.Generate(4096, &rng);
  const double w1_tree = Wasserstein1DPoints(synthetic, data);
  const double w1_boot = Wasserstein1DPoints(resampled, data);
  // The noiseless unpruned tree resolves the data to leaf resolution;
  // both should be within sampling error of the data (~1/sqrt(n)).
  EXPECT_LT(w1_tree, w1_boot + 0.02);
}

}  // namespace
}  // namespace privhp
