#include "core/planner.h"

#include <gtest/gtest.h>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

TEST(PlannerTest, Corollary1Defaults) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 8;
  options.expected_n = 1 << 16;  // log2 n = 16
  auto plan = PlanParameters(domain, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->l_max, 16);            // ceil(log2(eps n))
  EXPECT_EQ(plan->sketch_depth, 16u);    // ceil(log2 n)
  EXPECT_EQ(plan->sketch_width, 16u);    // 2k
  EXPECT_EQ(plan->theory_memory_words, 8u * 16 * 16);
  EXPECT_EQ(plan->l_star, 11);           // ceil(log2 2048)
  EXPECT_EQ(plan->grow_to, 15);          // L - 1
  // Budget covers levels 0..L and sums to eps.
  ASSERT_EQ(plan->budget.sigma.size(), 17u);
  double sum = 0.0;
  for (double s : plan->budget.sigma) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PlannerTest, EpsilonScalesDepth) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.k = 4;
  options.expected_n = 1 << 12;
  options.epsilon = 0.25;  // eps n = 2^10
  auto plan = PlanParameters(domain, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->l_max, 10);
}

TEST(PlannerTest, ExplicitOverridesWin) {
  HypercubeDomain domain(2);
  PrivHPOptions options;
  options.k = 4;
  options.expected_n = 10000;
  options.l_star = 3;
  options.l_max = 12;
  options.grow_to = 12;
  options.sketch_width = 64;
  options.sketch_depth = 5;
  auto plan = PlanParameters(domain, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->l_star, 3);
  EXPECT_EQ(plan->l_max, 12);
  EXPECT_EQ(plan->grow_to, 12);
  EXPECT_EQ(plan->sketch_width, 64u);
  EXPECT_EQ(plan->sketch_depth, 5u);
}

TEST(PlannerTest, RejectsMissingN) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 0;
  EXPECT_TRUE(PlanParameters(domain, options).status().IsInvalidArgument());
}

TEST(PlannerTest, RejectsBadEpsilonAndK) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 1000;
  options.epsilon = -1.0;
  EXPECT_FALSE(PlanParameters(domain, options).ok());
  options.epsilon = 1.0;
  options.k = 0;
  EXPECT_FALSE(PlanParameters(domain, options).ok());
}

TEST(PlannerTest, RejectsInvertedLevels) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 1000;
  options.l_star = 9;
  options.l_max = 4;
  EXPECT_TRUE(PlanParameters(domain, options).status().IsInvalidArgument());
}

TEST(PlannerTest, ClampsDepthToDomain) {
  // IPv4-like shallow domain: an interval with a small max level.
  IntervalDomain shallow(8);
  PrivHPOptions options;
  options.epsilon = 8.0;
  options.k = 4;
  options.expected_n = 1 << 20;  // would want L = 23
  auto plan = PlanParameters(shallow, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->l_max, 8);
  EXPECT_LE(plan->l_star, plan->l_max);
  EXPECT_LE(plan->grow_to, plan->l_max);
}

TEST(PlannerTest, PrivacyDisabledSkipsBudget) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 4096;
  options.disable_privacy_for_ablation = true;
  options.epsilon = -1.0;  // irrelevant when disabled
  auto plan = PlanParameters(domain, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->privacy_disabled);
  EXPECT_TRUE(plan->budget.sigma.empty());
  EXPECT_NE(plan->ToString().find("PRIVACY DISABLED"), std::string::npos);
}

TEST(PlannerTest, ToStringMentionsKeyParameters) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = 4096;
  options.k = 5;
  auto plan = PlanParameters(domain, options);
  ASSERT_TRUE(plan.ok());
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("k=5"), std::string::npos);
  EXPECT_NE(s.find("L="), std::string::npos);
}

}  // namespace
}  // namespace privhp
