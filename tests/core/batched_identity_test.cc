// Batched-vs-scalar identity, columnar edition: the three ingest
// flavours — per-point Add, Point-array AddBatch, and columnar
// AddBatch(PointBatch) — must leave bit-identical shard state (exact
// counters and sketch cells) and produce byte-identical released
// artifacts, at every SIMD level this binary can run. This is the
// always-on contract that lets the SIMD kernels replace the scalar
// arithmetic in the ingest hot path: not close, identical.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/simd.h"
#include "core/builder.h"
#include "core/shard.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_serialization.h"

namespace privhp {
namespace {

PrivHPOptions IdentityOptions(uint64_t n) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 8;
  options.expected_n = n;
  options.seed = 21;
  return options;
}

std::vector<Point> SkewedData(int dim, size_t n, uint64_t seed) {
  RandomEngine rng(seed);
  std::vector<Point> data;
  data.reserve(n);
  Point p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (int c = 0; c < dim; ++c) {
      p[c] = rng.UniformDouble() * rng.UniformDouble();
    }
    data.push_back(p);
  }
  return data;
}

PrivHPShard MakeShard(const Domain* domain, const PrivHPOptions& options) {
  auto builder = PrivHPBuilder::Make(domain, options);
  PRIVHP_CHECK(builder.ok());
  auto shard = builder->NewShard();
  PRIVHP_CHECK(shard.ok());
  return std::move(*shard);
}

// Exact equality on every counter and sketch cell — EXPECT_EQ on the
// doubles, not EXPECT_DOUBLE_EQ: the contract is bitwise.
void ExpectShardStateIdentical(const PrivHPShard& a, const PrivHPShard& b,
                               const char* label) {
  ASSERT_EQ(a.tree().num_nodes(), b.tree().num_nodes());
  for (size_t i = 0; i < a.tree().num_nodes(); ++i) {
    ASSERT_EQ(a.tree().node(static_cast<NodeId>(i)).count,
              b.tree().node(static_cast<NodeId>(i)).count)
        << label << ": tree node " << i;
  }
  ASSERT_EQ(a.sketches().size(), b.sketches().size());
  for (size_t s = 0; s < a.sketches().size(); ++s) {
    const CountMinSketch& sa = a.sketches()[s];
    const CountMinSketch& sb = b.sketches()[s];
    ASSERT_EQ(sa.depth(), sb.depth());
    ASSERT_EQ(sa.width(), sb.width());
    for (size_t row = 0; row < sa.depth(); ++row) {
      for (size_t col = 0; col < sa.width(); ++col) {
        ASSERT_EQ(sa.CellValue(row, col), sb.CellValue(row, col))
            << label << ": sketch " << s << " cell (" << row << ", " << col
            << ")";
      }
    }
  }
}

class BatchedIdentityTest : public ::testing::TestWithParam<int> {
 protected:
  int dim() const { return GetParam(); }
};

TEST_P(BatchedIdentityTest, ThreeIngestFlavoursLeaveIdenticalShardState) {
  IntervalDomain interval;
  HypercubeDomain cube(dim() > 1 ? dim() : 2);
  const Domain* domain =
      dim() == 1 ? static_cast<const Domain*>(&interval) : &cube;
  const size_t n = 4096;
  const PrivHPOptions options = IdentityOptions(n);
  const std::vector<Point> data = SkewedData(dim(), n, 400 + dim());
  const PointBatch staged = PointBatch::FromPoints(data);

  PrivHPShard scalar = MakeShard(domain, options);
  for (const Point& x : data) ASSERT_TRUE(scalar.Add(x).ok());

  PrivHPShard batched = MakeShard(domain, options);
  ASSERT_TRUE(batched.AddBatch(data).ok());
  ExpectShardStateIdentical(scalar, batched, "point-array batch");

  PrivHPShard columnar = MakeShard(domain, options);
  ASSERT_TRUE(columnar.AddBatch(staged).ok());
  ExpectShardStateIdentical(scalar, columnar, "columnar batch");
}

// The columnar path must match the scalar baseline at EVERY kernel tier
// the host can run, not just the widest one — this is the ctest face of
// the runtime-dispatch contract (the bench gate checks only the active
// level).
TEST_P(BatchedIdentityTest, ColumnarMatchesScalarAtEverySimdLevel) {
  IntervalDomain interval;
  HypercubeDomain cube(dim() > 1 ? dim() : 2);
  const Domain* domain =
      dim() == 1 ? static_cast<const Domain*>(&interval) : &cube;
  const size_t n = 2048;
  const PrivHPOptions options = IdentityOptions(n);
  const std::vector<Point> data = SkewedData(dim(), n, 500 + dim());
  const PointBatch staged = PointBatch::FromPoints(data);

  PrivHPShard scalar = MakeShard(domain, options);
  for (const Point& x : data) ASSERT_TRUE(scalar.Add(x).ok());

  const int widest = static_cast<int>(DetectedSimdLevel());
  for (int level = 0; level <= widest; ++level) {
    ForceSimdLevel(static_cast<SimdLevel>(level));
    PrivHPShard columnar = MakeShard(domain, options);
    ASSERT_TRUE(columnar.AddBatch(staged).ok());
    ExpectShardStateIdentical(
        scalar, columnar,
        SimdLevelName(static_cast<SimdLevel>(level)).c_str());
  }
  ClearForcedSimdLevel();
}

// Released artifacts — after Laplace noise, growth, and consistency —
// must serialize byte-identically across the ingest flavours: identical
// shard state plus a seeded noise stream leaves nothing downstream to
// diverge.
TEST_P(BatchedIdentityTest, ReleasedArtifactsAreByteIdentical) {
  IntervalDomain interval;
  HypercubeDomain cube(dim() > 1 ? dim() : 2);
  const Domain* domain =
      dim() == 1 ? static_cast<const Domain*>(&interval) : &cube;
  const size_t n = 4096;
  const PrivHPOptions options = IdentityOptions(n);
  const std::vector<Point> data = SkewedData(dim(), n, 600 + dim());
  const PointBatch staged = PointBatch::FromPoints(data);

  auto serialize = [](const PrivHPGenerator& g) {
    std::stringstream ss;
    PRIVHP_CHECK(SaveTree(g.tree(), &ss).ok());
    return ss.str();
  };

  auto scalar_builder = PrivHPBuilder::Make(domain, options);
  auto batched_builder = PrivHPBuilder::Make(domain, options);
  auto columnar_builder = PrivHPBuilder::Make(domain, options);
  ASSERT_TRUE(scalar_builder.ok() && batched_builder.ok() &&
              columnar_builder.ok());
  for (const Point& x : data) ASSERT_TRUE(scalar_builder->Add(x).ok());
  ASSERT_TRUE(batched_builder->AddAll(data).ok());
  ASSERT_TRUE(columnar_builder->AddAll(staged).ok());

  auto scalar_gen = std::move(*scalar_builder).Finish();
  auto batched_gen = std::move(*batched_builder).Finish();
  auto columnar_gen = std::move(*columnar_builder).Finish();
  ASSERT_TRUE(scalar_gen.ok() && batched_gen.ok() && columnar_gen.ok());

  const std::string scalar_bytes = serialize(*scalar_gen);
  EXPECT_EQ(scalar_bytes, serialize(*batched_gen));
  EXPECT_EQ(scalar_bytes, serialize(*columnar_gen));
}

INSTANTIATE_TEST_SUITE_P(Dims, BatchedIdentityTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace privhp
