#include "core/generator.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include <cstdio>

#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

PrivHPGenerator BuildSmall(const Domain* domain,
                           const std::vector<Point>& data) {
  PrivHPOptions options;
  options.epsilon = 2.0;
  options.k = 8;
  options.expected_n = data.size();
  options.seed = 13;
  auto builder = PrivHPBuilder::Make(domain, options);
  PRIVHP_CHECK(builder.ok());
  PRIVHP_CHECK(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  PRIVHP_CHECK(generator.ok());
  return std::move(*generator);
}

TEST(GeneratorTest, SamplesStayInDomain) {
  HypercubeDomain domain(2);
  RandomEngine rng(17);
  const PrivHPGenerator generator =
      BuildSmall(&domain, GenerateGaussianMixture(2, 2000, 3, 0.05, &rng));
  const auto samples = generator.Generate(500, &rng);
  ASSERT_EQ(samples.size(), 500u);
  for (const Point& p : samples) EXPECT_TRUE(domain.Contains(p));
}

TEST(GeneratorTest, TotalMassNearN) {
  HypercubeDomain domain(2);
  RandomEngine rng(19);
  const size_t n = 4000;
  const PrivHPGenerator generator =
      BuildSmall(&domain, GenerateUniform(2, n, &rng));
  // Root noise is Laplace with modest scale: mass should be close to n.
  EXPECT_NEAR(generator.TotalMass(), static_cast<double>(n),
              0.05 * static_cast<double>(n));
}

TEST(GeneratorTest, SaveLoadPreservesSamplingDistribution) {
  HypercubeDomain domain(2);
  RandomEngine rng(23);
  const PrivHPGenerator generator =
      BuildSmall(&domain, GenerateGaussianMixture(2, 1500, 2, 0.04, &rng));
  const std::string path = ::testing::TempDir() + "/privhp_generator.txt";
  ASSERT_TRUE(generator.Save(path).ok());
  auto loaded = PrivHPGenerator::Load(&domain, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Identical trees => identical samples under the same seed.
  RandomEngine rng_a(99), rng_b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(generator.Sample(&rng_a), loaded->Sample(&rng_b));
  }
  std::remove(path.c_str());
}

TEST(GeneratorTest, MemoryMatchesTree) {
  HypercubeDomain domain(2);
  RandomEngine rng(29);
  const PrivHPGenerator generator =
      BuildSmall(&domain, GenerateUniform(2, 1000, &rng));
  EXPECT_EQ(generator.MemoryBytes(), generator.tree().MemoryBytes());
  EXPECT_GT(generator.MemoryBytes(), 0u);
}

TEST(GeneratorTest, LoadRejectsMissingFile) {
  HypercubeDomain domain(2);
  EXPECT_FALSE(PrivHPGenerator::Load(&domain, "/no/such/file").ok());
}

// Regression for the PR-1 CLI bug: `privhp sample --dim 2` against a
// dim-1 tree must error instead of fabricating 2-D points.
TEST(GeneratorTest, LoadRejectsWrongDomainDimension) {
  HypercubeDomain dim1(1);
  RandomEngine rng(31);
  const PrivHPGenerator generator =
      BuildSmall(&dim1, GenerateUniform(1, 1000, &rng));
  const std::string path = ::testing::TempDir() + "/privhp_dim1.txt";
  ASSERT_TRUE(generator.Save(path).ok());

  HypercubeDomain dim2(2);
  auto loaded = PrivHPGenerator::Load(&dim2, path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();

  // The matching domain still loads.
  EXPECT_TRUE(PrivHPGenerator::Load(&dim1, path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace privhp
