#include "core/builder.h"

#include <gtest/gtest.h>

#include "common/macros.h"

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/tail.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

PrivHPOptions SmallOptions(uint64_t n) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 8;
  options.expected_n = n;
  options.seed = 7;
  return options;
}

TEST(BuilderTest, MakeRejectsNullDomain) {
  EXPECT_FALSE(PrivHPBuilder::Make(nullptr, SmallOptions(1000)).ok());
}

TEST(BuilderTest, AccountantSpendsExactlyEpsilon) {
  IntervalDomain domain;
  PrivHPOptions options = SmallOptions(4096);
  options.epsilon = 1.5;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok()) << builder.status();
  EXPECT_NEAR(builder->accountant().Spent(), 1.5, 1e-9);
  // One ledger entry per level 0..L.
  EXPECT_EQ(builder->accountant().ledger().size(),
            static_cast<size_t>(builder->plan().l_max) + 1);
}

TEST(BuilderTest, AddValidatesPoints) {
  IntervalDomain domain;
  auto builder = PrivHPBuilder::Make(&domain, SmallOptions(1000));
  ASSERT_TRUE(builder.ok());
  EXPECT_TRUE(builder->Add({0.5}).ok());
  EXPECT_TRUE(builder->Add({1.5}).IsOutOfRange());
  EXPECT_TRUE(builder->Add({0.5, 0.5}).IsInvalidArgument());
  EXPECT_EQ(builder->num_processed(), 1u);
}

TEST(BuilderTest, MemoryIndependentOfStreamLength) {
  IntervalDomain domain;
  RandomEngine rng(3);
  size_t memory_small = 0, memory_large = 0;
  {
    auto builder = PrivHPBuilder::Make(&domain, SmallOptions(1 << 12));
    ASSERT_TRUE(builder.ok());
    for (int i = 0; i < 1 << 8; ++i) {
      ASSERT_TRUE(builder->Add({rng.UniformDouble()}).ok());
    }
    memory_small = builder->MemoryBytes();
  }
  {
    auto builder = PrivHPBuilder::Make(&domain, SmallOptions(1 << 12));
    ASSERT_TRUE(builder.ok());
    for (int i = 0; i < 1 << 12; ++i) {
      ASSERT_TRUE(builder->Add({rng.UniformDouble()}).ok());
    }
    memory_large = builder->MemoryBytes();
  }
  // The footprint is set by the plan, not the number of points processed.
  EXPECT_EQ(memory_small, memory_large);
}

TEST(BuilderTest, MemoryScalesWithK) {
  IntervalDomain domain;
  PrivHPOptions small_k = SmallOptions(1 << 14);
  small_k.k = 4;
  PrivHPOptions large_k = SmallOptions(1 << 14);
  large_k.k = 64;
  auto b_small = PrivHPBuilder::Make(&domain, small_k);
  auto b_large = PrivHPBuilder::Make(&domain, large_k);
  ASSERT_TRUE(b_small.ok() && b_large.ok());
  EXPECT_GT(b_large->MemoryBytes(), b_small->MemoryBytes());
  const auto breakdown = b_large->memory_breakdown();
  EXPECT_EQ(breakdown.total_bytes,
            breakdown.tree_bytes + breakdown.sketch_bytes);
}

TEST(BuilderTest, PrivacyDisabledKeepsExactCountsAtExactLevels) {
  IntervalDomain domain;
  PrivHPOptions options = SmallOptions(256);
  options.disable_privacy_for_ablation = true;
  options.l_star = 3;
  options.l_max = 6;
  options.grow_to = 6;
  options.k = 1 << 10;  // no pruning
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  RandomEngine rng(5);
  std::vector<Point> data = GenerateUniform(1, 256, &rng);
  ASSERT_TRUE(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok()) << generator.status();

  // With no noise and no pruning, level-6 counts equal the exact counts.
  auto truth = LevelCounts(domain, data, 6);
  ASSERT_TRUE(truth.ok());
  const PartitionTree& tree = generator->tree();
  for (size_t i = 0; i < truth->size(); ++i) {
    const NodeId id = tree.Find(CellId{6, i});
    ASSERT_NE(id, kInvalidNode);
    EXPECT_NEAR(tree.node(id).count, (*truth)[i], 1e-6) << "cell " << i;
  }
}

TEST(BuilderTest, FinishProducesConsistentTreeAtGrowDepth) {
  HypercubeDomain domain(2);
  PrivHPOptions options = SmallOptions(2048);
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  RandomEngine rng(9);
  ASSERT_TRUE(builder->AddAll(GenerateUniform(2, 2048, &rng)).ok());
  const int expected_depth = builder->plan().grow_to;
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok()) << generator.status();
  EXPECT_EQ(generator->tree().MaxDepth(), expected_depth);
  EXPECT_TRUE(generator->tree().Validate(1e-6).ok());
}

TEST(BuilderTest, UseAfterFinishFails) {
  IntervalDomain domain;
  auto builder = PrivHPBuilder::Make(&domain, SmallOptions(512));
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->Add({0.25}).ok());
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
  EXPECT_TRUE(builder->Add({0.5}).IsFailedPrecondition());
  EXPECT_TRUE(std::move(*builder).Finish().status().IsFailedPrecondition());
}

TEST(BuilderTest, SameSeedSameGenerator) {
  IntervalDomain domain;
  RandomEngine rng(11);
  const std::vector<Point> data = GenerateUniform(1, 1024, &rng);
  auto build = [&]() {
    auto builder = PrivHPBuilder::Make(&domain, SmallOptions(1024));
    PRIVHP_CHECK(builder.ok());
    PRIVHP_CHECK(builder->AddAll(data).ok());
    auto generator = std::move(*builder).Finish();
    PRIVHP_CHECK(generator.ok());
    return std::move(*generator);
  };
  const PrivHPGenerator a = build();
  const PrivHPGenerator b = build();
  ASSERT_EQ(a.tree().num_nodes(), b.tree().num_nodes());
  for (size_t i = 0; i < a.tree().num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.tree().node(static_cast<NodeId>(i)).count,
                     b.tree().node(static_cast<NodeId>(i)).count);
  }
}

}  // namespace
}  // namespace privhp
