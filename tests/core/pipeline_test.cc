// EXP-F4: the proof-pipeline of Section 7 (Figure 4), executed with real
// machinery. We construct T_X (complete, exact), T_exact (exact top-k
// pruning; Lemma 7), and the full T_PrivHP, and check each measured W1
// against the corresponding bound.

#include <gtest/gtest.h>

#include "common/macros.h"

#include <cmath>

#include "baselines/nonprivate.h"
#include "common/random.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "dp/budget_allocator.h"
#include "eval/tail.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"
#include "hierarchy/grow_partition.h"
#include "hierarchy/tree_stats.h"

namespace privhp {
namespace {

// Exact per-level counts as a frequency source (Step 1 of Section 7).
class ExactLevelSource : public LevelFrequencySource {
 public:
  ExactLevelSource(const Domain* domain, const std::vector<Point>& data,
                   int max_level) {
    for (int l = 0; l <= max_level; ++l) {
      counts_.push_back(std::move(*LevelCounts(*domain, data, l)));
    }
  }
  double Query(int level, uint64_t index) const override {
    return counts_[level][index];
  }
  const std::vector<double>& level(int l) const { return counts_[l]; }

 private:
  std::vector<std::vector<double>> counts_;
};

// W1 between a tree's sampling distribution and the empirical data,
// both quantized to `level` cells of [0,1] (exact 1-D discrete W1 on cell
// centers; quantization adds at most one cell diameter).
double TreeVsDataW1(const Domain& domain, const PartitionTree& tree,
                    const std::vector<Point>& data, int level) {
  auto tree_dist = DistributionAtLevel(tree, level);
  auto data_dist = QuantizeToLevel(domain, data, level);
  PRIVHP_CHECK(tree_dist.ok() && data_dist.ok());
  std::vector<double> centers(size_t{1} << level);
  const double w = std::ldexp(1.0, -level);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers[i] = (static_cast<double>(i) + 0.5) * w;
  }
  return Wasserstein1DDiscrete(centers, *tree_dist, *data_dist);
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RandomEngine rng(4242);
    data_ = GenerateZipfCells(1, n_, /*level=*/8, /*exponent=*/1.5, &rng);
  }

  static constexpr size_t n_ = 4096;
  static constexpr int l_star_ = 4;
  static constexpr int l_max_ = 10;   // L
  static constexpr int grow_to_ = 9;  // L - 1
  static constexpr size_t k_ = 8;
  IntervalDomain domain_;
  std::vector<Point> data_;
};

// Step 0 sanity: the complete exact tree reproduces mu_X up to the leaf
// cell diameter.
TEST_F(PipelineTest, CompleteExactTreeMatchesData) {
  ExactLevelSource source(&domain_, data_, l_max_);
  auto tree = PartitionTree::Complete(&domain_, l_star_);
  ASSERT_TRUE(tree.ok());
  for (int l = 0; l <= l_star_; ++l) {
    for (uint64_t i = 0; i < (uint64_t{1} << l); ++i) {
      tree->node(tree->Find(CellId{l, i})).count = source.level(l)[i];
    }
  }
  GrowOptions grow;
  grow.k = 1 << 12;  // no pruning
  grow.l_star = l_star_;
  grow.grow_to = grow_to_;
  ASSERT_TRUE(GrowPartition(&(*tree), source, grow).ok());
  const double w1 = TreeVsDataW1(domain_, *tree, data_, grow_to_);
  EXPECT_LT(w1, 1e-9);  // identical at quantization resolution
}

// Step 1 (Lemma 7): exact pruning costs at most
// (||tail_k^L||_1 / n) * sum_{l=L*+1}^{L-1} gamma_l, plus quantization.
TEST_F(PipelineTest, ExactPruningWithinLemma7Bound) {
  ExactLevelSource source(&domain_, data_, l_max_);
  auto tree = PartitionTree::Complete(&domain_, l_star_);
  ASSERT_TRUE(tree.ok());
  for (int l = 0; l <= l_star_; ++l) {
    for (uint64_t i = 0; i < (uint64_t{1} << l); ++i) {
      tree->node(tree->Find(CellId{l, i})).count = source.level(l)[i];
    }
  }
  GrowOptions grow;
  grow.k = k_;
  grow.l_star = l_star_;
  grow.grow_to = grow_to_;
  ASSERT_TRUE(GrowPartition(&(*tree), source, grow).ok());

  const double tail = TailNorm(source.level(l_max_), k_);
  double diam_sum = 0.0;
  for (int l = l_star_ + 1; l <= grow_to_; ++l) {
    diam_sum += domain_.CellDiameter(l);
  }
  const double bound = tail / static_cast<double>(n_) * diam_sum;
  const double quantization = 2.0 * domain_.CellDiameter(grow_to_);
  const double w1 = TreeVsDataW1(domain_, *tree, data_, grow_to_);
  EXPECT_LE(w1, bound + quantization) << "tail=" << tail;
}

// Skew comparison: pruning a heavier-tailed dataset costs more (the
// monotonicity Lemma 7 predicts through ||tail_k||).
TEST_F(PipelineTest, PruningCostDecreasesWithSkew) {
  auto pruning_cost = [&](double exponent) {
    RandomEngine rng(777);
    const auto data = GenerateZipfCells(1, n_, 8, exponent, &rng);
    ExactLevelSource source(&domain_, data, l_max_);
    auto tree = PartitionTree::Complete(&domain_, l_star_);
    PRIVHP_CHECK(tree.ok());
    for (int l = 0; l <= l_star_; ++l) {
      for (uint64_t i = 0; i < (uint64_t{1} << l); ++i) {
        tree->node(tree->Find(CellId{l, i})).count = source.level(l)[i];
      }
    }
    GrowOptions grow;
    grow.k = k_;
    grow.l_star = l_star_;
    grow.grow_to = grow_to_;
    PRIVHP_CHECK(GrowPartition(&(*tree), source, grow).ok());
    return TreeVsDataW1(domain_, *tree, data, grow_to_);
  };
  // Uniform-over-cells (exponent 0) has maximal tail; exponent 2.5 is
  // heavily concentrated in the top-k cells.
  EXPECT_GT(pruning_cost(0.0), pruning_cost(2.5));
}

// Step 3 (Theorem 3, full mechanism): measured W1 within a constant factor
// of the predicted Delta_noise + Delta_approx (+ resolution).
TEST_F(PipelineTest, FullMechanismWithinTheoremBound) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = k_;
  options.expected_n = n_;
  options.l_star = l_star_;
  options.l_max = l_max_;
  options.grow_to = grow_to_;
  options.seed = 31337;
  auto builder = PrivHPBuilder::Make(&domain_, options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AddAll(data_).ok());
  const ResolvedPlan plan = builder->plan();
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());

  const double w1 =
      TreeVsDataW1(domain_, generator->tree(), data_, grow_to_);

  const double noise_term =
      NoiseObjective(domain_, plan.budget, plan.l_star, plan.k,
                     plan.sketch_depth, static_cast<double>(n_));
  auto approx_term =
      PredictedApproxTerm(domain_, data_, plan.l_star, plan.l_max, plan.k,
                          plan.sketch_depth);
  ASSERT_TRUE(approx_term.ok());
  // Theorem 3's constants are ~10*sqrt(2) and 6; allow x30 total slack for
  // a single run rather than an expectation.
  const double bound = 30.0 * (noise_term + *approx_term) +
                       2.0 * domain_.CellDiameter(grow_to_);
  EXPECT_LE(w1, bound) << "noise=" << noise_term
                       << " approx=" << *approx_term;
  // And the mechanism should clearly beat a data-oblivious uniform
  // generator on this skewed input.
  RandomEngine rng(5);
  const auto uniform = GenerateUniform(1, 4096, &rng);
  const auto synthetic = generator->Generate(4096, &rng);
  EXPECT_LT(Wasserstein1DPoints(synthetic, data_),
            Wasserstein1DPoints(uniform, data_));
}

}  // namespace
}  // namespace privhp
