#include "core/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/macros.h"
#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"

namespace privhp {
namespace {

PrivHPOptions SmallOptions(uint64_t n) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 8;
  options.expected_n = n;
  options.seed = 7;
  return options;
}

PrivHPShard MakeShard(const Domain* domain, const PrivHPOptions& options) {
  auto builder = PrivHPBuilder::Make(domain, options);
  PRIVHP_CHECK(builder.ok());
  auto shard = builder->NewShard();
  PRIVHP_CHECK(shard.ok());
  return std::move(*shard);
}

std::string Serialized(const PrivHPGenerator& generator) {
  std::stringstream ss;
  PRIVHP_CHECK(SaveTree(generator.tree(), &ss).ok());
  return ss.str();
}

void ExpectShardsEqual(const PrivHPShard& a, const PrivHPShard& b) {
  ASSERT_EQ(a.tree().num_nodes(), b.tree().num_nodes());
  for (size_t i = 0; i < a.tree().num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.tree().node(static_cast<NodeId>(i)).count,
                     b.tree().node(static_cast<NodeId>(i)).count)
        << "tree node " << i;
  }
  ASSERT_EQ(a.sketches().size(), b.sketches().size());
  for (size_t s = 0; s < a.sketches().size(); ++s) {
    const CountMinSketch& sa = a.sketches()[s];
    const CountMinSketch& sb = b.sketches()[s];
    ASSERT_EQ(sa.width(), sb.width());
    ASSERT_EQ(sa.depth(), sb.depth());
    for (size_t row = 0; row < sa.depth(); ++row) {
      for (size_t col = 0; col < sa.width(); ++col) {
        EXPECT_DOUBLE_EQ(sa.CellValue(row, col), sb.CellValue(row, col))
            << "sketch " << s << " cell (" << row << ", " << col << ")";
      }
    }
  }
}

TEST(ShardTest, AccumulatesExactNoiseFreeCounts) {
  IntervalDomain domain;
  PrivHPShard shard = MakeShard(&domain, SmallOptions(1024));
  RandomEngine rng(3);
  const auto data = GenerateUniform(1, 200, &rng);
  ASSERT_TRUE(shard.AddAll(data).ok());
  EXPECT_EQ(shard.num_processed(), 200u);
  // Pre-noise state: the root holds exactly the stream length.
  EXPECT_DOUBLE_EQ(shard.tree().node(shard.tree().root()).count, 200.0);
  // Level-1 counts partition the stream exactly.
  double level1 = 0.0;
  for (NodeId id : shard.tree().NodesAtLevel(1)) {
    level1 += shard.tree().node(id).count;
  }
  EXPECT_DOUBLE_EQ(level1, 200.0);
}

TEST(ShardTest, ValidatesPointsLikeTheBuilder) {
  IntervalDomain domain;
  PrivHPShard shard = MakeShard(&domain, SmallOptions(1024));
  EXPECT_TRUE(shard.Add({0.5}).ok());
  EXPECT_TRUE(shard.Add({1.5}).IsOutOfRange());
  EXPECT_TRUE(shard.Add({0.5, 0.5}).IsInvalidArgument());
  EXPECT_EQ(shard.num_processed(), 1u);
}

TEST(ShardTest, AddRangeChecksBounds) {
  IntervalDomain domain;
  PrivHPShard shard = MakeShard(&domain, SmallOptions(1024));
  const std::vector<Point> data = {{0.1}, {0.2}, {0.3}};
  EXPECT_TRUE(shard.AddRange(data, 1, 3).ok());
  EXPECT_EQ(shard.num_processed(), 2u);
  EXPECT_TRUE(shard.AddRange(data, 2, 4).IsOutOfRange());
  EXPECT_TRUE(shard.AddRange(data, 3, 2).IsOutOfRange());
}

// Regression: AddRange used to mutate point-by-point, so a bad point in
// the middle of a batch left the shard half-updated. A failed batch must
// leave tree counts, sketch cells and num_processed bit-for-bit unchanged.
TEST(ShardTest, FailedBatchLeavesShardUntouched) {
  IntervalDomain domain;
  const PrivHPOptions options = SmallOptions(1024);
  PrivHPShard shard = MakeShard(&domain, options);
  RandomEngine rng(21);
  const auto good = GenerateUniform(1, 50, &rng);
  ASSERT_TRUE(shard.AddAll(good).ok());
  const PrivHPShard snapshot = shard;  // full accumulation state

  std::vector<Point> batch = GenerateUniform(1, 20, &rng);
  batch[13] = {2.5};  // outside [0,1]
  const Status failed = shard.AddAll(batch);
  EXPECT_TRUE(failed.IsOutOfRange());
  EXPECT_NE(failed.message().find("batch point 13"), std::string::npos);
  EXPECT_EQ(shard.num_processed(), 50u);
  ExpectShardsEqual(shard, snapshot);

  // Wrong dimension keeps its status code and is equally atomic.
  std::vector<Point> wrong_dim = GenerateUniform(1, 4, &rng);
  wrong_dim[2] = {0.5, 0.5};
  EXPECT_TRUE(shard.AddAll(wrong_dim).IsInvalidArgument());
  EXPECT_EQ(shard.num_processed(), 50u);
  ExpectShardsEqual(shard, snapshot);

  // And the shard still ingests normally afterwards.
  EXPECT_TRUE(shard.AddAll(good).ok());
  EXPECT_EQ(shard.num_processed(), 100u);
}

TEST(ShardTest, AddBatchBitwiseIdenticalToScalarAdd) {
  HypercubeDomain domain(2);
  const PrivHPOptions options = SmallOptions(4096);
  RandomEngine rng(22);
  const auto data = GenerateGaussianMixture(2, 3000, 3, 0.05, &rng);
  PrivHPShard scalar = MakeShard(&domain, options);
  PrivHPShard batched = MakeShard(&domain, options);
  for (const Point& x : data) ASSERT_TRUE(scalar.Add(x).ok());
  ASSERT_TRUE(batched.AddBatch(data).ok());
  EXPECT_EQ(batched.num_processed(), scalar.num_processed());
  ExpectShardsEqual(scalar, batched);

  // Batch boundaries must not matter: odd sizes below, at and above the
  // internal chunk produce the same state.
  PrivHPShard chunked = MakeShard(&domain, options);
  const size_t sizes[] = {1, 7, 255, 256, 257, 1000};
  size_t base = 0;
  size_t turn = 0;
  while (base < data.size()) {
    const size_t take = std::min(sizes[turn++ % 6], data.size() - base);
    ASSERT_TRUE(chunked.AddBatch(data.data() + base, take).ok());
    base += take;
  }
  ExpectShardsEqual(scalar, chunked);
}

// The released artifacts must agree too: scalar Add loop, one AddAll
// batch, and an S-shard merged build (each shard fed through AddRange's
// batched path) all serialize to the same bytes.
TEST(ShardTest, BatchedBuildMatchesScalarAndShardedBitwise) {
  HypercubeDomain domain(2);
  const PrivHPOptions options = SmallOptions(4096);
  RandomEngine rng(23);
  const auto data = GenerateGaussianMixture(2, 4096, 3, 0.05, &rng);

  auto scalar_builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(scalar_builder.ok());
  for (const Point& x : data) ASSERT_TRUE(scalar_builder->Add(x).ok());
  auto gen_scalar = std::move(*scalar_builder).Finish();
  ASSERT_TRUE(gen_scalar.ok());

  auto batched_builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(batched_builder.ok());
  ASSERT_TRUE(batched_builder->AddAll(data).ok());
  auto gen_batched = std::move(*batched_builder).Finish();
  ASSERT_TRUE(gen_batched.ok());
  EXPECT_EQ(Serialized(*gen_scalar), Serialized(*gen_batched));

  auto sharded_builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(sharded_builder.ok());
  for (size_t s = 0; s < 3; ++s) {
    auto shard = sharded_builder->NewShard();
    ASSERT_TRUE(shard.ok());
    const size_t begin = s * data.size() / 3;
    const size_t end = (s + 1) * data.size() / 3;
    ASSERT_TRUE(shard->AddRange(data, begin, end).ok());
    ASSERT_TRUE(sharded_builder->AbsorbShard(std::move(*shard)).ok());
  }
  auto gen_sharded = std::move(*sharded_builder).Finish();
  ASSERT_TRUE(gen_sharded.ok());
  EXPECT_EQ(Serialized(*gen_scalar), Serialized(*gen_sharded));
}

TEST(ShardTest, MergeIsCommutative) {
  IntervalDomain domain;
  const PrivHPOptions options = SmallOptions(2048);
  RandomEngine rng(5);
  const auto data_a = GenerateZipfCells(1, 500, 10, 1.2, &rng);
  const auto data_b = GenerateUniform(1, 300, &rng);

  PrivHPShard ab = MakeShard(&domain, options);
  PrivHPShard ab_other = MakeShard(&domain, options);
  ASSERT_TRUE(ab.AddAll(data_a).ok());
  ASSERT_TRUE(ab_other.AddAll(data_b).ok());
  ASSERT_TRUE(ab.Merge(std::move(ab_other)).ok());

  PrivHPShard ba = MakeShard(&domain, options);
  PrivHPShard ba_other = MakeShard(&domain, options);
  ASSERT_TRUE(ba.AddAll(data_b).ok());
  ASSERT_TRUE(ba_other.AddAll(data_a).ok());
  ASSERT_TRUE(ba.Merge(std::move(ba_other)).ok());

  EXPECT_EQ(ab.num_processed(), 800u);
  EXPECT_EQ(ba.num_processed(), 800u);
  ExpectShardsEqual(ab, ba);
}

TEST(ShardTest, MergeIsAssociative) {
  IntervalDomain domain;
  const PrivHPOptions options = SmallOptions(2048);
  RandomEngine rng(6);
  const auto data_a = GenerateUniform(1, 100, &rng);
  const auto data_b = GenerateUniform(1, 200, &rng);
  const auto data_c = GenerateUniform(1, 300, &rng);

  auto fresh = [&](const std::vector<Point>& data) {
    PrivHPShard shard = MakeShard(&domain, options);
    PRIVHP_CHECK(shard.AddAll(data).ok());
    return shard;
  };

  // (A + B) + C
  PrivHPShard left = fresh(data_a);
  {
    PrivHPShard b = fresh(data_b);
    ASSERT_TRUE(left.Merge(std::move(b)).ok());
    PrivHPShard c = fresh(data_c);
    ASSERT_TRUE(left.Merge(std::move(c)).ok());
  }
  // A + (B + C)
  PrivHPShard right = fresh(data_a);
  {
    PrivHPShard bc = fresh(data_b);
    PrivHPShard c = fresh(data_c);
    ASSERT_TRUE(bc.Merge(std::move(c)).ok());
    ASSERT_TRUE(right.Merge(std::move(bc)).ok());
  }
  ExpectShardsEqual(left, right);
}

TEST(ShardTest, MergeRejectsMismatchedPlans) {
  IntervalDomain domain;
  PrivHPShard base = MakeShard(&domain, SmallOptions(2048));

  PrivHPOptions other_seed = SmallOptions(2048);
  other_seed.seed = 99;
  PrivHPShard seed_shard = MakeShard(&domain, other_seed);
  EXPECT_TRUE(base.Merge(std::move(seed_shard)).IsInvalidArgument());

  PrivHPOptions other_k = SmallOptions(2048);
  other_k.k = 32;  // changes sketch width (w = 2k)
  PrivHPShard k_shard = MakeShard(&domain, other_k);
  EXPECT_TRUE(base.Merge(std::move(k_shard)).IsInvalidArgument());

  HypercubeDomain other_domain(1);
  PrivHPShard domain_shard = MakeShard(&other_domain, SmallOptions(2048));
  EXPECT_TRUE(base.Merge(std::move(domain_shard)).IsInvalidArgument());
}

// The acceptance bar of the redesign: under a fixed seed, an S-shard
// build releases a generator whose serialized tree is byte-identical to
// the 1-shard build's.
TEST(ShardTest, ShardedBuildBitwiseIdenticalToSequential) {
  HypercubeDomain domain(2);
  const PrivHPOptions options = SmallOptions(4096);
  RandomEngine rng(11);
  const auto data = GenerateGaussianMixture(2, 4096, 3, 0.05, &rng);

  auto sequential = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(sequential->AddAll(data).ok());
  auto gen_seq = std::move(*sequential).Finish();
  ASSERT_TRUE(gen_seq.ok());

  for (int num_shards : {2, 3, 5}) {
    auto builder = PrivHPBuilder::Make(&domain, options);
    ASSERT_TRUE(builder.ok());
    std::vector<PrivHPShard> shards;
    for (int s = 0; s < num_shards; ++s) {
      auto shard = builder->NewShard();
      ASSERT_TRUE(shard.ok());
      shards.push_back(std::move(*shard));
    }
    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(shards[i % num_shards].Add(data[i]).ok());
    }
    for (PrivHPShard& shard : shards) {
      ASSERT_TRUE(builder->AbsorbShard(std::move(shard)).ok());
    }
    EXPECT_EQ(builder->num_processed(), data.size());
    auto gen_sharded = std::move(*builder).Finish();
    ASSERT_TRUE(gen_sharded.ok());
    EXPECT_EQ(Serialized(*gen_seq), Serialized(*gen_sharded))
        << num_shards << " shards";
  }
}

TEST(ShardTest, BuildParallelMatchesSequentialBitwise) {
  HypercubeDomain domain(2);
  const PrivHPOptions options = SmallOptions(4096);
  RandomEngine rng(13);
  const auto data = GenerateGaussianMixture(2, 4096, 3, 0.05, &rng);

  auto gen_seq = PrivHPBuilder::BuildParallel(&domain, options, data, 1);
  ASSERT_TRUE(gen_seq.ok());
  for (int threads : {2, 4}) {
    auto gen_par = PrivHPBuilder::BuildParallel(&domain, options, data,
                                                threads);
    ASSERT_TRUE(gen_par.ok()) << gen_par.status();
    EXPECT_EQ(Serialized(*gen_seq), Serialized(*gen_par))
        << threads << " threads";
  }
  // The streaming (PointSource) overload must agree too.
  VectorPointSource source(&data);
  auto gen_stream =
      PrivHPBuilder::BuildParallel(&domain, options, &source, 4);
  ASSERT_TRUE(gen_stream.ok()) << gen_stream.status();
  EXPECT_EQ(Serialized(*gen_seq), Serialized(*gen_stream));
}

TEST(ShardTest, BuildParallelPropagatesWorkerErrors) {
  IntervalDomain domain;
  RandomEngine rng(15);
  std::vector<Point> data = GenerateUniform(1, 2000, &rng);
  data[1500] = {2.5};  // outside [0,1]
  auto generator =
      PrivHPBuilder::BuildParallel(&domain, SmallOptions(2000), data, 4);
  EXPECT_FALSE(generator.ok());
  EXPECT_TRUE(generator.status().IsOutOfRange());
}

TEST(ShardTest, AccountantStillSumsToEpsilonAfterShardedBuild) {
  IntervalDomain domain;
  PrivHPOptions options = SmallOptions(4096);
  options.epsilon = 1.5;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  RandomEngine rng(17);
  const auto data = GenerateUniform(1, 1000, &rng);
  for (int s = 0; s < 3; ++s) {
    auto shard = builder->NewShard();
    ASSERT_TRUE(shard.ok());
    ASSERT_TRUE(shard->AddAll(data).ok());
    ASSERT_TRUE(builder->AbsorbShard(std::move(*shard)).ok());
  }
  EXPECT_NEAR(builder->accountant().Spent(), 1.5, 1e-9);
  EXPECT_EQ(builder->accountant().ledger().size(),
            static_cast<size_t>(builder->plan().l_max) + 1);
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
}

TEST(ShardTest, AbsorbAfterFinishFails) {
  IntervalDomain domain;
  auto builder = PrivHPBuilder::Make(&domain, SmallOptions(512));
  ASSERT_TRUE(builder.ok());
  auto shard = builder->NewShard();
  ASSERT_TRUE(shard.ok());
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());
  EXPECT_TRUE(
      builder->AbsorbShard(std::move(*shard)).IsFailedPrecondition());
}

TEST(ShardTest, SketchHashSeedDependsOnLevelAndSeed) {
  EXPECT_NE(SketchHashSeed(7, 3), SketchHashSeed(7, 4));
  EXPECT_NE(SketchHashSeed(7, 3), SketchHashSeed(8, 3));
  EXPECT_EQ(SketchHashSeed(7, 3), SketchHashSeed(7, 3));
}

}  // namespace
}  // namespace privhp
