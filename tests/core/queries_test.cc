#include "core/queries.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/macros.h"
#include "common/random.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "domain/ipv4_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

// A consistent depth-2 tree with leaf masses 1, 2, 3, 4.
PartitionTree SmallTree(const Domain* domain) {
  auto tree = PartitionTree::Complete(domain, 2);
  PartitionTree t = std::move(tree).ValueOrDie();
  t.node(t.Find(CellId{2, 0})).count = 1.0;
  t.node(t.Find(CellId{2, 1})).count = 2.0;
  t.node(t.Find(CellId{2, 2})).count = 3.0;
  t.node(t.Find(CellId{2, 3})).count = 4.0;
  t.node(t.Find(CellId{1, 0})).count = 3.0;
  t.node(t.Find(CellId{1, 1})).count = 7.0;
  t.node(t.root()).count = 10.0;
  return t;
}

TEST(CellMassFractionTest, ExactAtTreeCells) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {1, 0}), 0.3);
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {2, 3}), 0.4);
}

TEST(CellMassFractionTest, ApportionsBelowLeaves) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  // Cell {3, 0} is half of leaf {2, 0} (mass 0.1).
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {3, 0}), 0.05);
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {4, 0}), 0.025);
}

TEST(CellMassFractionTest, ZeroMassTree) {
  IntervalDomain domain;
  PartitionTree tree(&domain);
  EXPECT_DOUBLE_EQ(CellMassFraction(tree, {2, 1}), 0.0);
}

TEST(TreeQuantileTest, MatchesHandComputedCdf) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  // CDF mass per quarter: 0.1, 0.2, 0.3, 0.4.
  auto median = TreeQuantile(tree, 0.5);
  ASSERT_TRUE(median.ok());
  // 0.5 lands in the third quarter [0.5, 0.75): 0.1+0.2=0.3, need 0.2 of
  // the 0.3 mass => 2/3 through the cell.
  EXPECT_NEAR(*median, 0.5 + 0.25 * (2.0 / 3.0), 1e-9);
  auto q0 = TreeQuantile(tree, 0.0);
  auto q1 = TreeQuantile(tree, 1.0);
  ASSERT_TRUE(q0.ok() && q1.ok());
  EXPECT_NEAR(*q0, 0.0, 1e-9);
  EXPECT_NEAR(*q1, 1.0, 1e-9);
}

TEST(TreeQuantileTest, ValidatesInput) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  EXPECT_FALSE(TreeQuantile(tree, -0.1).ok());
  EXPECT_FALSE(TreeQuantile(tree, 1.1).ok());
  PartitionTree empty(&domain);
  EXPECT_TRUE(TreeQuantile(empty, 0.5).status().IsFailedPrecondition());
}

TEST(TreeQuantileTest, TracksEmpiricalQuantilesEndToEnd) {
  IntervalDomain domain;
  RandomEngine rng(3);
  auto data = GenerateGaussianMixture(1, 8192, 1, 0.1, &rng);
  PrivHPOptions options;
  options.epsilon = 4.0;
  options.k = 64;
  options.expected_n = data.size();
  options.seed = 5;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());

  std::vector<double> values(data.size());
  for (size_t i = 0; i < data.size(); ++i) values[i] = data[i][0];
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    auto estimate = TreeQuantile(generator->tree(), q);
    ASSERT_TRUE(estimate.ok());
    const double truth = values[static_cast<size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(*estimate, truth, 0.03) << "q=" << q;
  }
}

TEST(TreeQuantilesTest, BatchMatchesScalar) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  auto batch = TreeQuantiles(tree, {0.25, 0.5, 0.75});
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    auto scalar = TreeQuantile(tree, 0.25 * (i + 1));
    ASSERT_TRUE(scalar.ok());
    EXPECT_DOUBLE_EQ((*batch)[i], *scalar);
  }
}

TEST(HeavyHittersTest, FindsMaximalDepthCells) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  // threshold 0.35: {1,1} has 0.7 but its child {2,3} has 0.4 >= 0.35, so
  // the maximal cell is {2,3}; nothing else qualifies.
  auto hh = HierarchicalHeavyHitters(tree, 0.35);
  ASSERT_TRUE(hh.ok());
  ASSERT_EQ(hh->size(), 1u);
  EXPECT_EQ((*hh)[0].cell, (CellId{2, 3}));
  EXPECT_DOUBLE_EQ((*hh)[0].fraction, 0.4);
}

TEST(HeavyHittersTest, ThresholdControlsGranularity) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  // threshold 0.25: {2,3} (0.4), {2,2} (0.3), and {1,0} (0.3, both of its
  // children are light) are the maximal heavy cells.
  auto hh = HierarchicalHeavyHitters(tree, 0.25);
  ASSERT_TRUE(hh.ok());
  ASSERT_EQ(hh->size(), 3u);
  EXPECT_EQ((*hh)[0].cell, (CellId{2, 3}));
  bool saw_left_half = false, saw_third_quarter = false;
  for (const auto& cell : *hh) {
    if (cell.cell == CellId{1, 0}) saw_left_half = true;
    if (cell.cell == CellId{2, 2}) saw_third_quarter = true;
  }
  EXPECT_TRUE(saw_left_half);
  EXPECT_TRUE(saw_third_quarter);
  // threshold 1.0: only the root can qualify... and it does (fraction 1).
  auto root_only = HierarchicalHeavyHitters(tree, 1.0);
  ASSERT_TRUE(root_only.ok());
  ASSERT_EQ(root_only->size(), 1u);
  EXPECT_EQ((*root_only)[0].cell, (CellId{0, 0}));
}

TEST(HeavyHittersTest, ValidatesThreshold) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain);
  EXPECT_FALSE(HierarchicalHeavyHitters(tree, 0.0).ok());
  EXPECT_FALSE(HierarchicalHeavyHitters(tree, 1.5).ok());
}

TEST(HeavyHittersTest, RecoversPlantedIpv4Prefixes) {
  Ipv4Domain domain;
  RandomEngine rng(7);
  // 70% of traffic in 10.0.0.0/8, rest spread widely.
  std::vector<Point> data;
  for (int i = 0; i < 8000; ++i) {
    if (rng.Bernoulli(0.7)) {
      data.push_back(Ipv4Domain::FromAddress(
          (10u << 24) | static_cast<uint32_t>(rng.UniformInt(1u << 24))));
    } else {
      data.push_back(Ipv4Domain::FromAddress(
          static_cast<uint32_t>(rng.UniformInt(1ull << 32))));
    }
  }
  PrivHPOptions options;
  options.epsilon = 2.0;
  options.k = 32;
  options.expected_n = data.size();
  options.l_star = 8;
  options.l_max = 16;
  options.seed = 11;
  auto builder = PrivHPBuilder::Make(&domain, options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  ASSERT_TRUE(generator.ok());

  auto hh = HierarchicalHeavyHitters(generator->tree(), 0.3);
  ASSERT_TRUE(hh.ok());
  ASSERT_FALSE(hh->empty());
  // The heaviest reported cell must sit inside 10.0.0.0/8.
  const CellId top = (*hh)[0].cell;
  ASSERT_GE(top.level, 8);
  EXPECT_EQ(top.index >> (top.level - 8), 10u);
}

}  // namespace
}  // namespace privhp
