#include "hierarchy/tree_serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/macros.h"
#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/grow_partition.h"

namespace privhp {
namespace {

// A grown (non-complete) tree exercises the out-of-parent-order arena
// replay path.
class ConstSource : public LevelFrequencySource {
 public:
  double Query(int level, uint64_t index) const override {
    // Distinct counts so top-k ordering shuffles the append order.
    return 10.0 + static_cast<double>((index * 7 + level * 3) % 13);
  }
};

PartitionTree GrownTree(const Domain* domain) {
  auto tree = PartitionTree::Complete(domain, 2);
  PartitionTree t = std::move(tree).ValueOrDie();
  RandomEngine rng(5);
  t.node(t.root()).count = 100.0;
  for (NodeId id : t.NodesAtLevel(1)) t.node(id).count = 50.0;
  for (NodeId id : t.NodesAtLevel(2)) {
    t.node(id).count = 25.0 + rng.UniformDouble();
  }
  ConstSource source;
  GrowOptions options;
  options.k = 2;
  options.l_star = 2;
  options.grow_to = 5;
  PRIVHP_CHECK(GrowPartition(&t, source, options).ok());
  return t;
}

TEST(TreeSerializationTest, StreamRoundTripPreservesEverything) {
  IntervalDomain domain;
  PartitionTree tree = GrownTree(&domain);

  std::stringstream ss;
  ASSERT_TRUE(SaveTree(tree, &ss).ok());
  auto loaded = LoadTree(&domain, &ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->num_nodes(), tree.num_nodes());
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& a = tree.node(static_cast<NodeId>(i));
    const TreeNode& b = loaded->node(static_cast<NodeId>(i));
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_DOUBLE_EQ(a.count, b.count);
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    EXPECT_EQ(a.parent, b.parent);
  }
}

TEST(TreeSerializationTest, FileRoundTrip) {
  IntervalDomain domain;
  PartitionTree tree = GrownTree(&domain);
  const std::string path = ::testing::TempDir() + "/privhp_tree.txt";
  ASSERT_TRUE(SaveTreeToFile(tree, path).ok());
  auto loaded = LoadTreeFromFile(&domain, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), tree.num_nodes());
  EXPECT_TRUE(loaded->Validate(1e-6).ok());
  std::remove(path.c_str());
}

TEST(TreeSerializationTest, RejectsBadMagic) {
  IntervalDomain domain;
  std::stringstream ss("not-a-tree\nfoo\n1\n0 0 1.0 -1 -1\n");
  EXPECT_TRUE(LoadTree(&domain, &ss).status().IsIOError());
}

TEST(TreeSerializationTest, RejectsTruncatedStream) {
  IntervalDomain domain;
  std::stringstream ss("privhp-tree-v1\ninterval[0,1]\n3\n0 0 1.0 1 2\n");
  EXPECT_TRUE(LoadTree(&domain, &ss).status().IsIOError());
}

TEST(TreeSerializationTest, RejectsSingleChild) {
  IntervalDomain domain;
  std::stringstream ss(
      "privhp-tree-v1\ninterval[0,1]\n2\n0 0 1.0 1 -1\n1 0 1.0 -1 -1\n");
  EXPECT_TRUE(LoadTree(&domain, &ss).status().IsIOError());
}

TEST(TreeSerializationTest, RejectsMissingFile) {
  IntervalDomain domain;
  EXPECT_TRUE(
      LoadTreeFromFile(&domain, "/nonexistent/privhp.tree").status()
          .IsIOError());
}

TEST(TreeSerializationTest, V1FilesStillLoadWithMatchingDomain) {
  IntervalDomain domain;
  std::stringstream ss(
      "privhp-tree-v1\ninterval[0,1]\n3\n0 0 2.0 1 2\n1 0 1.0 -1 -1\n"
      "1 1 1.0 -1 -1\n");
  auto loaded = LoadTree(&domain, &ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), 3u);
}

TEST(TreeSerializationTest, RejectsDomainNameMismatch) {
  IntervalDomain interval;
  HypercubeDomain cube2(2);
  PartitionTree tree = GrownTree(&interval);
  std::stringstream ss;
  ASSERT_TRUE(SaveTree(tree, &ss).ok());
  auto loaded = LoadTree(&cube2, &ss);
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

TEST(TreeSerializationTest, RejectsDimensionMismatch) {
  // A forged v2 header whose name matches but whose dimension does not:
  // the dimension check must catch it independently of the name.
  IntervalDomain domain;
  std::stringstream ss(
      "privhp-tree-v2\ninterval[0,1]\n2\n1\n0 0 1.0 -1 -1\n");
  auto loaded = LoadTree(&domain, &ss);
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
}

}  // namespace
}  // namespace privhp
