#include "hierarchy/grow_partition.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "domain/interval_domain.h"
#include "eval/tail.h"
#include "hierarchy/tree_stats.h"

namespace privhp {
namespace {

// A frequency source backed by an explicit (level, index) -> count map.
class MapSource : public LevelFrequencySource {
 public:
  void Set(int level, uint64_t index, double count) {
    counts_[{level, index}] = count;
  }
  double Query(int level, uint64_t index) const override {
    auto it = counts_.find({level, index});
    return it == counts_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::pair<int, uint64_t>, double> counts_;
};

// EXP-F2: the full Figure 2 walk-through (k = 2, L* = 1, L = 4; growth
// runs to L-1 = 3). Note: Figure 2(d) prints 3.9/3.8 for the Omega_1
// children but their pre-consistency counts 4.2 + 4.1 already sum to the
// parent's 8.3, so Algorithm 3 leaves them unchanged — the figure's (e)
// panel itself shows 4.2/4.1 again. We assert the algorithmically
// consistent values throughout.
TEST(GrowPartitionTest, Figure2Walkthrough) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  // Figure 2(a): counts after the stream pass.
  tree->node(0).count = 20.2;
  tree->node(1).count = 12.2;  // Omega_0
  tree->node(2).count = 8.6;   // Omega_1

  MapSource sketches;
  // sketch_2 estimates (Figure 2c).
  sketches.Set(2, 0b00, 4.9);
  sketches.Set(2, 0b01, 7.6);
  sketches.Set(2, 0b10, 4.2);
  sketches.Set(2, 0b11, 4.1);
  // sketch_3 estimates (Figure 2e).
  sketches.Set(3, 0b000, 3.5);
  sketches.Set(3, 0b001, 3.7);
  sketches.Set(3, 0b010, 4.0);
  sketches.Set(3, 0b011, 6.7);

  GrowOptions options;
  options.k = 2;
  options.l_star = 1;
  options.grow_to = 3;  // L - 1 with L = 4
  ASSERT_TRUE(GrowPartition(&(*tree), sketches, options).ok());

  auto count_at = [&](CellId cell) {
    const NodeId id = tree->Find(cell);
    EXPECT_NE(id, kInvalidNode) << "missing cell level=" << cell.level
                                << " index=" << cell.index;
    return id == kInvalidNode ? -1.0 : tree->node(id).count;
  };

  // Figure 2(b): consistency on the initial tree.
  EXPECT_NEAR(count_at({0, 0}), 20.2, 1e-9);
  EXPECT_NEAR(count_at({1, 0}), 11.9, 1e-9);
  EXPECT_NEAR(count_at({1, 1}), 8.3, 1e-9);

  // Figure 2(d): level 2 after consistency.
  EXPECT_NEAR(count_at({2, 0b00}), 4.6, 1e-9);
  EXPECT_NEAR(count_at({2, 0b01}), 7.3, 1e-9);
  EXPECT_NEAR(count_at({2, 0b10}), 4.2, 1e-9);
  EXPECT_NEAR(count_at({2, 0b11}), 4.1, 1e-9);

  // Figure 2(e): top-2 at level 2 is {Omega_01 (7.3), Omega_00 (4.6)}, so
  // only those two branch to level 3.
  EXPECT_NE(tree->Find(CellId{3, 0b000}), kInvalidNode);
  EXPECT_NE(tree->Find(CellId{3, 0b010}), kInvalidNode);
  EXPECT_EQ(tree->Find(CellId{3, 0b100}), kInvalidNode);
  EXPECT_EQ(tree->Find(CellId{3, 0b110}), kInvalidNode);

  // Figure 2(f): level 3 after consistency.
  EXPECT_NEAR(count_at({3, 0b000}), 2.2, 1e-9);
  EXPECT_NEAR(count_at({3, 0b001}), 2.4, 1e-9);
  EXPECT_NEAR(count_at({3, 0b010}), 2.3, 1e-9);
  EXPECT_NEAR(count_at({3, 0b011}), 5.0, 1e-9);

  EXPECT_TRUE(tree->Validate().ok());
  // Leaves: 4 at level 3 plus the 2 pruned level-2 nodes.
  EXPECT_EQ(tree->Leaves().size(), 6u);
}

TEST(GrowPartitionTest, RequiresCompleteTreeAtLStar) {
  IntervalDomain domain;
  PartitionTree tree(&domain);  // depth 0, but l_star = 2
  MapSource source;
  GrowOptions options;
  options.k = 2;
  options.l_star = 2;
  options.grow_to = 4;
  EXPECT_TRUE(
      GrowPartition(&tree, source, options).IsFailedPrecondition());
}

TEST(GrowPartitionTest, ValidatesParameterRanges) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  MapSource source;
  GrowOptions options;
  options.l_star = 2;
  options.grow_to = 1;  // grow_to < l_star
  EXPECT_TRUE(GrowPartition(&(*tree), source, options).IsInvalidArgument());
  options.grow_to = 60;  // beyond domain
  EXPECT_TRUE(GrowPartition(&(*tree), source, options).IsOutOfRange());
  options.grow_to = 5;
  options.k = 0;
  EXPECT_TRUE(GrowPartition(&(*tree), source, options).IsInvalidArgument());
}

TEST(GrowPartitionTest, GrowToEqualLStarOnlyAppliesConsistency) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  tree->node(0).count = 8.0;
  for (NodeId id : tree->NodesAtLevel(1)) tree->node(id).count = 5.0;
  for (NodeId id : tree->NodesAtLevel(2)) tree->node(id).count = 3.0;
  MapSource source;
  GrowOptions options;
  options.k = 4;
  options.l_star = 2;
  options.grow_to = 2;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  EXPECT_EQ(tree->MaxDepth(), 2);
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(GrowPartitionTest, KeepsAllNodesWhenKExceedsLevelWidth) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  tree->node(0).count = 4.0;
  tree->node(1).count = 2.0;
  tree->node(2).count = 2.0;
  MapSource source;
  source.Set(2, 0, 1.0);
  source.Set(2, 1, 1.0);
  source.Set(2, 2, 1.0);
  source.Set(2, 3, 1.0);
  source.Set(3, 0, 0.5);
  GrowOptions options;
  options.k = 100;  // larger than any level
  options.l_star = 1;
  options.grow_to = 3;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  // With k >= width nothing is pruned: the tree is complete to level 3.
  EXPECT_EQ(tree->NodesAtLevel(3).size(), 8u);
}

TEST(GrowPartitionTest, ConsistencyCanBeDisabledForAblation) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  tree->node(0).count = 20.2;
  tree->node(1).count = 12.2;
  tree->node(2).count = 8.6;
  MapSource source;
  source.Set(2, 0, 4.9);
  source.Set(2, 1, 7.6);
  source.Set(2, 2, 4.2);
  source.Set(2, 3, 4.1);
  GrowOptions options;
  options.k = 2;
  options.l_star = 1;
  options.grow_to = 2;
  options.enforce_consistency = false;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  // Raw sketch values survive untouched.
  EXPECT_NEAR(tree->node(tree->Find(CellId{2, 0})).count, 4.9, 1e-12);
  EXPECT_NEAR(tree->node(tree->Find(CellId{1, 0})).count, 12.2, 1e-12);
}

// With an exact frequency source and no pruning pressure, growth
// reproduces the exact level counts (the T_exact construction of
// Section 7 with k large).
TEST(GrowPartitionTest, ExactSourceReproducesLevelCounts) {
  IntervalDomain domain;
  RandomEngine rng(77);
  std::vector<Point> data;
  for (int i = 0; i < 512; ++i) data.push_back({rng.UniformDouble()});

  const int l_star = 2, grow_to = 6;
  auto tree = PartitionTree::Complete(&domain, l_star);
  ASSERT_TRUE(tree.ok());
  MapSource source;
  for (int l = 0; l <= grow_to; ++l) {
    auto counts = LevelCounts(domain, data, l);
    ASSERT_TRUE(counts.ok());
    for (size_t i = 0; i < counts->size(); ++i) {
      if (l <= l_star) {
        if (tree->Find(CellId{l, i}) != kInvalidNode) {
          tree->node(tree->Find(CellId{l, i})).count = (*counts)[i];
        }
      } else {
        source.Set(l, i, (*counts)[i]);
      }
    }
  }
  GrowOptions options;
  options.k = 1 << 10;  // no pruning
  options.l_star = l_star;
  options.grow_to = grow_to;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  EXPECT_TRUE(tree->Validate().ok());

  auto truth = LevelCounts(domain, data, grow_to);
  ASSERT_TRUE(truth.ok());
  for (size_t i = 0; i < truth->size(); ++i) {
    const NodeId id = tree->Find(CellId{grow_to, i});
    ASSERT_NE(id, kInvalidNode);
    EXPECT_NEAR(tree->node(id).count, (*truth)[i], 1e-9) << "cell " << i;
  }
}

}  // namespace
}  // namespace privhp
