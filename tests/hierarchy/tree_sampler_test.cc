#include "hierarchy/tree_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

TEST(TreeSamplerTest, UniformFallbackOnZeroMass) {
  IntervalDomain domain;
  PartitionTree tree(&domain);
  tree.node(tree.root()).count = 0.0;
  TreeSampler sampler(&tree);
  RandomEngine rng(1);
  const Point p = sampler.Sample(&rng);
  EXPECT_TRUE(domain.Contains(p));
  EXPECT_EQ(sampler.SampleLeafCell(&rng), (CellId{0, 0}));
}

TEST(TreeSamplerTest, SamplesRespectLeafMasses) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  // Leaf masses 1, 2, 3, 4 (level-2 cells), consistent internal counts.
  tree->node(tree->Find(CellId{2, 0})).count = 1.0;
  tree->node(tree->Find(CellId{2, 1})).count = 2.0;
  tree->node(tree->Find(CellId{2, 2})).count = 3.0;
  tree->node(tree->Find(CellId{2, 3})).count = 4.0;
  tree->node(tree->Find(CellId{1, 0})).count = 3.0;
  tree->node(tree->Find(CellId{1, 1})).count = 7.0;
  tree->node(tree->root()).count = 10.0;
  ASSERT_TRUE(tree->Validate().ok());

  TreeSampler sampler(&(*tree));
  RandomEngine rng(7);
  std::map<uint64_t, int> hits;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const CellId cell = sampler.SampleLeafCell(&rng);
    EXPECT_EQ(cell.level, 2);
    ++hits[cell.index];
  }
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(hits[3] / static_cast<double>(n), 0.4, 0.01);
}

TEST(TreeSamplerTest, PointsLandInsideSampledLeafCells) {
  HypercubeDomain domain(2);
  auto tree = PartitionTree::Complete(&domain, 4);
  ASSERT_TRUE(tree.ok());
  // Mass concentrated on one deep cell.
  const CellId target{4, 9};
  for (NodeId id = tree->Find(target); id != kInvalidNode;
       id = tree->node(id).parent) {
    tree->node(id).count = 5.0;
  }
  TreeSampler sampler(&(*tree));
  RandomEngine rng(9);
  for (int i = 0; i < 200; ++i) {
    const Point p = sampler.Sample(&rng);
    EXPECT_EQ(domain.Locate(p, 4), target.index);
  }
}

TEST(TreeSamplerTest, ZeroMassLeavesAreNeverChosen) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  tree->node(0).count = 6.0;
  tree->node(1).count = 0.0;
  tree->node(2).count = 6.0;
  TreeSampler sampler(&(*tree));
  RandomEngine rng(11);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_EQ(sampler.SampleLeafCell(&rng).index, 1u);
  }
}

// A zero-mass *right* subtree under a parent whose count exceeds its
// children's sum (legal within the consistency tolerance): the old
// `u <= left_mass` walk clamped the surplus draws into the zero-mass
// side; the zero-mass guard must route every draw to the positive
// sibling. Deeper variant of the ISSUE-4 regression, exercising the
// drift-clamp path rather than the u == 0 boundary.
TEST(TreeSamplerTest, SurplusMassNeverEntersZeroCountSubtree) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  tree->node(tree->Find(CellId{2, 0})).count = 4.0;
  tree->node(tree->Find(CellId{2, 1})).count = 2.0;
  tree->node(tree->Find(CellId{1, 0})).count = 6.0;
  tree->node(tree->root()).count = 7.0;  // surplus over children's sum
  TreeSampler sampler(&(*tree));
  RandomEngine rng(17);
  for (int i = 0; i < 100000; ++i) {
    const CellId cell = sampler.SampleLeafCell(&rng);
    ASSERT_LT(cell.index, 2u) << "walk entered the zero-count subtree";
  }
}

// A node carrying mass its children do not (a consistency-tolerance
// residue, exaggerated here): the walk must stop at that node's cell
// rather than descend into the all-zero subtree below it.
TEST(TreeSamplerTest, StopsAtNodeWhenAllChildrenAreZeroCount) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  tree->node(tree->root()).count = 1.0;
  TreeSampler sampler(&(*tree));
  RandomEngine rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.SampleLeafCell(&rng), (CellId{0, 0}));
    EXPECT_TRUE(domain.Contains(sampler.Sample(&rng)));
  }
}

TEST(TreeSamplerTest, SampleBatchHasRequestedSize) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    tree->node(static_cast<NodeId>(i)).count =
        std::ldexp(8.0, -tree->node(static_cast<NodeId>(i)).cell.level);
  }
  TreeSampler sampler(&(*tree));
  RandomEngine rng(13);
  const auto batch = sampler.SampleBatch(257, &rng);
  EXPECT_EQ(batch.size(), 257u);
  for (const Point& p : batch) EXPECT_TRUE(domain.Contains(p));
}

TEST(TreeSamplerTest, DeterministicGivenSeed) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    tree->node(static_cast<NodeId>(i)).count = 1.0;
  }
  // Make counts consistent: parent = sum of children.
  for (int l = 2; l >= 0; --l) {
    for (NodeId id : tree->NodesAtLevel(l)) {
      TreeNode& n = tree->node(id);
      n.count = tree->node(n.left).count + tree->node(n.right).count;
    }
  }
  TreeSampler sampler(&(*tree));
  RandomEngine rng_a(99), rng_b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sampler.Sample(&rng_a), sampler.Sample(&rng_b));
  }
}

}  // namespace
}  // namespace privhp
