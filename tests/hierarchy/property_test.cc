// Property and failure-injection suites for the hierarchy layer:
//  * sampler distributions match leaf masses (chi-square) across random
//    consistent trees;
//  * random single-field corruption of a serialized tree is always
//    rejected with a clean Status (never a crash or a silently-wrong
//    tree);
//  * GrowPartition + consistency keep every invariant for arbitrary
//    noisy inputs across domains.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/macros.h"
#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/consistency.h"
#include "hierarchy/grow_partition.h"
#include "hierarchy/tree_sampler.h"
#include "hierarchy/tree_serialization.h"
#include "hierarchy/tree_stats.h"
#include "testing/stats.h"

namespace privhp {
namespace {

// Random consistent tree: complete depth-4, random positive leaf masses,
// internal counts summed bottom-up.
PartitionTree RandomConsistentTree(const Domain* domain, uint64_t seed) {
  auto tree = PartitionTree::Complete(domain, 4);
  PartitionTree t = std::move(tree).ValueOrDie();
  RandomEngine rng(seed);
  for (NodeId id : t.NodesAtLevel(4)) {
    t.node(id).count = rng.UniformDouble(0.0, 10.0);
  }
  for (int l = 3; l >= 0; --l) {
    for (NodeId id : t.NodesAtLevel(l)) {
      TreeNode& n = t.node(id);
      n.count = t.node(n.left).count + t.node(n.right).count;
    }
  }
  return t;
}

class SamplerChiSquareTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplerChiSquareTest, LeafFrequenciesMatchMasses) {
  IntervalDomain domain;
  PartitionTree tree = RandomConsistentTree(&domain, 1000 + GetParam());
  ASSERT_TRUE(tree.Validate(1e-9).ok());
  const double total = tree.node(tree.root()).count;

  TreeSampler sampler(&tree);
  RandomEngine rng(2000 + GetParam());
  const int draws = 32000;
  std::vector<double> hits(16, 0.0), expected(16, 0.0);
  for (int i = 0; i < draws; ++i) {
    hits[sampler.SampleLeafCell(&rng).index] += 1.0;
  }
  for (NodeId id : tree.NodesAtLevel(4)) {
    const TreeNode& n = tree.node(id);
    expected[n.cell.index] = draws * n.count / total;
  }
  int dof = 0;
  const double chi2 = testing::ChiSquare(hits, expected,
                                         /*min_expected=*/5.0, &dof);
  EXPECT_LT(chi2, testing::ChiSquareBound(dof));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerChiSquareTest,
                         ::testing::Range(0, 8));

class SerializationFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializationFuzzTest, CorruptedStreamsRejectedNotCrashing) {
  IntervalDomain domain;
  PartitionTree tree = RandomConsistentTree(&domain, 7);
  std::stringstream ss;
  ASSERT_TRUE(SaveTree(tree, &ss).ok());
  std::string text = ss.str();

  RandomEngine rng(3000 + GetParam());
  // Corrupt one random character with a random printable byte.
  const size_t pos = rng.UniformInt(text.size());
  const char replacement = static_cast<char>('0' + rng.UniformInt(75));
  if (text[pos] == replacement) return;  // no-op corruption
  text[pos] = replacement;

  std::stringstream corrupted(text);
  auto loaded = LoadTree(&domain, &corrupted);
  if (loaded.ok()) {
    // Numeric-field corruption can survive parsing; structure must still
    // be a valid arena (counts may differ — that is data, not structure).
    for (size_t i = 0; i < loaded->num_nodes(); ++i) {
      const TreeNode& n = loaded->node(static_cast<NodeId>(i));
      EXPECT_EQ(n.left == kInvalidNode, n.right == kInvalidNode);
    }
  } else {
    EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  }
}

INSTANTIATE_TEST_SUITE_P(Corruptions, SerializationFuzzTest,
                         ::testing::Range(0, 24));

// A noise-driven frequency source with adversarial (negative, huge,
// zero) values: the grown tree must still satisfy every invariant.
class ChaosSource : public LevelFrequencySource {
 public:
  explicit ChaosSource(uint64_t seed) : rng_(seed) {}
  double Query(int level, uint64_t index) const override {
    (void)level;
    (void)index;
    const double u = rng_.UniformDouble();
    if (u < 0.2) return -rng_.Exponential(50.0);  // negative estimates
    if (u < 0.4) return 0.0;
    if (u < 0.6) return rng_.Exponential(1e6);    // absurdly large
    return rng_.UniformDouble(0.0, 20.0);
  }

 private:
  mutable RandomEngine rng_;
};

class GrowChaosTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GrowChaosTest, InvariantsSurviveAdversarialEstimates) {
  const auto [d, seed] = GetParam();
  HypercubeDomain domain(d);
  auto tree = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(tree.ok());
  RandomEngine rng(seed);
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    tree->node(static_cast<NodeId>(i)).count = rng.Laplace(30.0) + 50.0;
  }
  ChaosSource source(seed * 31 + 7);
  GrowOptions options;
  options.k = 4;
  options.l_star = 3;
  options.grow_to = 8;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  EXPECT_TRUE(tree->Validate(1e-6).ok());
  // The sampler must remain total on the chaotic tree.
  TreeSampler sampler(&(*tree));
  RandomEngine sample_rng(seed);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(domain.Contains(sampler.Sample(&sample_rng)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GrowChaosTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3, 4, 5)));

// Total mass at the root is preserved through growth (consistency moves
// mass between siblings, never creates or destroys it).
TEST(GrowMassConservationTest, RootMassInvariantUnderGrowth) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  RandomEngine rng(11);
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    tree->node(static_cast<NodeId>(i)).count =
        rng.UniformDouble(10.0, 100.0);
  }
  const double root_before = tree->node(tree->root()).count;
  ChaosSource source(99);
  GrowOptions options;
  options.k = 2;
  options.l_star = 2;
  options.grow_to = 7;
  ASSERT_TRUE(GrowPartition(&(*tree), source, options).ok());
  EXPECT_DOUBLE_EQ(tree->node(tree->root()).count, root_before);
  double leaf_mass = 0.0;
  for (NodeId id : tree->Leaves()) leaf_mass += tree->node(id).count;
  EXPECT_NEAR(leaf_mass, root_before, 1e-6 * root_before);
}

}  // namespace
}  // namespace privhp
