#include "hierarchy/partition_tree.h"

#include <gtest/gtest.h>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

TEST(PartitionTreeTest, RootOnlyTree) {
  IntervalDomain domain;
  PartitionTree tree(&domain);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_TRUE(tree.node(tree.root()).is_leaf());
  EXPECT_EQ(tree.node(tree.root()).cell.level, 0);
  EXPECT_EQ(tree.MaxDepth(), 0);
}

TEST(PartitionTreeTest, CompleteTreeHasExpectedShape) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 15u);  // 2^4 - 1
  EXPECT_EQ(tree->MaxDepth(), 3);
  EXPECT_EQ(tree->NodesAtLevel(3).size(), 8u);
  EXPECT_EQ(tree->Leaves().size(), 8u);
}

TEST(PartitionTreeTest, CompleteRejectsBadDepth) {
  IntervalDomain domain;
  EXPECT_FALSE(PartitionTree::Complete(&domain, -1).ok());
  EXPECT_FALSE(PartitionTree::Complete(&domain, 50).ok());
  EXPECT_FALSE(PartitionTree::Complete(nullptr, 2).ok());
}

TEST(PartitionTreeTest, BfsArenaLayout) {
  // Builder and PMM rely on level l occupying slots [2^l - 1, 2^{l+1} - 1).
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 4);
  ASSERT_TRUE(tree.ok());
  for (int l = 0; l <= 4; ++l) {
    for (uint64_t i = 0; i < (uint64_t{1} << l); ++i) {
      const NodeId id = static_cast<NodeId>(((uint64_t{1} << l) - 1) + i);
      EXPECT_EQ(tree->node(id).cell.level, l);
      EXPECT_EQ(tree->node(id).cell.index, i);
    }
  }
}

TEST(PartitionTreeTest, AddChildrenLinksBothSides) {
  IntervalDomain domain;
  PartitionTree tree(&domain);
  const NodeId left = tree.AddChildren(tree.root());
  EXPECT_EQ(tree.num_nodes(), 3u);
  const TreeNode& root = tree.node(tree.root());
  EXPECT_EQ(root.left, left);
  EXPECT_EQ(root.right, left + 1);
  EXPECT_EQ(tree.node(left).parent, tree.root());
  EXPECT_EQ(tree.node(left).cell, (CellId{1, 0}));
  EXPECT_EQ(tree.node(left + 1).cell, (CellId{1, 1}));
}

TEST(PartitionTreeTest, FindWalksBitPath) {
  HypercubeDomain domain(2);
  auto tree = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(tree.ok());
  const NodeId id = tree->Find(CellId{3, 5});  // path 1,0,1
  ASSERT_NE(id, kInvalidNode);
  EXPECT_EQ(tree->node(id).cell, (CellId{3, 5}));
  // Path that leaves the tree.
  EXPECT_EQ(tree->Find(CellId{5, 0}), kInvalidNode);
}

TEST(PartitionTreeTest, PreOrderVisitsParentsFirst) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(tree.ok());
  std::vector<int> levels;
  std::vector<bool> seen(tree->num_nodes(), false);
  tree->PreOrder([&](NodeId id) {
    const TreeNode& n = tree->node(id);
    if (n.parent != kInvalidNode) {
      EXPECT_TRUE(seen[n.parent]);
    }
    seen[id] = true;
    levels.push_back(n.cell.level);
  });
  EXPECT_EQ(levels.size(), 7u);
  EXPECT_EQ(levels[0], 0);
}

TEST(PartitionTreeTest, ValidateCatchesNegativeCounts) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  tree->node(1).count = -5.0;
  EXPECT_TRUE(tree->Validate().IsInternal());
}

TEST(PartitionTreeTest, ValidateCatchesInconsistentSums) {
  IntervalDomain domain;
  auto tree = PartitionTree::Complete(&domain, 1);
  ASSERT_TRUE(tree.ok());
  tree->node(0).count = 10.0;
  tree->node(1).count = 3.0;
  tree->node(2).count = 3.0;  // 3 + 3 != 10
  EXPECT_TRUE(tree->Validate().IsInternal());
  tree->node(2).count = 7.0;
  EXPECT_TRUE(tree->Validate().ok());
}

TEST(PartitionTreeTest, MemoryGrowsWithNodes) {
  IntervalDomain domain;
  auto small = PartitionTree::Complete(&domain, 2);
  auto large = PartitionTree::Complete(&domain, 8);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->MemoryBytes(), small->MemoryBytes());
}

TEST(PartitionTreeTest, MergeCountsAddsElementwise) {
  IntervalDomain domain;
  auto a = PartitionTree::Complete(&domain, 3);
  auto b = PartitionTree::Complete(&domain, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->num_nodes(); ++i) {
    a->node(static_cast<NodeId>(i)).count = static_cast<double>(i);
    b->node(static_cast<NodeId>(i)).count = 10.0;
  }
  ASSERT_TRUE(a->MergeCounts(*b).ok());
  for (size_t i = 0; i < a->num_nodes(); ++i) {
    EXPECT_DOUBLE_EQ(a->node(static_cast<NodeId>(i)).count,
                     static_cast<double>(i) + 10.0);
  }
  // The merged-from tree is untouched.
  EXPECT_DOUBLE_EQ(b->node(0).count, 10.0);
}

TEST(PartitionTreeTest, MergeCountsRejectsDifferentStructure) {
  IntervalDomain domain;
  auto a = PartitionTree::Complete(&domain, 3);
  auto shallower = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(a.ok() && shallower.ok());
  EXPECT_TRUE(a->MergeCounts(*shallower).IsInvalidArgument());

  // Same node count, different shape: grow one leaf of a depth-2 tree.
  auto grown = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(grown.ok());
  grown->AddChildren(grown->NodesAtLevel(2).front());
  auto uneven = PartitionTree::Complete(&domain, 2);
  ASSERT_TRUE(uneven.ok());
  uneven->AddChildren(uneven->NodesAtLevel(2).back());
  EXPECT_TRUE(grown->MergeCounts(*uneven).IsInvalidArgument());
}

}  // namespace
}  // namespace privhp
