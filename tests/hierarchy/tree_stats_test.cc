#include "hierarchy/tree_stats.h"

#include <gtest/gtest.h>

#include "domain/interval_domain.h"

namespace privhp {
namespace {

PartitionTree ConsistentDepth2(const Domain* domain) {
  auto tree = PartitionTree::Complete(domain, 2);
  PartitionTree t = std::move(tree).ValueOrDie();
  // Leaves 1, 2, 3, 4.
  t.node(t.Find(CellId{2, 0})).count = 1.0;
  t.node(t.Find(CellId{2, 1})).count = 2.0;
  t.node(t.Find(CellId{2, 2})).count = 3.0;
  t.node(t.Find(CellId{2, 3})).count = 4.0;
  t.node(t.Find(CellId{1, 0})).count = 3.0;
  t.node(t.Find(CellId{1, 1})).count = 7.0;
  t.node(t.root()).count = 10.0;
  return t;
}

TEST(TreeStatsTest, SummarizeCountsEverything) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  const TreeSummary s = Summarize(tree);
  EXPECT_EQ(s.num_nodes, 7u);
  EXPECT_EQ(s.num_leaves, 4u);
  EXPECT_EQ(s.max_depth, 2);
  EXPECT_DOUBLE_EQ(s.total_mass, 10.0);
  EXPECT_GT(s.memory_bytes, 0u);
}

TEST(TreeStatsTest, LeafMassesListsAllLeaves) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  const auto masses = LeafMasses(tree);
  ASSERT_EQ(masses.size(), 4u);
  double total = 0.0;
  for (const auto& [cell, mass] : masses) {
    EXPECT_EQ(cell.level, 2);
    total += mass;
  }
  EXPECT_DOUBLE_EQ(total, 10.0);
}

TEST(TreeStatsTest, DistributionAtLeafLevelIsNormalized) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  auto dist = DistributionAtLevel(tree, 2);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ(dist->size(), 4u);
  EXPECT_NEAR((*dist)[0], 0.1, 1e-12);
  EXPECT_NEAR((*dist)[3], 0.4, 1e-12);
}

TEST(TreeStatsTest, DistributionAggregatesAboveLeaves) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  auto dist = DistributionAtLevel(tree, 1);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ(dist->size(), 2u);
  EXPECT_NEAR((*dist)[0], 0.3, 1e-12);
  EXPECT_NEAR((*dist)[1], 0.7, 1e-12);
}

TEST(TreeStatsTest, DistributionSpreadsBelowLeaves) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  auto dist = DistributionAtLevel(tree, 4);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ(dist->size(), 16u);
  // Leaf {2,0} carries 0.1 spread over 4 level-4 cells.
  EXPECT_NEAR((*dist)[0], 0.025, 1e-12);
  EXPECT_NEAR((*dist)[1], 0.025, 1e-12);
  double total = 0.0;
  for (double p : *dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TreeStatsTest, DistributionRejectsHugeLevels) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  EXPECT_FALSE(DistributionAtLevel(tree, 27).ok());
  EXPECT_FALSE(DistributionAtLevel(tree, -1).ok());
}

TEST(TreeStatsTest, MassPerLevelTracksLevels) {
  IntervalDomain domain;
  PartitionTree tree = ConsistentDepth2(&domain);
  const auto mass = MassPerLevel(tree);
  ASSERT_EQ(mass.size(), 3u);
  EXPECT_DOUBLE_EQ(mass[0], 10.0);
  EXPECT_DOUBLE_EQ(mass[1], 10.0);
  EXPECT_DOUBLE_EQ(mass[2], 10.0);
}

}  // namespace
}  // namespace privhp
