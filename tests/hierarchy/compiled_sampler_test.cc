#include "hierarchy/compiled_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_sampler.h"
#include "io/point_sink.h"
#include "testing/stats.h"

namespace privhp {
namespace {

// Complete depth-`depth` tree with the given leaf masses (level order),
// internal counts summed bottom-up so the tree is exactly consistent.
PartitionTree TreeWithLeafMasses(const Domain* domain, int depth,
                                 const std::vector<double>& leaf_masses) {
  auto tree = PartitionTree::Complete(domain, depth);
  PartitionTree t = std::move(tree).ValueOrDie();
  const auto leaves = t.NodesAtLevel(depth);
  EXPECT_EQ(leaves.size(), leaf_masses.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    t.node(leaves[i]).count = leaf_masses[i];
  }
  for (int l = depth - 1; l >= 0; --l) {
    for (NodeId id : t.NodesAtLevel(l)) {
      TreeNode& n = t.node(id);
      n.count = t.node(n.left).count + t.node(n.right).count;
    }
  }
  return t;
}

TEST(CompiledSamplerTest, TableExcludesZeroMassLeaves) {
  IntervalDomain domain;
  PartitionTree tree =
      TreeWithLeafMasses(&domain, 3, {1, 0, 2, 0, 0, 3, 0, 4});
  CompiledSampler sampler(tree);
  EXPECT_EQ(sampler.num_cells(), 4u);
  EXPECT_DOUBLE_EQ(sampler.total_mass(), 10.0);
}

// The ISSUE-4 regression: zero-count leaves must never be sampled, over
// >= 10^5 draws, by BOTH the compiled sampler and the legacy walk.
TEST(CompiledSamplerTest, ZeroMassLeavesNeverSampledOver1e5Draws) {
  IntervalDomain domain;
  PartitionTree tree =
      TreeWithLeafMasses(&domain, 3, {5, 0, 0, 1, 0, 2, 0, 0});
  const std::vector<uint64_t> zero_leaves = {1, 2, 4, 6, 7};

  CompiledSampler compiled(tree);
  TreeSampler walk(&tree);
  RandomEngine rng_c(101), rng_w(202);
  for (int i = 0; i < 100000; ++i) {
    const CellId c = compiled.SampleLeafCell(&rng_c);
    const CellId w = walk.SampleLeafCell(&rng_w);
    for (uint64_t z : zero_leaves) {
      ASSERT_NE(c.index, z) << "compiled sampler emitted zero-mass leaf";
      ASSERT_NE(w.index, z) << "legacy walk emitted zero-mass leaf";
    }
  }
}

// Consistency repair leaves parents within a tolerance of their
// children's sum, so a real tree can carry a parent whose count exceeds
// left + right while the right subtree is all-zero. Under the old
// `u <= left_mass` walk a draw in (left_mass, parent_mass] was clamped
// into the zero-mass right subtree; the zero-mass guard must send every
// such draw left. The surplus here is made large (1.0 instead of 1e-6)
// so the old bug would fire on ~1/7 of draws instead of measure-~0.
TEST(CompiledSamplerTest, DriftSurplusNeverReachesZeroMassSubtree) {
  IntervalDomain domain;
  PartitionTree tree = TreeWithLeafMasses(&domain, 2, {4, 2, 0, 0});
  tree.node(tree.root()).count = 7.0;  // children sum to 6

  TreeSampler walk(&tree);
  RandomEngine rng(303);
  for (int i = 0; i < 100000; ++i) {
    const CellId cell = walk.SampleLeafCell(&rng);
    ASSERT_LT(cell.index, 2u)
        << "drift surplus walked into a zero-mass subtree";
  }

  // The compiled sampler never saw the inconsistent internal counts at
  // all — its table holds exactly the two positive leaves.
  CompiledSampler compiled(tree);
  EXPECT_EQ(compiled.num_cells(), 2u);
}

// Chi-square goodness-of-fit: compiled leaf-cell frequencies match the
// tree's normalized leaf masses, and the legacy walk's frequencies, on
// random consistent trees.
class CompiledChiSquareTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledChiSquareTest, MatchesLeafMassesAndLegacyWalk) {
  IntervalDomain domain;
  RandomEngine mass_rng(5000 + GetParam());
  std::vector<double> masses(16);
  for (double& m : masses) m = mass_rng.UniformDouble(0.5, 10.0);
  PartitionTree tree = TreeWithLeafMasses(&domain, 4, masses);
  ASSERT_TRUE(tree.Validate(1e-9).ok());
  const double total = tree.node(tree.root()).count;

  CompiledSampler compiled(tree);
  TreeSampler walk(&tree);
  const int draws = 32000;
  std::vector<double> hits_c(16, 0.0), hits_w(16, 0.0), expected(16, 0.0);
  RandomEngine rng_c(6000 + GetParam()), rng_w(7000 + GetParam());
  for (int i = 0; i < draws; ++i) {
    hits_c[compiled.SampleLeafCell(&rng_c).index] += 1.0;
    hits_w[walk.SampleLeafCell(&rng_w).index] += 1.0;
  }
  for (size_t i = 0; i < 16; ++i) expected[i] = draws * masses[i] / total;

  // Compiled vs the exact leaf masses (15 dof).
  EXPECT_LT(testing::ChiSquare(hits_c, expected),
            testing::ChiSquareBound(15));

  // Compiled vs legacy walk: two-sample chi-square on the same draw
  // count; both estimate the same distribution.
  EXPECT_LT(testing::ChiSquarePaired(hits_c, hits_w),
            testing::ChiSquareBound(15));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledChiSquareTest,
                         ::testing::Range(0, 8));

TEST(CompiledSamplerTest, SeededBatchesAreByteIdentical) {
  HypercubeDomain domain(2);
  RandomEngine mass_rng(11);
  std::vector<double> masses(32);
  for (double& m : masses) m = mass_rng.UniformDouble(0.0, 5.0);
  PartitionTree tree = TreeWithLeafMasses(&domain, 5, masses);
  CompiledSampler sampler(tree);

  RandomEngine rng_a(42), rng_b(42);
  const auto batch_a = sampler.SampleBatch(1000, &rng_a);
  const auto batch_b = sampler.SampleBatch(1000, &rng_b);
  ASSERT_EQ(batch_a.size(), 1000u);
  EXPECT_EQ(batch_a, batch_b);

  // GenerateTo draws the identical sequence through the move-accepting
  // sink path.
  CollectingSink sink(&domain);
  RandomEngine rng_c(42);
  ASSERT_TRUE(sampler.GenerateTo(1000, &rng_c, &sink).ok());
  EXPECT_EQ(sink.points(), batch_a);
}

TEST(CompiledSamplerTest, SampleMatchesBatchSequence) {
  IntervalDomain domain;
  PartitionTree tree = TreeWithLeafMasses(&domain, 3, {1, 2, 3, 4, 5, 6, 7, 8});
  CompiledSampler sampler(tree);
  RandomEngine rng_a(77), rng_b(77);
  const auto batch = sampler.SampleBatch(64, &rng_a);
  for (const Point& expected : batch) {
    EXPECT_EQ(sampler.Sample(&rng_b), expected);
  }
}

TEST(CompiledSamplerTest, UniformFallbackOnZeroMass) {
  IntervalDomain domain;
  PartitionTree tree(&domain);
  tree.node(tree.root()).count = 0.0;
  CompiledSampler sampler(tree);
  EXPECT_EQ(sampler.num_cells(), 1u);
  EXPECT_DOUBLE_EQ(sampler.total_mass(), 0.0);
  RandomEngine rng(1);
  const Point p = sampler.Sample(&rng);
  EXPECT_TRUE(domain.Contains(p));
  EXPECT_EQ(sampler.SampleLeafCell(&rng), (CellId{0, 0}));
}

TEST(CompiledSamplerTest, SelfContainedAfterTreeMutation) {
  IntervalDomain domain;
  PartitionTree tree = TreeWithLeafMasses(&domain, 2, {1, 0, 0, 3});
  CompiledSampler sampler(tree);
  // Zeroing the tree after compilation must not affect the sampler: the
  // table owns its data (only the Domain must stay alive).
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    tree.node(static_cast<NodeId>(i)).count = 0.0;
  }
  RandomEngine rng(9);
  std::map<uint64_t, int> hits;
  for (int i = 0; i < 4000; ++i) ++hits[sampler.SampleLeafCell(&rng).index];
  EXPECT_NEAR(hits[0] / 4000.0, 0.25, 0.03);
  EXPECT_NEAR(hits[3] / 4000.0, 0.75, 0.03);
  EXPECT_EQ(hits.count(1), 0u);
  EXPECT_EQ(hits.count(2), 0u);
}

TEST(CompiledSamplerTest, PointsLandInsideSampledCells) {
  HypercubeDomain domain(2);
  auto tree = PartitionTree::Complete(&domain, 4);
  ASSERT_TRUE(tree.ok());
  const CellId target{4, 9};
  for (NodeId id = tree->Find(target); id != kInvalidNode;
       id = tree->node(id).parent) {
    tree->node(id).count = 5.0;
  }
  CompiledSampler sampler(*tree);
  ASSERT_EQ(sampler.num_cells(), 1u);
  RandomEngine rng(13);
  for (int i = 0; i < 200; ++i) {
    const Point p = sampler.Sample(&rng);
    EXPECT_EQ(domain.Locate(p, 4), target.index);
  }
}

TEST(CompiledSamplerTest, GenerateToRejectsNullSink) {
  IntervalDomain domain;
  PartitionTree tree = TreeWithLeafMasses(&domain, 1, {1, 1});
  CompiledSampler sampler(tree);
  RandomEngine rng(1);
  EXPECT_TRUE(
      sampler.GenerateTo(10, &rng, nullptr).IsInvalidArgument());
}

}  // namespace
}  // namespace privhp
