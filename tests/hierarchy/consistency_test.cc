#include "hierarchy/consistency.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "domain/interval_domain.h"

namespace privhp {
namespace {

// Helper: a root with two children carrying given counts.
PartitionTree SmallTree(const Domain* domain, double parent, double left,
                        double right) {
  PartitionTree tree(domain);
  tree.node(tree.root()).count = parent;
  const NodeId l = tree.AddChildren(tree.root());
  tree.node(l).count = left;
  tree.node(l + 1).count = right;
  return tree;
}

TEST(ConsistencyTest, EvenSplitRedistributesSurplus) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, 10.0, 6.0, 8.0);  // Lambda = 4
  const auto c = EnforceConsistencyAt(&tree, tree.root());
  EXPECT_EQ(c, ConsistencyCase::kEvenSplit);
  EXPECT_DOUBLE_EQ(tree.node(1).count, 4.0);
  EXPECT_DOUBLE_EQ(tree.node(2).count, 6.0);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(ConsistencyTest, EvenSplitFillsDeficit) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, 10.0, 3.0, 5.0);  // Lambda = -2
  EnforceConsistencyAt(&tree, tree.root());
  EXPECT_DOUBLE_EQ(tree.node(1).count, 4.0);
  EXPECT_DOUBLE_EQ(tree.node(2).count, 6.0);
}

TEST(ConsistencyTest, Type1ClampsNegativeChildFirst) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, 10.0, -2.0, 8.0);
  // Type 1 sets the left child to 0 before Lambda = 0 + 8 - 10 = -2 is
  // split: left 1, right 9.
  EnforceConsistencyAt(&tree, tree.root());
  EXPECT_DOUBLE_EQ(tree.node(1).count, 1.0);
  EXPECT_DOUBLE_EQ(tree.node(2).count, 9.0);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(ConsistencyTest, Type2ZeroesSmallerChild) {
  IntervalDomain domain;
  // Lambda = 0.5 + 9.5 - 4 = 6; even split would drive the left child to
  // 0.5 - 3 < 0, so the smaller child is zeroed and the larger inherits.
  PartitionTree tree = SmallTree(&domain, 4.0, 0.5, 9.5);
  const auto c = EnforceConsistencyAt(&tree, tree.root());
  EXPECT_EQ(c, ConsistencyCase::kType2Correction);
  EXPECT_DOUBLE_EQ(tree.node(1).count, 0.0);
  EXPECT_DOUBLE_EQ(tree.node(2).count, 4.0);
  EXPECT_TRUE(tree.Validate().ok());
}

// Paper Example 6.1 / Figure 3: parent 4.6, children 3.5 and 3.7 before
// consistency become 2.2 and 2.4 after.
TEST(ConsistencyTest, Example61CountsMatchPaper) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, 4.6, 3.5, 3.7);
  const auto c = EnforceConsistencyAt(&tree, tree.root());
  EXPECT_EQ(c, ConsistencyCase::kEvenSplit);
  EXPECT_NEAR(tree.node(1).count, 2.2, 1e-9);
  EXPECT_NEAR(tree.node(2).count, 2.4, 1e-9);
}

// Paper Example 6.1: ConsErr = |(lambda_0 - lambda_1 + e_0 - e_1)/2| with
// lambda_0 = -0.5, e_0 = 1, lambda_1 = -0.3, e_1 = 2 gives 0.6.
TEST(ConsistencyTest, Example61ConsistencyErrorFormula) {
  EXPECT_NEAR(ConsistencyErrorMagnitude(-0.5, -0.3, 1.0, 2.0), 0.6, 1e-12);
  // Identical errors in both children incur no consistency error.
  EXPECT_DOUBLE_EQ(ConsistencyErrorMagnitude(0.7, 0.7, 2.0, 2.0), 0.0);
}

// Paper Figure 2(a)->(b): root 20.2 with children 12.2, 8.6 becomes
// 11.9, 8.3.
TEST(ConsistencyTest, Figure2ConsistencyStep) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, 20.2, 12.2, 8.6);
  EnforceConsistencyAt(&tree, tree.root());
  EXPECT_NEAR(tree.node(1).count, 11.9, 1e-9);
  EXPECT_NEAR(tree.node(2).count, 8.3, 1e-9);
}

TEST(ConsistencyTest, TreeWideEnforcementClampsNegativeRoot) {
  IntervalDomain domain;
  PartitionTree tree = SmallTree(&domain, -3.0, 1.0, 2.0);
  EnforceConsistencyTree(&tree);
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).count, 0.0);
  EXPECT_TRUE(tree.Validate().ok());
}

// Property sweep: any noisy complete tree becomes a valid consistent tree.
class ConsistencyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyPropertyTest, RandomNoisyTreesBecomeConsistent) {
  IntervalDomain domain;
  RandomEngine rng(GetParam());
  auto tree = PartitionTree::Complete(&domain, 6);
  ASSERT_TRUE(tree.ok());
  // Plant a plausible data distribution plus heavy noise.
  for (size_t i = 0; i < tree->num_nodes(); ++i) {
    TreeNode& n = tree->node(static_cast<NodeId>(i));
    n.count = 100.0 * std::ldexp(1.0, -n.cell.level) + rng.Laplace(5.0);
  }
  EnforceConsistencyTree(&(*tree));
  EXPECT_TRUE(tree->Validate().ok());
  // Total mass is preserved from the (clamped) root down.
  double leaf_sum = 0.0;
  for (NodeId id : tree->Leaves()) leaf_sum += tree->node(id).count;
  EXPECT_NEAR(leaf_sum, tree->node(tree->root()).count, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyPropertyTest,
                         ::testing::Range(1, 17));

}  // namespace
}  // namespace privhp
