#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace privhp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
}

TEST(StatusTest, CopyingSharesState) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(std::move(err).ValueOr(-1), -1);
  Result<int> ok(5);
  EXPECT_EQ(std::move(ok).ValueOr(-1), 5);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  PRIVHP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> ChainAssign(int x) {
  PRIVHP_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  return doubled + 1;
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

TEST(MacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = ChainAssign(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 9);
  EXPECT_TRUE(ChainAssign(-2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace privhp
