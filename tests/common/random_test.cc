#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace privhp {
namespace {

TEST(RandomTest, SameSeedSameStream) {
  RandomEngine a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  RandomEngine rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, UniformDoubleMeanNearHalf) {
  RandomEngine rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, UniformIntRespectsBound) {
  RandomEngine rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformInt(17), 17u);
}

TEST(RandomTest, UniformIntCoversAllResidues) {
  RandomEngine rng(13);
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, LaplaceZeroMeanAndScale) {
  RandomEngine rng(17);
  const double scale = 2.5;
  const int n = 200000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::abs(x);
  }
  // E[X] = 0; E[|X|] = scale.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, scale, 0.05);
}

TEST(RandomTest, LaplaceVarianceIsTwoScaleSquared) {
  RandomEngine rng(19);
  const double scale = 1.5;
  const int n = 300000;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sq += x * x;
  }
  EXPECT_NEAR(sq / n, 2.0 * scale * scale, 0.15);
}

TEST(RandomTest, ExponentialMeanMatchesScale) {
  RandomEngine rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RandomTest, GaussianMomentsMatch) {
  RandomEngine rng(29);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(1.0, 2.0);
    sum += x;
    sq += (x - 1.0) * (x - 1.0);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.03);
  EXPECT_NEAR(sq / n, 4.0, 0.1);
}

TEST(RandomTest, DiscreteLaplaceSymmetricWithExpectedSpread) {
  RandomEngine rng(31);
  const double scale = 2.0;
  const int n = 100000;
  double sum = 0.0;
  int nonzero = 0;
  for (int i = 0; i < n; ++i) {
    const int64_t x = rng.DiscreteLaplace(scale);
    sum += static_cast<double>(x);
    if (x != 0) ++nonzero;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_GT(nonzero, n / 4);  // with scale 2 most draws are nonzero
}

TEST(RandomTest, BernoulliFrequency) {
  RandomEngine rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomTest, ForkedStreamsAreIndependent) {
  RandomEngine parent(41);
  RandomEngine c1 = parent.Fork(1);
  RandomEngine c2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextUint64() == c2.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, SampleDistinctReturnsDistinct) {
  RandomEngine rng(43);
  const auto sample = SampleDistinct(&rng, 100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::unordered_set<uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 20u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RandomTest, SampleDistinctFullUniverse) {
  RandomEngine rng(47);
  const auto sample = SampleDistinct(&rng, 10, 10);
  std::unordered_set<uint64_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Mix64Test, DeterministicAndSpreading) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Nearby inputs should differ in many bits.
  const uint64_t diff = Mix64(1000) ^ Mix64(1001);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (diff >> i) & 1;
  EXPECT_GT(bits, 16);
}

}  // namespace
}  // namespace privhp
