#include "common/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace privhp {
namespace {

TEST(TabulationHashTest, Deterministic) {
  TabulationHash h(42);
  TabulationHash h2(42);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(h.Hash(k), h2.Hash(k));
}

TEST(TabulationHashTest, SeedsDiffer) {
  TabulationHash a(1), b(2);
  int same = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (a.Hash(k) == b.Hash(k)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(TabulationHashTest, BucketInRange) {
  TabulationHash h(7);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_LT(h.Bucket(k, 37), 37u);
}

// Chi-square style uniformity: bucket occupancy of sequential keys should
// be near-uniform.
TEST(TabulationHashTest, BucketsNearUniform) {
  TabulationHash h(11);
  const uint64_t range = 64;
  const uint64_t n = 64000;
  std::vector<int> counts(range, 0);
  for (uint64_t k = 0; k < n; ++k) ++counts[h.Bucket(k, range)];
  const double expected = static_cast<double>(n) / range;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom; mean 63, std ~ 11.2. 63 + 5*11.2 ~ 119.
  EXPECT_LT(chi2, 120.0);
}

TEST(SignBitTest, RoughlyBalanced) {
  TabulationHash h(13);
  int plus = 0;
  const int n = 10000;
  for (uint64_t k = 0; k < n; ++k) {
    const int s = SignBit(h, k);
    EXPECT_TRUE(s == 1 || s == -1);
    if (s == 1) ++plus;
  }
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.02);
}

TEST(MultiplyShiftTest, Pow2BucketsInRange) {
  MultiplyShiftHash h(17);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(h.BucketPow2(k, 5), 32u);
  }
  EXPECT_EQ(h.BucketPow2(123, 0), 0u);
}

TEST(HashFamilyTest, MembersAreIndependentlySeeded) {
  HashFamily family(23, 4);
  ASSERT_EQ(family.size(), 4u);
  // Two members should disagree on most keys.
  int same = 0;
  for (uint64_t k = 0; k < 256; ++k) {
    if (family.at(0).Bucket(k, 1024) == family.at(1).Bucket(k, 1024)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(HashFamilyTest, SameSeedSameFamily) {
  HashFamily f1(99, 3), f2(99, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (uint64_t k = 0; k < 64; ++k) {
      EXPECT_EQ(f1.at(i).Hash(k), f2.at(i).Hash(k));
    }
  }
}

TEST(HashFamilyTest, MemoryAccounted) {
  HashFamily family(5, 3);
  EXPECT_EQ(family.MemoryBytes(), 3 * 8 * 256 * sizeof(uint64_t));
}

}  // namespace
}  // namespace privhp
