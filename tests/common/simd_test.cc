// The SIMD kernel contract: every kernel tier (scalar / AVX2 / AVX-512)
// produces BIT-IDENTICAL output — the vector units only use add, sub,
// mul, div and compares, all correctly rounded per IEEE-754 — and the
// dispatch override ladder (ForceSimdLevel over PRIVHP_SIMD_LEVEL over
// CPUID) behaves as documented. The distribution gate then checks the
// end-to-end property the kernels exist for: the batched in-cell
// sampling step still draws uniformly within each cell.

#include "common/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/partition_tree.h"
#include "testing/stats.h"

namespace privhp {
namespace {

// Restores the dispatch override even when an ASSERT unwinds a test.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) { ForceSimdLevel(level); }
  ~ScopedSimdLevel() { ClearForcedSimdLevel(); }
};

std::vector<SimdLevel> RunnableLevels() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(DetectedSimdLevel()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

TEST(SimdDispatchTest, ForceClampsToDetectedLevel) {
  // Forcing wider than the hardware supports must clamp, never dispatch
  // to an illegal instruction.
  ScopedSimdLevel force(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectedSimdLevel()));
}

TEST(SimdDispatchTest, ForceScalarWinsOverDetection) {
  ScopedSimdLevel force(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(SimdDispatchTest, ClearRestoresDetection) {
  ForceSimdLevel(SimdLevel::kScalar);
  ClearForcedSimdLevel();
  // Without PRIVHP_SIMD_LEVEL in the environment this is the detected
  // level; with it, the env clamp — either way, not stuck at scalar
  // unless that IS the binary's level.
  EXPECT_GE(static_cast<int>(ActiveSimdLevel()), 0);
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2,
                          SimdLevel::kAvx512}) {
    SimdLevel parsed;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel ignored;
  EXPECT_FALSE(ParseSimdLevel("sse9", &ignored));
  EXPECT_FALSE(ParseSimdLevel("", &ignored));
}

// ---------------------------------------------------------------------
// Kernel bit-equality across tiers. Sizes deliberately include awkward
// tails (primes, one element, zero) so the vector main loops AND their
// scalar remainders are both exercised.
// ---------------------------------------------------------------------

class SimdKernelTest : public ::testing::TestWithParam<int> {
 protected:
  int dim() const { return GetParam(); }
  // tile = lcm(dim, 8): the pattern period every caller uses.
  size_t tile() const {
    size_t t = static_cast<size_t>(dim());
    while (t % 8 != 0) t += static_cast<size_t>(dim());
    return t;
  }
};

TEST_P(SimdKernelTest, ScaledCutPositionsBitIdenticalAcrossLevels) {
  const size_t t = tile();
  std::vector<double> lo_pat(t), ext_pat(t), cells_pat(t);
  RandomEngine rng(91);
  for (size_t k = 0; k < t; ++k) {
    lo_pat[k] = rng.UniformDouble(-2.0, 0.0);
    ext_pat[k] = rng.UniformDouble(0.5, 3.0);
    cells_pat[k] = static_cast<double>(uint64_t{1} << (3 + k % 9));
  }
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                   size_t{257}, size_t{1024}, size_t{1031}}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.UniformDouble(-2.0, 1.5);
    std::vector<double> reference(n), out(n);
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      simd::ScaledCutPositions(x.data(), n, lo_pat.data(), ext_pat.data(),
                               cells_pat.data(), t, reference.data());
    }
    for (SimdLevel level : RunnableLevels()) {
      ScopedSimdLevel force(level);
      std::fill(out.begin(), out.end(), -1.0);
      simd::ScaledCutPositions(x.data(), n, lo_pat.data(), ext_pat.data(),
                               cells_pat.data(), t, out.data());
      // memcmp with null pointers is UB even at size 0 (empty vectors
      // may hand back nullptr), so skip the n == 0 case explicitly.
      ASSERT_TRUE(n == 0 || std::memcmp(out.data(), reference.data(),
                                        n * sizeof(double)) == 0)
          << "level " << SimdLevelName(level) << ", n=" << n;
    }
  }
}

TEST_P(SimdKernelTest, InCellTransformBitIdenticalAcrossLevels) {
  const size_t d = static_cast<size_t>(dim());
  const size_t num_slots = 13;
  std::vector<double> lo_tab(num_slots * d), ext_tab(num_slots * d);
  RandomEngine rng(92);
  for (size_t i = 0; i < num_slots * d; ++i) {
    lo_tab[i] = rng.UniformDouble(-1.0, 1.0);
    ext_tab[i] = rng.UniformDouble(0.0, 0.5);
  }
  for (size_t m : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                   size_t{101}, size_t{1000}}) {
    std::vector<uint32_t> slots(m);
    std::vector<double> draws(m * d);
    for (uint32_t& s : slots) {
      s = static_cast<uint32_t>(rng.UniformInt(num_slots));
    }
    for (double& u : draws) u = rng.UniformDouble();
    std::vector<double> reference = draws;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      simd::InCellTransform(lo_tab.data(), ext_tab.data(), slots.data(),
                            dim(), m, reference.data());
    }
    for (SimdLevel level : RunnableLevels()) {
      ScopedSimdLevel force(level);
      std::vector<double> out = draws;
      simd::InCellTransform(lo_tab.data(), ext_tab.data(), slots.data(),
                            dim(), m, out.data());
      ASSERT_TRUE(out.empty() ||
                  std::memcmp(out.data(), reference.data(),
                              out.size() * sizeof(double)) == 0)
          << "level " << SimdLevelName(level) << ", m=" << m;
    }
  }
}

TEST_P(SimdKernelTest, FindOutOfBoundsAgreesAcrossLevels) {
  const size_t t = tile();
  std::vector<double> lo_pat(t, 0.0), hi_pat(t, 1.0);
  RandomEngine rng(93);
  const size_t n = 777;
  std::vector<double> x(n);
  for (double& v : x) v = rng.UniformDouble();

  auto check_all_levels = [&](const std::vector<double>& data,
                              const char* what) {
    size_t reference;
    {
      ScopedSimdLevel force(SimdLevel::kScalar);
      reference = simd::FindOutOfBounds(data.data(), data.size(),
                                        lo_pat.data(), hi_pat.data(), t);
    }
    for (SimdLevel level : RunnableLevels()) {
      ScopedSimdLevel force(level);
      EXPECT_EQ(simd::FindOutOfBounds(data.data(), data.size(),
                                      lo_pat.data(), hi_pat.data(), t),
                reference)
          << "level " << SimdLevelName(level) << ": " << what;
    }
    return reference;
  };

  EXPECT_EQ(check_all_levels(x, "all in bounds"), n);
  for (size_t bad : {size_t{0}, size_t{3}, size_t{511}, n - 1}) {
    for (double v : {-0.5, 1.5, std::numeric_limits<double>::quiet_NaN()}) {
      std::vector<double> corrupted = x;
      corrupted[bad] = v;
      // NaN must FAIL the bounds check (negated-compare form), exactly
      // where the scalar reference says.
      EXPECT_EQ(check_all_levels(corrupted, "corrupted element"), bad);
    }
  }
  // Boundary values are in bounds (Contains() is closed).
  std::vector<double> edges = x;
  edges[0] = 0.0;
  edges[1] = 1.0;
  EXPECT_EQ(check_all_levels(edges, "closed boundary"), n);
}

INSTANTIATE_TEST_SUITE_P(Dims, SimdKernelTest, ::testing::Values(1, 2, 3, 5));

// ---------------------------------------------------------------------
// Distribution gate: the batched sampling path (slot draw + SIMD in-cell
// transform) must still be uniform WITHIN each cell. Bit-equality above
// proves SIMD == scalar; this catches the residual failure mode where
// both are wrong together (e.g. a transposed bounds table). Chi-square
// over a 16-bin histogram per coordinate, 8 seeds.
// ---------------------------------------------------------------------

class SimdDistributionTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdDistributionTest, InCellSamplingIsUniformPerCoordinate) {
  HypercubeDomain domain(2);
  auto tree = PartitionTree::Complete(&domain, 4);
  ASSERT_TRUE(tree.ok());
  // One positive-mass leaf: every sampled point lands in that single
  // cell, so its in-cell offsets must be uniform over the cell box.
  const CellId target{4, 9};
  for (NodeId id = tree->Find(target); id != kInvalidNode;
       id = tree->node(id).parent) {
    tree->node(id).count = 3.0;
  }
  CompiledSampler sampler(*tree);
  ASSERT_EQ(sampler.num_cells(), 1u);
  Point cell_lo(2), cell_hi(2);
  ASSERT_TRUE(domain.CellBoundsFor(target.level, target.index,
                                   cell_lo.data(), cell_hi.data()));

  const size_t draws = 16000;
  const int bins = 16;
  RandomEngine rng(8000 + GetParam());
  PointBatch batch;
  ASSERT_TRUE(sampler.SampleTo(draws, &rng, &batch).ok());
  ASSERT_EQ(batch.size(), draws);

  std::vector<double> expected(bins, static_cast<double>(draws) / bins);
  for (int c = 0; c < 2; ++c) {
    std::vector<double> hist(bins, 0.0);
    for (size_t i = 0; i < draws; ++i) {
      const double v = batch.row(i)[c];
      ASSERT_GE(v, cell_lo[c]);
      ASSERT_LT(v, cell_hi[c]);
      const double u = (v - cell_lo[c]) / (cell_hi[c] - cell_lo[c]);
      int bin = static_cast<int>(u * bins);
      if (bin >= bins) bin = bins - 1;
      hist[bin] += 1.0;
    }
    EXPECT_LT(testing::ChiSquare(hist, expected),
              testing::ChiSquareBound(bins - 1))
        << "coordinate " << c << ", seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdDistributionTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace privhp
