#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace privhp {
namespace {

TEST(TablePrinterTest, AlignedOutputContainsCells) {
  TablePrinter t("demo", {"name", "value"});
  t.BeginRow();
  t.Cell(std::string("alpha"));
  t.Cell(int64_t{42});
  t.BeginRow();
  t.Cell(std::string("beta"));
  t.Cell(3.5, 3);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.5"), std::string::npos);
}

TEST(TablePrinterTest, CsvRoundsTrips) {
  TablePrinter t("demo", {"a", "b"});
  t.BeginRow();
  t.Cell(int64_t{1});
  t.Cell(int64_t{2});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatNumberUsesScientificForExtremes) {
  EXPECT_EQ(TablePrinter::FormatNumber(0.0), "0");
  const std::string small = TablePrinter::FormatNumber(1.23e-7);
  EXPECT_NE(small.find('e'), std::string::npos);
  const std::string large = TablePrinter::FormatNumber(4.56e9);
  EXPECT_NE(large.find('e'), std::string::npos);
  const std::string mid = TablePrinter::FormatNumber(12.5);
  EXPECT_EQ(mid.find('e'), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadMissingCells) {
  TablePrinter t("demo", {"a", "b", "c"});
  t.BeginRow();
  t.Cell(std::string("only-one"));
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace privhp
