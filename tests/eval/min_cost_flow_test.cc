#include "eval/min_cost_flow.h"

#include <gtest/gtest.h>

namespace privhp {
namespace {

TEST(MinCostFlowTest, SingleEdge) {
  MinCostFlow flow(2);
  flow.AddEdge(0, 1, 5.0, 2.0);
  auto r = flow.Solve(0, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->flow, 5.0);
  EXPECT_DOUBLE_EQ(r->cost, 10.0);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  // Two parallel paths 0->1->3 (cost 1+1) and 0->2->3 (cost 5+5), each of
  // capacity 1; demand 2 must use both.
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1.0, 1.0);
  flow.AddEdge(1, 3, 1.0, 1.0);
  flow.AddEdge(0, 2, 1.0, 5.0);
  flow.AddEdge(2, 3, 1.0, 5.0);
  auto r = flow.Solve(0, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->flow, 2.0);
  EXPECT_DOUBLE_EQ(r->cost, 12.0);
}

TEST(MinCostFlowTest, BottleneckLimitsFlow) {
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 10.0, 1.0);
  flow.AddEdge(1, 2, 3.0, 1.0);
  auto r = flow.Solve(0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->flow, 3.0);
  EXPECT_DOUBLE_EQ(r->cost, 6.0);
}

TEST(MinCostFlowTest, DisconnectedGraphMovesNothing) {
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 1.0, 1.0);
  flow.AddEdge(2, 3, 1.0, 1.0);
  auto r = flow.Solve(0, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->flow, 0.0);
  EXPECT_DOUBLE_EQ(r->cost, 0.0);
}

TEST(MinCostFlowTest, RejectsBadEndpoints) {
  MinCostFlow flow(2);
  EXPECT_FALSE(flow.Solve(0, 0).ok());
  EXPECT_FALSE(flow.Solve(-1, 1).ok());
  EXPECT_FALSE(flow.Solve(0, 5).ok());
}

// A small transportation problem with a known optimum: supplies {2, 3} at
// positions 0 and 1; demands {3, 2} at positions 0.5 and 2 on a line with
// |x - y| costs. Optimal plan: move 2 from s0 to d0 (cost 2*0.5), 1 from
// s1 to d0 (0.5), 2 from s1 to d1 (2*1) => total 3.5.
TEST(MinCostFlowTest, TransportationOptimum) {
  MinCostFlow flow(6);  // s, 2 supplies, 2 demands, t
  const int s = 4, t = 5;
  flow.AddEdge(s, 0, 2.0, 0.0);
  flow.AddEdge(s, 1, 3.0, 0.0);
  flow.AddEdge(2, t, 3.0, 0.0);
  flow.AddEdge(3, t, 2.0, 0.0);
  flow.AddEdge(0, 2, 10.0, 0.5);  // |0 - 0.5|
  flow.AddEdge(0, 3, 10.0, 2.0);  // |0 - 2|
  flow.AddEdge(1, 2, 10.0, 0.5);  // |1 - 0.5|
  flow.AddEdge(1, 3, 10.0, 1.0);  // |1 - 2|
  auto r = flow.Solve(s, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->flow, 5.0);
  EXPECT_NEAR(r->cost, 3.5, 1e-9);
}

TEST(MinCostFlowTest, FractionalCapacities) {
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 0.25, 1.0);
  flow.AddEdge(0, 1, 0.5, 3.0);
  flow.AddEdge(1, 2, 1.0, 0.0);
  auto r = flow.Solve(0, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->flow, 0.75, 1e-12);
  EXPECT_NEAR(r->cost, 0.25 * 1.0 + 0.5 * 3.0, 1e-12);
}

}  // namespace
}  // namespace privhp
