#include "eval/workloads.h"

#include <gtest/gtest.h>

#include <set>

#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "domain/ipv4_domain.h"
#include "eval/tail.h"

namespace privhp {
namespace {

TEST(WorkloadsTest, UniformSizesAndBounds) {
  RandomEngine rng(1);
  const auto data = GenerateUniform(3, 500, &rng);
  ASSERT_EQ(data.size(), 500u);
  HypercubeDomain cube(3);
  for (const Point& p : data) EXPECT_TRUE(cube.Contains(p));
}

TEST(WorkloadsTest, MixtureStaysInCube) {
  RandomEngine rng(2);
  const auto data = GenerateGaussianMixture(2, 1000, 4, 0.2, &rng);
  HypercubeDomain cube(2);
  for (const Point& p : data) EXPECT_TRUE(cube.Contains(p));
}

TEST(WorkloadsTest, ZipfMassesNormalizedAndDecreasing) {
  const auto masses = ZipfMasses(100, 1.2);
  double total = 0.0;
  for (size_t i = 0; i < masses.size(); ++i) {
    total += masses[i];
    if (i > 0) {
      EXPECT_LE(masses[i], masses[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Exponent 0 is uniform.
  const auto flat = ZipfMasses(10, 0.0);
  for (double m : flat) EXPECT_NEAR(m, 0.1, 1e-12);
}

// The workload knob the experiments rely on: higher Zipf exponent =>
// smaller ||tail_k||.
class SkewSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SkewSweepTest, TailNormDecreasesWithSkew) {
  const int d = GetParam();
  HypercubeDomain cube(d);
  RandomEngine rng(42);
  const int level = 8;
  const size_t k = 16;
  double prev_tail = 1e18;
  for (double exponent : {0.0, 0.8, 1.6, 2.4}) {
    RandomEngine data_rng(7);  // same base randomness per exponent
    const auto data = GenerateZipfCells(d, 8192, level, exponent, &data_rng);
    auto tail = TailNormAtLevel(cube, data, level, k);
    ASSERT_TRUE(tail.ok());
    EXPECT_LT(*tail, prev_tail + 1e-9) << "exponent " << exponent;
    prev_tail = *tail;
  }
  // Strictly smaller end-to-end.
  EXPECT_LT(prev_tail, 8192.0 * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Dims, SkewSweepTest, ::testing::Values(1, 2));

TEST(WorkloadsTest, SparseAtomsHaveSmallSupport) {
  RandomEngine rng(3);
  const auto data = GenerateSparseAtoms(2, 2000, 10, &rng);
  std::set<std::pair<double, double>> support;
  for (const Point& p : data) support.insert({p[0], p[1]});
  EXPECT_LE(support.size(), 10u);
}

TEST(WorkloadsTest, Ipv4TraceIsValidAndSkewed) {
  RandomEngine rng(4);
  const auto data = GenerateIpv4Trace(4000, 8, 1.2, &rng);
  Ipv4Domain domain;
  std::set<uint64_t> slash8s;
  for (const Point& p : data) {
    ASSERT_TRUE(domain.Contains(p));
    slash8s.insert(domain.Locate(p, 8));
  }
  // Only the configured heavy prefixes appear.
  EXPECT_LE(slash8s.size(), 8u);
}

TEST(WorkloadsTest, GeoHotspotsInsideBox) {
  RandomEngine rng(5);
  const auto data =
      GenerateGeoHotspots(-34.2, -33.5, 150.5, 151.5, 1000, 3, &rng);
  for (const Point& p : data) {
    EXPECT_GE(p[0], -34.2);
    EXPECT_LE(p[0], -33.5);
    EXPECT_GE(p[1], 150.5);
    EXPECT_LE(p[1], 151.5);
  }
}

}  // namespace
}  // namespace privhp
