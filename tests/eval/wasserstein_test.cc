#include "eval/wasserstein.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(Wasserstein1DTest, IdenticalSamplesAreZero) {
  EXPECT_DOUBLE_EQ(Wasserstein1DSamples({0.1, 0.5, 0.9}, {0.1, 0.5, 0.9}),
                   0.0);
}

TEST(Wasserstein1DTest, PointMassesMoveTheirDistance) {
  EXPECT_NEAR(Wasserstein1DSamples({0.2}, {0.7}), 0.5, 1e-12);
  // Two unit masses moved by 0.1 each: W1 = 0.1.
  EXPECT_NEAR(Wasserstein1DSamples({0.0, 1.0}, {0.1, 0.9}), 0.1, 1e-12);
}

TEST(Wasserstein1DTest, DifferentSizesUseFractionalWeights) {
  // a = {0}, b = {0, 1}: optimal plan moves half of a's mass to 1.
  EXPECT_NEAR(Wasserstein1DSamples({0.0}, {0.0, 1.0}), 0.5, 1e-12);
}

TEST(Wasserstein1DTest, MatchesClosedFormForShift) {
  // Shifting an entire sample by delta costs exactly delta.
  RandomEngine rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble() * 0.5;
    a.push_back(x);
    b.push_back(x + 0.25);
  }
  EXPECT_NEAR(Wasserstein1DSamples(a, b), 0.25, 1e-9);
}

TEST(Wasserstein1DDiscreteTest, HandComputedExample) {
  const std::vector<double> positions = {0.0, 1.0, 2.0};
  const std::vector<double> p = {0.5, 0.5, 0.0};
  const std::vector<double> q = {0.0, 0.5, 0.5};
  // Prefix diffs: 0.5, 0.5 => W1 = 0.5*1 + 0.5*1 = 1.0.
  EXPECT_NEAR(Wasserstein1DDiscrete(positions, p, q), 1.0, 1e-12);
}

TEST(Wasserstein1DDiscreteTest, AgreesWithSampleEstimator) {
  const std::vector<double> positions = {0.125, 0.375, 0.625, 0.875};
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  const std::vector<double> q = {0.7, 0.1, 0.1, 0.1};
  std::vector<double> sample_p, sample_q;
  for (size_t i = 0; i < 4; ++i) {
    for (int c = 0; c < static_cast<int>(p[i] * 1000 + 0.5); ++c) {
      sample_p.push_back(positions[i]);
    }
    for (int c = 0; c < static_cast<int>(q[i] * 1000 + 0.5); ++c) {
      sample_q.push_back(positions[i]);
    }
  }
  EXPECT_NEAR(Wasserstein1DDiscrete(positions, p, q),
              Wasserstein1DSamples(sample_p, sample_q), 1e-9);
}

TEST(QuantizeToLevelTest, NormalizedHistogram) {
  IntervalDomain domain;
  auto dist = QuantizeToLevel(domain, {{0.1}, {0.1}, {0.9}}, 1);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR((*dist)[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((*dist)[1], 1.0 / 3.0, 1e-12);
  EXPECT_FALSE(QuantizeToLevel(domain, {{0.1}}, 30).ok());
}

TEST(GridEmdTest, MatchesExact1DOnInterval) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto a = GenerateGaussianMixture(1, 2000, 2, 0.08, &rng);
  const auto b = GenerateUniform(1, 2000, &rng);
  const int level = 7;
  auto pa = QuantizeToLevel(domain, a, level);
  auto pb = QuantizeToLevel(domain, b, level);
  ASSERT_TRUE(pa.ok() && pb.ok());
  auto emd = GridEmd(domain, level, *pa, *pb);
  ASSERT_TRUE(emd.ok()) << emd.status();
  // Exact W1 on the quantized distributions via the CDF formula.
  std::vector<double> centers(size_t{1} << level);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers[i] = (i + 0.5) * std::ldexp(1.0, -level);
  }
  const double exact = Wasserstein1DDiscrete(centers, *pa, *pb);
  EXPECT_NEAR(*emd, exact, 1e-6);
}

TEST(GridEmdTest, ZeroForIdenticalDistributions) {
  HypercubeDomain domain(2);
  RandomEngine rng(5);
  const auto a = GenerateUniform(2, 500, &rng);
  auto pa = QuantizeToLevel(domain, a, 6);
  ASSERT_TRUE(pa.ok());
  auto emd = GridEmd(domain, 6, *pa, *pa);
  ASSERT_TRUE(emd.ok());
  EXPECT_NEAR(*emd, 0.0, 1e-12);
}

TEST(GridEmdTest, DetectsTranslationIn2D) {
  HypercubeDomain domain(2);
  // Mass at one corner cell vs the diagonally opposite cell at level 2
  // (4 cells: 2x1 cuts). Use level 4 for a 4x4 grid.
  std::vector<double> p(16, 0.0), q(16, 0.0);
  HypercubeDomain cube(2);
  const Point corner_a{0.05, 0.05};
  const Point corner_b{0.95, 0.95};
  p[cube.Locate(corner_a, 4)] = 1.0;
  q[cube.Locate(corner_b, 4)] = 1.0;
  auto emd = GridEmd(domain, 4, p, q);
  ASSERT_TRUE(emd.ok());
  // l_inf distance between opposite corner cell centers = 0.75.
  EXPECT_NEAR(*emd, 0.75, 0.05);
}

TEST(GridEmdTest, RejectsOversizedSupport) {
  IntervalDomain domain;
  std::vector<double> p(1 << 10, 1.0 / (1 << 10));
  std::vector<double> q(1 << 10, 0.0);
  q[0] = 1.0;
  EXPECT_TRUE(GridEmd(domain, 10, p, q, /*max_support=*/16).status()
                  .IsOutOfRange());
}

TEST(TreeWassersteinTest, UpperBoundsExactW1OnInterval) {
  IntervalDomain domain;
  RandomEngine rng(7);
  const auto a = GenerateGaussianMixture(1, 3000, 3, 0.06, &rng);
  const auto b = GenerateUniform(1, 3000, &rng);
  const int level = 8;
  auto pa = QuantizeToLevel(domain, a, level);
  auto pb = QuantizeToLevel(domain, b, level);
  ASSERT_TRUE(pa.ok() && pb.ok());
  std::vector<double> centers(size_t{1} << level);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers[i] = (i + 0.5) * std::ldexp(1.0, -level);
  }
  const double exact = Wasserstein1DDiscrete(centers, *pa, *pb);
  const double tree = TreeWasserstein(domain, level, *pa, *pb);
  EXPECT_GE(tree, exact - 1e-9);
  // ... and not vacuous: within a log factor for generic data.
  EXPECT_LT(tree, 20.0 * exact + 1e-3);
}

TEST(TreeWassersteinTest, ZeroForIdentical) {
  IntervalDomain domain;
  std::vector<double> p(16, 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(TreeWasserstein(domain, 4, p, p), 0.0);
}

TEST(SlicedW1Test, MatchesExactInOneDimension) {
  RandomEngine rng(9);
  const auto a = GenerateUniform(1, 500, &rng);
  const auto b = GenerateGaussianMixture(1, 500, 1, 0.1, &rng);
  RandomEngine proj(11);
  EXPECT_NEAR(SlicedW1(a, b, 4, &proj), Wasserstein1DPoints(a, b), 1e-12);
}

TEST(SlicedW1Test, DetectsSeparated2DClouds) {
  RandomEngine rng(13);
  std::vector<Point> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back({rng.UniformDouble(0.0, 0.2), rng.UniformDouble(0.0, 0.2)});
    b.push_back({rng.UniformDouble(0.8, 1.0), rng.UniformDouble(0.8, 1.0)});
  }
  RandomEngine proj(15);
  const double sliced = SlicedW1(a, b, 32, &proj);
  EXPECT_GT(sliced, 0.3);
  // Identical clouds measure ~0.
  EXPECT_LT(SlicedW1(a, a, 8, &proj), 1e-12);
}

}  // namespace
}  // namespace privhp
