#include "eval/tail.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(TailNormTest, HandComputedCases) {
  EXPECT_DOUBLE_EQ(TailNorm({5.0, 3.0, 2.0, 1.0}, 0), 11.0);
  EXPECT_DOUBLE_EQ(TailNorm({5.0, 3.0, 2.0, 1.0}, 1), 6.0);
  EXPECT_DOUBLE_EQ(TailNorm({5.0, 3.0, 2.0, 1.0}, 2), 3.0);
  EXPECT_DOUBLE_EQ(TailNorm({5.0, 3.0, 2.0, 1.0}, 4), 0.0);
  EXPECT_DOUBLE_EQ(TailNorm({1.0, 5.0, 2.0}, 1), 3.0);  // unsorted input
}

TEST(LevelCountsTest, CountsSumToN) {
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 1000, &rng);
  auto counts = LevelCounts(domain, data, 5);
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), 32u);
  double total = 0.0;
  for (double c : *counts) total += c;
  EXPECT_DOUBLE_EQ(total, 1000.0);
  EXPECT_FALSE(LevelCounts(domain, data, 30).ok());
}

TEST(TailAtLevelTest, SparseDataHasZeroTail) {
  IntervalDomain domain;
  // All mass in 3 cells: tail_4 at level 6 is zero.
  std::vector<Point> data;
  for (int i = 0; i < 300; ++i) {
    data.push_back({0.01 + 0.001 * (i % 3)});
  }
  auto tail = TailNormAtLevel(domain, data, 6, 4);
  ASSERT_TRUE(tail.ok());
  EXPECT_DOUBLE_EQ(*tail, 0.0);
}

TEST(TailAtLevelTest, UniformDataHasMaximalTail) {
  IntervalDomain domain;
  RandomEngine rng(2);
  const auto data = GenerateUniform(1, 4096, &rng);
  auto tail = TailNormAtLevel(domain, data, 8, 16);
  ASSERT_TRUE(tail.ok());
  // 256 cells, 16 removed: tail keeps ~ (240/256) of the mass.
  EXPECT_GT(*tail, 4096.0 * 0.8);
}

TEST(PredictedApproxTermTest, ShrinksWithSkewAndK) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto uniform = GenerateZipfCells(1, 4096, 8, 0.0, &rng);
  RandomEngine rng2(3);
  const auto skewed = GenerateZipfCells(1, 4096, 8, 2.0, &rng2);
  auto term_uniform =
      PredictedApproxTerm(domain, uniform, 4, 10, 16, 12);
  auto term_skewed = PredictedApproxTerm(domain, skewed, 4, 10, 16, 12);
  ASSERT_TRUE(term_uniform.ok() && term_skewed.ok());
  EXPECT_LT(*term_skewed, *term_uniform);

  auto term_small_k = PredictedApproxTerm(domain, uniform, 4, 10, 4, 12);
  ASSERT_TRUE(term_small_k.ok());
  EXPECT_GE(*term_small_k, *term_uniform);
  EXPECT_FALSE(PredictedApproxTerm(domain, {}, 4, 10, 16, 12).ok());
}

}  // namespace
}  // namespace privhp
