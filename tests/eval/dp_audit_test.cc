#include "eval/dp_audit.h"

#include <gtest/gtest.h>

#include <cmath>

namespace privhp {
namespace {

TEST(DpAuditTest, ValidatesOptions) {
  RandomEngine rng(1);
  DpAuditOptions options;
  options.trials = 10;  // too few
  auto r = EstimateEpsilon([](RandomEngine* e) { return e->UniformDouble(); },
                           [](RandomEngine* e) { return e->UniformDouble(); },
                           options, &rng);
  EXPECT_FALSE(r.ok());
}

TEST(DpAuditTest, IdenticalMechanismsShowNoLoss) {
  RandomEngine rng(2);
  DpAuditOptions options;
  options.trials = 60000;
  auto mech = [](RandomEngine* e) { return e->Laplace(1.0); };
  auto r = EstimateEpsilon(mech, mech, options, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->epsilon_hat, 0.25);  // only sampling noise
}

TEST(DpAuditTest, DeterministicIdenticalOutputsAreZero) {
  RandomEngine rng(3);
  DpAuditOptions options;
  options.trials = 1000;
  auto mech = [](RandomEngine*) { return 5.0; };
  auto r = EstimateEpsilon(mech, mech, options, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->epsilon_hat, 0.0);
}

TEST(DpAuditTest, DeterministicDistinctOutputsShowLargeLoss) {
  RandomEngine rng(4);
  DpAuditOptions options;
  options.trials = 1000;
  auto r = EstimateEpsilon([](RandomEngine*) { return 1.0; },
                           [](RandomEngine*) { return 2.0; }, options, &rng);
  ASSERT_TRUE(r.ok());
  // Disjoint supports: the (smoothed) ratio estimator reports ~log(trials).
  EXPECT_GT(r->epsilon_hat, 3.0);
}

TEST(DpAuditTest, EstimateTracksTrueEpsilonOrder) {
  RandomEngine rng(5);
  DpAuditOptions options;
  options.trials = 50000;
  auto loss_at = [&](double epsilon) {
    auto r = EstimateEpsilon(
        [epsilon](RandomEngine* e) { return e->Laplace(1.0 / epsilon); },
        [epsilon](RandomEngine* e) {
          return 1.0 + e->Laplace(1.0 / epsilon);
        },
        options, &rng);
    EXPECT_TRUE(r.ok());
    return r->epsilon_hat;
  };
  const double weak = loss_at(0.5);
  const double strong = loss_at(2.0);
  EXPECT_LT(weak, strong);
  EXPECT_LE(weak, 0.5 + 0.3);
  EXPECT_LE(strong, 2.0 + 0.6);
}

}  // namespace
}  // namespace privhp
