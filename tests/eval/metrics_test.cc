#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

TEST(RunningStatsTest, MomentsOfKnownSequence) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RangeQueryErrorTest, ZeroForIdenticalSets) {
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateUniform(1, 500, &rng);
  auto err = RangeQueryError(domain, data, data, 20, 6, &rng);
  ASSERT_TRUE(err.ok());
  EXPECT_DOUBLE_EQ(*err, 0.0);
}

TEST(RangeQueryErrorTest, LargeForDisjointSets) {
  IntervalDomain domain;
  std::vector<Point> left, right;
  RandomEngine rng(2);
  for (int i = 0; i < 300; ++i) {
    left.push_back({rng.UniformDouble(0.0, 0.4)});
    right.push_back({rng.UniformDouble(0.6, 0.99)});
  }
  auto err = RangeQueryError(domain, left, right, 40, 3, &rng);
  ASSERT_TRUE(err.ok());
  EXPECT_GT(*err, 0.1);
}

TEST(RangeQueryErrorTest, ValidatesArguments) {
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateUniform(1, 10, &rng);
  EXPECT_FALSE(RangeQueryError(domain, {}, data, 5, 3, &rng).ok());
  EXPECT_FALSE(RangeQueryError(domain, data, data, 5, 0, &rng).ok());
  EXPECT_FALSE(RangeQueryError(domain, data, data, 5, 99, &rng).ok());
}

}  // namespace
}  // namespace privhp
