// Operating under a memory budget: given a hard cap in KiB, pick the
// largest pruning parameter k that fits, stream the data once, and report
// what that budget bought (W1 against the stream and against what an
// unconstrained PMM build achieves). This is the deployment story of
// Theorem 1: memory is the knob, utility degrades gracefully.

#include <cstdio>
#include <cstdlib>

#include "baselines/nonprivate.h"
#include "baselines/pmm.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

int main(int argc, char** argv) {
  using namespace privhp;

  // Optional argv[1]: stream length (ctest smoke runs pass a small one).
  const size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : size_t{1} << 15;
  if (n == 0) {
    std::fprintf(stderr, "usage: streaming_budget [n >= 1]\n");
    return 2;
  }
  RandomEngine data_rng(2025);
  const auto stream = GenerateZipfCells(1, n, 10, 1.2, &data_rng);
  IntervalDomain domain;
  const double epsilon = 1.0;

  std::printf("stream: n=%zu (raw data %.0f KiB), eps=%.1f\n\n", n,
              n * sizeof(double) / 1024.0, epsilon);
  std::printf("%-14s %-8s %-14s %-10s\n", "budget", "k", "builder mem",
              "W1");

  for (size_t budget_kib : {8, 16, 32, 64, 128, 256}) {
    // Find the largest k whose builder fits the cap (k doubles).
    uint64_t best_k = 0;
    size_t best_mem = 0;
    for (uint64_t k = 1; k <= 512; k *= 2) {
      PrivHPOptions probe;
      probe.epsilon = epsilon;
      probe.k = k;
      probe.expected_n = n;
      probe.l_star = 4;
      probe.sketch_depth = 6;
      auto builder = PrivHPBuilder::Make(&domain, probe);
      if (!builder.ok()) break;
      if (builder->MemoryBytes() <= budget_kib * 1024) {
        best_k = k;
        best_mem = builder->MemoryBytes();
      }
    }
    if (best_k == 0) {
      std::printf("%-14zu (no k fits)\n", budget_kib);
      continue;
    }
    PrivHPOptions options;
    options.epsilon = epsilon;
    options.k = best_k;
    options.expected_n = n;
    options.l_star = 4;
    options.sketch_depth = 6;
    options.seed = 3;
    auto source = BuildPrivHPSource(&domain, stream, options);
    if (!source.ok()) return 1;
    RandomEngine rng(4);
    const double w1 =
        Wasserstein1DPoints((*source)->Generate(n, &rng), stream);
    std::printf("%-3zu KiB        %-8llu %-14.1f %-10.5f\n", budget_kib,
                static_cast<unsigned long long>(best_k), best_mem / 1024.0,
                w1);
  }

  // Unconstrained reference points.
  PmmOptions pmm_options;
  pmm_options.epsilon = epsilon;
  auto pmm = BuildPmm(&domain, stream, pmm_options);
  if (pmm.ok()) {
    RandomEngine rng(5);
    const double w1 =
        Wasserstein1DPoints((*pmm)->Generate(n, &rng), stream);
    std::printf("%-14s %-8s %-14.1f %-10.5f\n", "unbounded", "pmm",
                (*pmm)->BuildMemoryBytes() / 1024.0, w1);
  }
  NonPrivateResampler resampler(stream);
  RandomEngine rng(6);
  std::printf("%-14s %-8s %-14.1f %-10.5f  (not private)\n", "unbounded",
              "boot", resampler.BuildMemoryBytes() / 1024.0,
              Wasserstein1DPoints(resampler.Generate(n, &rng), stream));
  return 0;
}
