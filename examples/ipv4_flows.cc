// IPv4 flow telemetry (the paper's Section 1.2 motivating domain): a
// router streams source addresses it cannot afford to store; PrivHP
// summarizes the stream into a private generator whose leaves are CIDR
// blocks. Synthetic addresses then answer subnet-share questions that
// were never pre-registered — the query flexibility that fixed-query
// private summaries lack.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/builder.h"
#include "domain/ipv4_domain.h"
#include "eval/workloads.h"

int main(int argc, char** argv) {
  using namespace privhp;

  // Synthetic flow trace: 50k packets concentrated on 10 heavy /8s with
  // Zipf-skewed /16 structure inside them.
  RandomEngine trace_rng(1234);
  // Optional argv[1]: packet count (ctest smoke runs pass a small one).
  const size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : size_t{50000};
  if (n == 0) {
    std::fprintf(stderr, "usage: ipv4_flows [n >= 1]\n");
    return 2;
  }
  const auto trace = GenerateIpv4Trace(n, 10, 1.3, &trace_rng);

  Ipv4Domain domain;
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 64;
  options.expected_n = n;
  options.l_max = 24;     // decompose down to /24 blocks
  options.l_star = 8;     // exact counters for every /8
  options.sketch_depth = 8;
  options.seed = 5;

  auto builder = PrivHPBuilder::Make(&domain, options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  for (const Point& p : trace) {
    if (!builder->Add(p).ok()) return 1;
  }
  std::printf("processed %zu packets in %.1f KiB\n", n,
              builder->MemoryBytes() / 1024.0);

  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) return 1;

  RandomEngine rng(9);
  const auto synthetic = generator->Generate(n, &rng);

  // Ad-hoc query: top /8 subnet shares, true vs synthetic.
  auto top_shares = [&](const std::vector<Point>& points) {
    std::map<uint64_t, double> shares;
    for (const Point& p : points) {
      shares[domain.Locate(p, 8)] += 1.0 / points.size();
    }
    return shares;
  };
  const auto true_shares = top_shares(trace);
  const auto synth_shares = top_shares(synthetic);

  std::vector<std::pair<double, uint64_t>> ranked;
  for (const auto& [prefix, share] : true_shares) {
    ranked.emplace_back(share, prefix);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("\n%-18s %10s %10s\n", "subnet", "true", "synthetic");
  for (size_t i = 0; i < std::min<size_t>(8, ranked.size()); ++i) {
    const uint64_t prefix = ranked[i].second;
    const auto it = synth_shares.find(prefix);
    std::printf("%-18s %9.2f%% %9.2f%%\n",
                Ipv4Domain::FormatCidr(8, prefix).c_str(),
                100.0 * ranked[i].first,
                100.0 * (it == synth_shares.end() ? 0.0 : it->second));
  }

  // Deeper ad-hoc drill-down into the heaviest /8: its /16 structure.
  const uint64_t heavy8 = ranked[0].second;
  double true16 = 0.0, synth16 = 0.0;
  uint64_t heavy16 = 0;
  std::map<uint64_t, double> inner;
  for (const Point& p : trace) {
    if (domain.Locate(p, 8) == heavy8) inner[domain.Locate(p, 16)] += 1.0;
  }
  for (const auto& [prefix, count] : inner) {
    if (count > true16) {
      true16 = count;
      heavy16 = prefix;
    }
  }
  for (const Point& p : synthetic) {
    if (domain.Locate(p, 16) == heavy16) synth16 += 1.0;
  }
  std::printf("\nheaviest /16 inside %s: %s — true %.2f%%, synthetic "
              "%.2f%% of all traffic\n",
              Ipv4Domain::FormatCidr(8, heavy8).c_str(),
              Ipv4Domain::FormatCidr(16, heavy16).c_str(),
              100.0 * true16 / n, 100.0 * synth16 / n);
  return 0;
}
