// Quickstart: build an eps-differentially-private synthetic data
// generator from a stream over [0,1]^2, in bounded memory, and use it.
//
//   1. Pick a domain and options (privacy budget eps, pruning parameter k,
//      stream horizon n).
//   2. Stream points through PrivHPBuilder::Add — the builder holds
//      O(k log^2 n) memory regardless of n.
//   3. Finish() releases the generator; everything after that is free
//      post-processing: sample synthetic data, save it, reload it.

#include <cstdio>

#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;

  // A sensitive stream: 200k points from a 3-cluster mixture on [0,1]^2.
  RandomEngine data_rng(7);
  const size_t n = 200000;
  const auto stream = GenerateGaussianMixture(2, n, 3, 0.05, &data_rng);

  HypercubeDomain domain(2);
  PrivHPOptions options;
  options.epsilon = 1.0;     // total privacy budget
  options.k = 32;            // pruning parameter: memory ~ k log^2 n
  options.expected_n = n;    // stream horizon
  options.seed = 42;

  auto builder = PrivHPBuilder::Make(&domain, options);
  if (!builder.ok()) {
    std::fprintf(stderr, "builder: %s\n",
                 builder.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", builder->plan().ToString().c_str());

  for (const Point& x : stream) {
    const Status s = builder->Add(x);
    if (!s.ok()) {
      std::fprintf(stderr, "add: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("streamed %llu points; builder footprint %.1f KiB "
              "(vs %.1f KiB of raw data)\n",
              static_cast<unsigned long long>(builder->num_processed()),
              builder->MemoryBytes() / 1024.0,
              n * 2 * sizeof(double) / 1024.0);
  std::printf("%s", builder->accountant().ToString().c_str());

  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "finish: %s\n",
                 generator.status().ToString().c_str());
    return 1;
  }

  // Generate synthetic data — reusable for any downstream task with no
  // further privacy cost (post-processing).
  RandomEngine sample_rng(1);
  const auto synthetic = generator->Generate(n, &sample_rng);

  RandomEngine proj_rng(2);
  std::printf("sliced W1(synthetic, stream) = %.5f\n",
              SlicedW1(synthetic, stream, 32, &proj_rng));
  const auto uniform = GenerateUniform(2, n, &sample_rng);
  std::printf("sliced W1(uniform,   stream) = %.5f  (oblivious baseline)\n",
              SlicedW1(uniform, stream, 32, &proj_rng));

  // The generator itself is the private artifact: persist and reload.
  const std::string path = "/tmp/privhp_quickstart.tree";
  if (generator->Save(path).ok()) {
    auto reloaded = PrivHPGenerator::Load(&domain, path);
    std::printf("saved and reloaded generator: %s (%zu nodes)\n",
                reloaded.ok() ? "ok" : "failed",
                reloaded.ok() ? reloaded->tree().num_nodes() : 0);
  }
  return 0;
}
