// Geographic coordinates (the paper's other Section 1.2 domain): location
// pings inside a metro bounding box, privatized into a generator whose
// leaves are map tiles. The example checks hotspot preservation — the
// fraction of synthetic mass landing in the true top tiles — and renders
// a coarse ASCII density map for both datasets.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/builder.h"
#include "domain/geo_domain.h"
#include "eval/metrics.h"
#include "eval/workloads.h"

int main(int argc, char** argv) {
  using namespace privhp;

  const double lat_min = -34.2, lat_max = -33.5;
  const double lon_min = 150.5, lon_max = 151.5;
  RandomEngine data_rng(77);
  // Optional argv[1]: ping count (ctest smoke runs pass a small one).
  const size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : size_t{30000};
  if (n == 0) {
    std::fprintf(stderr, "usage: geo_hotspots [n >= 1]\n");
    return 2;
  }
  const auto pings = GenerateGeoHotspots(lat_min, lat_max, lon_min, lon_max,
                                         n, 5, &data_rng);

  GeoDomain domain(lat_min, lat_max, lon_min, lon_max);
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 48;
  options.expected_n = n;
  options.seed = 11;

  auto builder = PrivHPBuilder::Make(&domain, options);
  if (!builder.ok()) return 1;
  for (const Point& p : pings) {
    if (!builder->Add(p).ok()) return 1;
  }
  std::printf("streamed %zu pings in %.1f KiB\n", n,
              builder->MemoryBytes() / 1024.0);
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) return 1;

  RandomEngine rng(13);
  const auto synthetic = generator->Generate(n, &rng);

  // Hotspot preservation at tile level 8 (16 x 16 grid).
  const int level = 8;
  std::vector<double> true_mass(1 << level, 0.0), synth_mass(1 << level, 0.0);
  for (const Point& p : pings) true_mass[domain.Locate(p, level)] += 1.0 / n;
  for (const Point& p : synthetic) {
    synth_mass[domain.Locate(p, level)] += 1.0 / n;
  }
  std::vector<size_t> order(true_mass.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return true_mass[a] > true_mass[b];
  });
  double true_top = 0.0, synth_top = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    true_top += true_mass[order[i]];
    synth_top += synth_mass[order[i]];
  }
  std::printf("top-10 tiles hold %.1f%% of true mass; synthetic places "
              "%.1f%% there\n",
              100.0 * true_top, 100.0 * synth_top);

  // Range-query fidelity over random map tiles.
  RandomEngine query_rng(15);
  auto err = RangeQueryError(domain, pings, synthetic, 100, 10, &query_rng);
  if (err.ok()) {
    std::printf("avg |true - synthetic| share over 100 random tiles: "
                "%.4f\n\n",
                *err);
  }

  // ASCII density maps (16 x 16): level-8 cells laid out on the lat/lon
  // grid. Cell index bits alternate lat/lon cuts, 4 each at level 8.
  auto render = [&](const std::vector<double>& mass, const char* title) {
    std::printf("%s\n", title);
    double peak = 1e-12;
    for (double m : mass) peak = std::max(peak, m);
    for (int row = 15; row >= 0; --row) {
      std::fputs("  ", stdout);
      for (int col = 0; col < 16; ++col) {
        // Interleave row (lat) and col (lon) bits: level 8 = 4 lat cuts
        // (even positions) + 4 lon cuts (odd positions).
        uint64_t index = 0;
        for (int b = 3; b >= 0; --b) {
          index = (index << 1) | ((row >> b) & 1);
          index = (index << 1) | ((col >> b) & 1);
        }
        const double v = mass[index] / peak;
        const char* shades = " .:-=+*#%@";
        std::fputc(shades[std::min(9, static_cast<int>(v * 10))], stdout);
      }
      std::fputc('\n', stdout);
    }
    std::fputc('\n', stdout);
  };
  render(true_mass, "true density (16x16 tiles):");
  render(synth_mass, "synthetic density (16x16 tiles):");
  return 0;
}
