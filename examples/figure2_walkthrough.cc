// Figure 2, step by step: replays the paper's GrowPartition illustration
// (k = 2, L* = 1, L = 4) with the library's real Algorithm 2/3 code and
// prints the tree after every stage, matching panels (a)-(f).
//
// One deliberate difference from the printed figure: panel (d) shows
// Omega_10/Omega_11 as 3.9/3.8, but their raw sketch counts 4.2 + 4.1
// already sum to the parent's 8.3, so Algorithm 3 leaves them unchanged —
// the paper's own panel (e) shows 4.2/4.1 again. This walkthrough prints
// the algorithmically consistent values.

#include <cstdio>
#include <map>

#include "domain/interval_domain.h"
#include "hierarchy/consistency.h"
#include "hierarchy/grow_partition.h"
#include "hierarchy/partition_tree.h"

namespace privhp {
namespace {

class MapSource : public LevelFrequencySource {
 public:
  void Set(int level, uint64_t index, double count) {
    counts_[{level, index}] = count;
  }
  double Query(int level, uint64_t index) const override {
    auto it = counts_.find({level, index});
    return it == counts_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::pair<int, uint64_t>, double> counts_;
};

void PrintTree(const PartitionTree& tree, const char* title) {
  std::printf("%s\n", title);
  tree.PreOrder([&](NodeId id) {
    const TreeNode& n = tree.node(id);
    std::string label = "Omega_";
    if (n.cell.level == 0) {
      label += "root";
    } else {
      for (int b = n.cell.level - 1; b >= 0; --b) {
        label += ((n.cell.index >> b) & 1) ? '1' : '0';
      }
    }
    std::printf("  %*s%s: %.1f\n", n.cell.level * 2, "", label.c_str(),
                n.count);
  });
  std::printf("\n");
}

}  // namespace
}  // namespace privhp

int main() {
  using namespace privhp;
  std::printf("Paper Figure 2 walkthrough (k=2, L*=1, L=4)\n\n");

  IntervalDomain domain;
  auto tree_result = PartitionTree::Complete(&domain, 1);
  if (!tree_result.ok()) return 1;
  PartitionTree tree = std::move(*tree_result);

  // Panel (a): counts after the stream pass.
  tree.node(0).count = 20.2;
  tree.node(1).count = 12.2;
  tree.node(2).count = 8.6;
  PrintTree(tree, "(a) after processing the stream:");

  // Panel (b): consistency on the initial tree.
  EnforceConsistencyTree(&tree);
  PrintTree(tree, "(b) after consistency on the initial tree:");

  // Sketch estimates from panels (c) and (e).
  MapSource sketches;
  sketches.Set(2, 0b00, 4.9);
  sketches.Set(2, 0b01, 7.6);
  sketches.Set(2, 0b10, 4.2);
  sketches.Set(2, 0b11, 4.1);
  sketches.Set(3, 0b000, 3.5);
  sketches.Set(3, 0b001, 3.7);
  sketches.Set(3, 0b010, 4.0);
  sketches.Set(3, 0b011, 6.7);

  // Panels (c)+(d): expand to level 2 and make it consistent. We drive
  // GrowPartition one level at a time by growing to 2 first... Algorithm 2
  // applies consistency immediately per parent, so a single call per
  // target level reproduces each panel pair.
  {
    auto snapshot = PartitionTree::Complete(&domain, 1);
    PartitionTree level2 = std::move(*snapshot);
    level2.node(0).count = 20.2;
    level2.node(1).count = 12.2;
    level2.node(2).count = 8.6;
    GrowOptions to2;
    to2.k = 2;
    to2.l_star = 1;
    to2.grow_to = 2;
    if (!GrowPartition(&level2, sketches, to2).ok()) return 1;
    PrintTree(level2, "(c)+(d) level 2 added from sketch_2, consistent:");
  }

  // Panels (e)+(f): the full growth to level 3 = L-1.
  GrowOptions options;
  options.k = 2;
  options.l_star = 1;
  options.grow_to = 3;
  if (!GrowPartition(&tree, sketches, options).ok()) return 1;
  PrintTree(tree,
            "(e)+(f) top-2 of level 2 expanded to level 3, consistent:");

  const Status valid = tree.Validate(1e-9);
  std::printf("tree invariants: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
