// EXP-PRIV — Theorem 2, audited: empirical privacy-loss estimates for the
// mechanism's two building blocks (per-level noisy counter, private
// sketch cell) on fixed neighboring inputs, across budgets. The estimator
// lower-bounds the true loss, so estimates must sit below the analytic
// epsilon line.

#include <iostream>

#include <cmath>

#include "common/macros.h"
#include "common/table_printer.h"
#include "eval/dp_audit.h"
#include "sketch/private_sketch.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-PRIV: empirical privacy audit of PrivHP components\n\n";

  RandomEngine rng(90210);
  DpAuditOptions options;
  options.trials = 40000;

  TablePrinter table("Empirical epsilon-hat vs analytic epsilon",
                     {"component", "epsilon", "epsilon-hat", "bins"});

  for (double epsilon : {0.25, 0.5, 1.0, 2.0}) {
    auto counter = EstimateEpsilon(
        [epsilon](RandomEngine* r) {
          return 20.0 + r->Laplace(1.0 / epsilon);
        },
        [epsilon](RandomEngine* r) {
          return 21.0 + r->Laplace(1.0 / epsilon);
        },
        options, &rng);
    PRIVHP_CHECK(counter.ok());
    table.BeginRow();
    table.Cell(std::string("noisy counter"));
    table.Cell(epsilon);
    table.Cell(counter->epsilon_hat);
    table.Cell(static_cast<uint64_t>(counter->bins_used));
  }

  for (double epsilon : {0.5, 1.0, 2.0}) {
    auto make = [epsilon](bool extra) {
      return [epsilon, extra](RandomEngine* r) {
        PrivateCountMinSketch sketch =
            PrivateCountMinSketch::Make(32, 4, epsilon, /*seed=*/3, r)
                .ValueOrDie();
        sketch.Update(11, 8.0);
        if (extra) sketch.Update(11, 1.0);
        return sketch.Estimate(11);
      };
    };
    auto cell = EstimateEpsilon(make(false), make(true), options, &rng);
    PRIVHP_CHECK(cell.ok());
    table.BeginRow();
    table.Cell(std::string("private sketch estimate"));
    table.Cell(epsilon);
    table.Cell(cell->epsilon_hat);
    table.Cell(static_cast<uint64_t>(cell->bins_used));
  }
  table.Print(std::cout);
  std::cout << "PASS criterion: epsilon-hat <= epsilon (+ estimator "
               "slack) on every row.\n";
  return 0;
}
