// EXP-SKEW — the tail term made visible: sweep the Zipf exponent of the
// workload at fixed (n, eps, k) and report measured W1 next to
// ||tail_k||_1/n. Theorem 3 predicts the two columns to fall together:
// pruning is near-free on skewed/sparse inputs and costly on uniform
// ones. A sparse-atom workload (tail exactly 0) anchors the bottom.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/tail.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-SKEW: W1 and tail norm vs workload skew "
               "(n=2^14, eps=1, k=16)\n\n";

  IntervalDomain domain;
  const size_t n = 1 << 14;
  const size_t k = 16;

  TablePrinter table("EXP-SKEW", {"workload", "tail_k/n (level 12)",
                                  "E[W1]"});
  auto run = [&](const std::string& name, const std::vector<Point>& data) {
    const double w1 =
        bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
          PrivHPOptions options;
          options.epsilon = 1.0;
          options.k = k;
          options.expected_n = data.size();
          options.l_star = 4;
          options.l_max = 12;
          options.sketch_depth = 6;
          options.seed = seed;
          auto r = BuildPrivHPSource(&domain, data, options);
          PRIVHP_CHECK(r.ok());
          return std::move(*r);
        });
    auto tail = TailNormAtLevel(domain, data, 12, k);
    table.BeginRow();
    table.Cell(name);
    table.Cell(tail.ok() ? *tail / static_cast<double>(data.size()) : -1.0);
    table.Cell(w1);
  };

  for (double exponent : {0.0, 0.5, 1.0, 1.5, 2.0, 2.5}) {
    RandomEngine rng(555);
    run("zipf(" + TablePrinter::FormatNumber(exponent) + ")",
        GenerateZipfCells(1, n, 10, exponent, &rng));
  }
  RandomEngine rng(556);
  run("sparse(8 atoms)", GenerateSparseAtoms(1, n, 8, &rng));
  table.Print(std::cout);
  return 0;
}
