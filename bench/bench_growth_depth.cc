// EXP-DEPTH — ablation of Algorithm 2's loop bound: the paper grows the
// partition to level L-1 (its loop runs l = L*+1 .. L-1, leaving sketch_L
// parsed but unused), while the natural variant grows through level L.
// This bench measures what the final level buys (or costs): one more
// halving of the leaf diameter vs one more layer of sketch noise in the
// counts.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-DEPTH: grow to L-1 (Algorithm 2) vs grow to L\n\n";

  IntervalDomain domain;
  const size_t n = 1 << 14;
  const int l_star = 4;
  const int l_max = 11;
  RandomEngine data_rng(4711);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &data_rng);

  TablePrinter table("EXP-DEPTH (n=2^14, k=16, L=11)",
                     {"epsilon", "W1 grow_to=L-1", "W1 grow_to=L"});
  for (double epsilon : {0.25, 1.0, 4.0}) {
    auto measure = [&](int grow_to) {
      return bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
        PrivHPOptions options;
        options.epsilon = epsilon;
        options.k = 16;
        options.expected_n = n;
        options.l_star = l_star;
        options.l_max = l_max;
        options.grow_to = grow_to;
        options.sketch_depth = 6;
        options.seed = seed;
        auto r = BuildPrivHPSource(&domain, data, options);
        PRIVHP_CHECK(r.ok());
        return std::move(*r);
      });
    };
    table.BeginRow();
    table.Cell(epsilon);
    table.Cell(measure(l_max - 1));
    table.Cell(measure(l_max));
  }
  table.Print(std::cout);
  std::cout << "Interpretation: the paper's L-1 bound trades the last\n"
               "halving of gamma for one fewer noisy level; at small eps\n"
               "stopping early wins, at large eps the extra level wins.\n";
  return 0;
}
