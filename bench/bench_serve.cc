// Serve-path throughput: an in-process PrivHPServer over a Unix socket,
// hammered by concurrent client threads.
//
//   bench_serve [--smoke] [--stats-smoke] [--clients C] [--requests R]
//               [--m M] [--n N] [--workers W]
//
// Reports requests/s, points/s, and client-observed p50/p99 request
// latency for a SAMPLE workload (m points per request, streamed in batch
// frames), an INGEST workload, and a RANGE point-read workload, per
// client count. Per-request latencies are recorded into an obs::Histogram
// shared by all client threads — the same lock-free recorder the server
// uses, exercised here from the measuring side. --smoke shrinks
// everything so the run doubles as a ctest end-to-end check of the
// service stack; --stats-smoke instead drives a small workload and
// asserts the STATS wire op reports it.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "io/point_sink.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "service/client.h"
#include "service/server.h"

namespace privhp {
namespace {

using bench::CountingSink;

struct Config {
  bool smoke = false;
  bool stats_smoke = false;
  int clients = 4;
  int requests = 50;
  size_t m = 10000;
  size_t n = size_t{1} << 16;
  int workers = 4;
};

// Records one timed call into the workload's shared histogram.
class RequestTimer {
 public:
  explicit RequestTimer(obs::Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~RequestTimer() {
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

void PrintWorkloadRow(int clients, const char* workload, double seconds,
                      double total_requests, double mpts_per_s,
                      const obs::Histogram& latency) {
  const obs::HistogramSnapshot snap = latency.Snapshot();
  char mpts[16];
  if (mpts_per_s >= 0) {
    std::snprintf(mpts, sizeof(mpts), "%.2f", mpts_per_s);
  } else {
    std::snprintf(mpts, sizeof(mpts), "-");
  }
  std::printf("%8d %10s %12.1f %12.0f %12s %10.1f %10.1f\n", clients,
              workload, seconds * 1e3, total_requests / seconds, mpts,
              static_cast<double>(snap.ValueAtQuantile(0.5)) / 1e3,
              static_cast<double>(snap.ValueAtQuantile(0.99)) / 1e3);
}

int RunBench(const Config& config) {
  // Release artifact: a mildly skewed 1-D stream.
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = config.n;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  RandomEngine data_rng(7);
  for (size_t i = 0; i < config.n; ++i) {
    const double x = data_rng.UniformDouble() * data_rng.UniformDouble();
    if (!builder->Add({x}).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  ArtifactRegistry registry;
  if (!registry
           .Publish("bench", ServedArtifact::Make(std::move(domain),
                                                  std::move(*generator),
                                                  "bench"))
           .ok()) {
    return 1;
  }

  const std::string socket_path =
      "/tmp/privhp_bench_serve_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = config.workers;
  auto server = PrivHPServer::Start(&registry, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf("bench_serve: n=%zu, m=%zu/request, %d workers, unix socket\n",
              config.n, config.m, config.workers);
  std::printf("%8s %10s %12s %12s %12s %10s %10s\n", "clients", "workload",
              "total_ms", "req/s", "Mpts/s", "p50_us", "p99_us");

  int failures = 0;
  for (int clients : {1, config.clients}) {
    // SAMPLE workload.
    {
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          CountingSink sink;
          for (int r = 0; r < config.requests; ++r) {
            const uint64_t seed = 1 + t * 1000 + r;
            RequestTimer timer(&latency);
            if (!client->Sample("bench", config.m, seed, &sink).ok()) {
              ++errors[t];
              return;
            }
          }
          if (sink.num_processed() !=
              static_cast<uint64_t>(config.requests) * config.m) {
            ++errors[t];
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests =
          static_cast<double>(clients) * config.requests;
      const double total_points = total_requests * config.m;
      PrintWorkloadRow(clients, "sample", seconds, total_requests,
                       total_points / seconds / 1e6, latency);
    }

    // INGEST workload: each client streams its own copy of the dataset
    // into the server (SocketPointSource -> BuildParallel -> AddBatch on
    // the worker) and the server publishes one artifact per client —
    // the wire-to-published dual of the SAMPLE row.
    {
      RandomEngine ingest_rng(23);
      std::vector<Point> dataset;
      dataset.reserve(config.n);
      for (size_t i = 0; i < config.n; ++i) {
        dataset.push_back(
            {ingest_rng.UniformDouble() * ingest_rng.UniformDouble()});
      }
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          PrivHPClient::IngestSpec spec;
          spec.dim = 1;
          spec.n = config.n;
          spec.batch = 4096;
          VectorPointSource source(&dataset);
          RequestTimer timer(&latency);
          auto report = client->Ingest(
              "ingest-" + std::to_string(t), spec, &source);
          if (!report.ok() || report->points_sent != config.n) ++errors[t];
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_points = static_cast<double>(clients) * config.n;
      PrintWorkloadRow(clients, "ingest", seconds, clients,
                       total_points / seconds / 1e6, latency);
    }

    // RANGE (point-read) workload: tiny requests, measures per-request
    // overhead rather than streaming throughput.
    {
      const int reads = config.requests * 20;
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          for (int r = 0; r < reads; ++r) {
            RequestTimer timer(&latency);
            auto mass = client->RangeMass(
                "bench", CellId{4, static_cast<uint64_t>(r % 16)});
            if (!mass.ok()) {
              ++errors[t];
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests = static_cast<double>(clients) * reads;
      PrintWorkloadRow(clients, "range", seconds, total_requests, -1.0,
                       latency);
    }
  }

  const PrivHPServer::Stats stats = (*server)->stats();
  std::printf(
      "server: %llu connections, %llu requests, %llu points sampled, "
      "%llu errors\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.sampled_points),
      static_cast<unsigned long long>(stats.errors));
  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (failures > 0 || stats.errors > 0) {
    std::fprintf(stderr, "bench_serve: %d client failures, %llu server "
                         "errors\n",
                 failures, static_cast<unsigned long long>(stats.errors));
    return 1;
  }
  return 0;
}

// End-to-end STATS check for ctest: drive a small workload against a
// live server, fetch the snapshot over the wire, and verify the
// instrumentation reported it. Fails loudly on any missing metric, so a
// regression in the wire format, the decoder, or the per-endpoint
// instrumentation turns the bench suite red.
int RunStatsSmoke() {
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = 4096;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) return 1;
  RandomEngine data_rng(7);
  for (size_t i = 0; i < 4096; ++i) {
    if (!builder->Add({data_rng.UniformDouble()}).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) return 1;
  ArtifactRegistry registry;
  if (!registry
           .Publish("bench", ServedArtifact::Make(std::move(domain),
                                                  std::move(*generator),
                                                  "bench"))
           .ok()) {
    return 1;
  }
  const std::string socket_path =
      "/tmp/privhp_stats_smoke_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = 2;
  auto server = PrivHPServer::Start(&registry, server_options);
  if (!server.ok()) return 1;

  int checks_failed = 0;
  auto expect = [&checks_failed](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "stats smoke FAILED: %s\n", what);
      ++checks_failed;
    }
  };

  {
    auto client = PrivHPClient::ConnectUnix(socket_path);
    expect(client.ok(), "connect");
    if (!client.ok()) return 1;
    CountingSink sink;
    for (int r = 0; r < 3; ++r) {
      expect(client->Sample("bench", 500, uint64_t(r + 1), &sink).ok(),
             "sample request");
    }
    for (int r = 0; r < 5; ++r) {
      expect(client->RangeMass(
                       "bench", CellId{3, static_cast<uint64_t>(r % 8)})
                 .ok(),
             "range request");
    }
    expect(!client->RangeMass("ghost", CellId{1, 0}).ok(),
           "range on missing artifact must fail");

    auto snap = client->Stats();
    expect(snap.ok(), "STATS round trip");
    if (snap.ok()) {
      expect(snap->CounterOr("op.sample.requests") == 3,
             "op.sample.requests == 3");
      expect(snap->CounterOr("op.range.requests") == 6,
             "op.range.requests == 6");
      expect(snap->CounterOr("op.range.errors") == 1,
             "op.range.errors == 1");
      expect(snap->CounterOr("sample.points") == 1500,
             "sample.points == 1500");
      const obs::HistogramSnapshot* lat =
          snap->FindHistogram("op.sample.latency_ns");
      expect(lat != nullptr && lat->Count() == 3 &&
                 lat->ValueAtQuantile(0.99) > 0,
             "sample latency histogram populated");
      const obs::HistogramSnapshot* out =
          snap->FindHistogram("op.sample.bytes_out");
      expect(out != nullptr && out->max > 500 * 8,
             "sample bytes_out reflects streamed payload");
      expect(snap->GaugeOr("server.workers_total") == 2,
             "server.workers_total == 2");
      expect(snap->GaugeOr("registry.artifacts") == 1,
             "registry.artifacts == 1");
      expect(snap->GaugeOr("artifact.bench.resident_bytes") > 0,
             "artifact.bench.resident_bytes > 0");
      expect(snap->CounterOr("op.stats.requests") == 1,
             "op.stats.requests counted before snapshot");
    }
  }

  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (checks_failed > 0) return 1;
  std::printf("stats smoke: all checks passed\n");
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) {
  privhp::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (flag == "--smoke") {
      config.smoke = true;
    } else if (flag == "--stats-smoke") {
      config.stats_smoke = true;
    } else if (flag == "--clients") {
      config.clients = std::atoi(next());
    } else if (flag == "--requests") {
      config.requests = std::atoi(next());
    } else if (flag == "--m") {
      config.m = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--n") {
      config.n = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--workers") {
      config.workers = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (config.stats_smoke) return privhp::RunStatsSmoke();
  if (config.smoke) {
    config.clients = 4;
    config.requests = 5;
    config.m = 2000;
    config.n = size_t{1} << 13;
    config.workers = 2;
  }
  return privhp::RunBench(config);
}
