// Serve-path throughput: an in-process PrivHPServer over a Unix socket,
// hammered by concurrent client threads.
//
//   bench_serve [--smoke] [--clients C] [--requests R] [--m M] [--n N]
//               [--workers W]
//
// Reports requests/s and points/s for a SAMPLE workload (m points per
// request, streamed in batch frames) and requests/s for a RANGE + mixed
// read workload, per client count. --smoke shrinks everything so the run
// doubles as a ctest end-to-end check of the service stack.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "io/point_sink.h"
#include "service/client.h"
#include "service/server.h"

namespace privhp {
namespace {

using bench::CountingSink;

struct Config {
  bool smoke = false;
  int clients = 4;
  int requests = 50;
  size_t m = 10000;
  size_t n = size_t{1} << 16;
  int workers = 4;
};

int RunBench(const Config& config) {
  // Release artifact: a mildly skewed 1-D stream.
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = config.n;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  RandomEngine data_rng(7);
  for (size_t i = 0; i < config.n; ++i) {
    const double x = data_rng.UniformDouble() * data_rng.UniformDouble();
    if (!builder->Add({x}).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  ArtifactRegistry registry;
  if (!registry
           .Publish("bench", ServedArtifact::Make(std::move(domain),
                                                  std::move(*generator),
                                                  "bench"))
           .ok()) {
    return 1;
  }

  const std::string socket_path =
      "/tmp/privhp_bench_serve_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = config.workers;
  auto server = PrivHPServer::Start(&registry, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf("bench_serve: n=%zu, m=%zu/request, %d workers, unix socket\n",
              config.n, config.m, config.workers);
  std::printf("%8s %10s %12s %12s %12s\n", "clients", "workload", "total_ms",
              "req/s", "Mpts/s");

  int failures = 0;
  for (int clients : {1, config.clients}) {
    // SAMPLE workload.
    {
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          CountingSink sink;
          for (int r = 0; r < config.requests; ++r) {
            const uint64_t seed = 1 + t * 1000 + r;
            if (!client->Sample("bench", config.m, seed, &sink).ok()) {
              ++errors[t];
              return;
            }
          }
          if (sink.num_processed() !=
              static_cast<uint64_t>(config.requests) * config.m) {
            ++errors[t];
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests =
          static_cast<double>(clients) * config.requests;
      const double total_points = total_requests * config.m;
      std::printf("%8d %10s %12.1f %12.0f %12.2f\n", clients, "sample",
                  seconds * 1e3, total_requests / seconds,
                  total_points / seconds / 1e6);
    }

    // INGEST workload: each client streams its own copy of the dataset
    // into the server (SocketPointSource -> BuildParallel -> AddBatch on
    // the worker) and the server publishes one artifact per client —
    // the wire-to-published dual of the SAMPLE row.
    {
      RandomEngine ingest_rng(23);
      std::vector<Point> dataset;
      dataset.reserve(config.n);
      for (size_t i = 0; i < config.n; ++i) {
        dataset.push_back(
            {ingest_rng.UniformDouble() * ingest_rng.UniformDouble()});
      }
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          PrivHPClient::IngestSpec spec;
          spec.dim = 1;
          spec.n = config.n;
          spec.batch = 4096;
          VectorPointSource source(&dataset);
          auto report = client->Ingest(
              "ingest-" + std::to_string(t), spec, &source);
          if (!report.ok() || report->points_sent != config.n) ++errors[t];
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_points = static_cast<double>(clients) * config.n;
      std::printf("%8d %10s %12.1f %12.0f %12.2f\n", clients, "ingest",
                  seconds * 1e3, clients / seconds,
                  total_points / seconds / 1e6);
    }

    // RANGE (point-read) workload: tiny requests, measures per-request
    // overhead rather than streaming throughput.
    {
      const int reads = config.requests * 20;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          for (int r = 0; r < reads; ++r) {
            auto mass = client->RangeMass(
                "bench", CellId{4, static_cast<uint64_t>(r % 16)});
            if (!mass.ok()) {
              ++errors[t];
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests = static_cast<double>(clients) * reads;
      std::printf("%8d %10s %12.1f %12.0f %12s\n", clients, "range",
                  seconds * 1e3, total_requests / seconds, "-");
    }
  }

  const PrivHPServer::Stats stats = (*server)->stats();
  std::printf(
      "server: %llu connections, %llu requests, %llu points sampled, "
      "%llu errors\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.sampled_points),
      static_cast<unsigned long long>(stats.errors));
  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (failures > 0 || stats.errors > 0) {
    std::fprintf(stderr, "bench_serve: %d client failures, %llu server "
                         "errors\n",
                 failures, static_cast<unsigned long long>(stats.errors));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) {
  privhp::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (flag == "--smoke") {
      config.smoke = true;
    } else if (flag == "--clients") {
      config.clients = std::atoi(next());
    } else if (flag == "--requests") {
      config.requests = std::atoi(next());
    } else if (flag == "--m") {
      config.m = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--n") {
      config.n = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--workers") {
      config.workers = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (config.smoke) {
    config.clients = 4;
    config.requests = 5;
    config.m = 2000;
    config.n = size_t{1} << 13;
    config.workers = 2;
  }
  return privhp::RunBench(config);
}
