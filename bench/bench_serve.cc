// Serve-path throughput: an in-process PrivHPServer over a Unix socket,
// hammered by concurrent client threads.
//
//   bench_serve [--smoke] [--stats-smoke] [--pipeline N]
//               [--clients C] [--requests R] [--m M] [--n N] [--workers W]
//
// Reports requests/s, points/s, and client-observed p50/p99 request
// latency for a SAMPLE workload (m points per request, streamed in batch
// frames), an INGEST workload, and a RANGE point-read workload, per
// client count. Per-request latencies are recorded into an obs::Histogram
// shared by all client threads — the same lock-free recorder the server
// uses, exercised here from the measuring side. --smoke shrinks
// everything so the run doubles as a ctest end-to-end check of the
// service stack; --stats-smoke instead drives a small workload and
// asserts the STATS wire op reports it.
//
// --pipeline N runs the event-loop workload instead: N clients issue
// RANGE reads one-at-a-time (baseline) and then pipelined through the
// Send/Collect API, while one deliberately-stalled reader holds a large
// parked SAMPLE response for the whole run. Prints both rows, the
// pipelining speedup, and the server-side starvation evidence
// (queue-wait p99, workers busy, parked output bytes, drop counters).
// Combined with --smoke it shrinks into the bench.serve_pipeline_smoke
// ctest entry, which asserts correctness (in-order responses, the
// stalled peer harming nobody), not throughput ratios.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "io/point_sink.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "service/client.h"
#include "service/server.h"

namespace privhp {
namespace {

using bench::CountingSink;

struct Config {
  bool smoke = false;
  bool stats_smoke = false;
  int pipeline = 0;  ///< > 0: run the pipelined workload with N clients
  int clients = 4;
  int requests = 50;
  size_t m = 10000;
  size_t n = size_t{1} << 16;
  int workers = 4;
};

// Builds the bench artifact (a mildly skewed 1-D stream of n points) and
// publishes it as "bench". Returns nullptr on failure.
std::unique_ptr<ArtifactRegistry> MakeBenchRegistry(size_t n) {
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = n;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return nullptr;
  }
  RandomEngine data_rng(7);
  for (size_t i = 0; i < n; ++i) {
    const double x = data_rng.UniformDouble() * data_rng.UniformDouble();
    if (!builder->Add({x}).ok()) return nullptr;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return nullptr;
  }
  auto registry = std::make_unique<ArtifactRegistry>();
  if (!registry
           ->Publish("bench", ServedArtifact::Make(std::move(domain),
                                                   std::move(*generator),
                                                   "bench"))
           .ok()) {
    return nullptr;
  }
  return registry;
}

// Records one timed call into the workload's shared histogram.
class RequestTimer {
 public:
  explicit RequestTimer(obs::Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~RequestTimer() {
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }

 private:
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

void PrintWorkloadRow(int clients, const char* workload, double seconds,
                      double total_requests, double mpts_per_s,
                      const obs::Histogram& latency) {
  const obs::HistogramSnapshot snap = latency.Snapshot();
  char mpts[16];
  if (mpts_per_s >= 0) {
    std::snprintf(mpts, sizeof(mpts), "%.2f", mpts_per_s);
  } else {
    std::snprintf(mpts, sizeof(mpts), "-");
  }
  std::printf("%8d %10s %12.1f %12.0f %12s %10.1f %10.1f\n", clients,
              workload, seconds * 1e3, total_requests / seconds, mpts,
              static_cast<double>(snap.ValueAtQuantile(0.5)) / 1e3,
              static_cast<double>(snap.ValueAtQuantile(0.99)) / 1e3);
}

int RunBench(const Config& config) {
  auto registry = MakeBenchRegistry(config.n);
  if (!registry) return 1;

  const std::string socket_path =
      "/tmp/privhp_bench_serve_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = config.workers;
  auto server = PrivHPServer::Start(registry.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf("bench_serve: n=%zu, m=%zu/request, %d workers, unix socket\n",
              config.n, config.m, config.workers);
  std::printf("%8s %10s %12s %12s %12s %10s %10s\n", "clients", "workload",
              "total_ms", "req/s", "Mpts/s", "p50_us", "p99_us");

  int failures = 0;
  for (int clients : {1, config.clients}) {
    // SAMPLE workload.
    {
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          CountingSink sink;
          for (int r = 0; r < config.requests; ++r) {
            const uint64_t seed = 1 + t * 1000 + r;
            RequestTimer timer(&latency);
            if (!client->Sample("bench", config.m, seed, &sink).ok()) {
              ++errors[t];
              return;
            }
          }
          if (sink.num_processed() !=
              static_cast<uint64_t>(config.requests) * config.m) {
            ++errors[t];
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests =
          static_cast<double>(clients) * config.requests;
      const double total_points = total_requests * config.m;
      PrintWorkloadRow(clients, "sample", seconds, total_requests,
                       total_points / seconds / 1e6, latency);
    }

    // INGEST workload: each client streams its own copy of the dataset
    // into the server (SocketPointSource -> BuildParallel -> AddBatch on
    // the worker) and the server publishes one artifact per client —
    // the wire-to-published dual of the SAMPLE row.
    {
      RandomEngine ingest_rng(23);
      std::vector<Point> dataset;
      dataset.reserve(config.n);
      for (size_t i = 0; i < config.n; ++i) {
        dataset.push_back(
            {ingest_rng.UniformDouble() * ingest_rng.UniformDouble()});
      }
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          PrivHPClient::IngestSpec spec;
          spec.dim = 1;
          spec.n = config.n;
          spec.batch = 4096;
          VectorPointSource source(&dataset);
          RequestTimer timer(&latency);
          auto report = client->Ingest(
              "ingest-" + std::to_string(t), spec, &source);
          if (!report.ok() || report->points_sent != config.n) ++errors[t];
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_points = static_cast<double>(clients) * config.n;
      PrintWorkloadRow(clients, "ingest", seconds, clients,
                       total_points / seconds / 1e6, latency);
    }

    // RANGE (point-read) workload: tiny requests, measures per-request
    // overhead rather than streaming throughput.
    {
      const int reads = config.requests * 20;
      obs::Histogram latency;
      bench::Stopwatch watch;
      std::vector<std::thread> threads;
      std::vector<int> errors(clients, 0);
      for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
          auto client = PrivHPClient::ConnectUnix(socket_path);
          if (!client.ok()) {
            ++errors[t];
            return;
          }
          for (int r = 0; r < reads; ++r) {
            RequestTimer timer(&latency);
            auto mass = client->RangeMass(
                "bench", CellId{4, static_cast<uint64_t>(r % 16)});
            if (!mass.ok()) {
              ++errors[t];
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double seconds = watch.Seconds();
      for (int e : errors) failures += e;
      const double total_requests = static_cast<double>(clients) * reads;
      PrintWorkloadRow(clients, "range", seconds, total_requests, -1.0,
                       latency);
    }
  }

  const PrivHPServer::Stats stats = (*server)->stats();
  std::printf(
      "server: %llu connections, %llu requests, %llu points sampled, "
      "%llu errors\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.sampled_points),
      static_cast<unsigned long long>(stats.errors));
  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (failures > 0 || stats.errors > 0) {
    std::fprintf(stderr, "bench_serve: %d client failures, %llu server "
                         "errors\n",
                 failures, static_cast<unsigned long long>(stats.errors));
    return 1;
  }
  return 0;
}

// Event-loop workload: N clients hammer RANGE one-at-a-time and then
// pipelined through the Send/Collect window, while one raw socket
// requests a huge SAMPLE and never reads a byte. With a small output
// cap the stalled response parks almost immediately, so the run
// demonstrates that a dead reader holds one parked stream — not a
// worker — and that pipelining removes the per-request round trip.
// Every collected mass is checked against a pre-fetched expected table,
// which is also the in-order evidence: a response delivered out of
// request order pairs with the wrong cell and mismatches.
int RunPipeline(const Config& config) {
  auto registry = MakeBenchRegistry(config.n);
  if (!registry) return 1;

  constexpr size_t kOutputCap = 256 * 1024;
  const std::string socket_path =
      "/tmp/privhp_bench_pipeline_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = config.workers;
  server_options.max_output_queue_bytes = kOutputCap;
  auto server = PrivHPServer::Start(registry.get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  const int clients = config.pipeline;
  const int reads = config.requests * 20;
  constexpr int kWindow = 16;

  std::printf(
      "bench_serve --pipeline: n=%zu, %d clients x %d reads, %d workers, "
      "window %d, stalled reader parked behind a %zu KiB output cap\n",
      config.n, clients, reads, config.workers, kWindow, kOutputCap / 1024);
  std::printf("%8s %10s %12s %12s %12s %10s %10s\n", "clients", "workload",
              "total_ms", "req/s", "Mpts/s", "p50_us", "p99_us");

  // Ground truth for the 16 cells every client cycles through.
  std::vector<double> expected(16);
  {
    auto probe = PrivHPClient::ConnectUnix(socket_path);
    if (!probe.ok()) return 1;
    for (int c = 0; c < 16; ++c) {
      auto mass = probe->RangeMass("bench", CellId{4, uint64_t(c)});
      if (!mass.ok()) {
        std::fprintf(stderr, "%s\n", mass.status().ToString().c_str());
        return 1;
      }
      expected[c] = *mass;
    }
  }

  // The stalled reader: request ~8 MB of sample points, read nothing.
  // The stream parks at the output cap and stays parked for the whole
  // run (the 30 s write-stall deadline is far beyond the bench).
  auto staller = ConnectUnix(socket_path);
  if (!staller.ok()) return 1;
  if (!SendFrame(*staller, EncodeSampleRequest("bench", 1u << 20, 1)).ok()) {
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  int failures = 0;
  double sync_rps = 0.0;
  double pipe_rps = 0.0;

  // Baseline: one request in flight per connection.
  {
    obs::Histogram latency;
    bench::Stopwatch watch;
    std::vector<std::thread> threads;
    std::vector<int> errors(clients, 0);
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t]() {
        auto client = PrivHPClient::ConnectUnix(socket_path);
        if (!client.ok()) {
          ++errors[t];
          return;
        }
        for (int r = 0; r < reads; ++r) {
          RequestTimer timer(&latency);
          auto mass =
              client->RangeMass("bench", CellId{4, uint64_t(r % 16)});
          if (!mass.ok() || *mass != expected[r % 16]) {
            ++errors[t];
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = watch.Seconds();
    for (int e : errors) failures += e;
    const double total = static_cast<double>(clients) * reads;
    sync_rps = total / seconds;
    PrintWorkloadRow(clients, "range", seconds, total, -1.0, latency);
  }

  // Pipelined: keep kWindow requests in flight; the latency histogram
  // records per-collect waits, so p50/p99 show the response stream
  // cadence rather than full round trips.
  {
    obs::Histogram latency;
    bench::Stopwatch watch;
    std::vector<std::thread> threads;
    std::vector<int> errors(clients, 0);
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t]() {
        auto client = PrivHPClient::ConnectUnix(socket_path);
        if (!client.ok()) {
          ++errors[t];
          return;
        }
        int sent = 0;
        auto send_next = [&]() {
          const Status s = client->SendRangeMass(
              "bench", CellId{4, uint64_t(sent % 16)});
          if (s.ok()) ++sent;
          return s.ok();
        };
        while (sent < reads && sent < kWindow) {
          if (!send_next()) {
            ++errors[t];
            return;
          }
        }
        for (int r = 0; r < reads; ++r) {
          RequestTimer timer(&latency);
          auto mass = client->CollectRangeMass();
          if (!mass.ok() || *mass != expected[r % 16]) {
            ++errors[t];
            return;
          }
          if (sent < reads && !send_next()) {
            ++errors[t];
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds = watch.Seconds();
    for (int e : errors) failures += e;
    const double total = static_cast<double>(clients) * reads;
    pipe_rps = total / seconds;
    PrintWorkloadRow(clients, "pipelined", seconds, total, -1.0, latency);
  }

  if (sync_rps > 0) {
    std::printf("pipelining speedup: %.2fx\n", pipe_rps / sync_rps);
  }

  // Server-side starvation evidence, over the wire like `privhp top`
  // would see it.
  int checks_failed = 0;
  auto expect_check = [&checks_failed](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "pipeline smoke FAILED: %s\n", what);
      ++checks_failed;
    }
  };
  {
    auto stats_client = PrivHPClient::ConnectUnix(socket_path);
    if (!stats_client.ok()) {
      failures += 1;
    } else {
      auto snap = stats_client->Stats();
      if (!snap.ok()) {
        failures += 1;
      } else {
        const obs::HistogramSnapshot* qw =
            snap->FindHistogram("server.queue_wait_ns");
        const double qw_p99_us =
            qw ? static_cast<double>(qw->ValueAtQuantile(0.99)) / 1e3 : -1.0;
        const int64_t busy = snap->GaugeOr("server.workers_busy");
        const int64_t parked_bytes =
            snap->GaugeOr("server.output_queue_bytes");
        const int64_t open = snap->GaugeOr("server.connections_open");
        const int64_t drop_bp =
            snap->CounterOr("server.connections_dropped.backpressure");
        const int64_t drop_idle =
            snap->CounterOr("server.connections_dropped.idle");
        std::printf(
            "server: queue_wait p99 %.1f us, workers busy %lld/%lld, "
            "parked output %lld bytes, open conns %lld, drops "
            "backpressure=%lld idle=%lld\n",
            qw_p99_us, static_cast<long long>(busy),
            static_cast<long long>(snap->GaugeOr("server.workers_total")),
            static_cast<long long>(parked_bytes),
            static_cast<long long>(open), static_cast<long long>(drop_bp),
            static_cast<long long>(drop_idle));
        if (config.smoke) {
          // Correctness gates only — never throughput ratios.
          expect_check(parked_bytes > 0,
                       "stalled reader's output is parked server-side");
          expect_check(parked_bytes < int64_t(2 * kOutputCap),
                       "parked output bounded near the configured cap");
          expect_check(open >= 2,
                       "staller + stats connections still open");
          expect_check(drop_bp == 0 && drop_idle == 0,
                       "no drops within the smoke run's deadlines");
          expect_check(busy < snap->GaugeOr("server.workers_total"),
                       "parked stream is not pinning a worker");
        }
      }
    }
  }

  const PrivHPServer::Stats stats = (*server)->stats();
  staller->Close();
  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (failures > 0 || checks_failed > 0 || stats.errors > 0) {
    std::fprintf(stderr,
                 "bench_serve --pipeline: %d client failures, %d check "
                 "failures, %llu server errors\n",
                 failures, checks_failed,
                 static_cast<unsigned long long>(stats.errors));
    return 1;
  }
  if (config.smoke) std::printf("pipeline smoke: all checks passed\n");
  return 0;
}

// End-to-end STATS check for ctest: drive a small workload against a
// live server, fetch the snapshot over the wire, and verify the
// instrumentation reported it. Fails loudly on any missing metric, so a
// regression in the wire format, the decoder, or the per-endpoint
// instrumentation turns the bench suite red.
int RunStatsSmoke() {
  auto domain = std::make_unique<IntervalDomain>();
  PrivHPOptions options;
  options.expected_n = 4096;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) return 1;
  RandomEngine data_rng(7);
  for (size_t i = 0; i < 4096; ++i) {
    if (!builder->Add({data_rng.UniformDouble()}).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) return 1;
  ArtifactRegistry registry;
  if (!registry
           .Publish("bench", ServedArtifact::Make(std::move(domain),
                                                  std::move(*generator),
                                                  "bench"))
           .ok()) {
    return 1;
  }
  const std::string socket_path =
      "/tmp/privhp_stats_smoke_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.num_workers = 2;
  auto server = PrivHPServer::Start(&registry, server_options);
  if (!server.ok()) return 1;

  int checks_failed = 0;
  auto expect = [&checks_failed](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "stats smoke FAILED: %s\n", what);
      ++checks_failed;
    }
  };

  {
    auto client = PrivHPClient::ConnectUnix(socket_path);
    expect(client.ok(), "connect");
    if (!client.ok()) return 1;
    CountingSink sink;
    for (int r = 0; r < 3; ++r) {
      expect(client->Sample("bench", 500, uint64_t(r + 1), &sink).ok(),
             "sample request");
    }
    for (int r = 0; r < 5; ++r) {
      expect(client->RangeMass(
                       "bench", CellId{3, static_cast<uint64_t>(r % 8)})
                 .ok(),
             "range request");
    }
    expect(!client->RangeMass("ghost", CellId{1, 0}).ok(),
           "range on missing artifact must fail");

    auto snap = client->Stats();
    expect(snap.ok(), "STATS round trip");
    if (snap.ok()) {
      expect(snap->CounterOr("op.sample.requests") == 3,
             "op.sample.requests == 3");
      expect(snap->CounterOr("op.range.requests") == 6,
             "op.range.requests == 6");
      expect(snap->CounterOr("op.range.errors") == 1,
             "op.range.errors == 1");
      expect(snap->CounterOr("sample.points") == 1500,
             "sample.points == 1500");
      const obs::HistogramSnapshot* lat =
          snap->FindHistogram("op.sample.latency_ns");
      expect(lat != nullptr && lat->Count() == 3 &&
                 lat->ValueAtQuantile(0.99) > 0,
             "sample latency histogram populated");
      const obs::HistogramSnapshot* out =
          snap->FindHistogram("op.sample.bytes_out");
      expect(out != nullptr && out->max > 500 * 8,
             "sample bytes_out reflects streamed payload");
      expect(snap->GaugeOr("server.workers_total") == 2,
             "server.workers_total == 2");
      expect(snap->GaugeOr("registry.artifacts") == 1,
             "registry.artifacts == 1");
      expect(snap->GaugeOr("artifact.bench.resident_bytes") > 0,
             "artifact.bench.resident_bytes > 0");
      expect(snap->CounterOr("op.stats.requests") == 1,
             "op.stats.requests counted before snapshot");
    }
  }

  (*server)->Stop();
  std::remove(socket_path.c_str());
  if (checks_failed > 0) return 1;
  std::printf("stats smoke: all checks passed\n");
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) {
  privhp::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (flag == "--smoke") {
      config.smoke = true;
    } else if (flag == "--stats-smoke") {
      config.stats_smoke = true;
    } else if (flag == "--pipeline") {
      config.pipeline = std::atoi(next());
    } else if (flag == "--clients") {
      config.clients = std::atoi(next());
    } else if (flag == "--requests") {
      config.requests = std::atoi(next());
    } else if (flag == "--m") {
      config.m = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--n") {
      config.n = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--workers") {
      config.workers = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (config.stats_smoke) return privhp::RunStatsSmoke();
  if (config.smoke) {
    config.clients = 4;
    config.requests = 5;
    config.m = 2000;
    config.n = size_t{1} << 13;
    config.workers = 2;
  }
  if (config.pipeline > 0) return privhp::RunPipeline(config);
  return privhp::RunBench(config);
}
