// EXP-N — W1 vs stream length at fixed k (Corollary 1): the noise term
// decays ~ 1/(eps n) while memory stays at k log^2 n words, so accuracy
// improves with n at an (almost) flat footprint — the defining property
// of a bounded-memory generator. The builder memory column makes the
// log^2 n growth visible next to the n-fold data growth.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-N: W1 vs n at fixed k=16 (eps=1, zipf=1.2)\n\n";

  IntervalDomain domain;
  TablePrinter table("EXP-N",
                     {"n", "E[W1]", "builder mem", "data size"});
  for (int log_n : {10, 12, 14, 16}) {
    const size_t n = size_t{1} << log_n;
    RandomEngine data_rng(31 + log_n);
    const auto data = GenerateZipfCells(1, n, 10, 1.2, &data_rng);
    size_t mem = 0;
    const double w1 =
        bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
          PrivHPOptions options;
          options.epsilon = 1.0;
          options.k = 16;
          options.expected_n = n;
          options.l_star = 4;
          options.sketch_depth = 6;
          options.seed = seed;
          auto r = BuildPrivHPSource(&domain, data, options);
          PRIVHP_CHECK(r.ok());
          mem = (*r)->BuildMemoryBytes();
          return std::move(*r);
        });
    table.BeginRow();
    table.Cell(std::string("2^") + std::to_string(log_n));
    table.Cell(w1);
    table.Cell(bench::FormatBytes(mem));
    table.Cell(bench::FormatBytes(n * sizeof(double)));
  }
  table.Print(std::cout);
  return 0;
}
