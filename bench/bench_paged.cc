// Cold-start and serving cost of the three artifact representations:
// heap (v2 tree file parsed + sampler compiled), paged/mmap (packed
// file mapped and walked in place), paged/pool (same file behind a
// bounded buffer pool).
//
//   bench_paged [--smoke] [--n N] [--m M] [--repeats R] [--pool-kib K]
//
// Reports, per representation: open (cold-start) time, resident bytes
// after open, and sample throughput for m draws. The correctness gates
// always run (sized for --smoke): RANGE / QUANTILE / HEAVY / EXPORT and
// a seeded sample must be bit-identical across all three
// representations, and the pooled pool must actually evict while
// staying bounded — a perf win that broke identity or the memory bound
// would fail here, not in production.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/builder.h"
#include "core/queries.h"
#include "domain/interval_domain.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"
#include "service/artifact_registry.h"
#include "storage/artifact_packer.h"
#include "storage/file_io.h"

namespace privhp {
namespace {

using bench::CountingSink;

struct Config {
  bool smoke = false;
  size_t n = size_t{1} << 16;
  size_t m = 2'000'000;
  int repeats = 3;
  size_t pool_kib = 64;
};

double MedianSeconds(int repeats, const std::function<void()>& body) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    bench::Stopwatch watch;
    body();
    times.push_back(watch.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::string TempPath(const char* leaf) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && *dir != '\0' ? dir : "/tmp") + "/" +
         leaf + "." + std::to_string(::getpid());
}

int RunBench(const Config& config) {
  IntervalDomain domain;
  PrivHPOptions options;
  options.expected_n = config.n;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(&domain, options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  RandomEngine data_rng(7);
  for (size_t i = 0; i < config.n; ++i) {
    const Point p{data_rng.UniformDouble() * data_rng.UniformDouble()};
    if (!builder->Add(p).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  const std::string tree_path = TempPath("bench_paged.tree");
  const std::string packed_path = TempPath("bench_paged.phx");
  if (!SaveTreeToFile(generator->tree(), tree_path).ok()) return 1;
  bench::Stopwatch pack_watch;
  if (!storage::PackArtifact(generator->tree(), packed_path).ok()) return 1;
  const double pack_ms = pack_watch.Seconds() * 1e3;

  auto tree_size = storage::FileSize(tree_path);
  auto packed_size = storage::FileSize(packed_path);
  if (!tree_size.ok() || !packed_size.ok()) return 1;
  std::printf(
      "bench_paged: n=%zu nodes=%zu, tree file %s, packed file %s "
      "(packed in %.2f ms), m=%zu draws, pool=%zu KiB\n",
      config.n, generator->tree().num_nodes(),
      bench::FormatBytes(*tree_size).c_str(),
      bench::FormatBytes(*packed_size).c_str(), pack_ms, config.m,
      config.pool_kib);

  storage::PagedReadOptions pooled_options;
  pooled_options.use_buffer_pool = true;
  pooled_options.pool_bytes = config.pool_kib << 10;

  struct Rep {
    const char* name;
    std::function<Result<std::shared_ptr<const ServedArtifact>>()> open;
  };
  const Rep reps[] = {
      {"heap", [&] { return ServedArtifact::FromFile(tree_path); }},
      {"mmap", [&] { return ServedArtifact::FromFile(packed_path); }},
      {"pool", [&] {
         return ServedArtifact::FromPagedFile(packed_path, pooled_options);
       }}};

  std::printf("%6s %12s %12s %10s %10s\n", "repr", "open_ms", "resident",
              "Mpts/s", "ns/pt");
  std::vector<std::shared_ptr<const ServedArtifact>> opened;
  for (const Rep& rep : reps) {
    const double open_s = MedianSeconds(config.repeats, [&] {
      auto artifact = rep.open();
      if (!artifact.ok()) std::abort();
    });
    auto artifact = rep.open();
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s\n", artifact.status().ToString().c_str());
      return 1;
    }
    const double sample_s = MedianSeconds(config.repeats, [&] {
      CountingSink sink;
      RandomEngine rng(2002);
      if (!(*artifact)->GenerateTo(config.m, &rng, &sink).ok()) {
        std::abort();
      }
    });
    std::printf("%6s %12.3f %12s %10.2f %10.0f\n", rep.name, open_s * 1e3,
                bench::FormatBytes((*artifact)->ResidentBytes()).c_str(),
                config.m / sample_s / 1e6, sample_s * 1e9 / config.m);
    opened.push_back(std::move(*artifact));
  }

  // Correctness gates: every representation answers identically.
  bool ok = true;
  const std::vector<double> qs = {0.01, 0.25, 0.5, 0.75, 0.99};
  auto blob0 = opened[0]->ExportBlob();
  auto q0 = opened[0]->Quantiles(qs);
  auto h0 = opened[0]->Heavy(0.02);
  auto r0 = opened[0]->RangeMass({4, 3});
  ok = ok && blob0.ok() && q0.ok() && h0.ok() && r0.ok();
  RandomEngine rng0(4242);
  CollectingSink sink0;
  ok = ok && opened[0]->GenerateTo(20000, &rng0, &sink0).ok();
  for (size_t i = 1; ok && i < opened.size(); ++i) {
    auto blob = opened[i]->ExportBlob();
    auto q = opened[i]->Quantiles(qs);
    auto h = opened[i]->Heavy(0.02);
    auto r = opened[i]->RangeMass({4, 3});
    ok = blob.ok() && q.ok() && h.ok() && r.ok() && *blob == *blob0 &&
         *q == *q0 && h->size() == h0->size() && *r == *r0;
    for (size_t j = 0; ok && j < h->size(); ++j) {
      ok = (*h)[j].cell == (*h0)[j].cell &&
           (*h)[j].fraction == (*h0)[j].fraction;
    }
    RandomEngine rng(4242);
    CollectingSink sink;
    ok = ok && opened[i]->GenerateTo(20000, &rng, &sink).ok() &&
         sink.points() == sink0.points();
  }
  // The pooled representation must be bounded and actually churning.
  const storage::PagedArtifact* pooled = opened[2]->paged();
  ok = ok && pooled != nullptr && pooled->pooled() &&
       opened[2]->ResidentBytes() < static_cast<size_t>(*packed_size) &&
       pooled->pool()->stats().misses > 0;
  std::printf("checks: heap/mmap/pool bit-identity %s, pooled resident "
              "%s < packed %s, pool hits=%llu misses=%llu evictions=%llu\n",
              ok ? "OK" : "FAILED",
              bench::FormatBytes(opened[2]->ResidentBytes()).c_str(),
              bench::FormatBytes(*packed_size).c_str(),
              static_cast<unsigned long long>(pooled->pool()->stats().hits),
              static_cast<unsigned long long>(
                  pooled->pool()->stats().misses),
              static_cast<unsigned long long>(
                  pooled->pool()->stats().evictions));

  std::remove(tree_path.c_str());
  std::remove(packed_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "bench_paged: correctness gate failed\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) {
  privhp::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (flag == "--smoke") {
      config.smoke = true;
    } else if (flag == "--n") {
      config.n = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--m") {
      config.m = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--repeats") {
      config.repeats = std::atoi(next());
    } else if (flag == "--pool-kib") {
      config.pool_kib = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (config.smoke) {
    config.n = size_t{1} << 13;
    config.m = 200000;
    config.repeats = 1;
    config.pool_kib = 16;
  }
  if (config.repeats < 1) config.repeats = 1;
  if (config.n == 0 || config.m == 0 || config.pool_kib == 0) {
    std::fprintf(stderr, "bench_paged: invalid flag value\n");
    return 2;
  }
  return privhp::RunBench(config);
}
