// EXP-EPS — W1 vs privacy budget at fixed n and k (Theorem 3's Delta_noise
// ~ 1/eps at fixed structure). The non-private floor shows where the
// curve must flatten: beyond the point where approximation error
// dominates, extra budget buys nothing — exactly the regime where
// pruning, not noise, is the binding constraint.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-EPS: W1 vs epsilon (n=2^14, k=16, zipf=1.2)\n\n";

  IntervalDomain domain;
  const size_t n = 1 << 14;
  RandomEngine data_rng(2024);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &data_rng);

  TablePrinter table("EXP-EPS", {"epsilon", "E[W1]"});
  for (double epsilon : {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double w1 =
        bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
          PrivHPOptions options;
          options.epsilon = epsilon;
          options.k = 16;
          options.expected_n = n;
          options.l_star = 4;
          options.l_max = 12;
          options.sketch_depth = 6;
          options.seed = seed;
          auto r = BuildPrivHPSource(&domain, data, options);
          PRIVHP_CHECK(r.ok());
          return std::move(*r);
        });
    table.BeginRow();
    table.Cell(epsilon);
    table.Cell(w1);
  }
  // Non-private floor (bootstrap sampling error ~ 1/sqrt(n)).
  const double floor = bench::AverageW1(domain, data, 3, [&](uint64_t) {
    return std::make_unique<NonPrivateResampler>(data);
  });
  table.BeginRow();
  table.Cell(std::string("inf (nonprivate)"));
  table.Cell(floor);
  table.Print(std::cout);
  return 0;
}
