// EXP-T1-1D — Table 1 on Omega = [0,1]: accuracy (measured expected W1
// against the empirical distribution) and memory (measured build
// footprint) for Smooth, SRRW, PMM and PrivHP at several k, plus the flat
// DP histogram and the non-private resampling floor.
//
// Expected shape (paper Table 1): PMM/SRRW are the most accurate but use
// Theta(eps n) (SRRW/PMM) or Theta(d n) (Smooth) memory; PrivHP trades a
// tail-dependent sliver of accuracy for an order-of-magnitude smaller,
// k-controlled footprint, interpolating toward PMM as k grows.

#include <iostream>

#include "baselines/nonprivate.h"
#include "baselines/pmm.h"
#include "baselines/smooth.h"
#include "baselines/srrw.h"
#include "baselines/uniform_histogram.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/tail.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

void RunTable(size_t n, double epsilon, double zipf_exponent, int seeds) {
  IntervalDomain domain;
  RandomEngine data_rng(424242);
  const auto data =
      GenerateZipfCells(1, n, /*level=*/10, zipf_exponent, &data_rng);

  TablePrinter table(
      "Table 1 (d=1): n=" + std::to_string(n) +
          " eps=" + TablePrinter::FormatNumber(epsilon) +
          " zipf=" + TablePrinter::FormatNumber(zipf_exponent),
      {"method", "E[W1]", "memory", "memory(B)"});

  auto add_row = [&](const std::string& name, double w1, size_t bytes) {
    table.BeginRow();
    table.Cell(name);
    table.Cell(w1);
    table.Cell(bench::FormatBytes(bytes));
    table.Cell(static_cast<uint64_t>(bytes));
  };

  size_t mem = 0;
  double w1;

  w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
    NonPrivateResampler resampler(data);
    mem = resampler.BuildMemoryBytes();
    (void)seed;
    return std::make_unique<NonPrivateResampler>(data);
  });
  add_row("nonprivate", w1, mem);

  w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
    SmoothOptions options;
    options.epsilon = epsilon;
    options.order = 12;
    options.seed = seed;
    auto r = BuildSmooth(1, data, options);
    PRIVHP_CHECK(r.ok());
    mem = (*r)->BuildMemoryBytes();
    return std::move(*r);
  });
  add_row("smooth", w1, mem);

  w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
    SrrwOptions options;
    options.epsilon = epsilon;
    options.seed = seed;
    auto r = BuildSrrw(1, data, options);
    PRIVHP_CHECK(r.ok());
    mem = (*r)->BuildMemoryBytes();
    return std::move(*r);
  });
  add_row("srrw", w1, mem);

  w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
    PmmOptions options;
    options.epsilon = epsilon;
    options.seed = seed;
    auto r = BuildPmm(&domain, data, options);
    PRIVHP_CHECK(r.ok());
    mem = (*r)->BuildMemoryBytes();
    return std::unique_ptr<SyntheticDataSource>(std::move(*r));
  });
  add_row("pmm", w1, mem);

  w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
    UniformHistogramOptions options;
    options.epsilon = epsilon;
    options.seed = seed;
    auto r = BuildUniformHistogram(&domain, data, options);
    PRIVHP_CHECK(r.ok());
    mem = (*r)->BuildMemoryBytes();
    return std::move(*r);
  });
  add_row("flat-histogram", w1, mem);

  for (uint64_t k : {4, 16, 64}) {
    w1 = bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
      PrivHPOptions options;
      options.epsilon = epsilon;
      options.k = k;
      options.expected_n = n;
      options.l_star = 4;
      options.sketch_depth = 6;
      options.seed = seed;
      auto r = BuildPrivHPSource(&domain, data, options);
      PRIVHP_CHECK(r.ok());
      mem = (*r)->BuildMemoryBytes();
      return std::move(*r);
    });
    add_row("privhp(k=" + std::to_string(k) + ")", w1, mem);
  }

  // Context: the quantity the PrivHP bound depends on.
  auto tail = TailNormAtLevel(domain, data, 10, 16);
  table.Print(std::cout);
  if (tail.ok()) {
    std::cout << "  ||tail_16^(level 10)||_1 / n = "
              << TablePrinter::FormatNumber(*tail / static_cast<double>(n))
              << "\n\n";
  }
}

}  // namespace
}  // namespace privhp

int main() {
  std::cout << "EXP-T1-1D: Table 1 reproduction on [0,1]\n\n";
  for (size_t n : {size_t{1} << 12, size_t{1} << 14}) {
    privhp::RunTable(n, /*epsilon=*/1.0, /*zipf_exponent=*/1.2, /*seeds=*/3);
  }
  // Skew contrast at fixed n.
  privhp::RunTable(size_t{1} << 14, 1.0, 0.0, 3);
  return 0;
}
