// EXP-K — the headline space-utility interpolation (Theorem 1 /
// Corollary 1): sweep the pruning parameter k at fixed n and eps and
// report measured W1, measured builder memory, the theoretical
// M = k log^2 n, and the tail term ||tail_k||_1/n the bound predicts.
//
// Expected shape: W1 decreases in k (approximation term shrinks) until
// the noise term's jk growth takes over; memory grows linearly in k;
// PMM (complete tree, Theta(eps n) memory) is the k -> infinity anchor.

#include <iostream>

#include "baselines/nonprivate.h"
#include "baselines/pmm.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/tail.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

void RunSweep(double zipf_exponent) {
  IntervalDomain domain;
  const size_t n = 1 << 14;
  const double epsilon = 1.0;
  const int seeds = 3;
  RandomEngine data_rng(999);
  const auto data = GenerateZipfCells(1, n, 10, zipf_exponent, &data_rng);

  TablePrinter table(
      "EXP-K: W1 vs k (n=2^14, eps=1, zipf=" +
          TablePrinter::FormatNumber(zipf_exponent) + ")",
      {"k", "E[W1]", "builder mem", "M=k*log^2(n) (words)", "tail_k/n"});

  for (uint64_t k : {1, 2, 4, 8, 16, 32, 64, 128}) {
    size_t mem = 0;
    uint64_t theory_words = 0;
    const double w1 =
        bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
          PrivHPOptions options;
          options.epsilon = epsilon;
          options.k = k;
          options.expected_n = n;
          options.l_star = 4;
          options.sketch_depth = 6;
          options.seed = seed;
          auto r = BuildPrivHPSource(&domain, data, options);
          PRIVHP_CHECK(r.ok());
          mem = (*r)->BuildMemoryBytes();
          theory_words = k * 14 * 14;
          return std::move(*r);
        });
    auto tail = TailNormAtLevel(domain, data, 14, k);
    table.BeginRow();
    table.Cell(k);
    table.Cell(w1);
    table.Cell(bench::FormatBytes(mem));
    table.Cell(theory_words);
    table.Cell(tail.ok() ? *tail / static_cast<double>(n) : -1.0);
  }

  // Anchors.
  size_t mem = 0;
  const double w1_pmm =
      bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
        PmmOptions options;
        options.epsilon = epsilon;
        options.seed = seed;
        auto r = BuildPmm(&domain, data, options);
        PRIVHP_CHECK(r.ok());
        mem = (*r)->BuildMemoryBytes();
        return std::unique_ptr<SyntheticDataSource>(std::move(*r));
      });
  table.BeginRow();
  table.Cell(std::string("pmm (no pruning)"));
  table.Cell(w1_pmm);
  table.Cell(bench::FormatBytes(mem));
  table.Cell(std::string("Theta(eps n)"));
  table.Cell(0.0);
  table.Print(std::cout);
}

}  // namespace
}  // namespace privhp

int main() {
  std::cout << "EXP-K: space-utility interpolation via the pruning "
               "parameter k\n\n";
  privhp::RunSweep(1.2);   // skewed: pruning nearly free
  privhp::RunSweep(0.0);   // uniform-over-cells: worst-case tail
  return 0;
}
