// EXP-CMS — Lemma 4 (and Figure 1's structure): measured Count-Min
// overestimate vs the bound (||tail_w||_1 + 2^{-j+1}||v||_1)/w, sweeping
// width, depth and input skew; plus the comparison the paper draws in
// Section 2.1 against the counter-based (Misra-Gries) sketch at equal
// memory.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "eval/workloads.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/misra_gries.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-CMS: Lemma 4 — Count-Min error vs bound\n\n";

  const size_t num_keys = 2048;
  const double n = 100000.0;

  {
    TablePrinter table("Count-Min overestimate vs Lemma 4 bound (zipf 1.1)",
                       {"width 2w", "depth j", "mean err", "bound",
                        "ratio"});
    const auto masses = ZipfMasses(num_keys, 1.1);
    std::vector<double> truth(num_keys);
    double l1 = 0.0;
    for (size_t i = 0; i < num_keys; ++i) {
      truth[i] = masses[i] * n;
      l1 += truth[i];
    }
    std::vector<double> sorted = truth;
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    for (int w : {16, 64, 256}) {
      for (int j : {2, 4, 8}) {
        double tail_w = 0.0;
        for (size_t i = w; i < sorted.size(); ++i) tail_w += sorted[i];
        double err = 0.0;
        size_t measured = 0;
        for (int seed = 0; seed < 10; ++seed) {
          CountMinSketch sketch(2 * w, j, 100 + seed);
          for (size_t key = 0; key < num_keys; ++key) {
            sketch.Update(key, truth[key]);
          }
          for (size_t key = 0; key < num_keys; key += 5) {
            err += sketch.Estimate(key) - truth[key];
            ++measured;
          }
        }
        err /= static_cast<double>(measured);
        const double bound =
            (tail_w + std::ldexp(2.0, -j) * l1) / static_cast<double>(w);
        table.BeginRow();
        table.Cell(int64_t{2 * w});
        table.Cell(int64_t{j});
        table.Cell(err);
        table.Cell(bound);
        table.Cell(bound > 0 ? err / bound : 0.0);
      }
    }
    table.Print(std::cout);
  }

  {
    // Hash-based vs counter-based at matched memory (Section 2.1's
    // comparison): Misra-Gries undershoots low-frequency keys to zero,
    // Count-Min overshoots slightly; mean |error| over all keys.
    TablePrinter table("Count-Min vs Misra-Gries vs Count-Sketch "
                       "(equal memory, zipf sweep)",
                       {"zipf", "count-min", "count-sketch",
                        "misra-gries"});
    for (double zipf : {0.5, 1.1, 2.0}) {
      const auto masses = ZipfMasses(num_keys, zipf);
      std::vector<double> truth(num_keys);
      for (size_t i = 0; i < num_keys; ++i) truth[i] = masses[i] * n;
      const size_t cells = 512;  // matched budget: 512 counters
      double err_cm = 0.0, err_cs = 0.0, err_mg = 0.0;
      for (int seed = 0; seed < 5; ++seed) {
        CountMinSketch cm(cells / 4, 4, 7 + seed);
        CountSketch cs(cells / 4, 4, 9 + seed);
        MisraGries mg(cells);
        for (size_t key = 0; key < num_keys; ++key) {
          cm.Update(key, truth[key]);
          cs.Update(key, truth[key]);
          mg.Update(key, truth[key]);
        }
        for (size_t key = 0; key < num_keys; ++key) {
          err_cm += std::abs(cm.Estimate(key) - truth[key]);
          err_cs += std::abs(cs.Estimate(key) - truth[key]);
          err_mg += std::abs(mg.Estimate(key) - truth[key]);
        }
      }
      const double denom = 5.0 * num_keys;
      table.BeginRow();
      table.Cell(zipf);
      table.Cell(err_cm / denom);
      table.Cell(err_cs / denom);
      table.Cell(err_mg / denom);
    }
    table.Print(std::cout);
  }
  return 0;
}
