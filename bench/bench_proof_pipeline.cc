// EXP-F4 — the Section 7 proof pipeline (Figure 4), measured: the W1 cost
// of each analytic step against its lemma's bound.
//
//   Step 1 (Lemma 7): mu_X -> T_exact   (exact top-k pruning)
//   Steps 2+3 (Lemmas 8+9): T_exact -> T_PrivHP (noise + sketches +
//   consistency; measured jointly, since T_approx is an analytic device).
//
// Reported per skew level so the tail-dependence of every step is
// visible.

#include <iostream>

#include <cmath>

#include "common/macros.h"
#include "common/table_printer.h"
#include "core/builder.h"
#include "domain/interval_domain.h"
#include "dp/budget_allocator.h"
#include "eval/tail.h"
#include "eval/wasserstein.h"
#include "eval/workloads.h"
#include "hierarchy/grow_partition.h"
#include "hierarchy/tree_stats.h"

namespace privhp {
namespace {

constexpr size_t kN = 1 << 14;
constexpr int kLStar = 4;
constexpr int kLMax = 11;
constexpr int kGrowTo = 10;
constexpr size_t kK = 16;

class ExactLevelSource : public LevelFrequencySource {
 public:
  ExactLevelSource(const Domain* domain, const std::vector<Point>& data,
                   int max_level) {
    for (int l = 0; l <= max_level; ++l) {
      counts_.push_back(std::move(*LevelCounts(*domain, data, l)));
    }
  }
  double Query(int level, uint64_t index) const override {
    return counts_[level][index];
  }
  const std::vector<double>& level(int l) const { return counts_[l]; }

 private:
  std::vector<std::vector<double>> counts_;
};

double TreeVsDataW1(const Domain& domain, const PartitionTree& tree,
                    const std::vector<Point>& data, int level) {
  auto tree_dist = DistributionAtLevel(tree, level);
  auto data_dist = QuantizeToLevel(domain, data, level);
  PRIVHP_CHECK(tree_dist.ok() && data_dist.ok());
  std::vector<double> centers(size_t{1} << level);
  for (size_t i = 0; i < centers.size(); ++i) {
    centers[i] = (static_cast<double>(i) + 0.5) * std::ldexp(1.0, -level);
  }
  return Wasserstein1DDiscrete(centers, *tree_dist, *data_dist);
}

PartitionTree BuildExactPruned(const Domain* domain,
                               const ExactLevelSource& source) {
  auto tree = PartitionTree::Complete(domain, kLStar);
  PRIVHP_CHECK(tree.ok());
  for (int l = 0; l <= kLStar; ++l) {
    for (uint64_t i = 0; i < (uint64_t{1} << l); ++i) {
      tree->node(tree->Find(CellId{l, i})).count = source.level(l)[i];
    }
  }
  GrowOptions grow;
  grow.k = kK;
  grow.l_star = kLStar;
  grow.grow_to = kGrowTo;
  PRIVHP_CHECK(GrowPartition(&(*tree), source, grow).ok());
  return std::move(*tree);
}

}  // namespace
}  // namespace privhp

int main() {
  using namespace privhp;
  std::cout << "EXP-F4: proof-pipeline step costs vs lemma bounds "
               "(n=2^14, k=16, L*=4, L=11)\n\n";

  IntervalDomain domain;
  TablePrinter table("Pipeline (per workload skew)",
                     {"zipf", "W1(muX, T_exact)", "Lemma 7 bound",
                      "W1(muX, T_PrivHP)", "Thm 3 prediction"});

  for (double zipf : {0.0, 1.0, 2.0}) {
    RandomEngine data_rng(12345);
    const auto data = GenerateZipfCells(1, kN, 10, zipf, &data_rng);
    ExactLevelSource source(&domain, data, kLMax);

    // Step 1: exact pruning (Lemma 7).
    const PartitionTree t_exact = BuildExactPruned(&domain, source);
    const double w1_exact = TreeVsDataW1(domain, t_exact, data, kGrowTo);
    const double tail = TailNorm(source.level(kLMax), kK);
    double diam_sum = 0.0;
    for (int l = kLStar + 1; l <= kGrowTo; ++l) {
      diam_sum += domain.CellDiameter(l);
    }
    const double lemma7 = tail / static_cast<double>(kN) * diam_sum;

    // Full mechanism (Theorem 3 prediction = noise + approx terms).
    PrivHPOptions options;
    options.epsilon = 1.0;
    options.k = kK;
    options.expected_n = kN;
    options.l_star = kLStar;
    options.l_max = kLMax;
    options.grow_to = kGrowTo;
    options.sketch_depth = 6;
    options.seed = 777;
    auto builder = PrivHPBuilder::Make(&domain, options);
    PRIVHP_CHECK(builder.ok());
    PRIVHP_CHECK(builder->AddAll(data).ok());
    const ResolvedPlan plan = builder->plan();
    auto generator = std::move(*builder).Finish();
    PRIVHP_CHECK(generator.ok());
    const double w1_full =
        TreeVsDataW1(domain, generator->tree(), data, kGrowTo);
    const double noise_term =
        NoiseObjective(domain, plan.budget, plan.l_star, plan.k,
                       plan.sketch_depth, static_cast<double>(kN));
    auto approx = PredictedApproxTerm(domain, data, plan.l_star, plan.l_max,
                                      plan.k, plan.sketch_depth);
    PRIVHP_CHECK(approx.ok());

    table.BeginRow();
    table.Cell(zipf);
    table.Cell(w1_exact);
    table.Cell(lemma7);
    table.Cell(w1_full);
    table.Cell(noise_term + *approx);
  }
  table.Print(std::cout);
  std::cout << "Bounds are order bounds: measured values should sit below "
               "or near their bound columns\nand fall with skew.\n";
  return 0;
}
