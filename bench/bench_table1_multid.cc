// EXP-T1-MD — Table 1 on Omega = [0,1]^d for d = 2 and d = 3: Smooth and
// SRRW (d = 2 via the Hilbert lift), PMM, and PrivHP across k. Accuracy is
// exact grid EMD (min-cost flow) with a TreeWasserstein fallback; the same
// estimator is used for every method.
//
// Expected shape: rates flatten with dimension for all methods
// ((eps n)^{-1/d} for PMM/SRRW, M^{(1-1/d)}/(eps n) + tail term for
// PrivHP); PrivHP's memory column stays k log^2 n while PMM grows with
// eps n.

#include <iostream>

#include "baselines/nonprivate.h"
#include "baselines/pmm.h"
#include "baselines/smooth.h"
#include "baselines/srrw.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/hypercube_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

void RunTable(int d, size_t n, double epsilon, int seeds) {
  HypercubeDomain domain(d);
  RandomEngine data_rng(171717);
  const auto data =
      GenerateZipfCells(d, n, /*level=*/10, /*exponent=*/1.2, &data_rng);

  TablePrinter table("Table 1 (d=" + std::to_string(d) +
                         "): n=" + std::to_string(n) +
                         " eps=" + TablePrinter::FormatNumber(epsilon),
                     {"method", "E[W1]", "memory"});
  size_t mem = 0;
  auto add_row = [&](const std::string& name, double w1) {
    table.BeginRow();
    table.Cell(name);
    table.Cell(w1);
    table.Cell(bench::FormatBytes(mem));
  };

  add_row("nonprivate",
          bench::AverageW1(domain, data, seeds, [&](uint64_t) {
            NonPrivateResampler r(data);
            mem = r.BuildMemoryBytes();
            return std::make_unique<NonPrivateResampler>(data);
          }));

  if (d == 2) {
    add_row("smooth", bench::AverageW1(domain, data, seeds,
                                       [&](uint64_t seed) {
                                         SmoothOptions options;
                                         options.epsilon = epsilon;
                                         options.order = 8;
                                         options.seed = seed;
                                         auto r = BuildSmooth(2, data, options);
                                         PRIVHP_CHECK(r.ok());
                                         mem = (*r)->BuildMemoryBytes();
                                         return std::move(*r);
                                       }));
    add_row("srrw-hilbert",
            bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
              SrrwOptions options;
              options.epsilon = epsilon;
              options.seed = seed;
              auto r = BuildSrrw(2, data, options);
              PRIVHP_CHECK(r.ok());
              mem = (*r)->BuildMemoryBytes();
              return std::move(*r);
            }));
  }

  add_row("pmm", bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
            PmmOptions options;
            options.epsilon = epsilon;
            options.seed = seed;
            auto r = BuildPmm(&domain, data, options);
            PRIVHP_CHECK(r.ok());
            mem = (*r)->BuildMemoryBytes();
            return std::unique_ptr<SyntheticDataSource>(std::move(*r));
          }));

  for (uint64_t k : {4, 16, 64}) {
    add_row("privhp(k=" + std::to_string(k) + ")",
            bench::AverageW1(domain, data, seeds, [&](uint64_t seed) {
              PrivHPOptions options;
              options.epsilon = epsilon;
              options.k = k;
              options.expected_n = n;
              options.l_star = 4;
              options.sketch_depth = 6;
              options.seed = seed;
              auto r = BuildPrivHPSource(&domain, data, options);
              PRIVHP_CHECK(r.ok());
              mem = (*r)->BuildMemoryBytes();
              return std::move(*r);
            }));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privhp

int main() {
  std::cout << "EXP-T1-MD: Table 1 reproduction on [0,1]^d\n\n";
  privhp::RunTable(2, size_t{1} << 13, 1.0, 3);
  privhp::RunTable(3, size_t{1} << 13, 1.0, 3);
  return 0;
}
