// EXP-PERF — Corollary 1's cost model, measured with google-benchmark:
//   * stream update cost vs n      (claimed O(log(eps n)) per update)
//   * generator build (Finish)     (claimed O(M log n))
//   * synthetic sampling           (O(depth) per point)
//   * PMM build for contrast       (Theta(eps n) memory + work)
// Memory footprints are attached as counters.

#include <benchmark/benchmark.h>

#include "common/macros.h"

#include "baselines/pmm.h"
#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

PrivHPOptions BenchOptions(size_t n) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 16;
  options.expected_n = n;
  options.sketch_depth = 6;
  options.seed = 99;
  return options;
}

void BM_StreamUpdate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  IntervalDomain domain;
  RandomEngine rng(1);
  const auto data = GenerateZipfCells(1, 4096, 10, 1.2, &rng);
  auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
  PRIVHP_CHECK(builder.ok());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder->Add(data[i]));
    i = (i + 1) % data.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["builder_bytes"] =
      static_cast<double>(builder->MemoryBytes());
  state.counters["levels"] = builder->plan().l_max + 1;
}
BENCHMARK(BM_StreamUpdate)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_StreamUpdate2D(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  HypercubeDomain domain(2);
  RandomEngine rng(2);
  const auto data = GenerateZipfCells(2, 4096, 10, 1.2, &rng);
  auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
  PRIVHP_CHECK(builder.ok());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder->Add(data[i]));
    i = (i + 1) % data.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamUpdate2D)->Arg(1 << 16);

void BM_Finish(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  IntervalDomain domain;
  RandomEngine rng(3);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);
  for (auto _ : state) {
    state.PauseTiming();
    auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
    PRIVHP_CHECK(builder.ok());
    PRIVHP_CHECK(builder->AddAll(data).ok());
    state.ResumeTiming();
    auto generator = std::move(*builder).Finish();
    benchmark::DoNotOptimize(generator);
  }
}
BENCHMARK(BM_Finish)->Arg(1 << 12)->Arg(1 << 14)->Unit(benchmark::kMicrosecond);

void BM_Sample(benchmark::State& state) {
  IntervalDomain domain;
  RandomEngine rng(4);
  const size_t n = 1 << 14;
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);
  auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
  PRIVHP_CHECK(builder.ok());
  PRIVHP_CHECK(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  PRIVHP_CHECK(generator.ok());
  RandomEngine sample_rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator->Sample(&sample_rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["generator_bytes"] =
      static_cast<double>(generator->MemoryBytes());
}
BENCHMARK(BM_Sample);

void BM_PmmBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  IntervalDomain domain;
  RandomEngine rng(6);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);
  PmmOptions options;
  options.epsilon = 1.0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto pmm = BuildPmm(&domain, data, options);
    PRIVHP_CHECK(pmm.ok());
    bytes = (*pmm)->BuildMemoryBytes();
    benchmark::DoNotOptimize(pmm);
  }
  state.counters["pmm_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_PmmBuild)->Arg(1 << 12)->Arg(1 << 14)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace privhp

BENCHMARK_MAIN();
