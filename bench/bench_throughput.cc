// EXP-PERF — Corollary 1's cost model, self-timed (bench_util.h):
//   * stream update cost vs n        (scalar Add vs batched AddBatch;
//                                     claimed O(log(eps n)) per update)
//   * sharded parallel ingestion     (--threads sweep; the merged build
//                                     is bit-identical to 1 thread)
//   * generator build (Finish)       (claimed O(M log n))
//   * synthetic sampling             (O(depth) per point)
//   * PMM build for contrast         (Theta(eps n) memory + work)
//
// Always-on correctness gate (sized for --smoke): the batched ingest
// path must leave tree counters and sketch cells bit-identical to the
// scalar path, and the released artifacts (scalar / batched /
// BuildParallel) must serialize byte-identically — a perf regression
// fix can't silently fork the two paths. --smoke shrinks the workload
// so the run doubles as a ctest / TSan check of concurrent batched
// ingestion.
//
// usage: bench_throughput [--smoke] [--log2n B] [--threads "1,2,4"]
//                         [--repeats R]

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/pmm.h"
#include "bench_util.h"
#include "common/macros.h"
#include "common/table_printer.h"
#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"
#include "hierarchy/tree_serialization.h"
#include "io/point_sink.h"

namespace privhp {
namespace {

PrivHPOptions BenchOptions(size_t n) {
  PrivHPOptions options;
  options.epsilon = 1.0;
  options.k = 16;
  options.expected_n = n;
  options.sketch_depth = 6;
  options.seed = 99;
  return options;
}

// Median-of-repeats wall time of `fn`, in seconds.
double TimedMedian(int repeats, const std::function<double()>& fn) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) times.push_back(fn());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void StreamUpdateSweep(int repeats, bool smoke) {
  TablePrinter table(
      "stream update (1 thread, scalar Add vs batched AddBatch vs "
      "columnar PointBatch)",
      {"domain", "n", "path", "Mpts/s", "ns/point", "speedup"});
  struct Case {
    const char* name;
    int dim;
    size_t n;
  };
  const std::vector<Case> cases =
      smoke ? std::vector<Case>{{"interval", 1, size_t{1} << 16},
                                {"hypercube-2d", 2, size_t{1} << 16}}
            : std::vector<Case>{{"interval", 1, size_t{1} << 16},
                                {"interval", 1, size_t{1} << 18},
                                {"interval", 1, size_t{1} << 20},
                                {"hypercube-2d", 2, size_t{1} << 18}};
  for (const Case& c : cases) {
    HypercubeDomain cube(c.dim == 1 ? 1 : 2);
    IntervalDomain interval;
    const Domain& domain =
        c.dim == 1 ? static_cast<const Domain&>(interval)
                   : static_cast<const Domain&>(cube);
    RandomEngine rng(1);
    // 65536 divides every n in the sweep, so cycling the staged dataset
    // feeds the scalar and batched paths the identical point multiset.
    const auto data = GenerateZipfCells(c.dim, 65536, 10, 1.2, &rng);
    const double scalar_secs = TimedMedian(repeats, [&] {
      auto builder = PrivHPBuilder::Make(&domain, BenchOptions(c.n));
      PRIVHP_CHECK(builder.ok());
      bench::Stopwatch watch;
      size_t i = 0;
      for (size_t done = 0; done < c.n; ++done) {
        PRIVHP_CHECK(builder->Add(data[i]).ok());
        i = (i + 1) % data.size();
      }
      return watch.Seconds();
    });
    const double batched_secs = TimedMedian(repeats, [&] {
      auto builder = PrivHPBuilder::Make(&domain, BenchOptions(c.n));
      PRIVHP_CHECK(builder.ok());
      bench::Stopwatch watch;
      for (size_t done = 0; done < c.n; done += data.size()) {
        const size_t take = std::min(data.size(), c.n - done);
        PRIVHP_CHECK(builder->AddBatch(data.data(), take).ok());
      }
      return watch.Seconds();
    });
    // Columnar: the dataset staged once into an arena, then ingested via
    // AddAll(PointBatch) — the path a file or socket source actually
    // drives (their NextBatch overrides hand over arenas).
    const PointBatch staged = PointBatch::FromPoints(data);
    const double columnar_secs = TimedMedian(repeats, [&] {
      auto builder = PrivHPBuilder::Make(&domain, BenchOptions(c.n));
      PRIVHP_CHECK(builder.ok());
      bench::Stopwatch watch;
      for (size_t done = 0; done < c.n; done += staged.size()) {
        PRIVHP_CHECK(builder->AddAll(staged).ok());
      }
      return watch.Seconds();
    });
    const double secs_for[3] = {scalar_secs, batched_secs, columnar_secs};
    const char* path_name[3] = {"scalar", "batched", "columnar"};
    for (int path = 0; path < 3; ++path) {
      const double secs = secs_for[path];
      table.BeginRow();
      table.Cell(std::string(c.name));
      table.Cell(static_cast<uint64_t>(c.n));
      table.Cell(std::string(path_name[path]));
      table.Cell(c.n / secs / 1e6);
      table.Cell(secs / c.n * 1e9);
      table.Cell(scalar_secs / secs, 3);
    }
  }
  table.Print(std::cout);
  std::cout << "\n";
}

// Always-on gate: every batch flavour must be bit-identical to the
// scalar path — shard state (exact counters + sketch cells) and the
// released artifact (scalar / batched / columnar / 3-thread
// BuildParallel all serialize to the same bytes). Returns false (and
// prints why) on any mismatch.
bool BatchedEqualsScalarGate() {
  HypercubeDomain domain(2);
  const size_t n = size_t{1} << 13;
  PrivHPOptions options = BenchOptions(n);
  RandomEngine rng(17);
  const auto data = GenerateZipfCells(2, n, 10, 1.2, &rng);

  auto scalar_builder = PrivHPBuilder::Make(&domain, options);
  auto batched_builder = PrivHPBuilder::Make(&domain, options);
  auto columnar_builder = PrivHPBuilder::Make(&domain, options);
  PRIVHP_CHECK(scalar_builder.ok() && batched_builder.ok() &&
               columnar_builder.ok());

  // Shard-level comparison first: it pins down *where* a divergence
  // lives (a counter vs a sketch row) before noise and growth mix it in.
  // Three flavours: scalar Add, Point-array AddBatch, columnar
  // AddBatch(PointBatch) — the last is the SIMD arena path.
  auto scalar_shard = scalar_builder->NewShard();
  auto batched_shard = batched_builder->NewShard();
  auto columnar_shard = columnar_builder->NewShard();
  PRIVHP_CHECK(scalar_shard.ok() && batched_shard.ok() &&
               columnar_shard.ok());
  const PointBatch staged = PointBatch::FromPoints(data);
  for (const Point& x : data) PRIVHP_CHECK(scalar_shard->Add(x).ok());
  PRIVHP_CHECK(batched_shard->AddBatch(data).ok());
  PRIVHP_CHECK(columnar_shard->AddBatch(staged).ok());
  for (size_t i = 0; i < scalar_shard->tree().num_nodes(); ++i) {
    const double a = scalar_shard->tree().node(static_cast<NodeId>(i)).count;
    const double b = batched_shard->tree().node(static_cast<NodeId>(i)).count;
    const double c = columnar_shard->tree().node(static_cast<NodeId>(i)).count;
    if (a != b || a != c) {
      std::cerr << "gate: tree node " << i << " scalar=" << a
                << " batched=" << b << " columnar=" << c << "\n";
      return false;
    }
  }
  for (size_t s = 0; s < scalar_shard->sketches().size(); ++s) {
    const CountMinSketch& sa = scalar_shard->sketches()[s];
    const CountMinSketch& sb = batched_shard->sketches()[s];
    const CountMinSketch& sc = columnar_shard->sketches()[s];
    for (size_t row = 0; row < sa.depth(); ++row) {
      for (size_t col = 0; col < sa.width(); ++col) {
        if (sa.CellValue(row, col) != sb.CellValue(row, col) ||
            sa.CellValue(row, col) != sc.CellValue(row, col)) {
          std::cerr << "gate: sketch " << s << " cell (" << row << ", "
                    << col << ") diverges\n";
          return false;
        }
      }
    }
  }

  // Artifact-level: released trees must serialize byte-identically.
  auto serialize = [](const PrivHPGenerator& g) {
    std::stringstream ss;
    PRIVHP_CHECK(SaveTree(g.tree(), &ss).ok());
    return ss.str();
  };
  for (const Point& x : data) PRIVHP_CHECK(scalar_builder->Add(x).ok());
  PRIVHP_CHECK(batched_builder->AddAll(data).ok());
  PRIVHP_CHECK(columnar_builder->AddAll(staged).ok());
  auto scalar_gen = std::move(*scalar_builder).Finish();
  auto batched_gen = std::move(*batched_builder).Finish();
  auto columnar_gen = std::move(*columnar_builder).Finish();
  auto parallel_gen = PrivHPBuilder::BuildParallel(&domain, options, data, 3);
  // Streaming overload too: its reader thread and workers exchange whole
  // columnar batches through the queue, which is exactly the concurrent
  // batched ingest path the TSan smoke wants covered.
  VectorPointSource source(&data);
  auto stream_gen = PrivHPBuilder::BuildParallel(&domain, options, &source, 3);
  PRIVHP_CHECK(scalar_gen.ok() && batched_gen.ok() && columnar_gen.ok() &&
               parallel_gen.ok() && stream_gen.ok());
  const std::string scalar_bytes = serialize(*scalar_gen);
  if (scalar_bytes != serialize(*batched_gen)) {
    std::cerr << "gate: batched artifact differs from scalar\n";
    return false;
  }
  if (scalar_bytes != serialize(*columnar_gen)) {
    std::cerr << "gate: columnar artifact differs from scalar\n";
    return false;
  }
  if (scalar_bytes != serialize(*parallel_gen)) {
    std::cerr << "gate: BuildParallel artifact differs from scalar\n";
    return false;
  }
  if (scalar_bytes != serialize(*stream_gen)) {
    std::cerr << "gate: streaming BuildParallel artifact differs from "
                 "scalar\n";
    return false;
  }
  std::cout << "checks: batched-vs-scalar equality OK (shard state + "
            << "released artifact, scalar/batched/columnar/parallel, n="
            << n << ")\n\n";
  return true;
}

void ThreadSweep(size_t n, const std::vector<int>& thread_counts,
                 int repeats) {
  IntervalDomain domain;
  RandomEngine rng(2);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);
  TablePrinter table(
      "sharded ingestion, n=" + std::to_string(n) + " (BuildParallel)",
      {"threads", "build ms", "Mpts/s", "speedup"});
  std::vector<double> secs_per_count;
  secs_per_count.reserve(thread_counts.size());
  for (int threads : thread_counts) {
    secs_per_count.push_back(TimedMedian(repeats, [&] {
      bench::Stopwatch watch;
      auto generator = PrivHPBuilder::BuildParallel(
          &domain, BenchOptions(n), data, threads);
      PRIVHP_CHECK(generator.ok());
      return watch.Seconds();
    }));
  }
  // Speedup is always relative to the 1-thread run (measured out-of-band
  // if 1 is not in the sweep), never to whatever entry came first.
  double base_secs;
  const auto one = std::find(thread_counts.begin(), thread_counts.end(), 1);
  if (one != thread_counts.end()) {
    base_secs = secs_per_count[one - thread_counts.begin()];
  } else {
    base_secs = TimedMedian(repeats, [&] {
      bench::Stopwatch watch;
      auto generator =
          PrivHPBuilder::BuildParallel(&domain, BenchOptions(n), data, 1);
      PRIVHP_CHECK(generator.ok());
      return watch.Seconds();
    });
  }
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    table.BeginRow();
    table.Cell(thread_counts[i]);
    table.Cell(secs_per_count[i] * 1e3);
    table.Cell(n / secs_per_count[i] / 1e6);
    table.Cell(base_secs / secs_per_count[i], 3);
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void FinishAndSample(int repeats) {
  IntervalDomain domain;
  const size_t n = size_t{1} << 14;
  RandomEngine rng(3);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);

  const double finish_secs = TimedMedian(repeats, [&] {
    auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
    PRIVHP_CHECK(builder.ok());
    PRIVHP_CHECK(builder->AddAll(data).ok());
    bench::Stopwatch watch;
    auto generator = std::move(*builder).Finish();
    PRIVHP_CHECK(generator.ok());
    return watch.Seconds();
  });

  auto builder = PrivHPBuilder::Make(&domain, BenchOptions(n));
  PRIVHP_CHECK(builder.ok());
  PRIVHP_CHECK(builder->AddAll(data).ok());
  auto generator = std::move(*builder).Finish();
  PRIVHP_CHECK(generator.ok());
  RandomEngine sample_rng(5);
  const size_t samples = 1 << 18;
  const double sample_secs = TimedMedian(repeats, [&] {
    bench::Stopwatch watch;
    for (size_t i = 0; i < samples; ++i) {
      volatile double sink = generator->Sample(&sample_rng)[0];
      (void)sink;
    }
    return watch.Seconds();
  });

  TablePrinter table("finish + sampling, n=2^14",
                     {"phase", "ms", "per-item ns", "artifact mem"});
  table.BeginRow();
  table.Cell(std::string("Finish (grow+consistency)"));
  table.Cell(finish_secs * 1e3);
  table.Cell(finish_secs * 1e9 / n);
  table.Cell(bench::FormatBytes(generator->MemoryBytes()));
  table.BeginRow();
  table.Cell(std::string("Sample x" + std::to_string(samples)));
  table.Cell(sample_secs * 1e3);
  table.Cell(sample_secs * 1e9 / samples);
  table.Cell(bench::FormatBytes(generator->MemoryBytes()));
  table.Print(std::cout);
  std::cout << "\n";
}

void PmmContrast(int repeats) {
  IntervalDomain domain;
  TablePrinter table("PMM contrast (full-memory baseline)",
                     {"n", "build ms", "pmm mem"});
  for (int log_n : {12, 14}) {
    const size_t n = size_t{1} << log_n;
    RandomEngine rng(6);
    const auto data = GenerateZipfCells(1, n, 10, 1.2, &rng);
    PmmOptions options;
    options.epsilon = 1.0;
    size_t bytes = 0;
    const double secs = TimedMedian(repeats, [&] {
      bench::Stopwatch watch;
      auto pmm = BuildPmm(&domain, data, options);
      PRIVHP_CHECK(pmm.ok());
      bytes = (*pmm)->BuildMemoryBytes();
      return watch.Seconds();
    });
    table.BeginRow();
    table.Cell(std::string("2^") + std::to_string(log_n));
    table.Cell(secs * 1e3);
    table.Cell(bench::FormatBytes(bytes));
  }
  table.Print(std::cout);
}

std::vector<int> ParseThreadList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    out.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  int log2n = 20;
  int repeats = 3;
  std::vector<int> threads = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) {
    // Small enough for ctest/TSan; the thread sweep runs the sliced
    // concurrent batched ingestion and the always-on gate runs the
    // queue-based streaming overload, so the smoke is a real
    // end-to-end check of both concurrent batched-ingest paths.
    // Defaults only: explicit flags below still override them.
    log2n = 14;
    repeats = 1;
    threads = {1, 2, 4};
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) continue;
    const bool known = std::strcmp(argv[i], "--log2n") == 0 ||
                       std::strcmp(argv[i], "--threads") == 0 ||
                       std::strcmp(argv[i], "--repeats") == 0;
    if (!known) {
      std::cerr << "unknown flag " << argv[i] << "\n";
      return 2;
    }
    if (i + 1 >= argc) {
      std::cerr << "flag " << argv[i] << " is missing a value\n";
      return 2;
    }
    if (std::strcmp(argv[i], "--log2n") == 0) {
      log2n = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = ParseThreadList(argv[++i]);
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = std::atoi(argv[++i]);
    }
    // A flag added to `known` without a branch here leaves its value in
    // argv, which the next iteration rejects as an unknown flag — loud,
    // not silent.
  }
  if (log2n < 10 || log2n > 26 || repeats < 1 || threads.empty()) {
    std::cerr << "usage: bench_throughput [--smoke] [--log2n 10..26] "
              << "[--threads \"1,2,4\"] [--repeats R>=1]\n";
    return 2;
  }
  for (int t : threads) {
    if (t < 1) {
      std::cerr << "--threads entries must be >= 1\n";
      return 2;
    }
  }
  std::cout << "EXP-PERF: ingestion/build/sampling throughput "
            << "(hardware threads: " << std::thread::hardware_concurrency()
            << ")\n\n";
  if (!BatchedEqualsScalarGate()) {
    std::cerr << "bench_throughput: batched-vs-scalar gate failed\n";
    return 1;
  }
  StreamUpdateSweep(repeats, smoke);
  ThreadSweep(size_t{1} << log2n, threads, repeats);
  FinishAndSample(repeats);
  PmmContrast(repeats);
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) { return privhp::Run(argc, argv); }
