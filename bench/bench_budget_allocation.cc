// EXP-BUDGET — Lemma 5 ablation: the closed-form optimal {sigma_l} split
// vs the uniform split, at identical total budget. Reports both the
// analytic Delta_noise objective and measured end-to-end W1.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "core/planner.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

namespace privhp {
namespace {

void Run(const Domain& domain, int d) {
  const size_t n = 1 << 13;
  RandomEngine data_rng(808 + d);
  const auto data = GenerateZipfCells(d, n, 9, 1.2, &data_rng);

  TablePrinter table(
      "EXP-BUDGET d=" + std::to_string(d) + " (n=2^13, eps=1, k=16)",
      {"policy", "predicted noise objective", "E[W1]"});
  for (BudgetPolicy policy :
       {BudgetPolicy::kOptimal, BudgetPolicy::kUniform}) {
    double objective = 0.0;
    const double w1 =
        bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
          PrivHPOptions options;
          options.epsilon = 1.0;
          options.k = 16;
          options.expected_n = n;
          options.l_star = 4;
          options.l_max = 11;
          options.sketch_depth = 6;
          options.budget_policy = policy;
          options.seed = seed;
          auto plan = PlanParameters(domain, options);
          PRIVHP_CHECK(plan.ok());
          objective = NoiseObjective(domain, plan->budget, plan->l_star,
                                     plan->k, plan->sketch_depth,
                                     static_cast<double>(n));
          auto r = BuildPrivHPSource(&domain, data, options);
          PRIVHP_CHECK(r.ok());
          return std::move(*r);
        });
    table.BeginRow();
    table.Cell(policy == BudgetPolicy::kOptimal ? std::string("optimal")
                                                : std::string("uniform"));
    table.Cell(objective);
    table.Cell(w1);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace privhp

int main() {
  using namespace privhp;
  std::cout << "EXP-BUDGET: Lemma 5 optimal vs uniform budget split\n\n";
  IntervalDomain interval;
  Run(interval, 1);
  HypercubeDomain cube(2);
  Run(cube, 2);
  return 0;
}
