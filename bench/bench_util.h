// Shared helpers for the benchmark harnesses: W1 measurement appropriate
// to the domain dimension, repeated-seed averaging, and byte formatting.

#ifndef PRIVHP_BENCH_BENCH_UTIL_H_
#define PRIVHP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/macros.h"
#include "common/random.h"
#include "domain/domain.h"
#include "eval/wasserstein.h"
#include "io/point_sink.h"

namespace privhp {
namespace bench {

/// \brief W1(synthetic, data): exact CDF-integral in d = 1; exact grid EMD
/// (falling back to TreeWasserstein when the support is too large) in
/// d >= 2. The same estimator is applied to every method in a table, so
/// comparisons are apples-to-apples.
inline double MeasureW1(const Domain& domain,
                        const std::vector<Point>& synthetic,
                        const std::vector<Point>& data) {
  if (domain.dimension() == 1) {
    return Wasserstein1DPoints(synthetic, data);
  }
  const int level = domain.dimension() == 2 ? 10 : 12;
  auto ps = QuantizeToLevel(domain, synthetic, level);
  auto pd = QuantizeToLevel(domain, data, level);
  PRIVHP_CHECK(ps.ok() && pd.ok());
  auto emd = GridEmd(domain, level, *ps, *pd, /*max_support=*/1200);
  if (emd.ok()) return *emd;
  return TreeWasserstein(domain, level, *ps, *pd);
}

/// \brief Builds a source `seeds` times (the builder must consume the
/// seed), generates |data| synthetic points each time, and returns the
/// mean W1 against the data.
inline double AverageW1(
    const Domain& domain, const std::vector<Point>& data, int seeds,
    const std::function<std::unique_ptr<SyntheticDataSource>(uint64_t seed)>&
        build) {
  double total = 0.0;
  size_t ok_runs = 0;
  for (int s = 0; s < seeds; ++s) {
    auto source = build(9000 + 17 * s);
    if (source == nullptr) continue;
    RandomEngine rng(7000 + 31 * s);
    total += MeasureW1(domain, source->Generate(data.size(), &rng), data);
    ++ok_runs;
  }
  return ok_runs > 0 ? total / static_cast<double>(ok_runs) : -1.0;
}

/// \brief PointSink that only counts, so sink-side work does not cap a
/// measured sampler or server throughput (used by bench_serve and
/// bench_sample; moved-in points forward through the base overload and
/// are counted identically).
class CountingSink : public PointSink {
 public:
  using PointSink::Add;
  Status Add(const Point&) override {
    ++count_;
    return Status::OK();
  }
  // Batches count in O(1), so a counting sink measures the producer's
  // cost, not the default per-row staging of the base class.
  Status AddAll(const PointBatch& batch) override {
    count_ += batch.size();
    return Status::OK();
  }
  using PointSink::AddAll;
  uint64_t num_processed() const override { return count_; }

 private:
  uint64_t count_ = 0;
};

/// \brief Wall-clock stopwatch for the self-timed throughput benches.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// \brief "12.3 KiB" style byte formatting for memory columns.
inline std::string FormatBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace bench
}  // namespace privhp

#endif  // PRIVHP_BENCH_BENCH_UTIL_H_
