// Raw sampling throughput: the legacy root-to-leaf walk vs the compiled
// alias table, with and without the move-through sink path.
//
//   bench_sample [--smoke] [--n N] [--m M] [--dim D] [--repeats R]
//
// Builds one released artifact from a skewed stream (same shape as
// bench_serve), then times five workloads over m draws each:
//
//   walk/cells    TreeSampler::SampleLeafCell      (categorical only)
//   alias/cells   CompiledSampler::SampleLeafCell  (categorical only)
//   walk/points   TreeSampler::Sample -> sink->Add(const Point&)
//   alias/points  CompiledSampler::GenerateTo      (columnar chunks ->
//                                                   sink AddAll)
//   alias/arena   CompiledSampler::SampleTo        (reused PointBatch,
//                                                   SIMD in-cell step)
//
// The cells rows isolate the alias-table gain from the in-cell uniform
// step; the points rows are the serve-path unit of work. Reports the
// median of --repeats runs and the alias/walk speedups; --smoke shrinks
// the workload so the run doubles as a ctest check that the compiled
// path agrees with the walk's distribution and stays deterministic.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/builder.h"
#include "domain/hypercube_domain.h"
#include "domain/interval_domain.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/tree_sampler.h"
#include "io/point_sink.h"

namespace privhp {
namespace {

using bench::CountingSink;

struct Config {
  bool smoke = false;
  size_t n = size_t{1} << 16;
  size_t m = 2'000'000;
  int dim = 1;
  int repeats = 3;
};

double MedianSeconds(int repeats, const std::function<void()>& body) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int r = 0; r < repeats; ++r) {
    bench::Stopwatch watch;
    body();
    times.push_back(watch.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void PrintRow(const char* workload, size_t m, double seconds,
              double baseline_seconds) {
  std::printf("%14s %10.1f %10.2f %10.0f %9.2fx\n", workload,
              seconds * 1e3, m / seconds / 1e6, seconds * 1e9 / m,
              baseline_seconds / seconds);
}

int RunBench(const Config& config) {
  std::unique_ptr<Domain> domain;
  if (config.dim == 1) {
    domain = std::make_unique<IntervalDomain>();
  } else {
    domain = std::make_unique<HypercubeDomain>(config.dim);
  }
  PrivHPOptions options;
  options.expected_n = config.n;
  options.k = 32;
  options.seed = 42;
  auto builder = PrivHPBuilder::Make(domain.get(), options);
  if (!builder.ok()) {
    std::fprintf(stderr, "%s\n", builder.status().ToString().c_str());
    return 1;
  }
  RandomEngine data_rng(7);
  Point p(config.dim);
  for (size_t i = 0; i < config.n; ++i) {
    for (int c = 0; c < config.dim; ++c) {
      p[c] = data_rng.UniformDouble() * data_rng.UniformDouble();
    }
    if (!builder->Add(p).ok()) return 1;
  }
  auto generator = std::move(*builder).Finish();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  const PartitionTree& tree = generator->tree();
  const TreeSampler walk(&tree);

  bench::Stopwatch compile_watch;
  const CompiledSampler compiled(tree);
  const double compile_ms = compile_watch.Seconds() * 1e3;

  std::printf(
      "bench_sample: n=%zu, dim=%d, m=%zu draws/workload, depth=%d, "
      "%zu leaf cells in table (%s, compiled in %.2f ms)\n",
      config.n, config.dim, config.m, tree.MaxDepth(),
      compiled.num_cells(), bench::FormatBytes(compiled.MemoryBytes()).c_str(),
      compile_ms);
  std::printf("%14s %10s %10s %10s %10s\n", "workload", "total_ms", "Mpts/s",
              "ns/pt", "speedup");

  // Categorical draws only: isolates the O(depth) walk vs O(1) alias
  // lookup, no in-cell uniform step, no Point allocation.
  uint64_t cell_guard = 0;
  const double walk_cells = MedianSeconds(config.repeats, [&]() {
    RandomEngine rng(1001);
    for (size_t i = 0; i < config.m; ++i) {
      cell_guard += walk.SampleLeafCell(&rng).index;
    }
  });
  PrintRow("walk/cells", config.m, walk_cells, walk_cells);
  const double alias_cells = MedianSeconds(config.repeats, [&]() {
    RandomEngine rng(1001);
    for (size_t i = 0; i < config.m; ++i) {
      cell_guard += compiled.SampleLeafCell(&rng).index;
    }
  });
  PrintRow("alias/cells", config.m, alias_cells, walk_cells);

  // Full points into a counting sink: the serve-path unit of work.
  const double walk_points = MedianSeconds(config.repeats, [&]() {
    CountingSink sink;
    RandomEngine rng(2002);
    for (size_t i = 0; i < config.m; ++i) {
      const Point x = walk.Sample(&rng);
      if (!sink.Add(x).ok()) std::abort();
    }
  });
  PrintRow("walk/points", config.m, walk_points, walk_points);
  const double alias_points = MedianSeconds(config.repeats, [&]() {
    CountingSink sink;
    RandomEngine rng(2002);
    if (!compiled.GenerateTo(config.m, &rng, &sink).ok()) std::abort();
  });
  PrintRow("alias/points", config.m, alias_points, walk_points);
  // Columnar arena sampling without sink dispatch: SampleTo fills one
  // reused PointBatch per chunk (phase 1 RNG draws, phase 2 SIMD in-cell
  // transform) — the raw producer cost of the serve path.
  const double alias_arena = MedianSeconds(config.repeats, [&]() {
    RandomEngine rng(2002);
    PointBatch batch;
    constexpr size_t kChunk = 4096;
    for (size_t done = 0; done < config.m;) {
      const size_t take = std::min(kChunk, config.m - done);
      if (!compiled.SampleTo(take, &rng, &batch).ok()) std::abort();
      done += take;
    }
  });
  PrintRow("alias/arena", config.m, alias_arena, walk_points);

  if (cell_guard == 0) std::printf("(guard: %llu)\n",
                                   static_cast<unsigned long long>(cell_guard));

  // Correctness gates (always on, sized for --smoke): the compiled
  // sampler must match the walk's distribution and be seed-deterministic,
  // so a perf regression can't hide a correctness one.
  {
    const size_t draws = 200000;
    std::map<std::pair<int, uint64_t>, double> hist_walk, hist_alias;
    RandomEngine rng_w(31), rng_a(32);
    for (size_t i = 0; i < draws; ++i) {
      const CellId w = walk.SampleLeafCell(&rng_w);
      const CellId a = compiled.SampleLeafCell(&rng_a);
      hist_walk[{w.level, w.index}] += 1.0;
      hist_alias[{a.level, a.index}] += 1.0;
    }
    double l1 = 0.0;
    for (const auto& [cell, count] : hist_walk) {
      auto it = hist_alias.find(cell);
      l1 += std::abs(count - (it == hist_alias.end() ? 0.0 : it->second)) /
            draws;
    }
    for (const auto& [cell, count] : hist_alias) {
      if (hist_walk.find(cell) == hist_walk.end()) l1 += count / draws;
    }
    RandomEngine det_a(55), det_b(55);
    const bool deterministic =
        compiled.SampleBatch(1000, &det_a) == compiled.SampleBatch(1000, &det_b);
    // The columnar path (SIMD in-cell transform) must be bit-identical
    // to per-point Sample() under the same seed, not just statistically
    // close.
    RandomEngine col_rng(56), pt_rng(56);
    PointBatch columnar;
    if (!compiled.SampleTo(1000, &col_rng, &columnar).ok()) std::abort();
    bool columnar_identical = true;
    for (size_t i = 0; i < 1000 && columnar_identical; ++i) {
      columnar_identical = compiled.Sample(&pt_rng) == columnar.At(i);
    }
    // Two independent multinomial samples over K cells differ by
    // E[L1] ~ sqrt(2K/draws) from noise alone; 2x that flags a genuinely
    // different distribution (a wrong normalization or a dropped cell
    // lands far above it) without tripping on sampling jitter.
    const double l1_gate = std::max(
        0.05, 2.0 * std::sqrt(2.0 * static_cast<double>(compiled.num_cells()) /
                              static_cast<double>(draws)));
    std::printf("checks: walk-vs-alias L1 distance %.4f (gate %.4f, "
                "draws=%zu), seeded determinism %s, columnar-vs-scalar "
                "bit-equality %s\n",
                l1, l1_gate, draws, deterministic ? "OK" : "FAILED",
                columnar_identical ? "OK" : "FAILED");
    if (l1 > l1_gate || !deterministic || !columnar_identical) {
      std::fprintf(stderr, "bench_sample: correctness gate failed\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) {
  privhp::Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "0";
    };
    if (flag == "--smoke") {
      config.smoke = true;
    } else if (flag == "--n") {
      config.n = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--m") {
      config.m = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--dim") {
      config.dim = std::atoi(next());
    } else if (flag == "--repeats") {
      config.repeats = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }
  if (config.smoke) {
    config.n = size_t{1} << 13;
    config.m = 200000;
    config.repeats = 1;
  }
  if (config.repeats < 1) config.repeats = 1;
  // A flag given without a value parses as 0; reject that here instead
  // of aborting later on a degenerate domain or printing inf/nan rows.
  if (config.n == 0 || config.m == 0 || config.dim < 1 || config.dim > 64) {
    std::fprintf(stderr,
                 "bench_sample: --n and --m need positive values, --dim "
                 "must be in [1, 64]\n");
    return 2;
  }
  return privhp::RunBench(config);
}
