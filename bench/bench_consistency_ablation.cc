// EXP-CONS — consistency ablation (Algorithm 3 / Hay et al.'s
// observation, paper Section 4.3): the same build with and without the
// consistency step, at identical privacy budget. Consistency costs no
// privacy (it is post-processing) and should recover accuracy,
// increasingly so at small eps where the raw counts are noisiest.

#include <iostream>

#include "baselines/nonprivate.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "domain/interval_domain.h"
#include "eval/workloads.h"

int main() {
  using namespace privhp;
  std::cout << "EXP-CONS: consistency (Algorithm 3) on/off\n\n";

  IntervalDomain domain;
  const size_t n = 1 << 14;
  RandomEngine data_rng(606);
  const auto data = GenerateZipfCells(1, n, 10, 1.2, &data_rng);

  TablePrinter table("EXP-CONS (n=2^14, k=16)",
                     {"epsilon", "W1 with consistency",
                      "W1 without", "ratio (without/with)"});
  for (double epsilon : {0.25, 1.0, 4.0}) {
    auto measure = [&](bool consistent) {
      return bench::AverageW1(domain, data, 3, [&](uint64_t seed) {
        PrivHPOptions options;
        options.epsilon = epsilon;
        options.k = 16;
        options.expected_n = n;
        options.l_star = 4;
        options.l_max = 12;
        options.sketch_depth = 6;
        options.enforce_consistency = consistent;
        options.seed = seed;
        auto r = BuildPrivHPSource(&domain, data, options);
        PRIVHP_CHECK(r.ok());
        return std::move(*r);
      });
    };
    const double with_consistency = measure(true);
    const double without = measure(false);
    table.BeginRow();
    table.Cell(epsilon);
    table.Cell(with_consistency);
    table.Cell(without);
    table.Cell(without / with_consistency);
  }
  table.Print(std::cout);
  return 0;
}
