#!/usr/bin/env python3
"""privhp_lint: repo-specific invariant linter for the PrivHP tree.

Enforces rules no generic tool knows about (see docs/ARCHITECTURE.md,
"Static analysis & concurrency contracts", for the catalog and how to
extend it):

  PHL001  wire-count allocation discipline
          In the wire decoders (service/protocol.cc, service/client.cc),
          any reserve()/resize() whose size is fed by a peer-controlled
          wire read (U8/U32/U64/Double) must flow through
          WireReader::BoundedCount() (or an explicit std::min clamp), so
          a 13-byte frame can never command a multi-gigabyte allocation.

  PHL002  correctly-rounded SIMD only
          The AVX2/AVX-512 kernel TUs may not use non-correctly-rounded
          intrinsics (fmadd/fmsub/fnmadd/fnmsub, rcp, rsqrt) or
          std::fma: the batched-vs-scalar bit-equality gates require
          every kernel tier to round exactly like the scalar reference.

  PHL003  RNG discipline
          No rand()/srand(), std::random_device, drand48, or
          time(0)-style seeding outside src/common/random.* — sampler
          determinism (seeded SAMPLE reproducibility, bit-identity
          gates) depends on every draw coming from RandomEngine.

  PHL004  annotated mutexes only
          No naked std::mutex / lock_guard / unique_lock /
          condition_variable (etc.) outside src/common/sync.h: all
          locking goes through the thread-safety-annotated wrappers so
          Clang's -Wthread-safety sees every contract.

Also provides --check-tidy-config, which validates .clang-tidy: every
disabled check must carry a documented reason comment (the per-check
opt-outs are part of the reviewable contract, not silent suppressions).

Stdlib-only; exits nonzero iff any violation (or config error) is found.
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Source preprocessing: strip comments and string/char literals so
# documentation ("no naked std::mutex...") and log messages never trip a
# rule. Newlines are preserved so reported line numbers stay exact.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")  # unterminated; keep line count sane
                i += 1
            i += 1
            out.append('""' if quote == '"' else "''")
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: %s: %s" % (self.path, self.line, self.rule,
                                  self.message)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


# ---------------------------------------------------------------------------
# PHL001: wire-count-fed reserve/resize must flow through BoundedCount.
# ---------------------------------------------------------------------------

# Taint sources: raw wire reads of a count-sized scalar.
WIRE_READ_RE = re.compile(r"\.\s*(?:U8|U32|U64|Double)\s*\(")
# Sanitizers: the canonical bounded-count read, or an explicit clamp.
SANITIZER_RE = re.compile(r"\.\s*BoundedCount\s*\(|std::min\b")

ASSIGN_OR_RETURN_RE = re.compile(
    r"PRIVHP_ASSIGN_OR_RETURN\s*\(\s*(?:const\s+)?[\w:<>\s]*?(\w[\w.\->]*)\s*,"
    r"\s*(.+?)\)\s*;", re.S)
PLAIN_ASSIGN_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?(?:[\w:<>]+\s+)?(\w[\w.\->]*)\s*=\s*"
    r"([^;]+);", re.S)
RESERVE_RE = re.compile(r"(?:\.|->)\s*(reserve|resize)\s*\(")


def extract_call_arg(text, open_paren_pos):
    """Returns (argument_text, end_pos) for a call's parenthesized args."""
    depth = 0
    i = open_paren_pos
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren_pos + 1:i], i
        i += 1
    return text[open_paren_pos + 1:], len(text)


def check_wire_counts(path, text):
    violations = []
    # Walk the file once, in order, tracking which simple identifiers
    # currently hold a raw wire-read value (tainted) vs a BoundedCount /
    # clamped value (sanitized). Ordering matters: the same name (e.g.
    # `count`) is reused across decoder functions.
    events = []  # (pos, kind, payload)
    for m in ASSIGN_OR_RETURN_RE.finditer(text):
        events.append((m.start(), "assign", (m.group(1), m.group(2))))
    for m in PLAIN_ASSIGN_RE.finditer(text):
        events.append((m.start(), "assign", (m.group(1), m.group(2))))
    for m in RESERVE_RE.finditer(text):
        arg, _ = extract_call_arg(text, m.end() - 1)
        events.append((m.start(), "alloc", (m.group(1), arg)))
    events.sort(key=lambda e: e[0])

    tainted = set()
    for pos, kind, payload in events:
        if kind == "assign":
            name, expr = payload
            name = name.split(".")[0].split("->")[0]
            if SANITIZER_RE.search(expr):
                tainted.discard(name)
            elif WIRE_READ_RE.search(expr):
                tainted.add(name)
            # otherwise: leave the name's state alone (arithmetic on a
            # tainted count stays the caller's problem only if it feeds
            # an allocation through the same name).
        else:
            func, arg = payload
            if SANITIZER_RE.search(arg):
                continue
            if WIRE_READ_RE.search(arg):
                violations.append(Violation(
                    path, line_of(text, pos), "PHL001",
                    "%s() sized directly by a raw wire read; use "
                    "WireReader::BoundedCount()" % func))
                continue
            arg_ids = set(re.findall(r"\b\w+\b", arg))
            bad = sorted(arg_ids & tainted)
            if bad:
                violations.append(Violation(
                    path, line_of(text, pos), "PHL001",
                    "%s(%s) sized by unbounded wire-read count '%s'; "
                    "read it via WireReader::BoundedCount() instead" %
                    (func, arg.strip(), bad[0])))
    return violations


# ---------------------------------------------------------------------------
# PHL002: correctly-rounded intrinsics only in the SIMD kernel TUs.
# ---------------------------------------------------------------------------

FORBIDDEN_INTRINSIC_RE = re.compile(
    r"\b(_mm\w*_(?:fmadd|fmsub|fnmadd|fnmsub|rcp|rsqrt)\w*)\s*\(|"
    r"\b(std::fmaf?)\b|(?:^|[^\w:.])(fmaf?)\s*\(")


def check_simd_rounding(path, text):
    violations = []
    for m in FORBIDDEN_INTRINSIC_RE.finditer(text):
        name = m.group(1) or m.group(2) or m.group(3)
        violations.append(Violation(
            path, line_of(text, m.start()), "PHL002",
            "'%s' is not correctly rounded; SIMD kernels must stay "
            "bit-identical to the scalar reference (add/sub/mul/div/"
            "cmp/gather only)" % name))
    return violations


# ---------------------------------------------------------------------------
# PHL003: RNG discipline outside common/random.*.
# ---------------------------------------------------------------------------

FORBIDDEN_RNG_RE = re.compile(
    r"\b(std::random_device)\b|"
    r"(?:^|[^\w:.])(s?rand)\s*\(|"
    r"\b(drand48|lrand48|mrand48)\s*\(|"
    r"(?:^|[^\w:.])(time)\s*\(\s*(?:0|NULL|nullptr)?\s*\)")


def check_rng_discipline(path, text):
    violations = []
    for m in FORBIDDEN_RNG_RE.finditer(text):
        name = next(g for g in m.groups() if g)
        violations.append(Violation(
            path, line_of(text, m.start()), "PHL003",
            "'%s' breaks sampler determinism; all randomness must come "
            "from common/random.h RandomEngine (seeded, forkable)" % name))
    return violations


# ---------------------------------------------------------------------------
# PHL004: annotated mutexes only (common/sync.h wrappers).
# ---------------------------------------------------------------------------

NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")


def check_naked_mutex(path, text):
    violations = []
    for m in NAKED_MUTEX_RE.finditer(text):
        violations.append(Violation(
            path, line_of(text, m.start()), "PHL004",
            "naked std::%s; use the thread-safety-annotated Mutex/"
            "MutexLock/CondVar wrappers from common/sync.h" % m.group(1)))
    return violations


# ---------------------------------------------------------------------------
# Rule routing: which rules apply to which paths.
# ---------------------------------------------------------------------------


def norm(path):
    return path.replace(os.sep, "/")


def is_wire_decoder(path):
    p = norm(path)
    return p.endswith("service/protocol.cc") or p.endswith("service/client.cc")


def is_simd_kernel(path):
    base = os.path.basename(path)
    return re.fullmatch(r"simd_avx\w*\.cc", base) is not None


def is_random_impl(path):
    p = norm(path)
    return "common/random." in p


def is_sync_header(path):
    return norm(path).endswith("common/sync.h")


def lint_file(path, display_path=None):
    display_path = display_path or path
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        return [Violation(display_path, 0, "PHL000", "unreadable: %s" % e)]
    text = strip_comments_and_strings(raw)
    violations = []
    if is_wire_decoder(path):
        violations += check_wire_counts(display_path, text)
    if is_simd_kernel(path):
        violations += check_simd_rounding(display_path, text)
    if not is_random_impl(path):
        violations += check_rng_discipline(display_path, text)
    if not is_sync_header(path):
        violations += check_naked_mutex(display_path, text)
    return violations


def collect_sources(root):
    sources = []
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                sources.append(os.path.join(dirpath, name))
    return sorted(sources)


# ---------------------------------------------------------------------------
# .clang-tidy validation: every disabled check needs a documented reason.
# ---------------------------------------------------------------------------

def check_tidy_config(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return ["%s: unreadable: %s" % (path, e)]

    # Reasons live as comment lines of the form "#   -check-name: reason"
    # (YAML comments cannot sit inside the Checks scalar itself).
    documented = set()
    for line in lines:
        m = re.match(r"\s*#\s*(-[\w.*-]+)\s*:\s*\S", line)
        if m:
            documented.add(m.group(1).lstrip("-"))

    # The Checks value: a single (possibly multi-line '>'-folded) scalar.
    text = "\n".join(l for l in lines if not l.lstrip().startswith("#"))
    m = re.search(r"^Checks:\s*(.*?)(?=^\w|\Z)", text, re.S | re.M)
    if not m:
        return ["%s: no Checks: key found" % path]
    checks_value = m.group(1).replace(">", " ").replace("'", " ").replace(
        '"', " ")
    entries = [e.strip() for e in checks_value.split(",") if e.strip()]
    if not entries:
        errors.append("%s: Checks list is empty" % path)

    enabled = [e for e in entries if not e.startswith("-")]
    disabled = [e.lstrip("-") for e in entries if e.startswith("-")]
    if not any(e.startswith("bugprone") for e in enabled):
        errors.append("%s: curated set must enable bugprone-* checks" % path)
    for check in disabled:
        if check == "*":
            continue  # the leading blanket reset needs no per-check reason
        if check not in documented:
            errors.append(
                "%s: disabled check '-%s' has no documented reason "
                "(add a '#   -%s: <why>' comment line)" %
                (path, check, check))

    if not re.search(r"^WarningsAsErrors:", text, re.M):
        errors.append("%s: WarningsAsErrors: missing (the gate must be "
                      "blocking)" % path)
    return errors


def main(argv):
    parser = argparse.ArgumentParser(
        description="PrivHP repo-specific invariant linter")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: <root>/src)")
    parser.add_argument(
        "--root", default=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))),
        help="repo root (default: parent of this script)")
    parser.add_argument(
        "--check-tidy-config", metavar="FILE", nargs="?",
        const="DEFAULT", default=None,
        help="validate a .clang-tidy file (default: <root>/.clang-tidy) "
             "instead of linting sources")
    args = parser.parse_args(argv)

    if args.check_tidy_config is not None:
        tidy_path = (os.path.join(args.root, ".clang-tidy")
                     if args.check_tidy_config == "DEFAULT"
                     else args.check_tidy_config)
        errors = check_tidy_config(tidy_path)
        for e in errors:
            print(e, file=sys.stderr)
        if not errors:
            print("%s: OK" % tidy_path)
        return 1 if errors else 0

    targets = args.paths or [os.path.join(args.root, "src")]
    files = []
    for target in targets:
        if os.path.isdir(target):
            files.extend(collect_sources(target))
        else:
            files.append(target)

    violations = []
    for path in files:
        violations.extend(lint_file(path))
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print("privhp_lint: %d violation(s) in %d file(s) scanned" %
              (len(violations), len(files)), file=sys.stderr)
        return 1
    print("privhp_lint: OK (%d files scanned)" % len(files))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
