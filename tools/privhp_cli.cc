// privhp — command-line front end for the library.
//
//   privhp build   --in data.csv --dim 2 --epsilon 1.0 --k 32
//                  --out generator.tree [--n N] [--seed S]
//   privhp sample  --tree generator.tree --dim 2 --m 10000 --out synth.csv
//   privhp quantile --tree generator.tree --q 0.5 [--q 0.9 ...]   (d = 1)
//   privhp heavy   --tree generator.tree --dim 1 --threshold 0.05
//   privhp w1      --a a.csv --b b.csv --dim 1        (exact for d = 1,
//                                                      sliced otherwise)
//   privhp pack    --tree generator.tree --out generator.paged
//                  [--page-size BYTES]
//   privhp serve   --unix /tmp/privhp.sock | --port 7557
//                  [--load name=gen.tree ...] [--workers N]
//                  [--memory-budget-mb MB] [--auth-token T]
//   (client commands over TCP take --auth-token T to match)
//   privhp query   --unix PATH | --host H --port P  --artifact NAME
//                  --sample M | --quantile Q | --heavy T |
//                  --level L --index I | --export F | --list
//   privhp ingest  --unix PATH | --host H --port P  --artifact NAME
//                  --in data.csv --dim D [--epsilon E] [--k K] [--n N]
//   privhp stats   --unix PATH | --host H --port P [--raw]
//   privhp top     --unix PATH | --host H --port P
//                  [--interval-ms MS] [--iterations N]
//
// The tree file is the released eps-DP artifact; every subcommand other
// than `build` is post-processing and can be run any number of times.
// `serve` keeps released artifacts resident and answers the same
// post-processing queries over sockets; `ingest` streams a dataset into a
// server-side bounded-memory build and publishes the result.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/table_printer.h"
#include "core/builder.h"
#include "core/queries.h"
#include "domain/hypercube_domain.h"
#include "eval/wasserstein.h"
#include "io/point_stream.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "service/client.h"
#include "service/server.h"
#include "service/service_metrics.h"
#include "storage/artifact_packer.h"
#include "storage/file_io.h"

namespace privhp {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::vector<std::string>> flags;

  const std::string* Get(const std::string& key) const {
    auto it = flags.find(key);
    return it == flags.end() || it->second.empty() ? nullptr
                                                   : &it->second.front();
  }
  std::string GetOr(const std::string& key, const std::string& fallback)
      const {
    const std::string* v = Get(key);
    return v ? *v : fallback;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  privhp build    --in data.csv --dim D --out gen.tree\n"
      "                  [--epsilon E] [--k K] [--n N] [--seed S]\n"
      "                  [--threads T]   (sharded parallel ingestion;\n"
      "                                   output is identical for any T)\n"
      "  privhp sample   --tree gen.tree --dim D --m M --out synth.csv\n"
      "                  [--seed S]\n"
      "  privhp quantile --tree gen.tree --q Q [--q Q2 ...]   (dim 1)\n"
      "  privhp heavy    --tree gen.tree --dim D --threshold T\n"
      "  privhp w1       --a a.csv --b b.csv --dim D\n"
      "  privhp pack     --tree gen.tree --out gen.paged\n"
      "                  [--page-size BYTES]\n"
      "  privhp serve    --unix PATH | --port P [--host H]\n"
      "                  [--load name=gen.tree ...] [--workers N]\n"
      "                  [--seed S] [--memory-budget-mb MB]\n"
      "                  [--auth-token T]   (TCP clients must present T)\n"
      "  privhp query    --unix PATH | --host H --port P [--artifact A]\n"
      "                  [--auth-token T]\n"
      "                  --list | --sample M [--seed S] [--out F]\n"
      "                  | --quantile Q [--quantile Q2 ...]\n"
      "                  | --heavy T | --level L --index I | --export F\n"
      "  privhp ingest   --unix PATH | --host H --port P --artifact A\n"
      "                  --in data.csv --dim D [--epsilon E] [--k K]\n"
      "                  [--n N] [--seed S] [--threads T]\n"
      "  privhp stats    --unix PATH | --host H --port P [--raw]\n"
      "                  (one-shot metrics dump from a live server)\n"
      "  privhp top      --unix PATH | --host H --port P\n"
      "                  [--interval-ms MS] [--iterations N]\n"
      "                  (refreshing per-endpoint latency/throughput view)\n");
  return 2;
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strncmp(flag, "--", 2) != 0) {
      return Status::InvalidArgument(std::string("bad flag: ") + flag);
    }
    // Only known boolean flags may omit a value; for everything else a
    // missing value stays a hard error ("--seed --out f" must not parse
    // as seed = "").
    const bool is_boolean = std::strcmp(flag, "--list") == 0 ||
                            std::strcmp(flag, "--raw") == 0;
    if (is_boolean) {
      args.flags[flag + 2].push_back("");
    } else if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      return Status::InvalidArgument(std::string("flag needs a value: ") +
                                     flag);
    } else {
      args.flags[flag + 2].push_back(argv[++i]);
    }
  }
  return args;
}

Result<int> RequireInt(const Args& args, const std::string& key) {
  const std::string* v = args.Get(key);
  if (!v) return Status::InvalidArgument("missing --" + key);
  return std::atoi(v->c_str());
}

int Build(const Args& args) {
  const std::string* in = args.Get("in");
  const std::string* out = args.Get("out");
  auto dim = RequireInt(args, "dim");
  if (!in || !out || !dim.ok()) {
    std::fprintf(stderr, "build needs --in, --out, --dim\n");
    return 2;
  }
  auto data = ReadPointsCsv(*in, *dim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  HypercubeDomain domain(*dim);
  PrivHPOptions options;
  options.epsilon = std::atof(args.GetOr("epsilon", "1.0").c_str());
  options.k = std::strtoull(args.GetOr("k", "32").c_str(), nullptr, 10);
  options.expected_n =
      std::strtoull(args.GetOr("n", "0").c_str(), nullptr, 10);
  if (options.expected_n == 0) options.expected_n = data->size();
  options.seed = std::strtoull(args.GetOr("seed", "42").c_str(), nullptr, 10);
  const int threads = std::atoi(args.GetOr("threads", "1").c_str());
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }

  Result<PrivHPGenerator> generator = [&]() -> Result<PrivHPGenerator> {
    if (threads > 1) {
      return PrivHPBuilder::BuildParallel(&domain, options, *data, threads);
    }
    PRIVHP_ASSIGN_OR_RETURN(PrivHPBuilder builder,
                            PrivHPBuilder::Make(&domain, options));
    std::fprintf(stderr, "%s\n", builder.plan().ToString().c_str());
    PRIVHP_RETURN_NOT_OK(builder.AddAll(*data));
    std::fprintf(stderr, "streamed %zu points, builder %.1f KiB\n",
                 data->size(), builder.MemoryBytes() / 1024.0);
    return std::move(builder).Finish();
  }();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  if (threads > 1) {
    std::fprintf(stderr, "%s\n", generator->plan().ToString().c_str());
    std::fprintf(stderr, "streamed %zu points across %d shards\n",
                 data->size(), threads);
  }
  const Status saved = generator->Save(*out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu nodes)\n", out->c_str(),
               generator->tree().num_nodes());
  return 0;
}

Result<PrivHPGenerator> LoadGenerator(const Args& args,
                                      const Domain* domain) {
  const std::string* tree = args.Get("tree");
  if (!tree) return Status::InvalidArgument("missing --tree");
  return PrivHPGenerator::Load(domain, *tree);
}

int Sample(const Args& args) {
  auto dim = RequireInt(args, "dim");
  auto m = RequireInt(args, "m");
  const std::string* out = args.Get("out");
  if (!dim.ok() || !m.ok() || !out) {
    std::fprintf(stderr, "sample needs --tree, --dim, --m, --out\n");
    return 2;
  }
  HypercubeDomain domain(*dim);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  RandomEngine rng(
      std::strtoull(args.GetOr("seed", "1").c_str(), nullptr, 10));
  // Stream points straight into the CSV sink through the generator's
  // compiled alias sampler: the serve side is bounded memory in m, just
  // like the build side is in n.
  auto writer = CsvPointWriter::Open(*out);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  Status written = generator->GenerateTo(static_cast<size_t>(*m), &rng,
                                         &*writer);
  if (written.ok()) written = writer->Close();
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %d synthetic points to %s\n", *m,
               out->c_str());
  return 0;
}

int Quantile(const Args& args) {
  HypercubeDomain domain(1);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  auto it = args.flags.find("q");
  if (it == args.flags.end()) {
    std::fprintf(stderr, "quantile needs at least one --q\n");
    return 2;
  }
  for (const std::string& qs : it->second) {
    const double q = std::atof(qs.c_str());
    auto value = TreeQuantile(generator->tree(), q);
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      return 1;
    }
    std::printf("q=%.4f -> %.6f\n", q, *value);
  }
  return 0;
}

int Heavy(const Args& args) {
  auto dim = RequireInt(args, "dim");
  if (!dim.ok()) {
    std::fprintf(stderr, "heavy needs --dim\n");
    return 2;
  }
  HypercubeDomain domain(*dim);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  const double threshold =
      std::atof(args.GetOr("threshold", "0.05").c_str());
  auto heavy = HierarchicalHeavyHitters(generator->tree(), threshold);
  if (!heavy.ok()) {
    std::fprintf(stderr, "%s\n", heavy.status().ToString().c_str());
    return 1;
  }
  for (const HeavyCell& cell : *heavy) {
    std::printf("level=%d index=%llu fraction=%.4f\n", cell.cell.level,
                static_cast<unsigned long long>(cell.cell.index),
                cell.fraction);
  }
  return 0;
}

int W1(const Args& args) {
  auto dim = RequireInt(args, "dim");
  const std::string* a = args.Get("a");
  const std::string* b = args.Get("b");
  if (!dim.ok() || !a || !b) {
    std::fprintf(stderr, "w1 needs --a, --b, --dim\n");
    return 2;
  }
  auto pa = ReadPointsCsv(*a, *dim);
  auto pb = ReadPointsCsv(*b, *dim);
  if (!pa.ok() || !pb.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!pa.ok() ? pa.status() : pb.status()).ToString().c_str());
    return 1;
  }
  double w1;
  if (*dim == 1) {
    w1 = Wasserstein1DPoints(*pa, *pb);
  } else {
    RandomEngine rng(7);
    w1 = SlicedW1(*pa, *pb, 64, &rng);
  }
  std::printf("W1 = %.6f%s\n", w1, *dim == 1 ? "" : " (sliced estimate)");
  return 0;
}

int Pack(const Args& args) {
  const std::string* tree = args.Get("tree");
  const std::string* out = args.Get("out");
  if (!tree || !out) {
    std::fprintf(stderr, "pack needs --tree and --out\n");
    return 2;
  }
  storage::PackOptions options;
  if (const std::string* page_size = args.Get("page-size")) {
    options.page_size =
        static_cast<uint32_t>(std::strtoul(page_size->c_str(), nullptr, 10));
  }
  const Status packed = storage::PackTreeFile(*tree, *out, options);
  if (!packed.ok()) {
    std::fprintf(stderr, "%s\n", packed.ToString().c_str());
    return 1;
  }
  auto size = storage::FileSize(*out);
  std::fprintf(stderr, "packed %s -> %s (%llu bytes, %u-byte pages)\n",
               tree->c_str(), out->c_str(),
               static_cast<unsigned long long>(
                   size.ok() ? *size : uint64_t{0}),
               options.page_size);
  return 0;
}

volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

int Serve(const Args& args) {
  ServerOptions options;
  options.unix_path = args.GetOr("unix", "");
  const std::string* port = args.Get("port");
  if (port) options.tcp_port = std::atoi(port->c_str());
  options.tcp_host = args.GetOr("host", "127.0.0.1");
  options.num_workers = std::atoi(args.GetOr("workers", "4").c_str());
  options.seed = std::strtoull(args.GetOr("seed", "1").c_str(), nullptr, 10);
  options.auth_token = args.GetOr("auth-token", "");
  if (options.unix_path.empty() && !port) {
    std::fprintf(stderr, "serve needs --unix PATH and/or --port P\n");
    return 2;
  }

  RegistryOptions registry_options;
  registry_options.memory_budget_bytes =
      std::strtoull(args.GetOr("memory-budget-mb", "0").c_str(), nullptr,
                    10) *
      (size_t{1} << 20);
  ArtifactRegistry registry(registry_options);
  auto it = args.flags.find("load");
  if (it != args.flags.end()) {
    for (const std::string& spec : it->second) {
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--load wants name=path, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      const std::string name = spec.substr(0, eq);
      const std::string path = spec.substr(eq + 1);
      const Status loaded = registry.LoadFile(name, path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "loading %s: %s\n", spec.c_str(),
                     loaded.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "loaded artifact '%s' from %s\n", name.c_str(),
                   path.c_str());
    }
  }

  auto server = PrivHPServer::Start(&registry, options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::fprintf(stderr, "listening on unix:%s\n", options.unix_path.c_str());
  }
  if (port) {
    std::fprintf(stderr, "listening on tcp:%s:%u\n", options.tcp_host.c_str(),
                 (*server)->tcp_port());
  }
  std::fprintf(stderr, "%d workers, %zu artifact(s); ^C to stop\n",
               options.num_workers, registry.size());

  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  (*server)->Stop();
  const PrivHPServer::Stats stats = (*server)->stats();
  std::fprintf(stderr,
               "served %llu requests on %llu connections "
               "(%llu points sampled, %llu ingested, %llu errors)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.sampled_points),
               static_cast<unsigned long long>(stats.ingested_points),
               static_cast<unsigned long long>(stats.errors));
  return 0;
}

Result<PrivHPClient> ConnectFromArgs(const Args& args) {
  const std::string* unix_path = args.Get("unix");
  if (unix_path) return PrivHPClient::ConnectUnix(*unix_path);
  const std::string* port = args.Get("port");
  if (!port) {
    return Status::InvalidArgument("need --unix PATH or --host/--port");
  }
  // A server started with --auth-token demands the handshake as the TCP
  // connection's first frame; ConnectTcp runs it when given the token.
  return PrivHPClient::ConnectTcp(
      args.GetOr("host", "127.0.0.1"),
      static_cast<uint16_t>(std::atoi(port->c_str())),
      args.GetOr("auth-token", ""));
}

int Query(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (args.Get("list")) {
    auto names = client->List();
    if (!names.ok()) {
      std::fprintf(stderr, "%s\n", names.status().ToString().c_str());
      return 1;
    }
    for (const std::string& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }
  const std::string* artifact = args.Get("artifact");
  if (!artifact) {
    std::fprintf(stderr, "query needs --artifact (or --list)\n");
    return 2;
  }
  if (const std::string* m = args.Get("sample")) {
    const std::string* out = args.Get("out");
    if (!out) {
      std::fprintf(stderr, "query --sample needs --out F\n");
      return 2;
    }
    auto writer = CsvPointWriter::Open(*out);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    const uint64_t seed =
        std::strtoull(args.GetOr("seed", "0").c_str(), nullptr, 10);
    Status sampled = client->Sample(
        *artifact, std::strtoull(m->c_str(), nullptr, 10), seed, &*writer);
    if (sampled.ok()) sampled = writer->Close();
    if (!sampled.ok()) {
      std::fprintf(stderr, "%s\n", sampled.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s synthetic points to %s\n", m->c_str(),
                 out->c_str());
    return 0;
  }
  if (args.flags.count("quantile")) {
    std::vector<double> qs;
    for (const std::string& q : args.flags.at("quantile")) {
      qs.push_back(std::atof(q.c_str()));
    }
    auto values = client->Quantiles(*artifact, qs);
    if (!values.ok()) {
      std::fprintf(stderr, "%s\n", values.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < values->size(); ++i) {
      std::printf("q=%.4f -> %.6f\n", qs[i], (*values)[i]);
    }
    return 0;
  }
  if (const std::string* threshold = args.Get("heavy")) {
    auto heavy = client->Heavy(*artifact, std::atof(threshold->c_str()));
    if (!heavy.ok()) {
      std::fprintf(stderr, "%s\n", heavy.status().ToString().c_str());
      return 1;
    }
    for (const HeavyCell& cell : *heavy) {
      std::printf("level=%d index=%llu fraction=%.4f\n", cell.cell.level,
                  static_cast<unsigned long long>(cell.cell.index),
                  cell.fraction);
    }
    return 0;
  }
  if (args.Get("level") && args.Get("index")) {
    CellId cell;
    cell.level = std::atoi(args.Get("level")->c_str());
    cell.index = std::strtoull(args.Get("index")->c_str(), nullptr, 10);
    auto mass = client->RangeMass(*artifact, cell);
    if (!mass.ok()) {
      std::fprintf(stderr, "%s\n", mass.status().ToString().c_str());
      return 1;
    }
    std::printf("mass(level=%d, index=%llu) = %.6f\n", cell.level,
                static_cast<unsigned long long>(cell.index), *mass);
    return 0;
  }
  if (const std::string* out = args.Get("export")) {
    auto artifact_bytes = client->Export(*artifact);
    if (!artifact_bytes.ok()) {
      std::fprintf(stderr, "%s\n",
                   artifact_bytes.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(out->c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out->c_str());
      return 1;
    }
    const bool wrote = std::fwrite(artifact_bytes->data(), 1,
                                   artifact_bytes->size(),
                                   f) == artifact_bytes->size();
    // fclose also flushes; run it exactly once and fold its verdict in.
    if (std::fclose(f) != 0 || !wrote) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    std::fprintf(stderr, "exported artifact '%s' to %s (%zu bytes)\n",
                 artifact->c_str(), out->c_str(), artifact_bytes->size());
    return 0;
  }
  std::fprintf(stderr,
               "query needs one of --list, --sample, --quantile, --heavy, "
               "--level/--index, --export\n");
  return 2;
}

int Ingest(const Args& args) {
  const std::string* artifact = args.Get("artifact");
  const std::string* in = args.Get("in");
  auto dim = RequireInt(args, "dim");
  if (!artifact || !in || !dim.ok()) {
    std::fprintf(stderr, "ingest needs --artifact, --in, --dim\n");
    return 2;
  }
  auto client = ConnectFromArgs(args);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  PrivHPClient::IngestSpec spec;
  spec.dim = static_cast<uint32_t>(*dim);
  spec.epsilon = std::atof(args.GetOr("epsilon", "1.0").c_str());
  spec.k = std::strtoull(args.GetOr("k", "32").c_str(), nullptr, 10);
  spec.n = std::strtoull(args.GetOr("n", "0").c_str(), nullptr, 10);
  spec.seed = std::strtoull(args.GetOr("seed", "42").c_str(), nullptr, 10);
  spec.threads =
      static_cast<uint32_t>(std::atoi(args.GetOr("threads", "1").c_str()));
  if (spec.n == 0) {
    // The streaming horizon is required; for a file source, count points
    // in one O(1)-memory pre-pass instead of demanding --n.
    auto counter = CsvPointReader::Open(*in, *dim);
    if (!counter.ok()) {
      std::fprintf(stderr, "%s\n", counter.status().ToString().c_str());
      return 1;
    }
    Point scratch;
    for (;;) {
      auto more = counter->Next(&scratch);
      if (!more.ok()) {
        std::fprintf(stderr, "%s\n", more.status().ToString().c_str());
        return 1;
      }
      if (!*more) break;
      ++spec.n;
    }
  }
  auto reader = CsvPointReader::Open(*in, *dim);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  auto report = client->Ingest(*artifact, spec, &*reader);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "ingested %llu points; published '%s' (%llu nodes, total "
               "mass %.1f)\n",
               static_cast<unsigned long long>(report->points_sent),
               artifact->c_str(),
               static_cast<unsigned long long>(report->nodes),
               report->total_mass);
  return 0;
}

double NsToMs(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// Interval view of one named histogram: current minus previous snapshot
// (or the cumulative view when there is no previous sample yet).
obs::HistogramSnapshot HistogramDelta(const obs::MetricsSnapshot& cur,
                                      const obs::MetricsSnapshot& prev,
                                      const std::string& name) {
  const obs::HistogramSnapshot* now = cur.FindHistogram(name);
  if (now == nullptr) return obs::HistogramSnapshot{};
  const obs::HistogramSnapshot* before = prev.FindHistogram(name);
  return before == nullptr ? *now : now->Delta(*before);
}

// The per-endpoint table both `stats` (cumulative) and `top` (interval)
// render: one row per wire op with latency percentiles and byte totals.
void PrintEndpointTable(const obs::MetricsSnapshot& cur,
                        const obs::MetricsSnapshot& prev, double seconds,
                        bool rates) {
  std::vector<std::string> columns = {"op",     rates ? "req/s" : "requests",
                                      "errors", "p50_ms",
                                      "p99_ms", "max_ms",
                                      "in_B",   "out_B"};
  TablePrinter table(rates ? "endpoints (interval)" : "endpoints", columns);
  for (int i = 0; i < kStatsNumOps; ++i) {
    const std::string op = ServiceOpName(ServiceOpAt(i));
    const std::string prefix = "op." + op + ".";
    const uint64_t requests = cur.CounterOr(prefix + "requests") -
                              prev.CounterOr(prefix + "requests");
    const uint64_t errors =
        cur.CounterOr(prefix + "errors") - prev.CounterOr(prefix + "errors");
    const obs::HistogramSnapshot lat =
        HistogramDelta(cur, prev, prefix + "latency_ns");
    const obs::HistogramSnapshot in =
        HistogramDelta(cur, prev, prefix + "bytes_in");
    const obs::HistogramSnapshot out =
        HistogramDelta(cur, prev, prefix + "bytes_out");
    table.BeginRow();
    table.Cell(op);
    if (rates) {
      table.Cell(static_cast<double>(requests) / seconds, 3);
    } else {
      table.Cell(requests);
    }
    table.Cell(errors);
    if (lat.Count() > 0) {
      table.Cell(NsToMs(lat.ValueAtQuantile(0.5)), 3);
      table.Cell(NsToMs(lat.ValueAtQuantile(0.99)), 3);
      table.Cell(NsToMs(lat.max), 3);
    } else {
      table.Cell(std::string("-"));
      table.Cell(std::string("-"));
      table.Cell(std::string("-"));
    }
    table.Cell(in.sum);
    table.Cell(out.sum);
  }
  table.Print(std::cout);
}

// Server/storage summary shared by `stats` and `top`: worker pool,
// connection queue, artifact inventory, and buffer-pool effectiveness.
void PrintServerSummary(const obs::MetricsSnapshot& snap) {
  const uint64_t hits = snap.CounterOr("pool.hits");
  const uint64_t misses = snap.CounterOr("pool.misses");
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(hits) /
                static_cast<double>(hits + misses);
  const obs::HistogramSnapshot* queue_wait =
      snap.FindHistogram("server.queue_wait_ns");
  std::printf(
      "workers %lld/%lld busy  queue depth %lld  queue wait p99 %.3f ms\n",
      static_cast<long long>(snap.GaugeOr("server.workers_busy")),
      static_cast<long long>(snap.GaugeOr("server.workers_total")),
      static_cast<long long>(snap.GaugeOr("server.queue_depth")),
      queue_wait == nullptr ? 0.0
                            : NsToMs(queue_wait->ValueAtQuantile(0.99)));
  std::printf(
      "artifacts %lld  resident %.1f MiB  publishes %llu  "
      "connections %llu  errors %llu\n",
      static_cast<long long>(snap.GaugeOr("registry.artifacts")),
      static_cast<double>(snap.GaugeOr("registry.resident_bytes")) /
          (1024.0 * 1024.0),
      static_cast<unsigned long long>(snap.CounterOr("registry.publishes")),
      static_cast<unsigned long long>(snap.CounterOr("server.connections")),
      static_cast<unsigned long long>(snap.CounterOr("server.errors")));
  std::printf(
      "pool hits %llu misses %llu (%.1f%% hit)  evictions %llu  "
      "checksum verifies %llu\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), hit_rate,
      static_cast<unsigned long long>(snap.CounterOr("pool.evictions")),
      static_cast<unsigned long long>(
          snap.CounterOr("pool.checksum_verifies")));
  std::printf(
      "ingest points %llu batches %llu  sampled points %llu\n",
      static_cast<unsigned long long>(snap.CounterOr("ingest.points")),
      static_cast<unsigned long long>(snap.CounterOr("ingest.batches")),
      static_cast<unsigned long long>(snap.CounterOr("sample.points")));
}

int StatsCmd(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  auto snap = client->Stats();
  if (!snap.ok()) {
    std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
    return 1;
  }
  if (args.Get("raw")) {
    // Machine-greppable dump of every metric in the snapshot, one per
    // line, names already sorted by the snapshot invariant.
    for (const auto& c : snap->counters) {
      std::printf("counter %s %llu\n", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    }
    for (const auto& g : snap->gauges) {
      std::printf("gauge %s %lld\n", g.name.c_str(),
                  static_cast<long long>(g.value));
    }
    for (const auto& h : snap->histograms) {
      std::printf("histogram %s count %llu sum %llu p50 %llu p99 %llu "
                  "max %llu\n",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.hist.Count()),
                  static_cast<unsigned long long>(h.hist.sum),
                  static_cast<unsigned long long>(
                      h.hist.ValueAtQuantile(0.5)),
                  static_cast<unsigned long long>(
                      h.hist.ValueAtQuantile(0.99)),
                  static_cast<unsigned long long>(h.hist.max));
    }
    return 0;
  }
  PrintEndpointTable(*snap, obs::MetricsSnapshot{}, /*seconds=*/0.0,
                     /*rates=*/false);
  std::printf("\n");
  PrintServerSummary(*snap);
  return 0;
}

int Top(const Args& args) {
  auto client = ConnectFromArgs(args);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  const int interval_ms =
      std::max(1, std::atoi(args.GetOr("interval-ms", "1000").c_str()));
  // 0 = refresh until interrupted; a bound makes `top` scriptable.
  const long iterations =
      std::atol(args.GetOr("iterations", "0").c_str());
  // The first snapshot is the baseline; every displayed frame is the
  // interval since the previous one.
  auto prev = client->Stats();
  if (!prev.ok()) {
    std::fprintf(stderr, "%s\n", prev.status().ToString().c_str());
    return 1;
  }
  auto prev_time = std::chrono::steady_clock::now();
  for (long frame = 0; iterations == 0 || frame < iterations; ++frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    auto snap = client->Stats();
    if (!snap.ok()) {
      std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::max(1e-9, std::chrono::duration<double>(now - prev_time).count());
    // Home the cursor and clear downward; \x1b[2J would flicker.
    std::printf("\x1b[H\x1b[J");
    std::printf("privhp top — refresh %.1fs\n\n", seconds);
    PrintEndpointTable(*snap, *prev, seconds, /*rates=*/true);
    std::printf("\n");
    PrintServerSummary(*snap);
    std::fflush(stdout);
    prev = std::move(snap);
    prev_time = now;
  }
  return 0;
}

int Run(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.ok()) return Usage();
  if (args->command == "build") return Build(*args);
  if (args->command == "sample") return Sample(*args);
  if (args->command == "quantile") return Quantile(*args);
  if (args->command == "heavy") return Heavy(*args);
  if (args->command == "w1") return W1(*args);
  if (args->command == "pack") return Pack(*args);
  if (args->command == "serve") return Serve(*args);
  if (args->command == "query") return Query(*args);
  if (args->command == "ingest") return Ingest(*args);
  if (args->command == "stats") return StatsCmd(*args);
  if (args->command == "top") return Top(*args);
  return Usage();
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) { return privhp::Run(argc, argv); }
