// privhp — command-line front end for the library.
//
//   privhp build   --in data.csv --dim 2 --epsilon 1.0 --k 32
//                  --out generator.tree [--n N] [--seed S]
//   privhp sample  --tree generator.tree --dim 2 --m 10000 --out synth.csv
//   privhp quantile --tree generator.tree --q 0.5 [--q 0.9 ...]   (d = 1)
//   privhp heavy   --tree generator.tree --dim 1 --threshold 0.05
//   privhp w1      --a a.csv --b b.csv --dim 1        (exact for d = 1,
//                                                      sliced otherwise)
//
// The tree file is the released eps-DP artifact; every subcommand other
// than `build` is post-processing and can be run any number of times.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/builder.h"
#include "core/queries.h"
#include "domain/hypercube_domain.h"
#include "eval/wasserstein.h"
#include "io/point_stream.h"

namespace privhp {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::vector<std::string>> flags;

  const std::string* Get(const std::string& key) const {
    auto it = flags.find(key);
    return it == flags.end() || it->second.empty() ? nullptr
                                                   : &it->second.front();
  }
  std::string GetOr(const std::string& key, const std::string& fallback)
      const {
    const std::string* v = Get(key);
    return v ? *v : fallback;
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  privhp build    --in data.csv --dim D --out gen.tree\n"
      "                  [--epsilon E] [--k K] [--n N] [--seed S]\n"
      "                  [--threads T]   (sharded parallel ingestion;\n"
      "                                   output is identical for any T)\n"
      "  privhp sample   --tree gen.tree --dim D --m M --out synth.csv\n"
      "                  [--seed S]\n"
      "  privhp quantile --tree gen.tree --q Q [--q Q2 ...]   (dim 1)\n"
      "  privhp heavy    --tree gen.tree --dim D --threshold T\n"
      "  privhp w1       --a a.csv --b b.csv --dim D\n");
  return 2;
}

Result<Args> Parse(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strncmp(flag, "--", 2) != 0 || i + 1 >= argc) {
      return Status::InvalidArgument(std::string("bad flag: ") + flag);
    }
    args.flags[flag + 2].push_back(argv[++i]);
  }
  return args;
}

Result<int> RequireInt(const Args& args, const std::string& key) {
  const std::string* v = args.Get(key);
  if (!v) return Status::InvalidArgument("missing --" + key);
  return std::atoi(v->c_str());
}

int Build(const Args& args) {
  const std::string* in = args.Get("in");
  const std::string* out = args.Get("out");
  auto dim = RequireInt(args, "dim");
  if (!in || !out || !dim.ok()) {
    std::fprintf(stderr, "build needs --in, --out, --dim\n");
    return 2;
  }
  auto data = ReadPointsCsv(*in, *dim);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  HypercubeDomain domain(*dim);
  PrivHPOptions options;
  options.epsilon = std::atof(args.GetOr("epsilon", "1.0").c_str());
  options.k = std::strtoull(args.GetOr("k", "32").c_str(), nullptr, 10);
  options.expected_n =
      std::strtoull(args.GetOr("n", "0").c_str(), nullptr, 10);
  if (options.expected_n == 0) options.expected_n = data->size();
  options.seed = std::strtoull(args.GetOr("seed", "42").c_str(), nullptr, 10);
  const int threads = std::atoi(args.GetOr("threads", "1").c_str());
  if (threads < 1) {
    std::fprintf(stderr, "--threads must be >= 1\n");
    return 2;
  }

  Result<PrivHPGenerator> generator = [&]() -> Result<PrivHPGenerator> {
    if (threads > 1) {
      return PrivHPBuilder::BuildParallel(&domain, options, *data, threads);
    }
    PRIVHP_ASSIGN_OR_RETURN(PrivHPBuilder builder,
                            PrivHPBuilder::Make(&domain, options));
    std::fprintf(stderr, "%s\n", builder.plan().ToString().c_str());
    PRIVHP_RETURN_NOT_OK(builder.AddAll(*data));
    std::fprintf(stderr, "streamed %zu points, builder %.1f KiB\n",
                 data->size(), builder.MemoryBytes() / 1024.0);
    return std::move(builder).Finish();
  }();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  if (threads > 1) {
    std::fprintf(stderr, "%s\n", generator->plan().ToString().c_str());
    std::fprintf(stderr, "streamed %zu points across %d shards\n",
                 data->size(), threads);
  }
  const Status saved = generator->Save(*out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu nodes)\n", out->c_str(),
               generator->tree().num_nodes());
  return 0;
}

Result<PrivHPGenerator> LoadGenerator(const Args& args,
                                      const Domain* domain) {
  const std::string* tree = args.Get("tree");
  if (!tree) return Status::InvalidArgument("missing --tree");
  return PrivHPGenerator::Load(domain, *tree);
}

int Sample(const Args& args) {
  auto dim = RequireInt(args, "dim");
  auto m = RequireInt(args, "m");
  const std::string* out = args.Get("out");
  if (!dim.ok() || !m.ok() || !out) {
    std::fprintf(stderr, "sample needs --tree, --dim, --m, --out\n");
    return 2;
  }
  HypercubeDomain domain(*dim);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  RandomEngine rng(
      std::strtoull(args.GetOr("seed", "1").c_str(), nullptr, 10));
  const auto synthetic = generator->Generate(*m, &rng);
  const Status written = WritePointsCsv(*out, synthetic);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %d synthetic points to %s\n", *m,
               out->c_str());
  return 0;
}

int Quantile(const Args& args) {
  HypercubeDomain domain(1);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  auto it = args.flags.find("q");
  if (it == args.flags.end()) {
    std::fprintf(stderr, "quantile needs at least one --q\n");
    return 2;
  }
  for (const std::string& qs : it->second) {
    const double q = std::atof(qs.c_str());
    auto value = TreeQuantile(generator->tree(), q);
    if (!value.ok()) {
      std::fprintf(stderr, "%s\n", value.status().ToString().c_str());
      return 1;
    }
    std::printf("q=%.4f -> %.6f\n", q, *value);
  }
  return 0;
}

int Heavy(const Args& args) {
  auto dim = RequireInt(args, "dim");
  if (!dim.ok()) {
    std::fprintf(stderr, "heavy needs --dim\n");
    return 2;
  }
  HypercubeDomain domain(*dim);
  auto generator = LoadGenerator(args, &domain);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  const double threshold =
      std::atof(args.GetOr("threshold", "0.05").c_str());
  auto heavy = HierarchicalHeavyHitters(generator->tree(), threshold);
  if (!heavy.ok()) {
    std::fprintf(stderr, "%s\n", heavy.status().ToString().c_str());
    return 1;
  }
  for (const HeavyCell& cell : *heavy) {
    std::printf("level=%d index=%llu fraction=%.4f\n", cell.cell.level,
                static_cast<unsigned long long>(cell.cell.index),
                cell.fraction);
  }
  return 0;
}

int W1(const Args& args) {
  auto dim = RequireInt(args, "dim");
  const std::string* a = args.Get("a");
  const std::string* b = args.Get("b");
  if (!dim.ok() || !a || !b) {
    std::fprintf(stderr, "w1 needs --a, --b, --dim\n");
    return 2;
  }
  auto pa = ReadPointsCsv(*a, *dim);
  auto pb = ReadPointsCsv(*b, *dim);
  if (!pa.ok() || !pb.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!pa.ok() ? pa.status() : pb.status()).ToString().c_str());
    return 1;
  }
  double w1;
  if (*dim == 1) {
    w1 = Wasserstein1DPoints(*pa, *pb);
  } else {
    RandomEngine rng(7);
    w1 = SlicedW1(*pa, *pb, 64, &rng);
  }
  std::printf("W1 = %.6f%s\n", w1, *dim == 1 ? "" : " (sliced estimate)");
  return 0;
}

int Run(int argc, char** argv) {
  auto args = Parse(argc, argv);
  if (!args.ok()) return Usage();
  if (args->command == "build") return Build(*args);
  if (args->command == "sample") return Sample(*args);
  if (args->command == "quantile") return Quantile(*args);
  if (args->command == "heavy") return Heavy(*args);
  if (args->command == "w1") return W1(*args);
  return Usage();
}

}  // namespace
}  // namespace privhp

int main(int argc, char** argv) { return privhp::Run(argc, argv); }
