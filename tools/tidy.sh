#!/usr/bin/env bash
# Runs clang-tidy (root .clang-tidy, WarningsAsErrors: '*') over every
# C++ TU in src/, using the compile database a configured build tree
# exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt).
#
#   tools/tidy.sh [BUILD_DIR]      # default BUILD_DIR: build
#
# Env:
#   CLANG_TIDY      clang-tidy binary (default: clang-tidy, falls back
#                   to the pinned CI version clang-tidy-18)
#   TIDY_JOBS       parallel jobs (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
DB="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$DB" ]]; then
  echo "error: $DB not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if command -v clang-tidy-18 >/dev/null 2>&1; then
    CLANG_TIDY=clang-tidy-18
  else
    echo "error: $CLANG_TIDY not found (set CLANG_TIDY to override)" >&2
    exit 1
  fi
fi

# The config itself is part of the contract: every opt-out documented.
python3 tools/privhp_lint.py --check-tidy-config

mapfile -t files < <(find src -name '*.cc' | sort)
jobs="${TIDY_JOBS:-$(nproc)}"

echo "clang-tidy (${CLANG_TIDY}) over ${#files[@]} TUs, $jobs jobs"
printf '%s\n' "${files[@]}" |
  xargs -P "$jobs" -n 4 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet
echo "tidy OK (${#files[@]} files)"
