#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ source in the tree with
# clang-format, using the root .clang-format (Google style).
#
#   tools/format.sh            # rewrite files in place
#   tools/format.sh --check    # exit non-zero if anything needs formatting
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
  exit 1
fi

mapfile -t files < <(find src tests bench examples tools \
  -name '*.cc' -o -name '*.h' | sort)

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "format OK (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
