#!/usr/bin/env bash
# Formats (or with --check, verifies) every C++ source in the tree with
# clang-format, using the root .clang-format (Google style).
#
#   tools/format.sh            # rewrite files in place
#   tools/format.sh --check    # exit non-zero if anything needs formatting
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  # Fall back to the pinned CI version so a bare `tools/format.sh` works
  # both locally and in the format container.
  if command -v clang-format-18 >/dev/null 2>&1; then
    CLANG_FORMAT=clang-format-18
  else
    echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
    exit 1
  fi
fi

# tests/tools/fixtures/ is the privhp_lint corpus: its line numbers are
# asserted exactly by privhp_lint_test.py, so it is never reformatted.
mapfile -t files < <(find src tests bench examples tools \
  -path tests/tools/fixtures -prune -o \
  \( -name '*.cc' -o -name '*.h' \) -print | sort)

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
  echo "format OK (${#files[@]} files)"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
