// Resolves PrivHPOptions into the concrete parameters of Algorithm 1,
// following the settings used in the proof of Corollary 1.

#ifndef PRIVHP_CORE_PLANNER_H_
#define PRIVHP_CORE_PLANNER_H_

#include <string>

#include "core/options.h"
#include "domain/domain.h"
#include "dp/budget_allocator.h"

namespace privhp {

/// \brief Fully-resolved build parameters.
struct ResolvedPlan {
  double epsilon = 0.0;
  uint64_t k = 0;
  uint64_t n = 0;
  int l_star = 0;
  int l_max = 0;
  int grow_to = 0;
  uint64_t sketch_width = 0;
  uint64_t sketch_depth = 0;
  bool enforce_consistency = true;
  bool privacy_disabled = false;
  uint64_t seed = 0;

  /// Per-level sigma_l (empty when privacy_disabled).
  BudgetPlan budget;

  /// Theory memory target M = k * ceil(log2 n)^2 (words), for reports.
  uint64_t theory_memory_words = 0;

  /// \brief One-line description for logs and bench headers.
  std::string ToString() const;
};

/// \brief Computes the resolved plan for \p options over \p domain.
///
/// Auto-resolution (Corollary 1): L = ceil(log2(eps n)) clamped to
/// [1, domain.max_level()], j = ceil(log2 n), w = 2k,
/// L* = min(ceil(log2(k ceil(log2 n)^2)), L), grow_to = max(L-1, L*).
Result<ResolvedPlan> PlanParameters(const Domain& domain,
                                    const PrivHPOptions& options);

}  // namespace privhp

#endif  // PRIVHP_CORE_PLANNER_H_
