#include "core/queries.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/macros.h"

namespace privhp {

double CellMassFraction(const PartitionTree& tree, CellId cell) {
  const double total = tree.node(tree.root()).count;
  if (total <= 0.0) return 0.0;
  // Walk the bit path; if the tree ends above the cell, apportion the
  // leaf's mass uniformly across its descendants at the query level.
  NodeId id = tree.root();
  for (int l = 0; l < cell.level; ++l) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf()) {
      const int gap = cell.level - l;
      return n.count / total / std::ldexp(1.0, gap);
    }
    id = PrefixBit(cell.index, cell.level, l) ? n.right : n.left;
  }
  return tree.node(id).count / total;
}

Result<double> TreeQuantile(const PartitionTree& tree, double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must lie in [0, 1]");
  }
  if (tree.domain()->dimension() != 1) {
    return Status::InvalidArgument(
        "TreeQuantile requires a 1-dimensional domain");
  }
  const double total = tree.node(tree.root()).count;
  if (total <= 0.0) {
    return Status::FailedPrecondition("tree has no mass");
  }
  double target = q * total;
  NodeId id = tree.root();
  while (!tree.node(id).is_leaf()) {
    const TreeNode& n = tree.node(id);
    const double left_mass = tree.node(n.left).count;
    if (target <= left_mass) {
      id = n.left;
    } else {
      target -= left_mass;
      id = n.right;
    }
  }
  const TreeNode& leaf = tree.node(id);
  // Uniform-within-leaf: interpolate by the residual mass fraction.
  const double inside =
      leaf.count > 0.0 ? std::clamp(target / leaf.count, 0.0, 1.0) : 0.5;
  // Only 1-D domains reach here; recover the cell bounds from the
  // domain's deterministic center and diameter.
  const Point center = tree.domain()->CellCenter(leaf.cell.level,
                                                 leaf.cell.index);
  const double half = tree.domain()->CellDiameter(leaf.cell.level) / 2.0;
  return center[0] - half + inside * 2.0 * half;
}

Result<std::vector<double>> TreeQuantiles(const PartitionTree& tree,
                                          const std::vector<double>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    PRIVHP_ASSIGN_OR_RETURN(double value, TreeQuantile(tree, q));
    out.push_back(value);
  }
  return out;
}

Result<std::vector<HeavyCell>> HierarchicalHeavyHitters(
    const PartitionTree& tree, double threshold) {
  if (!(threshold > 0.0 && threshold <= 1.0)) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  const double total = tree.node(tree.root()).count;
  std::vector<HeavyCell> out;
  if (total <= 0.0) return out;

  // Depth-first: report a node iff it clears the threshold and no child
  // does (maximal depth <=> most specific heavy subdomain).
  tree.PreOrder([&](NodeId id) {
    const TreeNode& n = tree.node(id);
    const double fraction = n.count / total;
    if (fraction < threshold) return;
    bool child_heavy = false;
    if (!n.is_leaf()) {
      child_heavy = tree.node(n.left).count / total >= threshold ||
                    tree.node(n.right).count / total >= threshold;
    }
    if (!child_heavy) out.push_back(HeavyCell{n.cell, fraction});
  });
  std::sort(out.begin(), out.end(),
            [](const HeavyCell& a, const HeavyCell& b) {
              return a.fraction > b.fraction;
            });
  return out;
}

}  // namespace privhp
