#include "core/queries.h"

namespace privhp {

double CellMassFraction(const PartitionTree& tree, CellId cell) {
  return CellMassFractionOver(tree, cell);
}

Result<double> TreeQuantile(const PartitionTree& tree, double q) {
  return TreeQuantileOver(tree, q);
}

Result<std::vector<double>> TreeQuantiles(const PartitionTree& tree,
                                          const std::vector<double>& qs) {
  return TreeQuantilesOver(tree, qs);
}

Result<std::vector<HeavyCell>> HierarchicalHeavyHitters(
    const PartitionTree& tree, double threshold) {
  return HierarchicalHeavyHittersOver(tree, threshold);
}

}  // namespace privhp
