#include "core/shard.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace privhp {

uint64_t SketchHashSeed(uint64_t plan_seed, int level) {
  return Mix64(plan_seed ^
               (0x632be59bd9b4e019ULL + static_cast<uint64_t>(level)));
}

PrivHPShard::PrivHPShard(const Domain* domain, ResolvedPlan plan,
                         PartitionTree tree)
    : domain_(domain), plan_(std::move(plan)), tree_(std::move(tree)) {}

Result<PrivHPShard> PrivHPShard::Make(const Domain* domain,
                                      const ResolvedPlan& plan) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  PRIVHP_ASSIGN_OR_RETURN(PartitionTree tree,
                          PartitionTree::Complete(domain, plan.l_star));
  PrivHPShard shard(domain, plan, std::move(tree));
  shard.sketches_.reserve(plan.l_max - plan.l_star);
  for (int l = plan.l_star + 1; l <= plan.l_max; ++l) {
    PRIVHP_ASSIGN_OR_RETURN(
        CountMinSketch sketch,
        CountMinSketch::Make(plan.sketch_width, plan.sketch_depth,
                             SketchHashSeed(plan.seed, l)));
    shard.sketches_.push_back(std::move(sketch));
  }
  return shard;
}

Status PrivHPShard::Add(const Point& x) {
  PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  // Lines 10-15: one root-to-leaf path of counter increments and sketch
  // updates.
  domain_->LocatePath(x, plan_.l_max, &path_scratch_);
  for (int l = 0; l <= plan_.l_star; ++l) {
    tree_.node(CompleteNodeId(l, path_scratch_[l])).count += 1.0;
  }
  for (int l = plan_.l_star + 1; l <= plan_.l_max; ++l) {
    sketches_[l - plan_.l_star - 1].Update(path_scratch_[l], 1.0);
  }
  ++num_processed_;
  return Status::OK();
}

namespace {

// AddBatch chunk size: large enough that the per-chunk LocatePathBatch
// virtual call and the per-level loop overheads amortize away, small
// enough that the reused path matrix (kAddBatchChunk * (l_max+1) keys)
// stays a bounded scratch allocation no matter how large a batch is.
constexpr size_t kAddBatchChunk = 256;

}  // namespace

void PrivHPShard::ApplyChunk(const double* flat, size_t n) {
  // One virtual call locates the whole chunk, level-major: row l holds
  // the chunk's level-l cell keys contiguously.
  domain_->LocatePathBatch(flat, domain_->dimension(), n, plan_.l_max,
                           batch_scratch_.data());
  // Counter levels: each row's bumps land in one contiguous arena
  // stretch (level l occupies slots [2^l - 1, 2^{l+1} - 1)).
  for (int l = 0; l <= plan_.l_star; ++l) {
    const uint64_t* row = batch_scratch_.data() + static_cast<size_t>(l) * n;
    for (size_t i = 0; i < n; ++i) {
      tree_.node(CompleteNodeId(l, row[i])).count += 1.0;
    }
  }
  // Sketch levels: one row-major vectorizable update per level.
  for (int l = plan_.l_star + 1; l <= plan_.l_max; ++l) {
    sketches_[l - plan_.l_star - 1].UpdateBatch(
        batch_scratch_.data() + static_cast<size_t>(l) * n, n, 1.0);
  }
}

Status PrivHPShard::AddBatch(const PointBatch& batch) {
  const size_t count = batch.size();
  if (count == 0) return Status::OK();
  // Validate the whole batch before mutating anything, so a bad point
  // anywhere in the batch leaves the shard untouched instead of
  // half-mutated (the old AddRange bug). On box domains this is one
  // SIMD bounds scan over the arena.
  PRIVHP_RETURN_NOT_OK(domain_->ValidateBatch(batch));
  const size_t levels = static_cast<size_t>(plan_.l_max) + 1;
  batch_scratch_.resize(std::min(count, kAddBatchChunk) * levels);
  const size_t d = static_cast<size_t>(batch.dim());
  for (size_t base = 0; base < count; base += kAddBatchChunk) {
    const size_t n = std::min(kAddBatchChunk, count - base);
    ApplyChunk(batch.data() + base * d, n);
  }
  num_processed_ += count;
  return Status::OK();
}

Status PrivHPShard::AddBatch(const Point* points, size_t count) {
  if (count == 0) return Status::OK();
  if (points == nullptr) {
    return Status::InvalidArgument("AddBatch requires points");
  }
  // Same all-or-nothing contract as the columnar form: validate every
  // point up front, then stage chunks into the reused arena and run the
  // identical flat path (one locate/update implementation for all batch
  // flavours).
  PRIVHP_RETURN_NOT_OK(domain_->ValidateBatch(points, count));
  const size_t levels = static_cast<size_t>(plan_.l_max) + 1;
  batch_scratch_.resize(std::min(count, kAddBatchChunk) * levels);
  stage_.Reset(domain_->dimension());
  stage_.Reserve(std::min(count, kAddBatchChunk));
  for (size_t base = 0; base < count; base += kAddBatchChunk) {
    const size_t n = std::min(kAddBatchChunk, count - base);
    stage_.Clear();
    for (size_t i = 0; i < n; ++i) stage_.AppendPoint(points[base + i]);
    ApplyChunk(stage_.data(), n);
  }
  num_processed_ += count;
  return Status::OK();
}

Status PrivHPShard::AddAll(const std::vector<Point>& points) {
  return AddBatch(points.data(), points.size());
}

Status PrivHPShard::AddRange(const std::vector<Point>& points, size_t begin,
                             size_t end) {
  if (begin > end || end > points.size()) {
    return Status::OutOfRange("AddRange bounds [" + std::to_string(begin) +
                              ", " + std::to_string(end) +
                              ") exceed dataset of size " +
                              std::to_string(points.size()));
  }
  return AddBatch(points.data() + begin, end - begin);
}

Status PrivHPShard::Merge(PrivHPShard&& other) {
  if (other.domain_ != domain_) {
    return Status::InvalidArgument(
        "cannot merge shards over different domains");
  }
  if (other.plan_.seed != plan_.seed || other.plan_.l_star != plan_.l_star ||
      other.plan_.l_max != plan_.l_max ||
      other.plan_.sketch_width != plan_.sketch_width ||
      other.plan_.sketch_depth != plan_.sketch_depth) {
    return Status::InvalidArgument(
        "cannot merge shards built from different plans (" +
        plan_.ToString() + " vs " + other.plan_.ToString() + ")");
  }
  PRIVHP_RETURN_NOT_OK(tree_.MergeCounts(other.tree_));
  PRIVHP_DCHECK(sketches_.size() == other.sketches_.size());
  for (size_t i = 0; i < sketches_.size(); ++i) {
    PRIVHP_RETURN_NOT_OK(sketches_[i].Merge(other.sketches_[i]));
  }
  num_processed_ += other.num_processed_;
  return Status::OK();
}

size_t PrivHPShard::MemoryBytes() const {
  size_t bytes = tree_.MemoryBytes();
  for (const CountMinSketch& s : sketches_) bytes += s.MemoryBytes();
  return bytes;
}

}  // namespace privhp
