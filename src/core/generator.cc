#include "core/generator.h"

#include "common/macros.h"
#include "hierarchy/tree_serialization.h"

namespace privhp {

PrivHPGenerator::PrivHPGenerator(PartitionTree tree, ResolvedPlan plan)
    : tree_(std::move(tree)), plan_(std::move(plan)), sampler_(tree_) {}

std::vector<Point> PrivHPGenerator::Generate(size_t m,
                                             RandomEngine* rng) const {
  return sampler_.SampleBatch(m, rng);
}

Status PrivHPGenerator::GenerateTo(size_t m, RandomEngine* rng,
                                   PointSink* sink) const {
  return sampler_.GenerateTo(m, rng, sink);
}

Status PrivHPGenerator::Save(const std::string& path) const {
  return SaveTreeToFile(tree_, path);
}

Result<PrivHPGenerator> PrivHPGenerator::Load(const Domain* domain,
                                              const std::string& path) {
  PRIVHP_ASSIGN_OR_RETURN(PartitionTree loaded,
                          LoadTreeFromFile(domain, path));
  ResolvedPlan plan;  // A loaded artifact carries no build metadata.
  plan.l_max = loaded.MaxDepth();
  plan.grow_to = loaded.MaxDepth();
  return PrivHPGenerator(std::move(loaded), std::move(plan));
}

}  // namespace privhp
