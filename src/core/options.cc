#include "core/options.h"

namespace privhp {

Status PrivHPOptions::Validate() const {
  if (!disable_privacy_for_ablation && epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (k == 0) {
    return Status::InvalidArgument("pruning parameter k must be >= 1");
  }
  if (expected_n == 0) {
    return Status::InvalidArgument(
        "expected_n must be set (PrivHP sizes its hierarchy and sketches "
        "from the stream horizon)");
  }
  if (l_star >= 0 && l_max >= 0 && l_star > l_max) {
    return Status::InvalidArgument("l_star must be <= l_max");
  }
  if (grow_to >= 0) {
    if (l_star >= 0 && grow_to < l_star) {
      return Status::InvalidArgument("grow_to must be >= l_star");
    }
    if (l_max >= 0 && grow_to > l_max) {
      return Status::InvalidArgument("grow_to must be <= l_max");
    }
  }
  return Status::OK();
}

}  // namespace privhp
