// Downstream analytics evaluated directly on a released PrivHP tree.
//
// Sampling synthetic data is one way to consume the generator; these
// helpers answer common query classes *exactly* with respect to the
// tree's distribution, skipping the sampling error. All of them are
// deterministic post-processing of the eps-DP artifact (Lemma 2), so
// they are free of additional privacy cost. They cover the workloads the
// paper positions itself against: range counting (fixed-query summaries),
// quantiles (Alabi et al.), and (hierarchical) heavy hitters
// (Biswas et al.).
//
// Each query exists in two forms: a generic `...Over` template over any
// TreeLike — a type exposing root()/num_nodes()/domain() and
// node(NodeId) with TreeNode's fields, by value or reference — and the
// PartitionTree wrappers below. The paged storage tier
// (storage/paged_artifact.h) runs the *same templates* over its in-place
// on-disk view, which is what makes paged query results bit-identical to
// the heap path: there is only one implementation to diverge from.
// Walks are step-capped at num_nodes() so a corrupt on-disk view can
// never loop a server worker forever; a well-formed tree never hits the
// cap.

#ifndef PRIVHP_CORE_QUERIES_H_
#define PRIVHP_CORE_QUERIES_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief A heavy-hitter cell: a subdomain holding at least a
/// `threshold` fraction of the tree's mass, maximal in depth (its
/// children, if present, both fall below the threshold).
struct HeavyCell {
  CellId cell;
  double fraction = 0.0;
};

/// \brief Generic CellMassFraction over any TreeLike (see file comment).
template <typename TreeLike>
double CellMassFractionOver(const TreeLike& tree, CellId cell) {
  const double total = tree.node(tree.root()).count;
  if (total <= 0.0) return 0.0;
  // Walk the bit path; if the tree ends above the cell, apportion the
  // leaf's mass uniformly across its descendants at the query level.
  NodeId id = tree.root();
  for (int l = 0; l < cell.level; ++l) {
    const auto& n = tree.node(id);
    if (n.is_leaf()) {
      const int gap = cell.level - l;
      return n.count / total / std::ldexp(1.0, gap);
    }
    id = PrefixBit(cell.index, cell.level, l) ? n.right : n.left;
  }
  return tree.node(id).count / total;
}

/// \brief Generic TreeQuantile over any TreeLike.
template <typename TreeLike>
Result<double> TreeQuantileOver(const TreeLike& tree, double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("quantile must lie in [0, 1]");
  }
  if (tree.domain()->dimension() != 1) {
    return Status::InvalidArgument(
        "TreeQuantile requires a 1-dimensional domain");
  }
  const double total = tree.node(tree.root()).count;
  if (total <= 0.0) {
    return Status::FailedPrecondition("tree has no mass");
  }
  double target = q * total;
  NodeId id = tree.root();
  auto node = tree.node(id);
  for (uint64_t steps = 0; !node.is_leaf(); ++steps) {
    if (steps > tree.num_nodes()) {
      return Status::IOError("quantile walk did not terminate "
                             "(corrupt tree structure)");
    }
    const double left_mass = tree.node(node.left).count;
    if (target <= left_mass) {
      id = node.left;
    } else {
      target -= left_mass;
      id = node.right;
    }
    node = tree.node(id);
  }
  // Uniform-within-leaf: interpolate by the residual mass fraction.
  const double inside =
      node.count > 0.0 ? std::clamp(target / node.count, 0.0, 1.0) : 0.5;
  // Only 1-D domains reach here; recover the cell bounds from the
  // domain's deterministic center and diameter.
  const Point center = tree.domain()->CellCenter(node.cell.level,
                                                 node.cell.index);
  const double half = tree.domain()->CellDiameter(node.cell.level) / 2.0;
  return center[0] - half + inside * 2.0 * half;
}

/// \brief Generic TreeQuantiles over any TreeLike.
template <typename TreeLike>
Result<std::vector<double>> TreeQuantilesOver(const TreeLike& tree,
                                              const std::vector<double>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    Result<double> value = TreeQuantileOver(tree, q);
    if (!value.ok()) return value.status();
    out.push_back(*value);
  }
  return out;
}

/// \brief Generic HierarchicalHeavyHitters over any TreeLike. The walk
/// replicates PartitionTree::PreOrder exactly (pop, visit, push right
/// then left), so report order — and therefore the wire bytes — cannot
/// depend on which representation served the query.
template <typename TreeLike>
Result<std::vector<HeavyCell>> HierarchicalHeavyHittersOver(
    const TreeLike& tree, double threshold) {
  if (!(threshold > 0.0 && threshold <= 1.0)) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  const double total = tree.node(tree.root()).count;
  std::vector<HeavyCell> out;
  if (total <= 0.0) return out;

  // Depth-first: report a node iff it clears the threshold and no child
  // does (maximal depth <=> most specific heavy subdomain).
  std::vector<NodeId> stack;
  stack.push_back(tree.root());
  uint64_t visited = 0;
  while (!stack.empty()) {
    if (++visited > tree.num_nodes()) {
      return Status::IOError("heavy-hitter walk did not terminate "
                             "(corrupt tree structure)");
    }
    const NodeId id = stack.back();
    stack.pop_back();
    const auto& n = tree.node(id);
    const double fraction = n.count / total;
    bool child_heavy = false;
    if (!n.is_leaf()) {
      stack.push_back(n.right);
      stack.push_back(n.left);
      if (fraction >= threshold) {
        child_heavy = tree.node(n.left).count / total >= threshold ||
                      tree.node(n.right).count / total >= threshold;
      }
    }
    if (fraction >= threshold && !child_heavy) {
      out.push_back(HeavyCell{{n.cell.level, n.cell.index}, fraction});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HeavyCell& a, const HeavyCell& b) {
              return a.fraction > b.fraction;
            });
  return out;
}

/// \brief Estimated fraction of the distribution inside cell
/// (level, index). Mass of leaves above the cell is apportioned by the
/// uniform-within-leaf convention; a zero-mass tree returns 0.
double CellMassFraction(const PartitionTree& tree, CellId cell);

/// \brief The q-quantile (q in [0,1]) of the tree's 1-D distribution:
/// walks the tree by mass and interpolates uniformly within the final
/// leaf. Requires a 1-dimensional domain.
Result<double> TreeQuantile(const PartitionTree& tree, double q);

/// \brief Several quantiles at once (each q in [0,1], any order).
Result<std::vector<double>> TreeQuantiles(const PartitionTree& tree,
                                          const std::vector<double>& qs);

/// \brief Hierarchical heavy hitters: the deepest tree cells whose mass
/// fraction is >= \p threshold (0 < threshold <= 1), in decreasing
/// fraction order. For the IPv4 domain these are exactly the heavy CIDR
/// blocks of Biswas et al.'s problem.
Result<std::vector<HeavyCell>> HierarchicalHeavyHitters(
    const PartitionTree& tree, double threshold);

}  // namespace privhp

#endif  // PRIVHP_CORE_QUERIES_H_
