// Downstream analytics evaluated directly on a released PrivHP tree.
//
// Sampling synthetic data is one way to consume the generator; these
// helpers answer common query classes *exactly* with respect to the
// tree's distribution, skipping the sampling error. All of them are
// deterministic post-processing of the eps-DP artifact (Lemma 2), so
// they are free of additional privacy cost. They cover the workloads the
// paper positions itself against: range counting (fixed-query summaries),
// quantiles (Alabi et al.), and (hierarchical) heavy hitters
// (Biswas et al.).

#ifndef PRIVHP_CORE_QUERIES_H_
#define PRIVHP_CORE_QUERIES_H_

#include <vector>

#include "common/status.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Estimated fraction of the distribution inside cell
/// (level, index). Mass of leaves above the cell is apportioned by the
/// uniform-within-leaf convention; a zero-mass tree returns 0.
double CellMassFraction(const PartitionTree& tree, CellId cell);

/// \brief The q-quantile (q in [0,1]) of the tree's 1-D distribution:
/// walks the tree by mass and interpolates uniformly within the final
/// leaf. Requires a 1-dimensional domain.
Result<double> TreeQuantile(const PartitionTree& tree, double q);

/// \brief Several quantiles at once (each q in [0,1], any order).
Result<std::vector<double>> TreeQuantiles(const PartitionTree& tree,
                                          const std::vector<double>& qs);

/// \brief A heavy-hitter cell: a subdomain holding at least a
/// `threshold` fraction of the tree's mass, maximal in depth (its
/// children, if present, both fall below the threshold).
struct HeavyCell {
  CellId cell;
  double fraction = 0.0;
};

/// \brief Hierarchical heavy hitters: the deepest tree cells whose mass
/// fraction is >= \p threshold (0 < threshold <= 1), in decreasing
/// fraction order. For the IPv4 domain these are exactly the heavy CIDR
/// blocks of Biswas et al.'s problem.
Result<std::vector<HeavyCell>> HierarchicalHeavyHitters(
    const PartitionTree& tree, double threshold);

}  // namespace privhp

#endif  // PRIVHP_CORE_QUERIES_H_
