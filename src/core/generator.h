// The released synthetic-data generator T_PrivHP (paper Section 5).
//
// Owns the final pruned, consistent decomposition tree. Everything here is
// post-processing of an eps-DP artifact (Lemma 2), so a generator can be
// sampled, saved, reloaded and queried indefinitely at no further privacy
// cost.

#ifndef PRIVHP_CORE_GENERATOR_H_
#define PRIVHP_CORE_GENERATOR_H_

#include <string>
#include <vector>

#include "core/planner.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/partition_tree.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief eps-DP synthetic data generator backed by a decomposition tree.
///
/// The sampling distribution is compiled once at construction into an
/// alias table (hierarchy/compiled_sampler.h), so every Sample /
/// Generate / GenerateTo call is O(1) per point — repeated sampling
/// never rebuilds sampler state, and every holder of the generator
/// (including every concurrent SAMPLE request pinning a ServedArtifact)
/// shares the one compiled table.
class PrivHPGenerator {
 public:
  /// \param tree Final consistent tree (moved in).
  /// \param plan The resolved build parameters (for reports).
  PrivHPGenerator(PartitionTree tree, ResolvedPlan plan);

  /// \brief One synthetic point.
  Point Sample(RandomEngine* rng) const { return sampler_.Sample(rng); }

  /// \brief \p m synthetic points (the dataset Y of the problem statement).
  std::vector<Point> Generate(size_t m, RandomEngine* rng) const;

  /// \brief \p m synthetic points into a columnar batch (cleared first)
  /// — the zero-allocation sampling hot path.
  Status GenerateBatch(size_t m, RandomEngine* rng, PointBatch* out) const {
    return sampler_.SampleTo(m, rng, out);
  }

  /// \brief Streams \p m synthetic points into \p sink without
  /// materializing them — the serve-side dual of the bounded-memory
  /// builder (a CSV writer or socket sink keeps the footprint O(1) in m).
  /// Points travel in reused columnar chunks through
  /// PointSink::AddAll(PointBatch), and the sequence is identical to
  /// Generate() for a given rng state.
  Status GenerateTo(size_t m, RandomEngine* rng, PointSink* sink) const;

  /// \brief The compiled sampling distribution (shared hot path).
  const CompiledSampler& sampler() const { return sampler_; }

  /// \brief The underlying tree (the private artifact itself).
  const PartitionTree& tree() const { return tree_; }

  /// \brief Build parameters used.
  const ResolvedPlan& plan() const { return plan_; }

  /// \brief Total (noisy) mass at the root.
  double TotalMass() const { return tree_.node(tree_.root()).count; }

  /// \brief Bytes held by the released artifact.
  size_t MemoryBytes() const { return tree_.MemoryBytes(); }

  /// \brief Persists the tree. Load() with the same domain restores a
  /// generator that samples the identical distribution.
  Status Save(const std::string& path) const;
  static Result<PrivHPGenerator> Load(const Domain* domain,
                                      const std::string& path);

 private:
  PartitionTree tree_;
  ResolvedPlan plan_;
  // Compiled from tree_ at construction. Self-contained (holds no
  // pointer into the tree arena, only the stable Domain pointer), so the
  // generator stays freely movable and copyable.
  CompiledSampler sampler_;
};

}  // namespace privhp

#endif  // PRIVHP_CORE_GENERATOR_H_
