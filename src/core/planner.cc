#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/table_printer.h"

namespace privhp {

std::string ResolvedPlan::ToString() const {
  std::string s = "PrivHP plan: eps=" + TablePrinter::FormatNumber(epsilon) +
                  " k=" + std::to_string(k) + " n=" + std::to_string(n) +
                  " L*=" + std::to_string(l_star) +
                  " L=" + std::to_string(l_max) +
                  " grow_to=" + std::to_string(grow_to) +
                  " sketch=" + std::to_string(sketch_width) + "x" +
                  std::to_string(sketch_depth) +
                  " M_theory=" + std::to_string(theory_memory_words) + "w";
  if (privacy_disabled) s += " [PRIVACY DISABLED]";
  if (!enforce_consistency) s += " [NO CONSISTENCY]";
  return s;
}

Result<ResolvedPlan> PlanParameters(const Domain& domain,
                                    const PrivHPOptions& options) {
  PRIVHP_RETURN_NOT_OK(options.Validate());

  ResolvedPlan plan;
  plan.epsilon = options.epsilon;
  plan.k = options.k;
  plan.n = options.expected_n;
  plan.enforce_consistency = options.enforce_consistency;
  plan.privacy_disabled = options.disable_privacy_for_ablation;
  plan.seed = options.seed;

  const int log_n = CeilLog2(std::max<uint64_t>(2, options.expected_n));

  // L = ceil(log2(eps n)) (Corollary 1), clamped to the domain and to a
  // depth where a complete L*-tree stays small.
  if (options.l_max >= 0) {
    plan.l_max = options.l_max;
  } else {
    const double eps_n = std::max(
        2.0, options.epsilon * static_cast<double>(options.expected_n));
    plan.l_max = CeilLog2(static_cast<uint64_t>(std::llround(eps_n)));
  }
  plan.l_max = std::clamp(plan.l_max, 1, domain.max_level());

  // j = ceil(log2 n), w = 2k (Theorem 3 / Corollary 1).
  plan.sketch_depth = options.sketch_depth > 0
                          ? options.sketch_depth
                          : static_cast<uint64_t>(std::max(1, log_n));
  plan.sketch_width = options.sketch_width > 0 ? options.sketch_width
                                               : 2 * options.k;

  // M = k * ceil(log2 n)^2 words; L* = ceil(log2 M), clamped into [0, L].
  plan.theory_memory_words =
      options.k * static_cast<uint64_t>(log_n) * static_cast<uint64_t>(log_n);
  if (options.l_star >= 0) {
    plan.l_star = options.l_star;
  } else {
    plan.l_star = CeilLog2(std::max<uint64_t>(2, plan.theory_memory_words));
  }
  plan.l_star = std::clamp(plan.l_star, 0, plan.l_max);
  if (plan.l_star > 24) {
    return Status::OutOfRange(
        "resolved l_star=" + std::to_string(plan.l_star) +
        " would allocate a 2^" + std::to_string(plan.l_star + 1) +
        "-node complete tree; pass an explicit l_star");
  }

  // Algorithm 2 grows to L-1 (its loop runs to L-1); never above l_star.
  if (options.grow_to >= 0) {
    plan.grow_to = options.grow_to;
  } else {
    plan.grow_to = std::max(plan.l_max - 1, plan.l_star);
  }
  if (plan.grow_to < plan.l_star || plan.grow_to > plan.l_max) {
    return Status::InvalidArgument("grow_to must lie in [l_star, l_max]");
  }

  if (!plan.privacy_disabled) {
    PRIVHP_ASSIGN_OR_RETURN(
        plan.budget,
        AllocateBudget(domain, plan.epsilon, plan.l_star, plan.l_max, plan.k,
                       plan.sketch_depth, options.budget_policy));
  }
  return plan;
}

}  // namespace privhp
