#include "core/builder.h"

#include <algorithm>
#include <deque>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/sync.h"
#include "hierarchy/grow_partition.h"
#include "sketch/private_sketch.h"

namespace privhp {

namespace {

// Adapts the per-level private sketches to GrowPartition's interface.
class SketchLevelSource : public LevelFrequencySource {
 public:
  SketchLevelSource(const std::vector<PrivateCountMinSketch>* sketches,
                    int l_star)
      : sketches_(sketches), l_star_(l_star) {}

  double Query(int level, uint64_t index) const override {
    PRIVHP_DCHECK(level > l_star_);
    PRIVHP_DCHECK(static_cast<size_t>(level - l_star_ - 1) <
                  sketches_->size());
    return (*sketches_)[level - l_star_ - 1].Estimate(index);
  }

 private:
  const std::vector<PrivateCountMinSketch>* sketches_;
  int l_star_;
};

}  // namespace

PrivHPBuilder::PrivHPBuilder(const Domain* domain, ResolvedPlan plan,
                             PrivHPShard root)
    : domain_(domain),
      plan_(std::move(plan)),
      root_(std::move(root)),
      rng_(plan_.seed) {}

Result<PrivHPBuilder> PrivHPBuilder::Make(const Domain* domain,
                                          const PrivHPOptions& options) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  PRIVHP_ASSIGN_OR_RETURN(ResolvedPlan plan,
                          PlanParameters(*domain, options));
  PRIVHP_ASSIGN_OR_RETURN(PrivHPShard root, PrivHPShard::Make(domain, plan));
  PrivHPBuilder builder(domain, std::move(plan), std::move(root));
  PRIVHP_RETURN_NOT_OK(builder.ChargeAccountant());
  return builder;
}

Status PrivHPBuilder::ChargeAccountant() {
  const ResolvedPlan& p = plan_;
  PRIVHP_ASSIGN_OR_RETURN(
      accountant_,
      [&]() -> Result<std::unique_ptr<PrivacyAccountant>> {
        PRIVHP_ASSIGN_OR_RETURN(
            PrivacyAccountant acc,
            PrivacyAccountant::Make(p.privacy_disabled ? 1.0 : p.epsilon));
        return std::make_unique<PrivacyAccountant>(std::move(acc));
      }());
  if (p.privacy_disabled) return Status::OK();
  // The whole budget is committed up-front (Lines 2-8): one charge per
  // counter level and per sketch level, even though the corresponding
  // noise is only materialized at Finish().
  for (int l = 0; l <= p.l_star; ++l) {
    PRIVHP_RETURN_NOT_OK(accountant_->Charge(
        p.budget.sigma[l], "counters level " + std::to_string(l)));
  }
  for (int l = p.l_star + 1; l <= p.l_max; ++l) {
    PRIVHP_RETURN_NOT_OK(accountant_->Charge(
        p.budget.sigma[l], "sketch level " + std::to_string(l)));
  }
  return Status::OK();
}

Status PrivHPBuilder::Add(const Point& x) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  return root_.Add(x);
}

Status PrivHPBuilder::AddAll(const std::vector<Point>& points) {
  return AddBatch(points.data(), points.size());
}

Status PrivHPBuilder::AddAll(const PointBatch& batch) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  return root_.AddBatch(batch);
}

Status PrivHPBuilder::AddBatch(const Point* points, size_t count) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  return root_.AddBatch(points, count);
}

Result<PrivHPShard> PrivHPBuilder::NewShard() const {
  return PrivHPShard::Make(domain_, plan_);
}

Status PrivHPBuilder::AbsorbShard(PrivHPShard&& shard) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  return root_.Merge(std::move(shard));
}

Result<PrivHPGenerator> PrivHPBuilder::Finish() && {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  finished_ = true;
  const ResolvedPlan& p = plan_;
  PartitionTree tree = std::move(root_.tree_);
  std::vector<CountMinSketch> bases = std::move(root_.sketches_);

  // Privatization: the per-level Laplace noise of Lines 2-8, applied
  // exactly once over the merged exact state. Draw order (counter levels
  // in index order, then sketch cells row-major per level) is fixed by
  // the plan seed alone, so the release is deterministic in the seed and
  // independent of how many shards fed the build.
  if (!p.privacy_disabled) {
    for (int l = 0; l <= p.l_star; ++l) {
      const double sigma = p.budget.sigma[l];
      const uint64_t level_size = uint64_t{1} << l;
      for (uint64_t i = 0; i < level_size; ++i) {
        tree.node(CompleteNodeId(l, i)).count += rng_.Laplace(1.0 / sigma);
      }
    }
  }
  std::vector<PrivateCountMinSketch> sketches;
  sketches.reserve(bases.size());
  for (int l = p.l_star + 1; l <= p.l_max; ++l) {
    const double sigma = p.privacy_disabled ? 0.0 : p.budget.sigma[l];
    PRIVHP_ASSIGN_OR_RETURN(
        PrivateCountMinSketch sketch,
        PrivateCountMinSketch::Privatize(
            std::move(bases[l - p.l_star - 1]), sigma, &rng_));
    sketches.push_back(std::move(sketch));
  }
  bases.clear();

  // Line 16: grow the partition from the sketches (Algorithm 2).
  SketchLevelSource source(&sketches, p.l_star);
  GrowOptions grow;
  grow.k = p.k;
  grow.l_star = p.l_star;
  grow.grow_to = p.grow_to;
  grow.enforce_consistency = p.enforce_consistency;
  PRIVHP_RETURN_NOT_OK(GrowPartition(&tree, source, grow));
  return PrivHPGenerator(std::move(tree), plan_);
}

size_t PrivHPBuilder::MemoryBytes() const {
  return memory_breakdown().total_bytes;
}

PrivHPBuilder::MemoryBreakdown PrivHPBuilder::memory_breakdown() const {
  MemoryBreakdown mb;
  mb.tree_bytes = root_.tree().MemoryBytes();
  for (const auto& s : root_.sketches()) mb.sketch_bytes += s.MemoryBytes();
  mb.total_bytes = mb.tree_bytes + mb.sketch_bytes;
  return mb;
}

Result<PrivHPGenerator> PrivHPBuilder::BuildParallel(
    const Domain* domain, const PrivHPOptions& options, PointSource* source,
    int num_threads) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PRIVHP_ASSIGN_OR_RETURN(PrivHPBuilder builder, Make(domain, options));
  if (num_threads == 1) {
    PRIVHP_RETURN_NOT_OK(Drain(source, &builder));
    return std::move(builder).Finish();
  }

  std::vector<PrivHPShard> shards;
  shards.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    PRIVHP_ASSIGN_OR_RETURN(PrivHPShard shard, builder.NewShard());
    shards.push_back(std::move(shard));
  }

  // Single reader (the source is sequential), bounded batch queue, one
  // worker per shard. The reader pulls whole batches (NextBatch), so a
  // framed source's decoded frames go into the queue as-is — no
  // per-point re-staging — and each worker feeds its batch straight
  // into the shard's AddBatch. Any worker failure drains the queue and
  // stops the reader; the first error wins.
  constexpr size_t kBatchSize = 512;
  const size_t max_queued = static_cast<size_t>(num_threads) * 4;
  // Local pipeline state, all guarded by mu (locals cannot carry
  // GUARDED_BY, so the waits below are explicit while loops by the
  // sync.h convention and every access stays visibly under a MutexLock).
  Mutex mu;
  CondVar batch_ready;
  CondVar slot_ready;
  std::deque<PointBatch> queue;
  bool done = false;
  bool failed = false;
  Status worker_error;

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t]() {
      PrivHPShard& shard = shards[t];
      for (;;) {
        PointBatch batch;
        {
          MutexLock lock(mu);
          while (!failed && !done && queue.empty()) batch_ready.Wait(mu);
          if (failed || queue.empty()) return;
          batch = std::move(queue.front());
          queue.pop_front();
          slot_ready.NotifyOne();
        }
        const Status added = shard.AddBatch(batch);
        if (!added.ok()) {
          MutexLock lock(mu);
          if (!failed) {
            failed = true;
            worker_error = added;
          }
          batch_ready.NotifyAll();
          slot_ready.NotifyAll();
          return;
        }
      }
    });
  }

  Status read_error;
  {
    PointBatch batch;
    for (;;) {
      Result<size_t> next = source->NextBatch(kBatchSize, &batch);
      if (!next.ok()) {
        read_error = next.status();
        break;
      }
      if (*next == 0) break;
      MutexLock lock(mu);
      while (!failed && queue.size() >= max_queued) slot_ready.Wait(mu);
      if (failed) break;
      queue.push_back(std::move(batch));
      batch = PointBatch();
      batch_ready.NotifyOne();
    }
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  batch_ready.NotifyAll();
  for (std::thread& w : workers) w.join();
  if (!read_error.ok()) return read_error;
  if (failed) return worker_error;

  for (PrivHPShard& shard : shards) {
    PRIVHP_RETURN_NOT_OK(builder.AbsorbShard(std::move(shard)));
  }
  return std::move(builder).Finish();
}

Result<PrivHPGenerator> PrivHPBuilder::BuildParallel(
    const Domain* domain, const PrivHPOptions& options,
    const std::vector<Point>& points, int num_threads) {
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PRIVHP_ASSIGN_OR_RETURN(PrivHPBuilder builder, Make(domain, options));
  if (num_threads == 1 || points.size() < 2) {
    PRIVHP_RETURN_NOT_OK(builder.AddAll(points));
    return std::move(builder).Finish();
  }
  const size_t threads =
      std::min(static_cast<size_t>(num_threads), points.size());

  std::vector<PrivHPShard> shards;
  shards.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    PRIVHP_ASSIGN_OR_RETURN(PrivHPShard shard, builder.NewShard());
    shards.push_back(std::move(shard));
  }

  // Contiguous slices, one per worker; no queue, no copies.
  std::vector<Status> results(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const size_t chunk = (points.size() + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = std::min(t * chunk, points.size());
    const size_t end = std::min(begin + chunk, points.size());
    workers.emplace_back([&, t, begin, end]() {
      results[t] = shards[t].AddRange(points, begin, end);
    });
  }
  for (std::thread& w : workers) w.join();
  for (const Status& s : results) PRIVHP_RETURN_NOT_OK(s);

  for (PrivHPShard& shard : shards) {
    PRIVHP_RETURN_NOT_OK(builder.AbsorbShard(std::move(shard)));
  }
  return std::move(builder).Finish();
}

}  // namespace privhp
