#include "core/builder.h"

#include "common/macros.h"
#include "hierarchy/grow_partition.h"

namespace privhp {

namespace {

// Arena id of (level, index) in a complete BFS-built tree: level l
// occupies slots [2^l - 1, 2^{l+1} - 1).
inline NodeId CompleteNodeId(int level, uint64_t index) {
  return static_cast<NodeId>(((uint64_t{1} << level) - 1) + index);
}

// Adapts the per-level private sketches to GrowPartition's interface.
class SketchLevelSource : public LevelFrequencySource {
 public:
  SketchLevelSource(const std::vector<PrivateCountMinSketch>* sketches,
                    int l_star)
      : sketches_(sketches), l_star_(l_star) {}

  double Query(int level, uint64_t index) const override {
    PRIVHP_DCHECK(level > l_star_);
    PRIVHP_DCHECK(static_cast<size_t>(level - l_star_ - 1) <
                  sketches_->size());
    return (*sketches_)[level - l_star_ - 1].Estimate(index);
  }

 private:
  const std::vector<PrivateCountMinSketch>* sketches_;
  int l_star_;
};

}  // namespace

PrivHPBuilder::PrivHPBuilder(const Domain* domain, ResolvedPlan plan)
    : domain_(domain),
      plan_(std::move(plan)),
      tree_(domain),
      rng_(plan_.seed) {}

Result<PrivHPBuilder> PrivHPBuilder::Make(const Domain* domain,
                                          const PrivHPOptions& options) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  PRIVHP_ASSIGN_OR_RETURN(ResolvedPlan plan,
                          PlanParameters(*domain, options));
  PrivHPBuilder builder(domain, std::move(plan));
  PRIVHP_RETURN_NOT_OK(builder.Init());
  return builder;
}

Status PrivHPBuilder::Init() {
  const ResolvedPlan& p = plan_;
  PRIVHP_ASSIGN_OR_RETURN(
      accountant_,
      [&]() -> Result<std::unique_ptr<PrivacyAccountant>> {
        PRIVHP_ASSIGN_OR_RETURN(
            PrivacyAccountant acc,
            PrivacyAccountant::Make(p.privacy_disabled ? 1.0 : p.epsilon));
        return std::make_unique<PrivacyAccountant>(std::move(acc));
      }());

  // Lines 2-6: complete counter tree of depth L*, Laplace(1/sigma_l) per
  // node.
  PRIVHP_ASSIGN_OR_RETURN(tree_, PartitionTree::Complete(domain_, p.l_star));
  if (!p.privacy_disabled) {
    for (int l = 0; l <= p.l_star; ++l) {
      const double sigma = p.budget.sigma[l];
      PRIVHP_RETURN_NOT_OK(
          accountant_->Charge(sigma, "counters level " + std::to_string(l)));
      const uint64_t level_size = uint64_t{1} << l;
      for (uint64_t i = 0; i < level_size; ++i) {
        tree_.node(CompleteNodeId(l, i)).count = rng_.Laplace(1.0 / sigma);
      }
    }
  }

  // Lines 7-8: one private sketch per level L*+1..L with noise
  // Laplace(j / sigma_l) per cell.
  sketches_.reserve(p.l_max - p.l_star);
  for (int l = p.l_star + 1; l <= p.l_max; ++l) {
    const double sigma = p.privacy_disabled ? 0.0 : p.budget.sigma[l];
    if (!p.privacy_disabled) {
      PRIVHP_RETURN_NOT_OK(
          accountant_->Charge(sigma, "sketch level " + std::to_string(l)));
    }
    const uint64_t hash_seed =
        Mix64(p.seed ^ (0x632be59bd9b4e019ULL + static_cast<uint64_t>(l)));
    PRIVHP_ASSIGN_OR_RETURN(
        PrivateCountMinSketch sketch,
        PrivateCountMinSketch::Make(p.sketch_width, p.sketch_depth, sigma,
                                    hash_seed, &rng_));
    sketches_.push_back(std::move(sketch));
  }
  return Status::OK();
}

Status PrivHPBuilder::Add(const Point& x) {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  PRIVHP_RETURN_NOT_OK(domain_->ValidatePoint(x));
  // Lines 10-15: one root-to-leaf path of counter increments and sketch
  // updates.
  domain_->LocatePath(x, plan_.l_max, &path_scratch_);
  for (int l = 0; l <= plan_.l_star; ++l) {
    tree_.node(CompleteNodeId(l, path_scratch_[l])).count += 1.0;
  }
  for (int l = plan_.l_star + 1; l <= plan_.l_max; ++l) {
    sketches_[l - plan_.l_star - 1].Update(path_scratch_[l], 1.0);
  }
  ++num_processed_;
  return Status::OK();
}

Status PrivHPBuilder::AddAll(const std::vector<Point>& points) {
  for (const Point& x : points) PRIVHP_RETURN_NOT_OK(Add(x));
  return Status::OK();
}

Result<PrivHPGenerator> PrivHPBuilder::Finish() && {
  if (finished_) {
    return Status::FailedPrecondition("builder already finished");
  }
  finished_ = true;
  // Line 16: grow the partition from the sketches (Algorithm 2).
  SketchLevelSource source(&sketches_, plan_.l_star);
  GrowOptions grow;
  grow.k = plan_.k;
  grow.l_star = plan_.l_star;
  grow.grow_to = plan_.grow_to;
  grow.enforce_consistency = plan_.enforce_consistency;
  PRIVHP_RETURN_NOT_OK(GrowPartition(&tree_, source, grow));
  sketches_.clear();
  return PrivHPGenerator(std::move(tree_), plan_);
}

size_t PrivHPBuilder::MemoryBytes() const {
  return memory_breakdown().total_bytes;
}

PrivHPBuilder::MemoryBreakdown PrivHPBuilder::memory_breakdown() const {
  MemoryBreakdown mb;
  mb.tree_bytes = tree_.MemoryBytes();
  for (const auto& s : sketches_) mb.sketch_bytes += s.MemoryBytes();
  mb.total_bytes = mb.tree_bytes + mb.sketch_bytes;
  return mb;
}

}  // namespace privhp
