// The noise-free streaming accumulator of a PrivHP build.
//
// Algorithm 1's per-point state — one counter per exact level, one
// Count-Min update per deep level — is linear in the stream, so it can be
// accumulated independently on any number of shards and merged
// element-wise. A PrivHPShard holds exactly that state: an exact counter
// tree of depth L* and one *plain* (un-noised) Count-Min sketch per level
// L*+1..L, all sharing the hash-seed family derived from the plan seed.
//
// Privatization is NOT the shard's job. The coordinating PrivHPBuilder
// owns the privacy accountant and applies the per-level Laplace noise
// exactly once at Finish(), after every shard has been absorbed — the
// noise is data-independent, so noise-at-finish is distributionally
// identical to Algorithm 1's noise-at-init, and an S-shard build is
// bit-for-bit identical to the 1-shard build under a fixed seed.
//
// DANGER: a shard's state is NOT private. Never release shard contents;
// only the builder's Finish() output is an eps-DP artifact.

#ifndef PRIVHP_CORE_SHARD_H_
#define PRIVHP_CORE_SHARD_H_

#include <vector>

#include "core/planner.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"
#include "io/point_sink.h"
#include "sketch/count_min_sketch.h"

namespace privhp {

/// \brief Hash seed of the level-\p level sketch in a build planned with
/// \p plan_seed. Every shard of a build derives its hashes from the plan
/// seed alone, which is what makes shard sketches mergeable.
uint64_t SketchHashSeed(uint64_t plan_seed, int level);

/// \brief Exact (pre-noise) accumulation state for one stream partition.
class PrivHPShard : public PointSink {
 public:
  /// \brief Allocates zeroed accumulation state for \p plan. \p domain
  /// must outlive the shard. Prefer PrivHPBuilder::NewShard(), which
  /// guarantees all shards of a build share one plan.
  static Result<PrivHPShard> Make(const Domain* domain,
                                  const ResolvedPlan& plan);

  /// \brief Processes one stream element (Algorithm 1 Lines 10-15,
  /// without noise). The shard only reads coordinates, so the inherited
  /// move overload (which forwards here) costs nothing extra.
  using PointSink::Add;
  Status Add(const Point& x) override;

  /// \brief Batched ingest hot path: processes the whole columnar batch
  /// in one call. Atomic: the batch is validated (one SIMD bounds scan
  /// on box domains) before any state is touched, so a failed batch
  /// leaves tree counts, sketches and num_processed() exactly as they
  /// were. Internally the arena is processed in fixed-size chunks
  /// through one reused level-major path matrix
  /// (Domain::LocatePathBatch over the flat array), with per-level
  /// counter bumps and CountMinSketch::UpdateBatch row updates —
  /// bit-identical to calling Add() per point, just without the
  /// per-point dispatch and allocation.
  Status AddBatch(const PointBatch& batch);

  /// \brief Point-array compatibility form: stages chunks into a reused
  /// columnar arena and runs the identical flat path, so every batch
  /// flavour funnels through ONE locate/update code path (the
  /// batched-vs-scalar equality gates then cover all of them at once).
  Status AddBatch(const Point* points, size_t count);
  Status AddBatch(const std::vector<Point>& points) {
    return AddBatch(points.data(), points.size());
  }

  /// \brief Processes a batch of points (routes through AddBatch, so it
  /// shares its all-or-nothing failure semantics).
  Status AddAll(const std::vector<Point>& points) override;
  Status AddAll(const PointBatch& batch) override {
    return AddBatch(batch);
  }

  /// \brief Processes points[begin..end) (BuildParallel slices a dataset
  /// into contiguous ranges without copying). Also atomic via AddBatch.
  Status AddRange(const std::vector<Point>& points, size_t begin,
                  size_t end);

  /// \brief Element-wise adds \p other's counters and sketch tables.
  ///
  /// Associative and commutative; requires \p other to come from the same
  /// plan (same domain, levels, sketch shape and seed family).
  Status Merge(PrivHPShard&& other);

  uint64_t num_processed() const override { return num_processed_; }

  /// \brief The plan this shard accumulates under.
  const ResolvedPlan& plan() const { return plan_; }

  /// \brief Exact counter tree of depth L* (pre-noise; see file comment).
  const PartitionTree& tree() const { return tree_; }

  /// \brief Plain per-level sketches, index i = level L*+1+i (pre-noise).
  const std::vector<CountMinSketch>& sketches() const { return sketches_; }

  /// \brief Streaming footprint: counter tree + sketches.
  size_t MemoryBytes() const;

 private:
  friend class PrivHPBuilder;  // Finish() consumes tree_ and sketches_.

  PrivHPShard(const Domain* domain, ResolvedPlan plan, PartitionTree tree);

  /// Applies one validated chunk of the flat arena (no further checks).
  void ApplyChunk(const double* flat, size_t n);

  const Domain* domain_;
  ResolvedPlan plan_;
  PartitionTree tree_;
  std::vector<CountMinSketch> sketches_;  // level l_star+1+i
  std::vector<uint64_t> path_scratch_;
  // Level-major chunk x (l_max+1) path matrix reused across AddBatch
  // chunks, so batch size never grows the shard's bounded footprint.
  std::vector<uint64_t> batch_scratch_;
  // Chunk-sized staging arena for the Point-array AddBatch form.
  PointBatch stage_;
  uint64_t num_processed_ = 0;
};

}  // namespace privhp

#endif  // PRIVHP_CORE_SHARD_H_
