// The one-pass PrivHP builder (paper Algorithm 1).
//
// Lifecycle:
//   1. Make()   — initialize the depth-L* counter tree with Laplace(1/
//                 sigma_l) noise per node and one private Count-Min sketch
//                 per level L*+1..L (Lines 2-8);
//   2. Add()    — stream points: each update increments one counter per
//                 exact level and one sketch per deep level (Lines 9-15);
//   3. Finish() — GrowPartition from the sketches and release the
//                 generator (Line 16). Consumes the builder.
//
// The builder is the bounded-memory component: its footprint is
// O(2^{L*} + (L - L*) w j) = O(k log^2 n) words, independent of the
// stream length.

#ifndef PRIVHP_CORE_BUILDER_H_
#define PRIVHP_CORE_BUILDER_H_

#include <memory>
#include <vector>

#include "core/generator.h"
#include "core/options.h"
#include "core/planner.h"
#include "domain/domain.h"
#include "dp/privacy_accountant.h"
#include "hierarchy/partition_tree.h"
#include "sketch/private_sketch.h"

namespace privhp {

/// \brief Streaming builder for a PrivHPGenerator.
class PrivHPBuilder {
 public:
  /// \brief Resolves \p options against \p domain, allocates and noise-
  /// initializes all structures, and charges the privacy accountant.
  /// \p domain must outlive the builder and the generator it produces.
  static Result<PrivHPBuilder> Make(const Domain* domain,
                                    const PrivHPOptions& options);

  /// \brief Processes one stream element (Lines 9-15).
  Status Add(const Point& x);

  /// \brief Processes a batch of points.
  Status AddAll(const std::vector<Point>& points);

  /// \brief Runs GrowPartition and releases the generator (Line 16).
  /// The builder must not be used afterwards.
  Result<PrivHPGenerator> Finish() &&;

  /// \brief Resolved parameters in use.
  const ResolvedPlan& plan() const { return plan_; }

  /// \brief Points processed so far.
  uint64_t num_processed() const { return num_processed_; }

  /// \brief Current streaming footprint: counter tree + sketches + hash
  /// tables. This is the paper's M, measured.
  size_t MemoryBytes() const;

  /// \brief Per-component memory, for the EXP-PERF report.
  struct MemoryBreakdown {
    size_t tree_bytes = 0;
    size_t sketch_bytes = 0;
    size_t total_bytes = 0;
  };
  MemoryBreakdown memory_breakdown() const;

  /// \brief The privacy ledger (sums to eps by Theorem 2).
  const PrivacyAccountant& accountant() const { return *accountant_; }

 private:
  PrivHPBuilder(const Domain* domain, ResolvedPlan plan);

  Status Init();

  const Domain* domain_;
  ResolvedPlan plan_;
  PartitionTree tree_;
  std::vector<PrivateCountMinSketch> sketches_;  // level l_star+1+i
  std::unique_ptr<PrivacyAccountant> accountant_;
  RandomEngine rng_;
  uint64_t num_processed_ = 0;
  bool finished_ = false;
  std::vector<uint64_t> path_scratch_;
};

}  // namespace privhp

#endif  // PRIVHP_CORE_BUILDER_H_
