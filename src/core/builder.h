// The one-pass PrivHP builder (paper Algorithm 1), split into two phases
// so parallel multi-stream ingestion is first-class:
//
//   accumulate — PrivHPShard holds the linear, noise-free state (exact
//                counter tree + plain Count-Min sketches). Any number of
//                shards ingest disjoint stream partitions concurrently
//                and merge element-wise (core/shard.h);
//   privatize  — PrivHPBuilder owns planning and the privacy accountant,
//                absorbs shards, and applies the per-level Laplace noise
//                exactly once at Finish() before GrowPartition releases
//                the generator (Line 16).
//
// Noise-at-finish is distributionally identical to Algorithm 1's
// noise-at-init because the noise is data-independent; under a fixed
// seed, an S-shard build is bit-for-bit identical to the 1-shard build
// (counter and sketch increments are integer-valued, so merge order
// cannot perturb floating point).
//
// Lifecycle:
//   1. Make()        — resolve the plan, allocate the root shard, charge
//                      the privacy accountant (Lines 2-8 minus noise);
//   2. Add()         — stream points into the root shard (Lines 9-15);
//      or NewShard() / AbsorbShard() — partition the stream yourself;
//      or BuildParallel() — let the builder partition it across threads;
//   3. Finish()      — noise once, GrowPartition, release the generator.
//                      Consumes the builder.
//
// The builder is the bounded-memory component: its footprint is
// O(2^{L*} + (L - L*) w j) = O(k log^2 n) words per shard, independent
// of the stream length.

#ifndef PRIVHP_CORE_BUILDER_H_
#define PRIVHP_CORE_BUILDER_H_

#include <memory>
#include <vector>

#include "core/generator.h"
#include "core/options.h"
#include "core/planner.h"
#include "core/shard.h"
#include "domain/domain.h"
#include "dp/privacy_accountant.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief Streaming builder for a PrivHPGenerator.
class PrivHPBuilder : public PointSink {
 public:
  /// \brief Resolves \p options against \p domain, allocates the root
  /// shard, and charges the privacy accountant. \p domain must outlive
  /// the builder and the generator it produces.
  static Result<PrivHPBuilder> Make(const Domain* domain,
                                    const PrivHPOptions& options);

  /// \brief Processes one stream element (Lines 9-15). Coordinates are
  /// only read, so the inherited move overload forwards here at no cost.
  using PointSink::Add;
  Status Add(const Point& x) override;

  /// \brief Processes a batch of points through the shard's batched
  /// ingest path (PrivHPShard::AddBatch): validated up front — a failed
  /// batch leaves the build state untouched — then applied with one
  /// LocatePathBatch call and row-major sketch updates per chunk.
  Status AddAll(const std::vector<Point>& points) override;

  /// \brief Columnar form: the arena goes straight to the shard's flat
  /// locate path, no per-point staging.
  Status AddAll(const PointBatch& batch) override;

  /// \brief Span form of the batched ingest path.
  Status AddBatch(const Point* points, size_t count);

  /// \brief A fresh accumulation shard sharing this build's plan (and
  /// hence its hash-seed family). Shards are independent: ingest into
  /// them from any thread, then AbsorbShard() them back — the builder
  /// itself is not thread-safe, only the shards are disjoint.
  Result<PrivHPShard> NewShard() const;

  /// \brief Merges \p shard's counters and sketches into the builder.
  Status AbsorbShard(PrivHPShard&& shard);

  /// \brief Runs GrowPartition and releases the generator (Line 16),
  /// applying the per-level Laplace noise exactly once first.
  /// The builder must not be used afterwards.
  Result<PrivHPGenerator> Finish() &&;

  /// \brief One-call parallel build: drains \p source, dispatching
  /// batches to \p num_threads worker threads each owning one shard,
  /// then absorbs all shards and finishes. Deterministic: the result is
  /// bit-for-bit identical to a sequential build with the same options.
  static Result<PrivHPGenerator> BuildParallel(const Domain* domain,
                                               const PrivHPOptions& options,
                                               PointSource* source,
                                               int num_threads);

  /// \brief In-memory overload: slices \p points into contiguous ranges,
  /// one per thread, avoiding the dispatch queue entirely.
  static Result<PrivHPGenerator> BuildParallel(
      const Domain* domain, const PrivHPOptions& options,
      const std::vector<Point>& points, int num_threads);

  /// \brief Resolved parameters in use.
  const ResolvedPlan& plan() const { return plan_; }

  /// \brief Points processed so far (root shard only; shards created via
  /// NewShard() count once absorbed).
  uint64_t num_processed() const override { return root_.num_processed(); }

  /// \brief Current streaming footprint: counter tree + sketches + hash
  /// tables. This is the paper's M, measured (per shard).
  size_t MemoryBytes() const;

  /// \brief Per-component memory, for the EXP-PERF report.
  struct MemoryBreakdown {
    size_t tree_bytes = 0;
    size_t sketch_bytes = 0;
    size_t total_bytes = 0;
  };
  MemoryBreakdown memory_breakdown() const;

  /// \brief The privacy ledger (sums to eps by Theorem 2).
  const PrivacyAccountant& accountant() const { return *accountant_; }

 private:
  PrivHPBuilder(const Domain* domain, ResolvedPlan plan, PrivHPShard root);

  Status ChargeAccountant();

  const Domain* domain_;
  ResolvedPlan plan_;
  PrivHPShard root_;
  std::unique_ptr<PrivacyAccountant> accountant_;
  RandomEngine rng_;
  bool finished_ = false;
};

}  // namespace privhp

#endif  // PRIVHP_CORE_BUILDER_H_
