// User-facing configuration for PrivHP (paper Algorithm 1 inputs:
// (k, L*, L), sketch dimensions (w, j) and the noise distributions {D_l}
// via the privacy budget and allocation policy).

#ifndef PRIVHP_CORE_OPTIONS_H_
#define PRIVHP_CORE_OPTIONS_H_

#include <cstdint>

#include "common/status.h"
#include "dp/budget_allocator.h"

namespace privhp {

/// \brief Options for building a PrivHP generator.
///
/// Fields left at their sentinel (-1 / 0) are resolved by the planner from
/// `expected_n` and `epsilon` following Corollary 1:
///   L = ceil(log2(eps * n)),  j = ceil(log2 n),  w = 2k,
///   L* = ceil(log2 M) with M = k * ceil(log2 n)^2,  grow_to = L - 1.
struct PrivHPOptions {
  /// Total privacy budget eps (> 0); split across levels per
  /// `budget_policy`.
  double epsilon = 1.0;

  /// Pruning parameter k: hot branches kept per level below L*.
  /// Memory scales as M = O(k log^2 n).
  uint64_t k = 8;

  /// Expected stream length n. Required (used to size the hierarchy depth
  /// and sketches; the standard streaming assumption of a known horizon).
  uint64_t expected_n = 0;

  /// Pruning level L*; -1 = auto (Corollary 1).
  int l_star = -1;

  /// Hierarchy depth L; -1 = auto (Corollary 1).
  int l_max = -1;

  /// Final leaf level for GrowPartition; -1 = auto (L - 1, per
  /// Algorithm 2's loop bound). Setting it to L is an ablation variant.
  int grow_to = -1;

  /// Sketch width w; 0 = auto (2k, per Theorem 3).
  uint64_t sketch_width = 0;

  /// Sketch depth j (rows); 0 = auto (ceil(log2 n)).
  uint64_t sketch_depth = 0;

  /// Per-level budget split (Lemma 5 optimum by default).
  BudgetPolicy budget_policy = BudgetPolicy::kOptimal;

  /// Run Algorithm 3 consistency (disabled only by the EXP-CONS ablation).
  bool enforce_consistency = true;

  /// If true, skip all noise (sigma_l treated as infinite). NOT private —
  /// exists solely so benches can isolate approximation error from
  /// privacy noise. The builder's accountant reports zero spend.
  bool disable_privacy_for_ablation = false;

  /// Master seed for noise and sketch hashing.
  uint64_t seed = 42;

  /// \brief Checks ranges and cross-field constraints that do not need the
  /// domain (the planner re-validates against the domain).
  Status Validate() const;
};

}  // namespace privhp

#endif  // PRIVHP_CORE_OPTIONS_H_
