// Lock-free fixed-size log-scale histograms for latency and byte-size
// metrics.
//
// The paper's bounded-memory discipline extends to the telemetry: a
// histogram is one fixed array of relaxed atomics — O(1) memory per
// endpoint no matter how many events it absorbs, and Record() is a
// handful of bit operations plus two relaxed fetch_adds, cheap enough
// to sit on the point-read hot path (bench_serve gates the overhead).
//
// Bucketing (HDR-style base-2 with 8 sub-buckets per octave):
//   - values 0..7 get one exact bucket each;
//   - values in [2^o, 2^(o+1)) for o in [3, 39] split into 8 equal
//     sub-buckets, so the relative width of any bucket is <= 12.5%
//     (quantile estimates carry at most that relative error);
//   - values >= 2^40 (~18 minutes in ns, ~1 TiB in bytes) share one
//     overflow bucket whose estimate falls back to the recorded max.
// Total: 8 + 37*8 + 1 = 305 buckets, ~2.4 KiB per histogram.
//
// Concurrency: Record() is wait-free on the bucket/sum counters (one
// CAS loop maintains max). Snapshot() reads the atomics relaxed — a
// snapshot taken during concurrent recording is a valid histogram that
// may miss in-flight events, which is exactly the semantics a stats
// poll wants. Snapshots are plain structs: mergeable (shard/aggregate)
// and subtractable (interval rates for `privhp top`).

#ifndef PRIVHP_OBS_HISTOGRAM_H_
#define PRIVHP_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/bits.h"

namespace privhp {
namespace obs {

/// \brief Number of sub-bucket bits per octave (8 sub-buckets).
inline constexpr int kHistogramSubBits = 3;
/// \brief Values at or above 2^40 land in the overflow bucket.
inline constexpr int kHistogramMaxOctave = 40;
/// \brief Fixed bucket count (exact small values + octaves + overflow).
inline constexpr uint32_t kHistogramBuckets =
    (1u << kHistogramSubBits) +
    static_cast<uint32_t>(kHistogramMaxOctave - kHistogramSubBits)
        * (1u << kHistogramSubBits) +
    1;

/// \brief Bucket index for \p value (always < kHistogramBuckets).
inline uint32_t HistogramBucketIndex(uint64_t value) {
  constexpr uint64_t kSub = uint64_t{1} << kHistogramSubBits;
  if (value < kSub) return static_cast<uint32_t>(value);
  const int octave = FloorLog2(value);
  if (octave >= kHistogramMaxOctave) return kHistogramBuckets - 1;
  const uint64_t sub = (value >> (octave - kHistogramSubBits)) & (kSub - 1);
  return static_cast<uint32_t>(
      kSub + static_cast<uint64_t>(octave - kHistogramSubBits) * kSub + sub);
}

/// \brief Inclusive lower bound of bucket \p index.
inline uint64_t HistogramBucketLowerBound(uint32_t index) {
  constexpr uint64_t kSub = uint64_t{1} << kHistogramSubBits;
  if (index < kSub) return index;
  if (index >= kHistogramBuckets - 1) {
    return uint64_t{1} << kHistogramMaxOctave;
  }
  const uint32_t j = index - static_cast<uint32_t>(kSub);
  const int octave = kHistogramSubBits + static_cast<int>(j >> kHistogramSubBits);
  const uint64_t sub = j & (kSub - 1);
  return (uint64_t{1} << octave) + sub * (uint64_t{1} << (octave - kHistogramSubBits));
}

/// \brief Exclusive upper bound of bucket \p index (UINT64_MAX for the
/// overflow bucket).
inline uint64_t HistogramBucketUpperBound(uint32_t index) {
  if (index >= kHistogramBuckets - 1) return UINT64_MAX;
  return HistogramBucketLowerBound(index + 1);
}

/// \brief A point-in-time copy of a histogram: plain counters, safe to
/// merge, subtract, and ship over the wire.
struct HistogramSnapshot {
  std::array<uint64_t, kHistogramBuckets> buckets{};
  uint64_t sum = 0;
  uint64_t max = 0;

  /// \brief Total recorded events (sum over buckets).
  uint64_t Count() const;

  /// \brief Mean of recorded values (0 when empty).
  double Mean() const;

  /// \brief Estimated value at quantile \p q in [0, 1]: the midpoint of
  /// the bucket holding the q-th event (min(max, midpoint) so a spike
  /// never reports past the largest observed value; the overflow bucket
  /// reports the recorded max). Returns 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  /// \brief Adds \p other into this snapshot (associative/commutative,
  /// like the shard merges on the build side).
  void Merge(const HistogramSnapshot& other);

  /// \brief This snapshot minus an \p earlier one of the same histogram
  /// — the interval view `privhp top` refreshes on. Requires \p earlier
  /// to be componentwise <= this snapshot (same-histogram, earlier in
  /// time); max carries over from this snapshot.
  HistogramSnapshot Delta(const HistogramSnapshot& earlier) const;
};

/// \brief Lock-free recording side. Fixed size; never allocates after
/// construction.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// \brief Records one value. Wait-free except the max CAS loop.
  void Record(uint64_t value) {
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// \brief Copies the counters out (relaxed reads; see file comment).
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace obs
}  // namespace privhp

#endif  // PRIVHP_OBS_HISTOGRAM_H_
