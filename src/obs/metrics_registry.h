// Process-wide named metrics: counters, gauges, and histograms.
//
// The registry is a rendezvous, not a hot path: instrumented code looks
// a metric up ONCE (under the registry mutex, typically at subsystem
// construction) and keeps the returned pointer, which stays valid for
// the registry's lifetime. Recording through the pointer is lock-free —
// a relaxed atomic add for counters/gauges, the fixed-bucket atomic
// array for histograms (obs/histogram.h).
//
// Snapshot() copies every metric into plain structs sorted by name —
// the deterministic inventory the STATS wire op serializes and
// `privhp stats` / `privhp top` render. Metric names are dotted paths
// ("op.sample.latency_ns", "pool.hits"); per-endpoint metrics are
// distinct names, so the snapshot stays a flat, bounded list.

#ifndef PRIVHP_OBS_METRICS_REGISTRY_H_
#define PRIVHP_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/histogram.h"

namespace privhp {
namespace obs {

/// \brief Monotonic event counter (relaxed atomic).
class Counter {
 public:
  void Inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed level (queue depth, busy workers, bytes
/// resident).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Every metric at one instant, sorted by name. Plain data: safe
/// to copy, merge, and serialize.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// \brief Value of the named counter/gauge, or \p fallback when absent
  /// (linear scan — snapshots are small and this is display/test code).
  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const;
  int64_t GaugeOr(const std::string& name, int64_t fallback = 0) const;
  /// \brief The named histogram, or nullptr when absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// \brief Thread-safe name -> metric map. Metrics are created on first
/// lookup and never removed, so returned pointers are stable for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// \brief Copies every metric, sorted by name.
  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  // mu_ guards the maps only; the metric objects the unique_ptrs point
  // at are lock-free (relaxed atomics) and are read/written without it.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace privhp

#endif  // PRIVHP_OBS_METRICS_REGISTRY_H_
