#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace privhp {
namespace obs {

uint64_t HistogramSnapshot::Count() const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  return total;
}

double HistogramSnapshot::Mean() const {
  const uint64_t count = Count();
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  const uint64_t count = Count();
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th event, 1-based; q = 0 means the first event.
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      if (i == kHistogramBuckets - 1) return max;  // overflow bucket
      const uint64_t lo = HistogramBucketLowerBound(i);
      const uint64_t hi = HistogramBucketUpperBound(i);
      return std::min(max, lo + (hi - lo) / 2);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::Delta(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot d;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    d.buckets[i] =
        buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
  }
  d.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  d.max = max;
  return d;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  for (uint32_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace obs
}  // namespace privhp
