#include "obs/metrics_registry.h"

namespace privhp {
namespace obs {

uint64_t MetricsSnapshot::CounterOr(const std::string& name,
                                    uint64_t fallback) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

int64_t MetricsSnapshot::GaugeOr(const std::string& name,
                                 int64_t fallback) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  MutexLock lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    s.counters.push_back({entry.first, entry.second->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    s.gauges.push_back({entry.first, entry.second->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    s.histograms.push_back({entry.first, entry.second->Snapshot()});
  }
  return s;
}

}  // namespace obs
}  // namespace privhp
