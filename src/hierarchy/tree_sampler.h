// Sampling synthetic points from a decomposition tree (paper Section 5).
//
// A tree with consistent counts *is* a sampling distribution: draw
// u ~ Uniform[0, root.count], walk root-to-leaf branching left when
// u <= left.count (subtracting the left mass when branching right), then
// return a uniform point from the leaf cell. Any deterministic
// post-processing of a private tree — including this sampler — is private
// by Lemma 2.

#ifndef PRIVHP_HIERARCHY_TREE_SAMPLER_H_
#define PRIVHP_HIERARCHY_TREE_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Root-to-leaf sampler over a PartitionTree.
///
/// The tree must outlive the sampler and should have consistent counts
/// (children sum to parent, all non-negative); run EnforceConsistencyTree
/// first otherwise. If the root mass is <= 0 (possible at extreme privacy
/// noise), Sample() falls back to uniform over the whole domain.
class TreeSampler {
 public:
  explicit TreeSampler(const PartitionTree* tree);

  /// \brief One synthetic point.
  Point Sample(RandomEngine* rng) const;

  /// \brief \p m synthetic points.
  std::vector<Point> SampleBatch(size_t m, RandomEngine* rng) const;

  /// \brief The leaf cell a single draw lands in (used by tests that check
  /// the categorical distribution without the in-cell uniform step).
  CellId SampleLeafCell(RandomEngine* rng) const;

  const PartitionTree* tree() const { return tree_; }

 private:
  NodeId WalkToLeaf(RandomEngine* rng) const;

  const PartitionTree* tree_;
};

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_TREE_SAMPLER_H_
