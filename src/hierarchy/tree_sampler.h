// Sampling synthetic points from a decomposition tree (paper Section 5).
//
// A tree with consistent counts *is* a sampling distribution: draw
// u ~ Uniform[0, root.count], walk root-to-leaf branching left when
// u < left.count (subtracting the left mass when branching right), then
// return a uniform point from the leaf cell. Zero-count subtrees are
// explicitly unreachable: whenever one child has zero mass the walk takes
// the positive-mass sibling regardless of u, so no draw can land in a
// cell the released distribution assigns zero probability. Any
// deterministic post-processing of a private tree — including this
// sampler — is private by Lemma 2.
//
// This walk is the reference implementation; the serve hot path uses the
// O(1)-per-draw CompiledSampler (hierarchy/compiled_sampler.h) compiled
// from the same tree.

#ifndef PRIVHP_HIERARCHY_TREE_SAMPLER_H_
#define PRIVHP_HIERARCHY_TREE_SAMPLER_H_

#include <vector>

#include "common/random.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Root-to-leaf sampler over a PartitionTree.
///
/// The tree must outlive the sampler and should have consistent counts
/// (children sum to parent, all non-negative); run EnforceConsistencyTree
/// first otherwise. If the root mass is <= 0 (possible at extreme privacy
/// noise), Sample() falls back to uniform over the whole domain.
class TreeSampler {
 public:
  explicit TreeSampler(const PartitionTree* tree);

  /// \brief One synthetic point.
  Point Sample(RandomEngine* rng) const;

  /// \brief \p m synthetic points.
  std::vector<Point> SampleBatch(size_t m, RandomEngine* rng) const;

  /// \brief The cell a single draw lands in (used by tests that check
  /// the categorical distribution without the in-cell uniform step).
  /// Normally a leaf cell; if the walk reaches a node whose children are
  /// all zero-count while the node itself carries mass (possible within
  /// the consistency tolerance), that node's cell is returned instead of
  /// descending into the zero-count subtree.
  CellId SampleLeafCell(RandomEngine* rng) const;

  const PartitionTree* tree() const { return tree_; }

 private:
  NodeId WalkToLeaf(RandomEngine* rng) const;

  const PartitionTree* tree_;
};

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_TREE_SAMPLER_H_
