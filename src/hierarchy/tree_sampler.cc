#include "hierarchy/tree_sampler.h"

#include "common/macros.h"

namespace privhp {

TreeSampler::TreeSampler(const PartitionTree* tree) : tree_(tree) {
  PRIVHP_CHECK(tree_ != nullptr);
}

NodeId TreeSampler::WalkToLeaf(RandomEngine* rng) const {
  NodeId id = tree_->root();
  const double root_mass = tree_->node(id).count;
  if (root_mass <= 0.0) return kInvalidNode;
  double u = rng->UniformDouble(0.0, root_mass);
  while (!tree_->node(id).is_leaf()) {
    const TreeNode& n = tree_->node(id);
    const double left_mass = tree_->node(n.left).count;
    const double right_mass = tree_->node(n.right).count;
    if (left_mass <= 0.0 && right_mass <= 0.0) {
      // This node carries mass its children do not (possible within the
      // consistency tolerance). Stop here and sample uniformly from this
      // cell: descending would fabricate a point from a zero-count
      // subtree.
      break;
    }
    // Strict `<` plus explicit zero-mass guards: a zero-count subtree is
    // unreachable no matter where u lands. The old `u <= left_mass` test
    // let a draw at the boundary (u == 0 against a zero-count left child
    // — reachable through the drift clamp below, or when parent counts
    // exceed their children's sum within the consistency tolerance)
    // descend into cells the released distribution assigns zero
    // probability.
    const bool go_left =
        left_mass > 0.0 && (u < left_mass || right_mass <= 0.0);
    if (go_left) {
      id = n.left;
      // Floating-point drift (or the zero-mass guard) can leave u at or
      // past the child's mass; clamping keeps the walk well-defined
      // without biasing the draw.
      if (u > left_mass) u = left_mass;
    } else {
      u -= left_mass;
      if (u < 0.0) u = 0.0;
      id = n.right;
      if (u > right_mass) u = right_mass;
    }
  }
  return id;
}

CellId TreeSampler::SampleLeafCell(RandomEngine* rng) const {
  const NodeId leaf = WalkToLeaf(rng);
  if (leaf == kInvalidNode) return CellId{0, 0};
  return tree_->node(leaf).cell;
}

Point TreeSampler::Sample(RandomEngine* rng) const {
  const CellId cell = SampleLeafCell(rng);
  return tree_->domain()->SampleCell(cell.level, cell.index, rng);
}

std::vector<Point> TreeSampler::SampleBatch(size_t m,
                                            RandomEngine* rng) const {
  std::vector<Point> out;
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) out.push_back(Sample(rng));
  return out;
}

}  // namespace privhp
