#include "hierarchy/tree_sampler.h"

#include "common/macros.h"

namespace privhp {

TreeSampler::TreeSampler(const PartitionTree* tree) : tree_(tree) {
  PRIVHP_CHECK(tree_ != nullptr);
}

NodeId TreeSampler::WalkToLeaf(RandomEngine* rng) const {
  NodeId id = tree_->root();
  const double root_mass = tree_->node(id).count;
  if (root_mass <= 0.0) return kInvalidNode;
  double u = rng->UniformDouble(0.0, root_mass);
  while (!tree_->node(id).is_leaf()) {
    const TreeNode& n = tree_->node(id);
    const double left_mass = tree_->node(n.left).count;
    if (u <= left_mass) {
      id = n.left;
    } else {
      u -= left_mass;
      id = n.right;
      // Floating-point drift can push u past the right child's mass;
      // clamping keeps the walk well-defined without biasing the draw.
      const double right_mass = tree_->node(id).count;
      if (u > right_mass) u = right_mass;
    }
  }
  return id;
}

CellId TreeSampler::SampleLeafCell(RandomEngine* rng) const {
  const NodeId leaf = WalkToLeaf(rng);
  if (leaf == kInvalidNode) return CellId{0, 0};
  return tree_->node(leaf).cell;
}

Point TreeSampler::Sample(RandomEngine* rng) const {
  const CellId cell = SampleLeafCell(rng);
  return tree_->domain()->SampleCell(cell.level, cell.index, rng);
}

std::vector<Point> TreeSampler::SampleBatch(size_t m,
                                            RandomEngine* rng) const {
  std::vector<Point> out;
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) out.push_back(Sample(rng));
  return out;
}

}  // namespace privhp
