// The hierarchical decomposition tree T (paper Section 4).
//
// Nodes are stored in a contiguous arena; each node records its cell
// (level, index), its noisy count, and child slots. The tree starts as a
// complete binary tree of depth L* (Algorithm 1, Line 2) and is extended
// below L* by GrowPartition. A node either has both children or none —
// decompositions always split a cell into its two halves.

#ifndef PRIVHP_HIERARCHY_PARTITION_TREE_H_
#define PRIVHP_HIERARCHY_PARTITION_TREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "domain/domain.h"

namespace privhp {

/// \brief Arena id of a tree node.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// \brief Arena id of (level, index) in a complete BFS-built tree (as
/// produced by PartitionTree::Complete): level l occupies slots
/// [2^l - 1, 2^{l+1} - 1), so counters can be addressed without a
/// root-to-node walk.
inline NodeId CompleteNodeId(int level, uint64_t index) {
  return static_cast<NodeId>(((uint64_t{1} << level) - 1) + index);
}

/// \brief One subdomain Omega_theta and its (noisy) count.
struct TreeNode {
  CellId cell;
  double count = 0.0;
  NodeId left = kInvalidNode;
  NodeId right = kInvalidNode;
  NodeId parent = kInvalidNode;

  bool is_leaf() const { return left == kInvalidNode; }
};

/// \brief Binary decomposition tree over a Domain.
///
/// The Domain pointer is not owned and must outlive the tree.
class PartitionTree {
 public:
  /// Creates a tree holding only the root (Omega itself, count 0).
  explicit PartitionTree(const Domain* domain);

  /// \brief Creates a complete tree of the given \p depth with zero counts
  /// (Algorithm 1, Line 2).
  static Result<PartitionTree> Complete(const Domain* domain, int depth);

  const Domain* domain() const { return domain_; }

  NodeId root() const { return 0; }
  size_t num_nodes() const { return nodes_.size(); }

  TreeNode& node(NodeId id) { return nodes_[id]; }
  const TreeNode& node(NodeId id) const { return nodes_[id]; }

  /// \brief Adds both children of \p id with zero counts; \p id must be a
  /// leaf. Returns the left child id (right child is the next id).
  NodeId AddChildren(NodeId id);

  /// \brief Walks from the root along the bit path of \p cell; returns the
  /// node id or kInvalidNode if the path leaves the tree.
  NodeId Find(CellId cell) const;

  /// \brief Ids of all nodes at \p level, in index order of creation.
  std::vector<NodeId> NodesAtLevel(int level) const;

  /// \brief Ids of all leaves (pre-order).
  std::vector<NodeId> Leaves() const;

  /// \brief Deepest level present.
  int MaxDepth() const;

  /// \brief Calls \p fn on every node in pre-order (parent before children).
  void PreOrder(const std::function<void(NodeId)>& fn) const;

  /// \brief Element-wise adds \p other's counts into this tree.
  ///
  /// Counts are linear in the data, so trees accumulated over disjoint
  /// stream shards merge exactly. Requires an identical arena: same node
  /// count, cells and child links (true of any two Complete() trees of
  /// the same depth over the same decomposition).
  Status MergeCounts(const PartitionTree& other);

  /// \brief Bytes held by the node arena.
  size_t MemoryBytes() const;

  /// \brief Verifies structural and consistency invariants:
  /// each node has 0 or 2 children, child cells are the parent cell's
  /// halves, counts are non-negative, and children sum to their parent
  /// (within \p tolerance). Used by tests and after deserialization.
  Status Validate(double tolerance = 1e-6) const;

 private:
  const Domain* domain_;
  std::vector<TreeNode> nodes_;
};

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_PARTITION_TREE_H_
