#include "hierarchy/tree_stats.h"

namespace privhp {

TreeSummary Summarize(const PartitionTree& tree) {
  TreeSummary s;
  s.num_nodes = tree.num_nodes();
  s.max_depth = tree.MaxDepth();
  s.total_mass = tree.node(tree.root()).count;
  s.memory_bytes = tree.MemoryBytes();
  tree.PreOrder([&](NodeId id) {
    if (tree.node(id).is_leaf()) ++s.num_leaves;
  });
  return s;
}

std::vector<std::pair<CellId, double>> LeafMasses(const PartitionTree& tree) {
  std::vector<std::pair<CellId, double>> out;
  tree.PreOrder([&](NodeId id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf()) out.emplace_back(n.cell, n.count);
  });
  return out;
}

Result<std::vector<double>> DistributionAtLevel(const PartitionTree& tree,
                                                int level) {
  if (level < 0 || level > 26) {
    return Status::InvalidArgument(
        "DistributionAtLevel supports levels 0..26");
  }
  if (level > tree.domain()->max_level()) {
    return Status::OutOfRange("level exceeds domain max level");
  }
  std::vector<double> dist(size_t{1} << level, 0.0);
  double total = 0.0;
  for (const auto& [cell, mass] : LeafMasses(tree)) {
    if (mass <= 0.0) continue;
    total += mass;
    if (cell.level >= level) {
      dist[cell.index >> (cell.level - level)] += mass;
    } else {
      const int gap = level - cell.level;
      const uint64_t first = cell.index << gap;
      const uint64_t span = uint64_t{1} << gap;
      const double share = mass / static_cast<double>(span);
      for (uint64_t i = 0; i < span; ++i) dist[first + i] += share;
    }
  }
  if (total > 0.0) {
    for (double& p : dist) p /= total;
  }
  return dist;
}

std::vector<double> MassPerLevel(const PartitionTree& tree) {
  std::vector<double> mass(tree.MaxDepth() + 1, 0.0);
  tree.PreOrder([&](NodeId id) {
    const TreeNode& n = tree.node(id);
    mass[n.cell.level] += n.count;
  });
  return mass;
}

}  // namespace privhp
