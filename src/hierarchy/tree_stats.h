// Read-only statistics over decomposition trees: leaf masses, level
// masses, projections onto a fixed level (the discrete distribution used
// by the W1 harness), and structural summaries for reports.

#ifndef PRIVHP_HIERARCHY_TREE_STATS_H_
#define PRIVHP_HIERARCHY_TREE_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Structural summary of a tree.
struct TreeSummary {
  size_t num_nodes = 0;
  size_t num_leaves = 0;
  int max_depth = 0;
  double total_mass = 0.0;
  size_t memory_bytes = 0;
};

/// \brief Computes the TreeSummary of \p tree.
TreeSummary Summarize(const PartitionTree& tree);

/// \brief (cell, mass) for every leaf, pre-order. Masses are the raw
/// consistent counts (not normalized).
std::vector<std::pair<CellId, double>> LeafMasses(const PartitionTree& tree);

/// \brief Projects the tree's sampling distribution onto the 2^level cells
/// of \p level: leaves above the level spread uniformly over descendants,
/// leaves below accumulate into their ancestor. Returns a dense
/// probability vector (sums to 1; all-zero only if total mass is 0).
///
/// Fails if level > 26 (dense vector would be too large) or level exceeds
/// the domain's max level.
Result<std::vector<double>> DistributionAtLevel(const PartitionTree& tree,
                                                int level);

/// \brief Total mass per level over *nodes present in the tree* at that
/// level (out[l] for l in 0..MaxDepth). In a consistent tree the level
/// mass is non-increasing only below L* where pruning drops nodes.
std::vector<double> MassPerLevel(const PartitionTree& tree);

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_TREE_STATS_H_
