// Consistency enforcement between parent and child counts
// (paper Algorithm 3 and Section 4.4).
//
// Invariants after enforcement: (1) all counts non-negative, (2) the two
// child counts sum to their parent's count. Surplus/deficit
// Lambda = c_left + c_right - c_parent is split evenly (Equation 2), with
// two corrections:
//   Type 1 — a negative child count is clamped to 0 before computing
//            Lambda (Line 3);
//   Type 2 — if the even split would drive a child negative, that child is
//            set to 0 and its sibling inherits the full parent count
//            (Line 6).
// Both corrections only ever reduce the error in the child counts
// (Lemma 6, Cases 2 and 3).

#ifndef PRIVHP_HIERARCHY_CONSISTENCY_H_
#define PRIVHP_HIERARCHY_CONSISTENCY_H_

#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Which branch of Algorithm 3 a consistency step took; reported so
/// tests and the EXP-E61 harness can assert against the paper's examples.
enum class ConsistencyCase {
  kEvenSplit,        ///< No correction; Lambda split evenly (Equation 2).
  kType2Correction,  ///< Even split would violate non-negativity (Line 6).
};

/// \brief Applies Algorithm 3 at internal node \p id (both children must
/// exist). Returns which branch was taken.
///
/// Precondition: the parent's own count has already been made consistent
/// with *its* parent (Algorithm 2 processes nodes top-down).
ConsistencyCase EnforceConsistencyAt(PartitionTree* tree, NodeId id);

/// \brief Applies consistency to every internal node in depth-first
/// (pre-order) order — Algorithm 2, Line 2. The root count is clamped to
/// >= 0 first so that the non-negativity invariant can propagate.
void EnforceConsistencyTree(PartitionTree* tree);

/// \brief The consistency error of Section 6.1, Equation (9):
/// |(lambda_0 - lambda_1 + e_0 - e_1)| / 2 — the probability mass moved
/// between siblings by a consistency step, given the disaggregated error
/// components. Exposed for the accounting tests (Example 6.1).
double ConsistencyErrorMagnitude(double lambda_left, double lambda_right,
                                 double approx_left, double approx_right);

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_CONSISTENCY_H_
