#include "hierarchy/compiled_sampler.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/simd.h"

namespace privhp {

CompiledSampler::CompiledSampler(const PartitionTree& tree)
    : domain_(tree.domain()) {
  std::vector<double> masses;
  for (NodeId id : tree.Leaves()) {
    const TreeNode& n = tree.node(id);
    if (n.count > 0.0) {
      cells_.push_back(n.cell);
      masses.push_back(n.count);
      total_mass_ += n.count;
    }
  }
  if (cells_.empty() || total_mass_ <= 0.0) {
    // Uniform fallback over the whole domain: a single slot holding the
    // root cell, same degenerate behaviour as TreeSampler.
    cells_.assign(1, CellId{0, 0});
    accept_.assign(1, 1.0);
    alias_.assign(1, 0);
    total_mass_ = 0.0;
    BuildBoundsTables();
    return;
  }

  // Vose's alias method: scale masses so the mean slot weight is 1, then
  // pair each underfull slot with an overfull donor. O(n) build, exact
  // (every slot ends with its own probability plus one alias).
  const size_t n = cells_.size();
  PRIVHP_CHECK(n <= static_cast<size_t>(UINT32_MAX));
  accept_.assign(n, 1.0);
  alias_.resize(n);
  for (size_t i = 0; i < n; ++i) alias_[i] = static_cast<uint32_t>(i);

  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_mass_;
  for (size_t i = 0; i < n; ++i) scaled[i] = masses[i] * scale;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    // The donor gives away (1 - scaled[s]) of its weight.
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (either list) are exactly-full slots up to rounding; their
  // accept probability stays 1, alias self.
  for (uint32_t i : small) accept_[i] = 1.0;
  for (uint32_t i : large) accept_[i] = 1.0;
  BuildBoundsTables();
}

CompiledSampler CompiledSampler::Borrow(const Domain* domain,
                                        const CompiledTableView& view,
                                        double total_mass) {
  PRIVHP_CHECK(domain != nullptr);
  PRIVHP_CHECK(view.cells != nullptr && view.accept != nullptr &&
               view.alias != nullptr && view.num_slots > 0);
  // Bounds tables come as a pair or not at all.
  PRIVHP_CHECK((view.slot_lo != nullptr) == (view.slot_ext != nullptr));
  CompiledSampler s;
  s.domain_ = domain;
  s.total_mass_ = total_mass;
  s.dim_ = domain->dimension();
  s.has_bounds_ = view.slot_lo != nullptr;
  s.borrowed_ = true;
  s.view_ = view;
  return s;
}

CompiledSampler::CompiledSampler(const CompiledSampler& other)
    : domain_(other.domain_),
      cells_(other.cells_),
      accept_(other.accept_),
      alias_(other.alias_),
      total_mass_(other.total_mass_),
      dim_(other.dim_),
      has_bounds_(other.has_bounds_),
      slot_lo_(other.slot_lo_),
      slot_ext_(other.slot_ext_),
      borrowed_(other.borrowed_),
      view_(other.view_) {
  if (!borrowed_) RefreshView();
}

CompiledSampler& CompiledSampler::operator=(const CompiledSampler& other) {
  if (this != &other) {
    domain_ = other.domain_;
    cells_ = other.cells_;
    accept_ = other.accept_;
    alias_ = other.alias_;
    total_mass_ = other.total_mass_;
    dim_ = other.dim_;
    has_bounds_ = other.has_bounds_;
    slot_lo_ = other.slot_lo_;
    slot_ext_ = other.slot_ext_;
    borrowed_ = other.borrowed_;
    view_ = other.view_;
    if (!borrowed_) RefreshView();
  }
  return *this;
}

void CompiledSampler::RefreshView() {
  view_.cells = cells_.data();
  view_.accept = accept_.data();
  view_.alias = alias_.data();
  view_.num_slots = cells_.size();
  view_.slot_lo = has_bounds_ ? slot_lo_.data() : nullptr;
  view_.slot_ext = has_bounds_ ? slot_ext_.data() : nullptr;
}

void CompiledSampler::BuildBoundsTables() {
  dim_ = domain_->dimension();
  const size_t n = cells_.size();
  slot_lo_.resize(n * static_cast<size_t>(dim_));
  slot_ext_.resize(n * static_cast<size_t>(dim_));
  std::vector<double> lo(dim_);
  std::vector<double> hi(dim_);
  has_bounds_ = true;
  for (size_t s = 0; s < n; ++s) {
    if (!domain_->CellBoundsFor(cells_[s].level, cells_[s].index, lo.data(),
                                hi.data())) {
      has_bounds_ = false;
      slot_lo_.clear();
      slot_ext_.clear();
      RefreshView();
      return;
    }
    double* lo_row = slot_lo_.data() + s * static_cast<size_t>(dim_);
    double* ext_row = slot_ext_.data() + s * static_cast<size_t>(dim_);
    for (int c = 0; c < dim_; ++c) {
      lo_row[c] = lo[c];
      // Exactly the (hi - lo) SampleCell forms per draw, computed once.
      ext_row[c] = hi[c] - lo[c];
    }
  }
  RefreshView();
}

Status CompiledSampler::SampleTo(size_t m, RandomEngine* rng,
                                 PointBatch* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out batch must not be null");
  }
  out->Reset(dim_);
  if (m == 0) return Status::OK();
  out->Reserve(m);
  if (!has_bounds_) {
    // No closed-form cell bounds: per-point sampling into the arena.
    // Draw order is identical by construction.
    for (size_t i = 0; i < m; ++i) out->AppendPoint(Sample(rng));
    return Status::OK();
  }
  // Phase 1 (serial, RNG-ordered): resolve each point's slot and store
  // its raw uniform draws in the arena — exactly the draw sequence of m
  // Sample() calls. Phase 2 (vectorized): the in-cell affine transform
  // u -> lo + ext * u over the whole arena, which is bit-identical to
  // UniformDouble(lo, hi) per coordinate.
  thread_local std::vector<uint32_t> slots;
  slots.resize(m);
  double* rows = out->AppendRows(m);
  const size_t d = static_cast<size_t>(dim_);
  for (size_t i = 0; i < m; ++i) {
    slots[i] = SampleSlot(rng);
    double* row = rows + i * d;
    for (size_t c = 0; c < d; ++c) row[c] = rng->UniformDouble();
  }
  simd::InCellTransform(view_.slot_lo, view_.slot_ext, slots.data(),
                        dim_, m, rows);
  return Status::OK();
}

std::vector<Point> CompiledSampler::SampleBatch(size_t m,
                                                RandomEngine* rng) const {
  PointBatch batch;
  PRIVHP_CHECK(SampleTo(m, rng, &batch).ok());
  return batch.ToPoints();
}

namespace {

// GenerateTo chunk size: the bounded footprint of a streamed generation
// (chunk * dim doubles), large enough that the per-chunk virtual AddAll
// and the phase-2 kernel dispatch amortize away.
constexpr size_t kGenerateChunk = 1024;

}  // namespace

Status CompiledSampler::GenerateTo(size_t m, RandomEngine* rng,
                                   PointSink* sink) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  PointBatch batch;
  for (size_t done = 0; done < m;) {
    const size_t n = std::min(kGenerateChunk, m - done);
    PRIVHP_RETURN_NOT_OK(SampleTo(n, rng, &batch));
    PRIVHP_RETURN_NOT_OK(sink->AddAll(batch));
    done += n;
  }
  return Status::OK();
}

size_t CompiledSampler::MemoryBytes() const {
  return sizeof(*this) + cells_.capacity() * sizeof(CellId) +
         accept_.capacity() * sizeof(double) +
         alias_.capacity() * sizeof(uint32_t) +
         (slot_lo_.capacity() + slot_ext_.capacity()) * sizeof(double);
}

}  // namespace privhp
