#include "hierarchy/compiled_sampler.h"

#include <utility>

#include "common/macros.h"

namespace privhp {

CompiledSampler::CompiledSampler(const PartitionTree& tree)
    : domain_(tree.domain()) {
  std::vector<double> masses;
  for (NodeId id : tree.Leaves()) {
    const TreeNode& n = tree.node(id);
    if (n.count > 0.0) {
      cells_.push_back(n.cell);
      masses.push_back(n.count);
      total_mass_ += n.count;
    }
  }
  if (cells_.empty() || total_mass_ <= 0.0) {
    // Uniform fallback over the whole domain: a single slot holding the
    // root cell, same degenerate behaviour as TreeSampler.
    cells_.assign(1, CellId{0, 0});
    accept_.assign(1, 1.0);
    alias_.assign(1, 0);
    total_mass_ = 0.0;
    return;
  }

  // Vose's alias method: scale masses so the mean slot weight is 1, then
  // pair each underfull slot with an overfull donor. O(n) build, exact
  // (every slot ends with its own probability plus one alias).
  const size_t n = cells_.size();
  PRIVHP_CHECK(n <= static_cast<size_t>(UINT32_MAX));
  accept_.assign(n, 1.0);
  alias_.resize(n);
  for (size_t i = 0; i < n; ++i) alias_[i] = static_cast<uint32_t>(i);

  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_mass_;
  for (size_t i = 0; i < n; ++i) scaled[i] = masses[i] * scale;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    const uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    accept_[s] = scaled[s];
    alias_[s] = l;
    // The donor gives away (1 - scaled[s]) of its weight.
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers (either list) are exactly-full slots up to rounding; their
  // accept probability stays 1, alias self.
  for (uint32_t i : small) accept_[i] = 1.0;
  for (uint32_t i : large) accept_[i] = 1.0;
}

std::vector<Point> CompiledSampler::SampleBatch(size_t m,
                                                RandomEngine* rng) const {
  std::vector<Point> out;
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) out.push_back(Sample(rng));
  return out;
}

Status CompiledSampler::GenerateTo(size_t m, RandomEngine* rng,
                                   PointSink* sink) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  for (size_t i = 0; i < m; ++i) {
    // Sample() returns a prvalue, so this lands on Add(Point&&): the
    // point allocated inside SampleCell is handed to the sink untouched.
    PRIVHP_RETURN_NOT_OK(sink->Add(Sample(rng)));
  }
  return Status::OK();
}

size_t CompiledSampler::MemoryBytes() const {
  return sizeof(*this) + cells_.capacity() * sizeof(CellId) +
         accept_.capacity() * sizeof(double) +
         alias_.capacity() * sizeof(uint32_t);
}

}  // namespace privhp
