#include "hierarchy/consistency.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace privhp {

ConsistencyCase EnforceConsistencyAt(PartitionTree* tree, NodeId id) {
  TreeNode& parent = tree->node(id);
  PRIVHP_CHECK(!parent.is_leaf());
  TreeNode& left = tree->node(parent.left);
  TreeNode& right = tree->node(parent.right);

  // Error Correction Type 1: clamp negative child counts (Line 3).
  if (left.count < 0.0) left.count = 0.0;
  if (right.count < 0.0) right.count = 0.0;

  // Lambda: surplus (>0) or deficit (<0) of the children vs the parent.
  const double lambda = left.count + right.count - parent.count;

  const double half = lambda / 2.0;
  if (std::min(left.count - half, right.count - half) < 0.0) {
    // Error Correction Type 2 (Line 6): the smaller child is zeroed and
    // the larger inherits the full parent count.
    if (left.count <= right.count) {
      left.count = 0.0;
      right.count = parent.count;
    } else {
      right.count = 0.0;
      left.count = parent.count;
    }
    return ConsistencyCase::kType2Correction;
  }
  // Even redistribution (Equation 2).
  left.count -= half;
  right.count -= half;
  return ConsistencyCase::kEvenSplit;
}

void EnforceConsistencyTree(PartitionTree* tree) {
  // The paper's analysis treats a negative root mass via Lemma 9's
  // |lambda_root| term; operationally we clamp it so the non-negativity
  // invariant holds throughout the tree.
  TreeNode& root = tree->node(tree->root());
  if (root.count < 0.0) root.count = 0.0;
  tree->PreOrder([&](NodeId id) {
    if (!tree->node(id).is_leaf()) EnforceConsistencyAt(tree, id);
  });
}

double ConsistencyErrorMagnitude(double lambda_left, double lambda_right,
                                 double approx_left, double approx_right) {
  return std::abs(lambda_left - lambda_right + approx_left - approx_right) /
         2.0;
}

}  // namespace privhp
