#include "hierarchy/partition_tree.h"

#include <cmath>

#include "common/bits.h"
#include "common/macros.h"

namespace privhp {

PartitionTree::PartitionTree(const Domain* domain) : domain_(domain) {
  PRIVHP_CHECK(domain_ != nullptr);
  nodes_.push_back(TreeNode{CellId{0, 0}, 0.0, kInvalidNode, kInvalidNode,
                            kInvalidNode});
}

Result<PartitionTree> PartitionTree::Complete(const Domain* domain,
                                              int depth) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  if (depth < 0 || depth > domain->max_level()) {
    return Status::InvalidArgument(
        "complete tree depth " + std::to_string(depth) +
        " outside [0, " + std::to_string(domain->max_level()) + "]");
  }
  if (depth > 30) {
    return Status::OutOfRange(
        "complete tree of depth " + std::to_string(depth) +
        " would allocate 2^" + std::to_string(depth + 1) + " nodes");
  }
  PartitionTree tree(domain);
  // Breadth-first expansion; the arena then stores levels contiguously.
  std::vector<NodeId> frontier = {tree.root()};
  for (int level = 0; level < depth; ++level) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * 2);
    for (NodeId id : frontier) {
      const NodeId left = tree.AddChildren(id);
      next.push_back(left);
      next.push_back(left + 1);
    }
    frontier = std::move(next);
  }
  return tree;
}

NodeId PartitionTree::AddChildren(NodeId id) {
  PRIVHP_DCHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  PRIVHP_DCHECK(nodes_[id].is_leaf());
  const CellId cell = nodes_[id].cell;
  const NodeId left = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(TreeNode{cell.Left(), 0.0, kInvalidNode, kInvalidNode, id});
  nodes_.push_back(
      TreeNode{cell.Right(), 0.0, kInvalidNode, kInvalidNode, id});
  nodes_[id].left = left;
  nodes_[id].right = left + 1;
  return left;
}

NodeId PartitionTree::Find(CellId cell) const {
  NodeId id = root();
  for (int l = 0; l < cell.level; ++l) {
    const TreeNode& n = nodes_[id];
    if (n.is_leaf()) return kInvalidNode;
    id = PrefixBit(cell.index, cell.level, l) ? n.right : n.left;
  }
  return id;
}

std::vector<NodeId> PartitionTree::NodesAtLevel(int level) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].cell.level == level) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> PartitionTree::Leaves() const {
  std::vector<NodeId> out;
  PreOrder([&](NodeId id) {
    if (nodes_[id].is_leaf()) out.push_back(id);
  });
  return out;
}

int PartitionTree::MaxDepth() const {
  int depth = 0;
  for (const TreeNode& n : nodes_) depth = std::max(depth, n.cell.level);
  return depth;
}

void PartitionTree::PreOrder(const std::function<void(NodeId)>& fn) const {
  std::vector<NodeId> stack = {root()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    fn(id);
    const TreeNode& n = nodes_[id];
    if (!n.is_leaf()) {
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
}

Status PartitionTree::MergeCounts(const PartitionTree& other) {
  if (other.nodes_.size() != nodes_.size()) {
    return Status::InvalidArgument(
        "cannot merge trees with different node counts: " +
        std::to_string(nodes_.size()) + " vs " +
        std::to_string(other.nodes_.size()));
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& a = nodes_[i];
    const TreeNode& b = other.nodes_[i];
    if (!(a.cell == b.cell) || a.left != b.left || a.right != b.right) {
      return Status::InvalidArgument(
          "cannot merge trees with different structure at node " +
          std::to_string(i));
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].count += other.nodes_[i].count;
  }
  return Status::OK();
}

size_t PartitionTree::MemoryBytes() const {
  return nodes_.size() * sizeof(TreeNode) + sizeof(*this);
}

Status PartitionTree::Validate(double tolerance) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    const bool has_left = n.left != kInvalidNode;
    const bool has_right = n.right != kInvalidNode;
    if (has_left != has_right) {
      return Status::Internal("node " + std::to_string(i) +
                              " has exactly one child");
    }
    if (n.count < -tolerance) {
      return Status::Internal("node " + std::to_string(i) +
                              " has negative count " +
                              std::to_string(n.count));
    }
    if (has_left) {
      const TreeNode& l = nodes_[n.left];
      const TreeNode& r = nodes_[n.right];
      if (!(l.cell == n.cell.Left()) || !(r.cell == n.cell.Right())) {
        return Status::Internal("node " + std::to_string(i) +
                                " children are not its cell halves");
      }
      if (std::abs(l.count + r.count - n.count) >
          tolerance * std::max(1.0, std::abs(n.count))) {
        return Status::Internal(
            "node " + std::to_string(i) + " violates consistency: " +
            std::to_string(l.count) + " + " + std::to_string(r.count) +
            " != " + std::to_string(n.count));
      }
    }
  }
  return Status::OK();
}

}  // namespace privhp
