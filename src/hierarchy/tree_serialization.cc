#include "hierarchy/tree_serialization.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "io/file_util.h"

namespace privhp {

namespace {
// v1 header: magic, domain name (informational), node count.
// v2 header: magic, domain name, dimension — both validated on load so a
// tree cannot be sampled through the wrong domain (e.g. a dim-1 tree
// loaded as dim-2 would fabricate coordinates).
constexpr char kMagicV1[] = "privhp-tree-v1";
constexpr const char* kMagicV2 = kTreeMagicV2;
}  // namespace

Result<PartitionTree> LoadTree(const Domain* domain, std::istream* is) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  std::string magic;
  if (!std::getline(*is, magic) ||
      (magic != kMagicV1 && magic != kMagicV2)) {
    return Status::IOError("bad tree header (expected '" +
                           std::string(kMagicV1) + "' or '" +
                           std::string(kMagicV2) + "')");
  }
  std::string domain_name;
  if (!std::getline(*is, domain_name)) {
    return Status::IOError("missing domain line");
  }
  if (domain_name != domain->Name()) {
    return Status::InvalidArgument(
        "tree was serialized over domain '" + domain_name +
        "' but is being loaded over '" + domain->Name() +
        "'; samples would be fabricated");
  }
  if (magic == kMagicV2) {
    int dimension = 0;
    if (!((*is) >> dimension)) {
      return Status::IOError("missing dimension line");
    }
    if (dimension != domain->dimension()) {
      return Status::InvalidArgument(
          "tree was serialized with dimension " + std::to_string(dimension) +
          " but the loading domain has dimension " +
          std::to_string(domain->dimension()));
    }
  }
  size_t num_nodes = 0;
  if (!((*is) >> num_nodes) || num_nodes == 0) {
    return Status::IOError("missing or zero node count");
  }

  // Rebuild by replaying the arena. Node 0 must be the root; children
  // always carry larger ids than parents (arena append order), so a single
  // forward pass with AddChildren in recorded order reconstructs the exact
  // arena when we process parents in id order.
  struct RawNode {
    int level;
    uint64_t index;
    double count;
    NodeId left;
    NodeId right;
  };
  std::vector<RawNode> raw(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    RawNode& r = raw[i];
    if (!((*is) >> r.level >> r.index >> r.count >> r.left >> r.right)) {
      return Status::IOError("truncated tree at node " + std::to_string(i));
    }
  }

  // Arena replay: children occupy consecutive slots in append order, so
  // replaying AddChildren on parents ordered by their recorded left-child
  // id reconstructs the exact arena (parents always precede children, but
  // sibling pairs need not follow their parent immediately —
  // GrowPartition appends them in hot-node order).
  std::vector<size_t> parents;
  for (size_t i = 0; i < num_nodes; ++i) {
    const bool has_left = raw[i].left != kInvalidNode;
    const bool has_right = raw[i].right != kInvalidNode;
    if (has_left != has_right) {
      return Status::IOError("node " + std::to_string(i) +
                             " has exactly one child");
    }
    if (has_left) {
      if (raw[i].right != raw[i].left + 1 || raw[i].left <= 0 ||
          static_cast<size_t>(raw[i].right) >= num_nodes) {
        return Status::IOError("node " + std::to_string(i) +
                               " has malformed child ids");
      }
      parents.push_back(i);
    }
  }
  std::sort(parents.begin(), parents.end(),
            [&](size_t a, size_t b) { return raw[a].left < raw[b].left; });

  PartitionTree tree(domain);
  for (size_t p : parents) {
    if (static_cast<size_t>(raw[p].left) != tree.num_nodes() ||
        p >= tree.num_nodes()) {
      return Status::IOError("node " + std::to_string(p) +
                             " children out of arena order");
    }
    tree.AddChildren(static_cast<NodeId>(p));
  }
  if (tree.num_nodes() != num_nodes) {
    return Status::IOError("arena replay produced " +
                           std::to_string(tree.num_nodes()) +
                           " nodes, file declared " +
                           std::to_string(num_nodes));
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    TreeNode& n = tree.node(static_cast<NodeId>(i));
    if (n.cell.level != raw[i].level || n.cell.index != raw[i].index ||
        n.left != raw[i].left || n.right != raw[i].right) {
      return Status::IOError("node " + std::to_string(i) +
                             " does not match the replayed arena");
    }
    n.count = raw[i].count;
  }
  return tree;
}

Status SaveTreeToFile(const PartitionTree& tree, const std::string& path) {
  // Serialize into memory, then write temp + fsync + rename (in binary,
  // byte-exact): a crash mid-save can no longer truncate an existing
  // artifact in place, and a failed save leaves no partial file behind.
  std::ostringstream os;
  PRIVHP_RETURN_NOT_OK(SaveTree(tree, &os));
  return WriteFileAtomic(path, os.str());
}

Result<PartitionTree> LoadTreeFromFile(const Domain* domain,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  return LoadTree(domain, &in);
}

}  // namespace privhp
