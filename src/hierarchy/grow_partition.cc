#include "hierarchy/grow_partition.h"

#include <algorithm>

#include "common/macros.h"
#include "hierarchy/consistency.h"

namespace privhp {

namespace {

// Top-k node ids by count, descending; ties broken by cell index so runs
// are deterministic. If k >= candidates, all survive.
std::vector<NodeId> SelectTopK(const PartitionTree& tree,
                               std::vector<NodeId> candidates, size_t k) {
  auto hotter = [&](NodeId a, NodeId b) {
    const TreeNode& na = tree.node(a);
    const TreeNode& nb = tree.node(b);
    if (na.count != nb.count) return na.count > nb.count;
    return na.cell.index < nb.cell.index;
  };
  if (candidates.size() > k) {
    std::nth_element(candidates.begin(), candidates.begin() + k,
                     candidates.end(), hotter);
    candidates.resize(k);
  }
  std::sort(candidates.begin(), candidates.end(), hotter);
  return candidates;
}

}  // namespace

Status GrowPartition(PartitionTree* tree, const LevelFrequencySource& source,
                     const GrowOptions& options) {
  if (options.l_star < 0 || options.grow_to < options.l_star) {
    return Status::InvalidArgument(
        "GrowPartition requires 0 <= l_star <= grow_to");
  }
  if (options.grow_to > tree->domain()->max_level()) {
    return Status::OutOfRange("grow_to exceeds domain max level");
  }
  if (options.grow_to > options.l_star && options.k == 0) {
    return Status::InvalidArgument("k must be >= 1 to grow below l_star");
  }
  // The initial tree must be complete to exactly l_star.
  if (tree->MaxDepth() != options.l_star ||
      tree->num_nodes() != (size_t{2} << options.l_star) - 1) {
    return Status::FailedPrecondition(
        "GrowPartition expects a complete tree of depth l_star");
  }

  // Line 2: depth-first consistency over the initial tree.
  if (options.enforce_consistency) EnforceConsistencyTree(tree);

  // Line 3: every level-L* node starts hot.
  std::vector<NodeId> hot = tree->NodesAtLevel(options.l_star);

  // Lines 4-10: expand hot nodes one level at a time.
  for (int level = options.l_star + 1; level <= options.grow_to; ++level) {
    std::vector<NodeId> added;
    added.reserve(hot.size() * 2);
    for (NodeId id : hot) {
      const NodeId left = tree->AddChildren(id);
      const TreeNode& parent = tree->node(id);
      tree->node(left).count =
          source.Query(level, tree->node(left).cell.index);
      tree->node(left + 1).count =
          source.Query(level, tree->node(left + 1).cell.index);
      (void)parent;
      // Line 9: make the two fresh estimates consistent with their parent.
      if (options.enforce_consistency) EnforceConsistencyAt(tree, id);
      added.push_back(left);
      added.push_back(left + 1);
    }
    // Line 10: the next hot set is the top-k of the new level.
    if (level < options.grow_to) {
      hot = SelectTopK(*tree, std::move(added), options.k);
    }
  }
  return Status::OK();
}

}  // namespace privhp
