// GrowPartition (paper Algorithm 2): extends the depth-L* tree of noisy
// exact counters down to the hierarchy depth, branching only at "hot"
// nodes — the top-k counts per level — with child counts queried from the
// per-level frequency source (the private sketches in Algorithm 1, or
// exact counts in the T_exact/T_approx proof-pipeline harness of
// Section 7).

#ifndef PRIVHP_HIERARCHY_GROW_PARTITION_H_
#define PRIVHP_HIERARCHY_GROW_PARTITION_H_

#include <cstdint>

#include "common/status.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Supplier of (noisy, approximate) level-wise frequencies:
/// Query(l, theta) estimates |Omega_theta ∩ X| for theta in {0,1}^l.
class LevelFrequencySource {
 public:
  virtual ~LevelFrequencySource() = default;
  virtual double Query(int level, uint64_t index) const = 0;
};

/// \brief Parameters of the growing phase.
struct GrowOptions {
  /// Pruning parameter: branches kept per level below l_star.
  size_t k = 8;
  /// Level where pruning begins (the initial tree is complete to here).
  int l_star = 4;
  /// Final leaf level. Algorithm 2 grows to L-1; the caller passes that
  /// value here (kept explicit so ablations can grow to L instead).
  int grow_to = 8;
  /// Whether to run the consistency steps (Algorithm 2 Lines 2 and 9).
  /// Disabled only by the EXP-CONS ablation.
  bool enforce_consistency = true;
};

/// \brief Runs Algorithm 2 on \p tree.
///
/// Preconditions: \p tree is complete to level `l_star` (leaves exactly at
/// l_star) with counts already populated. On success the tree's leaves lie
/// between l_star and grow_to and all counts are consistent (when
/// enforce_consistency).
Status GrowPartition(PartitionTree* tree, const LevelFrequencySource& source,
                     const GrowOptions& options);

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_GROW_PARTITION_H_
