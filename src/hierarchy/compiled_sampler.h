// O(1)-per-draw sampler compiled from a decomposition tree.
//
// A consistent tree is a categorical distribution over its leaf cells, so
// the root-to-leaf walk (tree_sampler.h) can be compiled once into a Vose
// alias table over the positive-mass leaves: every draw is then one
// uniform slot pick plus one biased coin, independent of tree depth, with
// no pointer chasing through the node arena. Zero-mass leaves never enter
// the table, so the compiled sampler is structurally incapable of
// emitting points from cells the released distribution assigns zero
// probability (the edge case the walk needs explicit guards for).
//
// Compilation is deterministic (leaves are taken in pre-order), so a
// fixed seed yields a fixed output stream — but the draw sequence is NOT
// byte-compatible with the legacy walk's (sampler format v2; see
// docs/ARCHITECTURE.md "Sampler determinism & versioning").
//
// The hot path reads the table through a CompiledTableView — raw pointers
// plus a slot count. Normally the view points at the sampler's own
// vectors, but Borrow() wraps a table that lives elsewhere (the alias
// sections of a memory-mapped paged artifact, storage/paged_artifact.h),
// so serving a packed file never copies or rebuilds the table. The draw
// code is shared, so owned and borrowed samplers are bit-identical for
// the same table bytes.
//
// Like everything downstream of the released tree, this is privacy-free
// post-processing (Lemma 2).

#ifndef PRIVHP_HIERARCHY_COMPILED_SAMPLER_H_
#define PRIVHP_HIERARCHY_COMPILED_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "domain/domain.h"
#include "hierarchy/partition_tree.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief Borrowed, read-only view of a compiled alias table: the arrays
/// the draw loop actually touches. slot_lo/slot_ext are the per-slot
/// in-cell bounds rows (num_slots * dim doubles each) for the columnar
/// transform; both are null when the domain has no closed-form cell
/// bounds. The packer serializes exactly these arrays, so a paged
/// artifact round-trips the table bit-for-bit.
struct CompiledTableView {
  const CellId* cells = nullptr;
  const double* accept = nullptr;
  const uint32_t* alias = nullptr;
  size_t num_slots = 0;
  const double* slot_lo = nullptr;
  const double* slot_ext = nullptr;
};

/// \brief Alias-table batch sampler over a tree's leaf-cell distribution.
///
/// Self-contained when built from a tree: construction copies the leaf
/// cells and masses out of the tree, so the tree may be mutated or
/// destroyed afterwards — only the Domain must outlive the sampler. If
/// the tree's total positive leaf mass is <= 0 (possible at extreme
/// privacy noise), sampling falls back to uniform over the whole domain,
/// matching TreeSampler. A Borrow()ed sampler additionally requires the
/// viewed arrays to outlive it.
class CompiledSampler {
 public:
  /// \brief Compiles the alias table from \p tree's leaves (O(#leaves)).
  explicit CompiledSampler(const PartitionTree& tree);

  /// \brief Wraps an already-compiled table without copying it (e.g. the
  /// alias sections of an mmapped paged artifact). \p view's arrays must
  /// outlive the sampler and must hold bytes a tree-compiling
  /// construction would have produced — then every draw is bit-identical
  /// to the owning sampler's. \p total_mass is the positive leaf mass
  /// the table was built from (0 on the uniform fallback).
  static CompiledSampler Borrow(const Domain* domain,
                                const CompiledTableView& view,
                                double total_mass);

  // An owning sampler's view points into its own vectors, so copies must
  // re-point the view at the copied storage; moves keep the heap buffers
  // and need no fixup. Borrowed samplers share the external arrays.
  CompiledSampler(const CompiledSampler& other);
  CompiledSampler& operator=(const CompiledSampler& other);
  CompiledSampler(CompiledSampler&& other) = default;
  CompiledSampler& operator=(CompiledSampler&& other) = default;

  /// \brief The alias-table slot one draw lands in: O(1), two RNG draws
  /// (the uniform slot pick, then the biased coin).
  uint32_t SampleSlot(RandomEngine* rng) const {
    const uint64_t i = rng->UniformInt(view_.num_slots);
    const double u = rng->UniformDouble();
    return static_cast<uint32_t>(u < view_.accept[i] ? i : view_.alias[i]);
  }

  /// \brief The leaf cell one draw lands in.
  CellId SampleLeafCell(RandomEngine* rng) const {
    return view_.cells[SampleSlot(rng)];
  }

  /// \brief One synthetic point (leaf cell draw + uniform within cell).
  Point Sample(RandomEngine* rng) const {
    const CellId cell = SampleLeafCell(rng);
    return domain_->SampleCell(cell.level, cell.index, rng);
  }

  /// \brief Appends \p m synthetic points to \p out (reset to the
  /// domain's dimension first) — the columnar hot path. The RNG draw
  /// order is exactly m Sample() calls (per point: slot pick, coin, then
  /// one uniform per coordinate), so the output is bit-identical to the
  /// scalar path; only the in-cell affine transform is deferred and run
  /// vectorized over the arena (common/simd.h), using per-slot bounds
  /// tables precompiled via Domain::CellBoundsFor. Domains without
  /// closed-form cell bounds fall back to per-point Sample() into the
  /// arena (same draws, trivially identical).
  Status SampleTo(size_t m, RandomEngine* rng, PointBatch* out) const;

  /// \brief \p m synthetic points. Draws the same sequence as m calls to
  /// Sample() and as GenerateTo() under the same rng state.
  std::vector<Point> SampleBatch(size_t m, RandomEngine* rng) const;

  /// \brief Streams \p m points into \p sink without materializing them
  /// all: points travel in reused columnar chunks through
  /// PointSink::AddAll(PointBatch) — the serve-side hot path (zero
  /// per-point allocation between sampler and a batching sink). Same
  /// draw sequence as m Sample() calls.
  Status GenerateTo(size_t m, RandomEngine* rng, PointSink* sink) const;

  /// \brief Positive-mass leaf cells in the table (1 on the uniform
  /// fallback).
  size_t num_cells() const { return view_.num_slots; }

  /// \brief Sum of positive leaf masses the table was built from (0 on
  /// the uniform fallback).
  double total_mass() const { return total_mass_; }

  const Domain* domain() const { return domain_; }

  /// \brief The table arrays the draw loop reads — what the artifact
  /// packer serializes.
  const CompiledTableView& view() const { return view_; }

  /// \brief True iff the table is borrowed rather than owned.
  bool borrowed() const { return borrowed_; }

  /// \brief Bytes held by the compiled table (the owned storage only; a
  /// borrowed sampler holds pointers into someone else's bytes).
  size_t MemoryBytes() const;

 private:
  CompiledSampler() = default;

  /// Precomputes slot_lo_/slot_ext_ from the domain's closed-form cell
  /// bounds; sets has_bounds_ = false (per-point fallback) if the domain
  /// has none.
  void BuildBoundsTables();

  /// Points view_ at the owned vectors.
  void RefreshView();

  const Domain* domain_ = nullptr;
  std::vector<CellId> cells_;     // positive-mass leaves, pre-order
  std::vector<double> accept_;    // Vose acceptance probability per slot
  std::vector<uint32_t> alias_;   // Vose alias slot
  double total_mass_ = 0.0;
  // Per-slot in-cell affine tables for the columnar path: slot s spans
  // [slot_lo_[s*d+c], slot_lo_[s*d+c] + slot_ext_[s*d+c]) along
  // coordinate c, with the extent precomputed as exactly the hi - lo
  // difference SampleCell forms per draw (bit-identity; common/simd.h).
  int dim_ = 0;
  bool has_bounds_ = false;
  std::vector<double> slot_lo_;
  std::vector<double> slot_ext_;
  bool borrowed_ = false;
  CompiledTableView view_;
};

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_COMPILED_SAMPLER_H_
