// Persistence for decomposition trees. A released PrivHP tree is the
// private artifact (everything derived from it is post-processing), so
// saving and reloading it is how a deployment ships a generator without
// retaining the stream.
//
// Format: line-oriented text — a header with a magic string, the domain
// name, the domain dimension (since v2) and node count, then one `level
// index count left right` line per node in arena order. Self-validating
// on load: structure is checked, and the domain name/dimension must match
// the loading domain (v1 files validate the name only).
//
// SaveTreeGeneric writes the same bytes from any TreeLike — a type with
// root()/num_nodes()/domain() and node(NodeId) returning TreeNode fields
// (by value or reference). PartitionTree and the paged artifact's
// in-place view both qualify, which is what makes a served paged
// artifact's EXPORT byte-identical to the heap path's.
//
// File writes go through io/file_util.h: the bytes are staged in a temp
// file and renamed over the target, so a crash mid-save can never leave
// a truncated artifact behind an existing name.

#ifndef PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_
#define PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_

#include <iosfwd>
#include <limits>
#include <ostream>
#include <string>

#include "common/status.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Magic line opening a v2 tree file.
inline constexpr char kTreeMagicV2[] = "privhp-tree-v2";

/// \brief Writes \p tree to \p os in format v2. Returns IOError on
/// stream failure. Works for any TreeLike (see file comment); the bytes
/// depend only on the node records, so every view of the same artifact
/// serializes identically.
template <typename TreeLike>
Status SaveTreeGeneric(const TreeLike& tree, std::ostream* os) {
  (*os) << kTreeMagicV2 << "\n";
  (*os) << tree.domain()->Name() << "\n";
  (*os) << tree.domain()->dimension() << "\n";
  (*os) << tree.num_nodes() << "\n";
  os->precision(std::numeric_limits<double>::max_digits10);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto& n = tree.node(static_cast<NodeId>(i));
    (*os) << n.cell.level << " " << n.cell.index << " " << n.count << " "
          << n.left << " " << n.right << "\n";
  }
  if (!os->good()) return Status::IOError("failed writing tree stream");
  return Status::OK();
}

/// \brief Writes \p tree to \p os. Returns IOError on stream failure.
inline Status SaveTree(const PartitionTree& tree, std::ostream* os) {
  return SaveTreeGeneric(tree, os);
}

/// \brief Reads a tree over \p domain from \p is. Validates structure
/// (child cells are cell halves, node ids in range) before returning.
Result<PartitionTree> LoadTree(const Domain* domain, std::istream* is);

/// \brief File-based convenience wrappers. SaveTreeToFile stages the
/// bytes in a temp file and atomically renames over \p path.
Status SaveTreeToFile(const PartitionTree& tree, const std::string& path);
Result<PartitionTree> LoadTreeFromFile(const Domain* domain,
                                       const std::string& path);

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_
