// Persistence for decomposition trees. A released PrivHP tree is the
// private artifact (everything derived from it is post-processing), so
// saving and reloading it is how a deployment ships a generator without
// retaining the stream.
//
// Format: line-oriented text — a header with a magic string, the domain
// name, the domain dimension (since v2) and node count, then one `level
// index count left right` line per node in arena order. Self-validating
// on load: structure is checked, and the domain name/dimension must match
// the loading domain (v1 files validate the name only).

#ifndef PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_
#define PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief Writes \p tree to \p os. Returns IOError on stream failure.
Status SaveTree(const PartitionTree& tree, std::ostream* os);

/// \brief Reads a tree over \p domain from \p is. Validates structure
/// (child cells are cell halves, node ids in range) before returning.
Result<PartitionTree> LoadTree(const Domain* domain, std::istream* is);

/// \brief File-based convenience wrappers.
Status SaveTreeToFile(const PartitionTree& tree, const std::string& path);
Result<PartitionTree> LoadTreeFromFile(const Domain* domain,
                                       const std::string& path);

}  // namespace privhp

#endif  // PRIVHP_HIERARCHY_TREE_SERIALIZATION_H_
