#include "baselines/pmm.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/macros.h"
#include "hierarchy/consistency.h"

namespace privhp {

Result<std::unique_ptr<TreeSource>> BuildPmm(const Domain* domain,
                                             const std::vector<Point>& data,
                                             const PmmOptions& options) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.empty()) {
    return Status::InvalidArgument("PMM requires a non-empty dataset");
  }

  int depth = options.depth;
  if (depth < 0) {
    const double eps_n =
        std::max(2.0, options.epsilon * static_cast<double>(data.size()));
    depth = CeilLog2(static_cast<uint64_t>(std::llround(eps_n)));
  }
  depth = std::clamp(depth, 1, std::min(22, domain->max_level()));

  PRIVHP_ASSIGN_OR_RETURN(PartitionTree tree,
                          PartitionTree::Complete(domain, depth));

  // Exact counts along every root-to-leaf path (full dataset access — the
  // O(eps n) memory cost Table 1 charges PMM with).
  std::vector<uint64_t> path;
  for (const Point& x : data) {
    PRIVHP_RETURN_NOT_OK(domain->ValidatePoint(x));
    domain->LocatePath(x, depth, &path);
    for (int l = 0; l <= depth; ++l) {
      // Complete BFS arena: level l occupies [2^l - 1, 2^{l+1} - 1).
      const NodeId id =
          static_cast<NodeId>(((uint64_t{1} << l) - 1) + path[l]);
      tree.node(id).count += 1.0;
    }
  }

  // Per-level Laplace with the optimal split (He et al. Theorem 11; our
  // Lemma 5 with no sketch levels: l_star = depth).
  PRIVHP_ASSIGN_OR_RETURN(
      BudgetPlan budget,
      AllocateBudget(*domain, options.epsilon, depth, depth, /*k=*/1,
                     /*sketch_depth=*/1, options.budget_policy));
  RandomEngine rng(options.seed);
  for (int l = 0; l <= depth; ++l) {
    const double scale = 1.0 / budget.sigma[l];
    const uint64_t level_size = uint64_t{1} << l;
    for (uint64_t i = 0; i < level_size; ++i) {
      const NodeId id = static_cast<NodeId>(((uint64_t{1} << l) - 1) + i);
      tree.node(id).count += rng.Laplace(scale);
    }
  }

  if (options.enforce_consistency) EnforceConsistencyTree(&tree);

  const size_t build_memory = tree.MemoryBytes();
  return std::make_unique<TreeSource>("pmm", std::move(tree), build_memory);
}

}  // namespace privhp
