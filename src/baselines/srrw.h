// SRRW — the super-regular random walk mechanism of Boedihardjo, Strohmer
// & Vershynin ("Private measures, random walks, and synthetic data"),
// Table 1's near-optimal d = 1 comparator.
//
// The original is specified analytically (perturb the empirical CDF with a
// super-regular random walk built from a dyadic Laplace ensemble); no
// reference implementation exists. We implement the standard dyadic
// construction (DESIGN.md Section 4): noisy dyadic aggregates of the
// empirical measure at resolution eps*n with a uniform per-level budget
// split, consistency, and inverse-CDF sampling. This matches the SRRW
// error profile polylog(eps n)/(eps n) at d = 1.
//
// For d = 2 the construction is lifted through the Hilbert curve: data is
// ordered along the curve, the 1-D mechanism runs on curve positions, and
// samples are mapped back — preserving the (eps n)^{-1/d} scaling up to
// the curve's locality constants.

#ifndef PRIVHP_BASELINES_SRRW_H_
#define PRIVHP_BASELINES_SRRW_H_

#include <memory>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/status.h"

namespace privhp {

/// \brief SRRW build parameters.
struct SrrwOptions {
  double epsilon = 1.0;
  /// Dyadic resolution level (cells = 2^level); -1 = ceil(log2(eps n)),
  /// clamped to [1, 22].
  int resolution_level = -1;
  uint64_t seed = 42;
};

/// \brief Builds the SRRW-style generator on [0,1] (d = 1) or on [0,1]^2
/// via the Hilbert lift (d = 2). \p d must be 1 or 2.
Result<std::unique_ptr<SyntheticDataSource>> BuildSrrw(
    int d, const std::vector<Point>& data, const SrrwOptions& options);

}  // namespace privhp

#endif  // PRIVHP_BASELINES_SRRW_H_
