// Common interface for every synthetic-data generator in the Table-1
// comparison: PrivHP, PMM, SRRW, Smooth, the flat DP histogram and the
// non-private resampling control. A source reports the memory its build
// required, which is the second axis of Table 1.

#ifndef PRIVHP_BASELINES_SYNTHETIC_SOURCE_H_
#define PRIVHP_BASELINES_SYNTHETIC_SOURCE_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "domain/domain.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/partition_tree.h"

namespace privhp {

/// \brief A mechanism output that can generate synthetic datasets.
class SyntheticDataSource {
 public:
  virtual ~SyntheticDataSource() = default;

  /// \brief Generates \p m synthetic points.
  virtual std::vector<Point> Generate(size_t m, RandomEngine* rng) const = 0;

  /// \brief Peak working memory of the mechanism that produced this
  /// source (the Table-1 "Memory" column), in bytes.
  virtual size_t BuildMemoryBytes() const = 0;

  /// \brief Display name for tables.
  virtual std::string Name() const = 0;
};

/// \brief A SyntheticDataSource backed by a decomposition tree (used by
/// PMM, SRRW's dyadic construction, and the PrivHP adapter).
class TreeSource : public SyntheticDataSource {
 public:
  /// \param build_memory_bytes Peak memory of the build phase (for PMM
  ///        that's the full tree; for PrivHP the bounded-memory builder).
  TreeSource(std::string name, PartitionTree tree, size_t build_memory_bytes);

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override;
  size_t BuildMemoryBytes() const override { return build_memory_bytes_; }
  std::string Name() const override { return name_; }

  const PartitionTree& tree() const { return tree_; }

 private:
  std::string name_;
  PartitionTree tree_;
  // Compiled once at construction so repeated Generate() calls (the
  // Table-1 harness samples every source many times) never rebuild
  // sampler state.
  CompiledSampler sampler_;
  size_t build_memory_bytes_;
};

}  // namespace privhp

#endif  // PRIVHP_BASELINES_SYNTHETIC_SOURCE_H_
