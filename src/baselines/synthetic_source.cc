#include "baselines/synthetic_source.h"

namespace privhp {

TreeSource::TreeSource(std::string name, PartitionTree tree,
                       size_t build_memory_bytes)
    : name_(std::move(name)),
      tree_(std::move(tree)),
      sampler_(tree_),
      build_memory_bytes_(build_memory_bytes) {}

std::vector<Point> TreeSource::Generate(size_t m, RandomEngine* rng) const {
  return sampler_.SampleBatch(m, rng);
}

}  // namespace privhp
