#include "baselines/synthetic_source.h"

#include "hierarchy/tree_sampler.h"

namespace privhp {

TreeSource::TreeSource(std::string name, PartitionTree tree,
                       size_t build_memory_bytes)
    : name_(std::move(name)),
      tree_(std::move(tree)),
      build_memory_bytes_(build_memory_bytes) {}

std::vector<Point> TreeSource::Generate(size_t m, RandomEngine* rng) const {
  return TreeSampler(&tree_).SampleBatch(m, rng);
}

}  // namespace privhp
