#include "baselines/nonprivate.h"

#include <utility>

#include "common/macros.h"
#include "core/builder.h"

namespace privhp {

NonPrivateResampler::NonPrivateResampler(std::vector<Point> data)
    : data_(std::move(data)) {
  PRIVHP_CHECK(!data_.empty());
}

Status NonPrivateResampler::Add(const Point& x) {
  data_.push_back(x);
  return Status::OK();
}

Status NonPrivateResampler::Add(Point&& x) {
  data_.push_back(std::move(x));
  return Status::OK();
}

std::vector<Point> NonPrivateResampler::Generate(size_t m,
                                                 RandomEngine* rng) const {
  std::vector<Point> out;
  if (data_.empty()) return out;
  out.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    out.push_back(data_[rng->UniformInt(data_.size())]);
  }
  return out;
}

size_t NonPrivateResampler::BuildMemoryBytes() const {
  size_t bytes = sizeof(*this);
  if (!data_.empty()) {
    bytes += data_.size() * (sizeof(Point) + data_[0].size() * sizeof(double));
  }
  return bytes;
}

namespace {

class PrivHPSource : public SyntheticDataSource {
 public:
  PrivHPSource(PrivHPGenerator generator, size_t peak_builder_bytes)
      : generator_(std::move(generator)),
        peak_builder_bytes_(peak_builder_bytes) {}

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override {
    return generator_.Generate(m, rng);
  }
  size_t BuildMemoryBytes() const override { return peak_builder_bytes_; }
  std::string Name() const override {
    return "privhp(k=" + std::to_string(generator_.plan().k) + ")";
  }

  const PrivHPGenerator& generator() const { return generator_; }

 private:
  PrivHPGenerator generator_;
  size_t peak_builder_bytes_;
};

}  // namespace

Result<std::unique_ptr<SyntheticDataSource>> BuildPrivHPSource(
    const Domain* domain, const std::vector<Point>& data,
    PrivHPOptions options) {
  if (options.expected_n == 0) {
    options.expected_n = data.size();
  }
  PRIVHP_ASSIGN_OR_RETURN(PrivHPBuilder builder,
                          PrivHPBuilder::Make(domain, options));
  PRIVHP_RETURN_NOT_OK(builder.AddAll(data));
  const size_t peak = builder.MemoryBytes();
  PRIVHP_ASSIGN_OR_RETURN(PrivHPGenerator generator,
                          std::move(builder).Finish());
  return std::unique_ptr<SyntheticDataSource>(
      new PrivHPSource(std::move(generator), peak));
}

}  // namespace privhp
