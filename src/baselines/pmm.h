// PMM — the Private Measure Mechanism of He, Vershynin & Zhu (COLT 2023),
// the paper's state-of-the-art comparator (Table 1).
//
// PMM builds the *complete* hierarchical decomposition to depth
// L = log(eps n) with exact counts (requiring Theta(eps n) memory and full
// dataset access), adds per-level Laplace noise with the optimal budget
// split, enforces consistency and samples. PrivHP is exactly this
// construction with (a) sketched deep levels and (b) top-k pruning; PMM is
// therefore both the accuracy ceiling and the memory anti-baseline.

#ifndef PRIVHP_BASELINES_PMM_H_
#define PRIVHP_BASELINES_PMM_H_

#include <memory>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/status.h"
#include "dp/budget_allocator.h"

namespace privhp {

/// \brief PMM build parameters.
struct PmmOptions {
  double epsilon = 1.0;
  /// Hierarchy depth L; -1 = ceil(log2(eps n)) (clamped to [1, 22] so the
  /// complete tree stays allocatable).
  int depth = -1;
  BudgetPolicy budget_policy = BudgetPolicy::kOptimal;
  bool enforce_consistency = true;
  uint64_t seed = 42;
};

/// \brief Builds a PMM generator over \p data (static, full access).
Result<std::unique_ptr<TreeSource>> BuildPmm(const Domain* domain,
                                             const std::vector<Point>& data,
                                             const PmmOptions& options);

}  // namespace privhp

#endif  // PRIVHP_BASELINES_PMM_H_
