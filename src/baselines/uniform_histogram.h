// Flat DP histogram — the naive baseline: one fixed grid at a single
// resolution, Laplace noise per bucket, no hierarchy, no pruning. Shows
// what the hierarchical machinery buys.

#ifndef PRIVHP_BASELINES_UNIFORM_HISTOGRAM_H_
#define PRIVHP_BASELINES_UNIFORM_HISTOGRAM_H_

#include <memory>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/status.h"

namespace privhp {

/// \brief Flat-histogram build parameters.
struct UniformHistogramOptions {
  double epsilon = 1.0;
  /// Grid level (2^level cells); -1 = ceil(log2(eps n)) clamped to [1,20].
  int level = -1;
  uint64_t seed = 42;
};

/// \brief Builds the flat noisy histogram generator over \p domain.
Result<std::unique_ptr<SyntheticDataSource>> BuildUniformHistogram(
    const Domain* domain, const std::vector<Point>& data,
    const UniformHistogramOptions& options);

}  // namespace privhp

#endif  // PRIVHP_BASELINES_UNIFORM_HISTOGRAM_H_
