// Smooth — a trigonometric-moment generator in the style of Wang et al.
// ("Differentially private data releasing for smooth queries", JMLR 2016),
// Table 1's smooth-query comparator.
//
// The original releases noisy expectations of a smooth-function basis for
// query answering; to make it a *generator* (DESIGN.md Section 4) we
// release noisy cosine moments up to order K per dimension, reconstruct a
// clipped density on a grid, and sample from it. This preserves what
// Table 1 uses the row for: the dimension-cursed accuracy rate and the
// O(d n) build memory.

#ifndef PRIVHP_BASELINES_SMOOTH_H_
#define PRIVHP_BASELINES_SMOOTH_H_

#include <memory>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/status.h"

namespace privhp {

/// \brief Smooth build parameters.
struct SmoothOptions {
  double epsilon = 1.0;
  /// Basis order K per dimension (moments 0..K each axis).
  int order = 8;
  /// Reconstruction grid level (cells = 2^level per side for d = 1;
  /// 2^(level/2) per side for d = 2).
  int grid_level = 12;
  uint64_t seed = 42;
};

/// \brief Builds the Smooth generator for d = 1 or d = 2 over data in
/// [0,1]^d.
Result<std::unique_ptr<SyntheticDataSource>> BuildSmooth(
    int d, const std::vector<Point>& data, const SmoothOptions& options);

}  // namespace privhp

#endif  // PRIVHP_BASELINES_SMOOTH_H_
