#include "baselines/smooth.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"

namespace privhp {

namespace {

constexpr double kPi = 3.14159265358979323846;

// phi_0(t) = 1; phi_j(t) = sqrt(2) cos(pi j t): the orthonormal cosine
// basis on [0,1].
inline double CosBasis(int j, double t) {
  return j == 0 ? 1.0 : std::sqrt(2.0) * std::cos(kPi * j * t);
}

// Density reconstructed on a uniform grid, clipped at zero and
// renormalized; sampling picks a grid cell by mass then jitters uniformly.
class GridDensitySource : public SyntheticDataSource {
 public:
  GridDensitySource(int d, size_t cells_per_side, std::vector<double> mass,
                    size_t build_memory)
      : d_(d),
        cells_per_side_(cells_per_side),
        mass_(std::move(mass)),
        build_memory_(build_memory) {
    cdf_.resize(mass_.size());
    double acc = 0.0;
    for (size_t i = 0; i < mass_.size(); ++i) {
      acc += mass_[i];
      cdf_[i] = acc;
    }
  }

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override {
    std::vector<Point> out;
    out.reserve(m);
    const double inv_side = 1.0 / static_cast<double>(cells_per_side_);
    for (size_t s = 0; s < m; ++s) {
      const double u = rng->UniformDouble() * cdf_.back();
      const size_t cell =
          std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
      Point p(d_);
      size_t rest = cell;
      for (int c = d_ - 1; c >= 0; --c) {
        const size_t coord = rest % cells_per_side_;
        rest /= cells_per_side_;
        p[c] = (static_cast<double>(coord) + rng->UniformDouble()) * inv_side;
      }
      out.push_back(std::move(p));
    }
    return out;
  }

  size_t BuildMemoryBytes() const override { return build_memory_; }
  std::string Name() const override { return "smooth"; }

 private:
  int d_;
  size_t cells_per_side_;
  std::vector<double> mass_;
  std::vector<double> cdf_;
  size_t build_memory_;
};

}  // namespace

Result<std::unique_ptr<SyntheticDataSource>> BuildSmooth(
    int d, const std::vector<Point>& data, const SmoothOptions& options) {
  if (d != 1 && d != 2) {
    return Status::NotImplemented("Smooth baseline supports d = 1 and d = 2");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.empty()) {
    return Status::InvalidArgument("Smooth requires a non-empty dataset");
  }
  if (options.order < 1 || options.order > 64) {
    return Status::InvalidArgument("Smooth order must lie in [1, 64]");
  }

  const int order = options.order;
  const size_t coeffs_per_dim = static_cast<size_t>(order) + 1;
  const size_t num_coeffs =
      d == 1 ? coeffs_per_dim : coeffs_per_dim * coeffs_per_dim;
  const double n = static_cast<double>(data.size());

  // Empirical moments c_alpha = (1/n) sum_i prod_c phi_{alpha_c}(x_{i,c}).
  std::vector<double> moments(num_coeffs, 0.0);
  for (const Point& x : data) {
    if (d == 1) {
      for (size_t j = 0; j < coeffs_per_dim; ++j) {
        moments[j] += CosBasis(static_cast<int>(j), x[0]);
      }
    } else {
      for (size_t j = 0; j < coeffs_per_dim; ++j) {
        const double bj = CosBasis(static_cast<int>(j), x[0]);
        for (size_t l = 0; l < coeffs_per_dim; ++l) {
          moments[j * coeffs_per_dim + l] +=
              bj * CosBasis(static_cast<int>(l), x[1]);
        }
      }
    }
  }
  for (double& c : moments) c /= n;

  // One element changes each moment by at most 2^{d/2}/n in absolute
  // value; with the budget split evenly across coefficients, each gets
  // Laplace(num_coeffs * 2^{d/2} / (n * eps)).
  const double per_coeff_scale = static_cast<double>(num_coeffs) *
                                 std::pow(std::sqrt(2.0), d) /
                                 (n * options.epsilon);
  RandomEngine rng(options.seed);
  for (double& c : moments) c += rng.Laplace(per_coeff_scale);

  // Reconstruct on the grid.
  const int side_bits = d == 1 ? std::min(options.grid_level, 14)
                               : std::min(options.grid_level / 2, 7);
  const size_t side = size_t{1} << side_bits;
  const size_t num_cells = d == 1 ? side : side * side;
  std::vector<double> mass(num_cells, 0.0);
  const double inv_side = 1.0 / static_cast<double>(side);

  // Precompute basis values at cell centers per axis.
  std::vector<double> basis(coeffs_per_dim * side);
  for (size_t j = 0; j < coeffs_per_dim; ++j) {
    for (size_t c = 0; c < side; ++c) {
      basis[j * side + c] =
          CosBasis(static_cast<int>(j), (static_cast<double>(c) + 0.5) *
                                            inv_side);
    }
  }
  if (d == 1) {
    for (size_t c = 0; c < side; ++c) {
      double f = 0.0;
      for (size_t j = 0; j < coeffs_per_dim; ++j) {
        f += moments[j] * basis[j * side + c];
      }
      mass[c] = std::max(0.0, f);
    }
  } else {
    for (size_t cx = 0; cx < side; ++cx) {
      for (size_t cy = 0; cy < side; ++cy) {
        double f = 0.0;
        for (size_t j = 0; j < coeffs_per_dim; ++j) {
          double inner = 0.0;
          for (size_t l = 0; l < coeffs_per_dim; ++l) {
            inner += moments[j * coeffs_per_dim + l] * basis[l * side + cy];
          }
          f += inner * basis[j * side + cx];
        }
        mass[cx * side + cy] = std::max(0.0, f);
      }
    }
  }
  double total = 0.0;
  for (double m : mass) total += m;
  if (total <= 0.0) {
    // All mass clipped away (extreme noise): fall back to uniform.
    std::fill(mass.begin(), mass.end(), 1.0);
    total = static_cast<double>(mass.size());
  }
  for (double& m : mass) m /= total;

  // Memory: the mechanism needs the dataset (O(dn)) plus grid + moments.
  const size_t build_memory = data.size() * d * sizeof(double) +
                              mass.size() * sizeof(double) +
                              num_coeffs * sizeof(double);
  return std::unique_ptr<SyntheticDataSource>(new GridDensitySource(
      d, side, std::move(mass), build_memory));
}

}  // namespace privhp
