#include "baselines/uniform_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/macros.h"
#include "common/random.h"

namespace privhp {

namespace {

class FlatHistogramSource : public SyntheticDataSource {
 public:
  FlatHistogramSource(const Domain* domain, int level,
                      std::vector<double> mass, size_t build_memory)
      : domain_(domain),
        level_(level),
        mass_(std::move(mass)),
        build_memory_(build_memory) {
    cdf_.resize(mass_.size());
    double acc = 0.0;
    for (size_t i = 0; i < mass_.size(); ++i) {
      acc += mass_[i];
      cdf_[i] = acc;
    }
  }

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override {
    std::vector<Point> out;
    out.reserve(m);
    for (size_t s = 0; s < m; ++s) {
      const double u = rng->UniformDouble() * cdf_.back();
      const uint64_t cell =
          std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
      out.push_back(domain_->SampleCell(level_, cell, rng));
    }
    return out;
  }

  size_t BuildMemoryBytes() const override { return build_memory_; }
  std::string Name() const override { return "flat-histogram"; }

 private:
  const Domain* domain_;
  int level_;
  std::vector<double> mass_;
  std::vector<double> cdf_;
  size_t build_memory_;
};

}  // namespace

Result<std::unique_ptr<SyntheticDataSource>> BuildUniformHistogram(
    const Domain* domain, const std::vector<Point>& data,
    const UniformHistogramOptions& options) {
  if (domain == nullptr) {
    return Status::InvalidArgument("domain must not be null");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.empty()) {
    return Status::InvalidArgument("histogram requires a non-empty dataset");
  }
  int level = options.level;
  if (level < 0) {
    const double eps_n =
        std::max(2.0, options.epsilon * static_cast<double>(data.size()));
    level = CeilLog2(static_cast<uint64_t>(std::llround(eps_n)));
  }
  level = std::clamp(level, 1, std::min(20, domain->max_level()));

  std::vector<double> mass(size_t{1} << level, 0.0);
  for (const Point& x : data) {
    PRIVHP_RETURN_NOT_OK(domain->ValidatePoint(x));
    mass[domain->Locate(x, level)] += 1.0;
  }
  RandomEngine rng(options.seed);
  for (double& m : mass) {
    m += rng.Laplace(1.0 / options.epsilon);
    m = std::max(0.0, m);
  }
  double total = 0.0;
  for (double m : mass) total += m;
  if (total <= 0.0) {
    std::fill(mass.begin(), mass.end(), 1.0);
    total = static_cast<double>(mass.size());
  }
  for (double& m : mass) m /= total;

  const size_t build_memory = mass.size() * sizeof(double) * 2;
  return std::unique_ptr<SyntheticDataSource>(new FlatHistogramSource(
      domain, level, std::move(mass), build_memory));
}

}  // namespace privhp
