// Non-private controls: the empirical resampler (bootstrap) gives the W1
// floor any private method is compared against, and the PrivHP adapter
// wraps the core builder into the SyntheticDataSource interface used by
// the Table-1 harness.

#ifndef PRIVHP_BASELINES_NONPRIVATE_H_
#define PRIVHP_BASELINES_NONPRIVATE_H_

#include <memory>
#include <vector>

#include "baselines/synthetic_source.h"
#include "common/status.h"
#include "core/options.h"
#include "io/point_sink.h"

namespace privhp {

/// \brief Samples with replacement from the stored dataset. NOT private;
/// memory O(dn). The utility floor in every comparison table.
///
/// Also a PointSink, so the same stream plumbing that feeds PrivHP
/// shards can feed the control (it simply stores every point).
class NonPrivateResampler : public SyntheticDataSource, public PointSink {
 public:
  /// \brief Starts empty; fill through the PointSink interface.
  NonPrivateResampler() = default;

  explicit NonPrivateResampler(std::vector<Point> data);

  Status Add(const Point& x) override;
  Status Add(Point&& x) override;
  uint64_t num_processed() const override { return data_.size(); }

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override;
  size_t BuildMemoryBytes() const override;
  std::string Name() const override { return "nonprivate-resample"; }

 private:
  std::vector<Point> data_;
};

/// \brief Builds a PrivHP generator from \p data through the streaming
/// builder and wraps it as a SyntheticDataSource whose reported build
/// memory is the builder's peak footprint (the paper's M, measured).
Result<std::unique_ptr<SyntheticDataSource>> BuildPrivHPSource(
    const Domain* domain, const std::vector<Point>& data,
    PrivHPOptions options);

}  // namespace privhp

#endif  // PRIVHP_BASELINES_NONPRIVATE_H_
