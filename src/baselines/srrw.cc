#include "baselines/srrw.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/macros.h"
#include "common/random.h"
#include "domain/hilbert_curve.h"

namespace privhp {

namespace {

// The 1-D SRRW-style construction: perturb the empirical CDF with a
// dyadic (binary-mechanism) noise ensemble, then make it monotone.
//
// Concretely: a complete dyadic tree over m = 2^depth cells holds one
// independent Laplace((depth+1)/eps) draw per node (uniform budget split
// across the depth+1 levels; per-level sensitivity of an added element is
// 1). The noisy CDF at cell boundary i is the exact prefix count plus the
// sum of the O(log m) noise nodes canonically covering [0, i) — i.e. a
// random walk whose increments are partial sums of the dyadic ensemble,
// the discrete analogue of Boedihardjo et al.'s super-regular walk (and
// the source of the polylog factor in their bound). Isotonic correction
// (running max) restores monotonicity; inverse-CDF sampling with uniform
// jitter inside a cell generates points.
class NoisyCdf {
 public:
  NoisyCdf(const std::vector<double>& cell_counts, int depth, double epsilon,
           uint64_t seed)
      : depth_(depth) {
    const size_t m = cell_counts.size();
    PRIVHP_CHECK(m == (size_t{1} << depth));
    // Peak build footprint: counts + prefix + dyadic ensemble (~2m) +
    // CDF — the Theta(eps n) memory Table 1 charges SRRW with.
    peak_build_bytes_ = (m + (m + 1) + 2 * m + (m + 1)) * sizeof(double);
    // Exact prefix sums.
    std::vector<double> prefix(m + 1, 0.0);
    for (size_t i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + cell_counts[i];

    // Dyadic noise ensemble: noise_[l] has 2^l entries; level l node j
    // covers cells [j * 2^{depth-l}, (j+1) * 2^{depth-l}).
    RandomEngine rng(seed);
    const double scale = static_cast<double>(depth + 1) / epsilon;
    std::vector<std::vector<double>> noise(depth + 1);
    for (int l = 0; l <= depth; ++l) {
      noise[l].resize(size_t{1} << l);
      for (double& v : noise[l]) v = rng.Laplace(scale);
    }

    // Noisy CDF at each boundary via the canonical dyadic cover of
    // [0, i): walk the bits of i.
    cdf_.resize(m + 1);
    cdf_[0] = 0.0;
    for (size_t i = 1; i <= m; ++i) {
      double w = prefix[i];
      // Decompose [0, i) into maximal dyadic blocks.
      size_t remaining = i;
      size_t start = 0;
      for (int l = 0; l <= depth && remaining > 0; ++l) {
        const size_t block = size_t{1} << (depth - l);  // cells per node
        if (remaining >= block) {
          w += noise[l][start >> (depth - l)];
          start += block;
          remaining -= block;
        }
      }
      cdf_[i] = w;
    }
    // Isotonic correction: running max, floored at 0.
    double running = 0.0;
    for (size_t i = 0; i <= m; ++i) {
      running = std::max(running, std::max(0.0, cdf_[i]));
      cdf_[i] = running;
    }
  }

  /// Samples a value in [0, 1): picks the cell by inverse CDF, then
  /// jitters uniformly within it.
  double Sample(RandomEngine* rng) const {
    const double total = cdf_.back();
    if (total <= 0.0) return rng->UniformDouble();
    const double u = rng->UniformDouble() * total;
    const size_t hi =
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
    const size_t cell = std::min(hi == 0 ? size_t{0} : hi - 1,
                                 cdf_.size() - 2);
    const double width = std::ldexp(1.0, -depth_);
    return (static_cast<double>(cell) + rng->UniformDouble()) * width;
  }

  size_t MemoryBytes() const { return peak_build_bytes_; }

 private:
  int depth_;
  size_t peak_build_bytes_ = 0;
  std::vector<double> cdf_;  // monotone noisy CDF at cell boundaries
};

class Srrw1DSource : public SyntheticDataSource {
 public:
  explicit Srrw1DSource(NoisyCdf cdf) : cdf_(std::move(cdf)) {}

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override {
    std::vector<Point> out;
    out.reserve(m);
    for (size_t i = 0; i < m; ++i) out.push_back(Point{cdf_.Sample(rng)});
    return out;
  }
  size_t BuildMemoryBytes() const override { return cdf_.MemoryBytes(); }
  std::string Name() const override { return "srrw"; }

 private:
  NoisyCdf cdf_;
};

// d = 2: the 1-D mechanism on Hilbert-curve positions; samples map back
// through the curve.
class Srrw2DSource : public SyntheticDataSource {
 public:
  Srrw2DSource(NoisyCdf cdf, int order)
      : cdf_(std::move(cdf)), curve_(order) {}

  std::vector<Point> Generate(size_t m, RandomEngine* rng) const override {
    std::vector<Point> out;
    out.reserve(m);
    const double cells = std::ldexp(1.0, 2 * curve_.order());
    for (size_t i = 0; i < m; ++i) {
      const double t = cdf_.Sample(rng);
      uint64_t cell = static_cast<uint64_t>(t * cells);
      if (cell >= curve_.num_cells()) cell = curve_.num_cells() - 1;
      const auto [cx, cy] = curve_.PointAt(cell);
      const double half = std::ldexp(0.5, -curve_.order());
      Point p{cx + rng->UniformDouble(-half, half),
              cy + rng->UniformDouble(-half, half)};
      p[0] = std::clamp(p[0], 0.0, 1.0);
      p[1] = std::clamp(p[1], 0.0, 1.0);
      out.push_back(std::move(p));
    }
    return out;
  }
  size_t BuildMemoryBytes() const override { return cdf_.MemoryBytes(); }
  std::string Name() const override { return "srrw-hilbert"; }

 private:
  NoisyCdf cdf_;
  HilbertCurve2D curve_;
};

std::vector<double> CellCounts(const std::vector<double>& values,
                               int depth) {
  std::vector<double> counts(size_t{1} << depth, 0.0);
  const double cells = std::ldexp(1.0, depth);
  for (double v : values) {
    double q = v * cells;
    if (q < 0.0) q = 0.0;
    if (q >= cells) q = cells - 1.0;
    counts[static_cast<size_t>(q)] += 1.0;
  }
  return counts;
}

}  // namespace

Result<std::unique_ptr<SyntheticDataSource>> BuildSrrw(
    int d, const std::vector<Point>& data, const SrrwOptions& options) {
  if (d != 1 && d != 2) {
    return Status::NotImplemented(
        "SRRW baseline supports d = 1 and d = 2 (Hilbert lift)");
  }
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (data.empty()) {
    return Status::InvalidArgument("SRRW requires a non-empty dataset");
  }

  int depth = options.resolution_level;
  if (depth < 0) {
    const double eps_n =
        std::max(2.0, options.epsilon * static_cast<double>(data.size()));
    depth = CeilLog2(static_cast<uint64_t>(std::llround(eps_n)));
  }
  depth = std::clamp(depth, 1, 22);
  // Salted so SRRW and PMM runs with equal user seeds stay independent.
  const uint64_t noise_seed = Mix64(options.seed ^ 0x5272575721d57ULL);

  if (d == 1) {
    std::vector<double> values(data.size());
    for (size_t i = 0; i < data.size(); ++i) values[i] = data[i][0];
    NoisyCdf cdf(CellCounts(values, depth), depth, options.epsilon,
                 noise_seed);
    return std::unique_ptr<SyntheticDataSource>(
        new Srrw1DSource(std::move(cdf)));
  }

  // d = 2: order the square along the Hilbert curve (2 bits of 1-D depth
  // per curve order).
  const int order = std::clamp((depth + 1) / 2, 1, 11);
  depth = 2 * order;
  HilbertCurve2D curve(order);
  const double inv_cells = 1.0 / static_cast<double>(curve.num_cells());
  std::vector<double> positions(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    positions[i] =
        (static_cast<double>(curve.IndexOfPoint(data[i][0], data[i][1])) +
         0.5) *
        inv_cells;
  }
  NoisyCdf cdf(CellCounts(positions, depth), depth, options.epsilon,
               noise_seed);
  return std::unique_ptr<SyntheticDataSource>(
      new Srrw2DSource(std::move(cdf), order));
}

}  // namespace privhp
