// Error-propagation and assertion macros shared across the library.

#ifndef PRIVHP_COMMON_MACROS_H_
#define PRIVHP_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define PRIVHP_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::privhp::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define PRIVHP_CONCAT_IMPL(x, y) x##y
#define PRIVHP_CONCAT(x, y) PRIVHP_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the Status to the caller.
#define PRIVHP_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  PRIVHP_ASSIGN_OR_RETURN_IMPL(PRIVHP_CONCAT(_res_, __LINE__), lhs, rexpr)

#define PRIVHP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

/// Aborts with a message when an invariant the code relies on is broken.
/// Used for programmer errors, not data-dependent failures (those return
/// Status).
#define PRIVHP_CHECK(cond)                                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PRIVHP_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifndef NDEBUG
#define PRIVHP_DCHECK(cond) PRIVHP_CHECK(cond)
#else
#define PRIVHP_DCHECK(cond) \
  do {                      \
  } while (false)
#endif

#endif  // PRIVHP_COMMON_MACROS_H_
