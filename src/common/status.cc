#include "common/status.h"

namespace privhp {

namespace {
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
}  // namespace

std::string StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIOError:
      return "IO error";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return StatusCodeToString(code()) + ": " + state_->msg;
}

}  // namespace privhp
