#include "common/hash.h"

#include "common/random.h"

namespace privhp {

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t state = Mix64(seed ^ 0x1f83d9abfb41bd6bULL);
  for (auto& table : tables_) {
    for (auto& word : table) word = SplitMix64(&state);
  }
}

uint64_t TabulationHash::Hash(uint64_t key) const {
  uint64_t h = 0;
  for (int byte = 0; byte < 8; ++byte) {
    h ^= tables_[byte][(key >> (byte * 8)) & 0xff];
  }
  return h;
}

MultiplyShiftHash::MultiplyShiftHash(uint64_t seed) {
  uint64_t state = Mix64(seed ^ 0x452821e638d01377ULL);
  a_ = SplitMix64(&state) | 1u;  // multiplier must be odd
  b_ = SplitMix64(&state);
}

uint64_t MultiplyShiftHash::BucketPow2(uint64_t key, int bits) const {
  if (bits == 0) return 0;
  return (a_ * key + b_) >> (64 - bits);
}

CompactHash::CompactHash(uint64_t seed) {
  uint64_t state = Mix64(seed ^ 0xbe5466cf34e90c6cULL);
  multiplier_ = SplitMix64(&state) | 1u;
  salt_ = SplitMix64(&state);
}

HashFamily::HashFamily(uint64_t seed, size_t count) {
  members_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    members_.emplace_back(Mix64(seed + 0x9e3779b97f4a7c15ULL * (i + 1)));
  }
}

size_t HashFamily::MemoryBytes() const {
  size_t total = 0;
  for (const auto& m : members_) total += m.MemoryBytes();
  return total;
}

}  // namespace privhp
