// AVX-512 kernel set (compiled with -mavx512f -mavx512dq
// -ffp-contract=off; see simd.h). Same bit-identity discipline as the
// AVX2 set: explicit correctly-rounded intrinsics only.

#include "common/simd_kernels.h"

#if PRIVHP_SIMD_ENABLED

#include <immintrin.h>

namespace privhp {
namespace simd_detail {

namespace {

inline void ScaledCut8(const double* x, const double* lo_pat,
                       const double* ext_pat, const double* cells_pat,
                       size_t k, double* out) {
  const __m512d v = _mm512_loadu_pd(x);
  const __m512d t = _mm512_div_pd(_mm512_sub_pd(v, _mm512_loadu_pd(lo_pat + k)),
                                  _mm512_loadu_pd(ext_pat + k));
  _mm512_storeu_pd(out, _mm512_mul_pd(t, _mm512_loadu_pd(cells_pat + k)));
}

}  // namespace

void InCellTransformAvx512(const double* lo_tab, const double* ext_tab,
                           const uint32_t* slots, int dim, size_t m,
                           double* inout) {
  if (dim == 1) {
    size_t i = 0;
    for (; i + 8 <= m; i += 8) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(slots + i));
      // Masked gathers with an explicit zero source (see the AVX2 set).
      const __m512d lo = _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                                  0xFF, idx, lo_tab, 8);
      const __m512d ext = _mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                                   0xFF, idx, ext_tab, 8);
      const __m512d u = _mm512_loadu_pd(inout + i);
      _mm512_storeu_pd(inout + i,
                       _mm512_add_pd(lo, _mm512_mul_pd(ext, u)));
    }
    for (; i < m; ++i) {
      inout[i] = lo_tab[slots[i]] + ext_tab[slots[i]] * inout[i];
    }
    return;
  }
  InCellTransformScalar(lo_tab, ext_tab, slots, dim, m, inout);
}

void ScaledCutPositionsAvx512(const double* x, size_t n,
                              const double* lo_pat, const double* ext_pat,
                              const double* cells_pat, size_t tile,
                              double* out) {
  size_t j = 0;
  for (; j + tile <= n; j += tile) {
    for (size_t k = 0; k < tile; k += 8) {
      ScaledCut8(x + j + k, lo_pat, ext_pat, cells_pat, k, out + j + k);
    }
  }
  size_t k = 0;
  for (; j + 8 <= n; j += 8, k += 8) {
    ScaledCut8(x + j, lo_pat, ext_pat, cells_pat, k, out + j);
  }
  for (; j < n; ++j, ++k) {
    const double t = (x[j] - lo_pat[k]) / ext_pat[k];
    out[j] = t * cells_pat[k];
  }
}

size_t FindOutOfBoundsAvx512(const double* x, size_t n, const double* lo_pat,
                             const double* hi_pat, size_t tile) {
  const auto check8 = [&](size_t j, size_t k) -> size_t {
    const __m512d v = _mm512_loadu_pd(x + j);
    const __mmask8 ge =
        _mm512_cmp_pd_mask(v, _mm512_loadu_pd(lo_pat + k), _CMP_GE_OQ);
    const __mmask8 le =
        _mm512_cmp_pd_mask(v, _mm512_loadu_pd(hi_pat + k), _CMP_LE_OQ);
    const unsigned ok = static_cast<unsigned>(ge & le);
    if (ok == 0xFFu) return n;
    return j + static_cast<size_t>(__builtin_ctz(~ok & 0xFFu));
  };
  size_t j = 0;
  for (; j + tile <= n; j += tile) {
    for (size_t k = 0; k < tile; k += 8) {
      const size_t bad = check8(j + k, k);
      if (bad != n) return bad;
    }
  }
  size_t k = 0;
  for (; j + 8 <= n; j += 8, k += 8) {
    const size_t bad = check8(j, k);
    if (bad != n) return bad;
  }
  for (; j < n; ++j, ++k) {
    if (!(x[j] >= lo_pat[k] && x[j] <= hi_pat[k])) return j;
  }
  return n;
}

}  // namespace simd_detail
}  // namespace privhp

#endif  // PRIVHP_SIMD_ENABLED
