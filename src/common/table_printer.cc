#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace privhp {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TablePrinter::BeginRow() { rows_.emplace_back(); }

void TablePrinter::Cell(const std::string& value) {
  PRIVHP_CHECK(!rows_.empty());
  rows_.back().push_back(value);
}

std::string TablePrinter::FormatNumber(double value, int precision) {
  char buf[64];
  if (value == 0.0) return "0";
  const double mag = std::abs(value);
  if (mag >= 1e6 || mag < 1e-4) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision - 1, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  }
  return buf;
}

void TablePrinter::Cell(double value, int precision) {
  Cell(FormatNumber(value, precision));
}

void TablePrinter::Cell(int64_t value) { Cell(std::to_string(value)); }
void TablePrinter::Cell(uint64_t value) { Cell(std::to_string(value)); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os << "\n";
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace privhp
