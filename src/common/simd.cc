#include "common/simd.h"

#include <atomic>
#include <cstdlib>

#include "common/simd_kernels.h"

namespace privhp {

namespace simd_detail {

// Portable reference kernels. These are the semantics the vector
// translation units must reproduce bit-for-bit; they are also the
// dispatch target when PRIVHP_SIMD is off, the CPU lacks AVX2, or the
// level is forced down.

void InCellTransformScalar(const double* lo_tab, const double* ext_tab,
                           const uint32_t* slots, int dim, size_t m,
                           double* inout) {
  const size_t d = static_cast<size_t>(dim);
  for (size_t i = 0; i < m; ++i) {
    const double* lo = lo_tab + static_cast<size_t>(slots[i]) * d;
    const double* ext = ext_tab + static_cast<size_t>(slots[i]) * d;
    double* row = inout + i * d;
    for (size_t c = 0; c < d; ++c) {
      row[c] = lo[c] + ext[c] * row[c];
    }
  }
}

void ScaledCutPositionsScalar(const double* x, size_t n,
                              const double* lo_pat, const double* ext_pat,
                              const double* cells_pat, size_t tile,
                              double* out) {
  size_t k = 0;
  for (size_t j = 0; j < n; ++j) {
    const double t = (x[j] - lo_pat[k]) / ext_pat[k];
    out[j] = t * cells_pat[k];
    if (++k == tile) k = 0;
  }
}

size_t FindOutOfBoundsScalar(const double* x, size_t n, const double* lo_pat,
                             const double* hi_pat, size_t tile) {
  size_t k = 0;
  for (size_t j = 0; j < n; ++j) {
    if (!(x[j] >= lo_pat[k] && x[j] <= hi_pat[k])) return j;
    if (++k == tile) k = 0;
  }
  return n;
}

}  // namespace simd_detail

namespace {

// -1 = no force; otherwise a SimdLevel value.
std::atomic<int> g_forced_level{-1};

SimdLevel EnvClampedLevel() {
  SimdLevel level = DetectedSimdLevel();
  static const SimdLevel env_level = [] {
    SimdLevel parsed = SimdLevel::kAvx512;  // no cap by default
    const char* env = std::getenv("PRIVHP_SIMD_LEVEL");
    if (env != nullptr) {
      SimdLevel requested;
      if (ParseSimdLevel(env, &requested)) parsed = requested;
      // Unknown names are ignored (detection wins): an env typo must
      // never change numeric results, only possibly speed.
    }
    return parsed;
  }();
  if (static_cast<int>(env_level) < static_cast<int>(level)) {
    level = env_level;
  }
  return level;
}

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = [] {
#if PRIVHP_SIMD_ENABLED
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return SimdLevel::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
    return SimdLevel::kScalar;
  }();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  const SimdLevel level = EnvClampedLevel();
  if (forced >= 0 && forced < static_cast<int>(level)) {
    return static_cast<SimdLevel>(forced);
  }
  return level;
}

void ForceSimdLevel(SimdLevel level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearForcedSimdLevel() {
  g_forced_level.store(-1, std::memory_order_relaxed);
}

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdLevel(const std::string& name, SimdLevel* out) {
  if (name == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (name == "avx2") {
    *out = SimdLevel::kAvx2;
  } else if (name == "avx512") {
    *out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

namespace simd {

void InCellTransform(const double* lo_tab, const double* ext_tab,
                     const uint32_t* slots, int dim, size_t m,
                     double* inout) {
  switch (ActiveSimdLevel()) {
#if PRIVHP_SIMD_ENABLED
    case SimdLevel::kAvx512:
      simd_detail::InCellTransformAvx512(lo_tab, ext_tab, slots, dim, m,
                                         inout);
      return;
    case SimdLevel::kAvx2:
      simd_detail::InCellTransformAvx2(lo_tab, ext_tab, slots, dim, m,
                                       inout);
      return;
#endif
    default:
      simd_detail::InCellTransformScalar(lo_tab, ext_tab, slots, dim, m,
                                         inout);
      return;
  }
}

void ScaledCutPositions(const double* x, size_t n, const double* lo_pat,
                        const double* ext_pat, const double* cells_pat,
                        size_t tile, double* out) {
  switch (ActiveSimdLevel()) {
#if PRIVHP_SIMD_ENABLED
    case SimdLevel::kAvx512:
      simd_detail::ScaledCutPositionsAvx512(x, n, lo_pat, ext_pat,
                                            cells_pat, tile, out);
      return;
    case SimdLevel::kAvx2:
      simd_detail::ScaledCutPositionsAvx2(x, n, lo_pat, ext_pat, cells_pat,
                                          tile, out);
      return;
#endif
    default:
      simd_detail::ScaledCutPositionsScalar(x, n, lo_pat, ext_pat,
                                            cells_pat, tile, out);
      return;
  }
}

size_t FindOutOfBounds(const double* x, size_t n, const double* lo_pat,
                       const double* hi_pat, size_t tile) {
  switch (ActiveSimdLevel()) {
#if PRIVHP_SIMD_ENABLED
    case SimdLevel::kAvx512:
      return simd_detail::FindOutOfBoundsAvx512(x, n, lo_pat, hi_pat, tile);
    case SimdLevel::kAvx2:
      return simd_detail::FindOutOfBoundsAvx2(x, n, lo_pat, hi_pat, tile);
#endif
    default:
      return simd_detail::FindOutOfBoundsScalar(x, n, lo_pat, hi_pat, tile);
  }
}

}  // namespace simd

}  // namespace privhp
