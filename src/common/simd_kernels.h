// Internal: per-instruction-set kernel entry points behind common/simd.h.
//
// Each function set lives in its own translation unit so it can be
// compiled with that set's -m flags (and -ffp-contract=off; see simd.h's
// bit-identity contract) without raising the ISA baseline of the rest of
// the library. Only simd.cc's dispatchers may call these — everything
// else goes through the public privhp::simd:: entry points, which clamp
// to what the running CPU actually supports.

#ifndef PRIVHP_COMMON_SIMD_KERNELS_H_
#define PRIVHP_COMMON_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace privhp {
namespace simd_detail {

void InCellTransformScalar(const double* lo_tab, const double* ext_tab,
                           const uint32_t* slots, int dim, size_t m,
                           double* inout);
void ScaledCutPositionsScalar(const double* x, size_t n,
                              const double* lo_pat, const double* ext_pat,
                              const double* cells_pat, size_t tile,
                              double* out);
size_t FindOutOfBoundsScalar(const double* x, size_t n, const double* lo_pat,
                             const double* hi_pat, size_t tile);

#if PRIVHP_SIMD_ENABLED
void InCellTransformAvx2(const double* lo_tab, const double* ext_tab,
                         const uint32_t* slots, int dim, size_t m,
                         double* inout);
void ScaledCutPositionsAvx2(const double* x, size_t n, const double* lo_pat,
                            const double* ext_pat, const double* cells_pat,
                            size_t tile, double* out);
size_t FindOutOfBoundsAvx2(const double* x, size_t n, const double* lo_pat,
                           const double* hi_pat, size_t tile);

void InCellTransformAvx512(const double* lo_tab, const double* ext_tab,
                           const uint32_t* slots, int dim, size_t m,
                           double* inout);
void ScaledCutPositionsAvx512(const double* x, size_t n,
                              const double* lo_pat, const double* ext_pat,
                              const double* cells_pat, size_t tile,
                              double* out);
size_t FindOutOfBoundsAvx512(const double* x, size_t n, const double* lo_pat,
                             const double* hi_pat, size_t tile);
#endif  // PRIVHP_SIMD_ENABLED

}  // namespace simd_detail
}  // namespace privhp

#endif  // PRIVHP_COMMON_SIMD_KERNELS_H_
