// Deterministic random-number infrastructure.
//
// Every randomized component in the library draws from a RandomEngine seeded
// explicitly, so experiments are reproducible run-to-run. The engine is
// xoshiro256++ (fast, 256-bit state, passes BigCrush) seeded via SplitMix64,
// with samplers for the distributions the DP machinery needs: uniform,
// Laplace, exponential, Gaussian, and the two-sided geometric (discrete
// Laplace).

#ifndef PRIVHP_COMMON_RANDOM_H_
#define PRIVHP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace privhp {

/// \brief SplitMix64 step: advances \p state and returns the next output.
///
/// Used for seeding and as a cheap stateless mixer. Inline: this is the
/// mixing core of the sketch row hashes, called depth-times per key on
/// the ingest hot path.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Mixes a 64-bit value through the SplitMix64 finalizer
/// (stateless; useful for deriving stream-independent seeds).
inline uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

/// \brief Deterministic pseudo-random engine with DP-oriented samplers.
class RandomEngine {
 public:
  /// Constructs an engine whose full 256-bit state is derived from \p seed.
  explicit RandomEngine(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit output (xoshiro256++).
  uint64_t NextUint64();

  /// \brief Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// \brief Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// \brief Uniform integer in [0, bound), bound > 0 (unbiased, via
  /// rejection).
  uint64_t UniformInt(uint64_t bound);

  /// \brief Bernoulli(p) draw.
  bool Bernoulli(double p);

  /// \brief Laplace(0, scale) draw (density ~ exp(-|x|/scale)).
  double Laplace(double scale);

  /// \brief Exponential(rate = 1/scale) draw, i.e. mean = scale.
  double Exponential(double scale);

  /// \brief Standard normal draw (Box-Muller; one value per call).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// \brief Two-sided geometric (discrete Laplace) with parameter
  /// alpha = exp(-1/scale): integer noise for discrete mechanisms.
  int64_t DiscreteLaplace(double scale);

  /// \brief Derives a child engine with an independent stream.
  ///
  /// Children keyed by distinct \p stream_id values are statistically
  /// independent of the parent and of each other.
  RandomEngine Fork(uint64_t stream_id);

  /// \brief The seed this engine was constructed from.
  uint64_t seed() const { return seed_; }

 private:
  uint64_t s_[4];
  uint64_t seed_;
};

/// \brief Fills \p out with k distinct indices drawn uniformly from
/// [0, universe) (reservoir-free selection; k <= universe required).
std::vector<uint64_t> SampleDistinct(RandomEngine* rng, uint64_t universe,
                                     uint64_t k);

}  // namespace privhp

#endif  // PRIVHP_COMMON_RANDOM_H_
