// Aligned-column table printer for benchmark harnesses.
//
// Every bench binary reproduces a paper table or figure by printing the
// same rows/series the paper reports; TablePrinter keeps that output
// uniform and machine-greppable (optional CSV echo).

#ifndef PRIVHP_COMMON_TABLE_PRINTER_H_
#define PRIVHP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace privhp {

/// \brief Collects rows of string/number cells and prints them with
/// aligned columns (and optionally as CSV).
class TablePrinter {
 public:
  /// \param title Heading printed above the table.
  /// \param columns Column headers.
  TablePrinter(std::string title, std::vector<std::string> columns);

  /// \brief Starts a new row. Cells are appended with Cell().
  void BeginRow();

  /// \brief Appends a string cell to the current row.
  void Cell(const std::string& value);

  /// \brief Appends a numeric cell formatted with \p precision significant
  /// digits (scientific for very small/large magnitudes).
  void Cell(double value, int precision = 4);

  /// \brief Appends an integer cell.
  void Cell(int64_t value);
  void Cell(uint64_t value);
  void Cell(int value) { Cell(static_cast<int64_t>(value)); }

  /// \brief Renders the aligned table to \p os.
  void Print(std::ostream& os) const;

  /// \brief Renders the table as CSV (header + rows) to \p os.
  void PrintCsv(std::ostream& os) const;

  /// \brief Formats a double like Cell(double) does.
  static std::string FormatNumber(double value, int precision = 4);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace privhp

#endif  // PRIVHP_COMMON_TABLE_PRINTER_H_
