// Thread-safety annotated synchronization primitives.
//
// Every mutex in the library lives behind these wrappers so that Clang's
// -Wthread-safety analysis can verify the locking contracts at compile
// time: fields carry GUARDED_BY(mu), lock-requiring helpers carry
// REQUIRES(mu), and lock-taking entry points carry EXCLUDES(mu). On
// GCC/MSVC the annotation macros expand to nothing and the wrappers
// compile down to the std primitives they hold, so there is no runtime
// or portability cost — only Clang builds get the verification (CI runs
// one on every push with -Werror=thread-safety).
//
// Conventions (see docs/ARCHITECTURE.md "Static analysis & concurrency
// contracts"):
//   - Annotate every field a mutex protects with GUARDED_BY(mu_); the
//     analysis then rejects any unlocked access to it.
//   - Prefer MutexLock scopes over manual Lock()/Unlock() pairs.
//   - Condition-variable waits are explicit loops:
//       MutexLock lock(mu_);
//       while (!predicate) cv_.Wait(mu_);
//     (not wait-with-lambda: the analysis treats a lambda as a separate
//     function and cannot see that the capability is held inside it).
//   - A helper that must be called with the lock held takes no lock
//     itself and is annotated REQUIRES(mu_); by convention its name ends
//     in "Locked".
//
// tools/privhp_lint.py enforces that no naked std::mutex /
// std::lock_guard / std::condition_variable appears outside this header.

#ifndef PRIVHP_COMMON_SYNC_H_
#define PRIVHP_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere). Names follow
// the canonical set from the Clang Thread Safety Analysis documentation.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define PRIVHP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PRIVHP_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability ("mutex").
#define CAPABILITY(x) PRIVHP_THREAD_ANNOTATION(capability(x))

/// Marks a class whose constructor acquires and destructor releases a
/// capability (RAII lock scopes).
#define SCOPED_CAPABILITY PRIVHP_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be accessed while holding the given
/// capability.
#define GUARDED_BY(x) PRIVHP_THREAD_ANNOTATION(guarded_by(x))

/// The data the annotated pointer points at may only be accessed while
/// holding the given capability (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) PRIVHP_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function must be called with the given capabilities
/// held (and does not release them).
#define REQUIRES(...) \
  PRIVHP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The annotated function acquires the given capabilities (held on
/// return). With no argument on a capability member function, acquires
/// `this`.
#define ACQUIRE(...) \
  PRIVHP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The annotated function releases the given capabilities.
#define RELEASE(...) \
  PRIVHP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and reports
/// success via its return value (first macro argument).
#define TRY_ACQUIRE(...) \
  PRIVHP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called with the given capabilities
/// held (it acquires them itself; holding them would deadlock).
#define EXCLUDES(...) PRIVHP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that the calling thread already holds the capability in a
/// way the analysis cannot see (runtime-checked escape hatch).
#define ASSERT_CAPABILITY(x) PRIVHP_THREAD_ANNOTATION(assert_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) PRIVHP_THREAD_ANNOTATION(lock_returned(x))

/// Disables the analysis for one function. Last resort; every use needs
/// a comment explaining why the contract cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  PRIVHP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace privhp {

/// \brief Annotated std::mutex. Prefer MutexLock scopes to calling
/// Lock()/Unlock() directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock scope over a Mutex (std::lock_guard shape, plus the
/// early-Unlock() escape some hand-off paths need).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu), held_(true) {
    mu_->Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// \brief Releases the mutex before the end of the scope (e.g. to run
  /// a notification outside the critical section). The destructor then
  /// does nothing.
  void Unlock() RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// \brief Re-acquires after an early Unlock().
  void Lock() ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

/// \brief Condition variable paired with Mutex.
///
/// There is deliberately no wait-with-predicate overload: the analysis
/// treats a predicate lambda as a separate function that does not hold
/// the capability, so guarded reads inside it would (rightly) fail to
/// compile. Write the loop out instead:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);       // ready_ GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Atomically releases \p mu (which the caller must hold),
  /// blocks until notified (or spuriously woken), and re-acquires \p mu
  /// before returning. Always re-test the predicate in a loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// \brief Wait() with a timeout; returns false on timeout, true when
  /// notified. The mutex is held again either way.
  template <class Rep, class Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace privhp

#endif  // PRIVHP_COMMON_SYNC_H_
