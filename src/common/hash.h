// Seeded hash families for sketching.
//
// Lemma 4 of the paper assumes fully random hash functions; its privacy
// guarantee does not (paper Section 3.3). We provide simple tabulation
// hashing (3-independent, empirically near-uniform) as the default row-hash
// family for sketches, plus a cheap multiply-shift family for tests that
// need many independent functions.

#ifndef PRIVHP_COMMON_HASH_H_
#define PRIVHP_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace privhp {

/// \brief Simple tabulation hash over 64-bit keys.
///
/// The key is split into 8 bytes; each byte indexes a table of random
/// 64-bit words which are XORed together. 3-independent and, in practice,
/// behaves like a fully random function for sketch-style workloads
/// (Patrascu & Thorup).
class TabulationHash {
 public:
  /// Builds the 8x256 random tables deterministically from \p seed.
  explicit TabulationHash(uint64_t seed);

  /// \brief 64-bit hash of \p key.
  uint64_t Hash(uint64_t key) const;

  /// \brief Hash reduced to a bucket in [0, range).
  uint64_t Bucket(uint64_t key, uint64_t range) const {
    return Hash(key) % range;
  }

  /// \brief Memory footprint of the tables, in bytes.
  size_t MemoryBytes() const { return sizeof(tables_); }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

/// \brief Degree-2 multiply-shift hash (Dietzfelbinger): cheap and
/// 2-approximately universal; used where many small functions are needed.
class MultiplyShiftHash {
 public:
  explicit MultiplyShiftHash(uint64_t seed);

  /// \brief Bucket in [0, 2^bits).
  uint64_t BucketPow2(uint64_t key, int bits) const;

 private:
  uint64_t a_;
  uint64_t b_;
};

/// \brief Two-word seeded hash: SplitMix64-finalizer mixing of
/// (key XOR seed) followed by an odd multiplier. Pairwise-independence
/// quality in 16 bytes of state — the row-hash the sketches use, keeping
/// the summary footprint counter-dominated (a tabulation table would cost
/// 16 KiB per row, swamping the O(k log^2 n) memory budget the paper
/// claims).
class CompactHash {
 public:
  explicit CompactHash(uint64_t seed);

  /// \brief 64-bit hash of \p key. Inline: the sketch ingest path calls
  /// this depth-times per key per level.
  uint64_t Hash(uint64_t key) const { return multiplier_ * Mix64(key ^ salt_); }

  /// \brief Hash reduced to a bucket in [0, range).
  uint64_t Bucket(uint64_t key, uint64_t range) const {
    return Hash(key) % range;
  }

  size_t MemoryBytes() const { return sizeof(*this); }

 private:
  uint64_t multiplier_;
  uint64_t salt_;
};

/// \brief Sign in {-1, +1} from an independent bit of a CompactHash.
inline int SignBit(const CompactHash& h, uint64_t key) {
  return (h.Hash(key ^ 0x5bf03635f0a5b1c5ULL) & 1u) ? 1 : -1;
}

/// \brief A family of \p count independent tabulation hashes (one per
/// sketch row), deterministically derived from \p seed.
class HashFamily {
 public:
  HashFamily(uint64_t seed, size_t count);

  const TabulationHash& at(size_t i) const { return members_[i]; }
  size_t size() const { return members_.size(); }
  size_t MemoryBytes() const;

 private:
  std::vector<TabulationHash> members_;
};

/// \brief Sign hash in {-1, +1} derived from one extra bit of a tabulation
/// hash (for Count Sketch).
inline int SignBit(const TabulationHash& h, uint64_t key) {
  return (h.Hash(key ^ 0x5bf03635f0a5b1c5ULL) & 1u) ? 1 : -1;
}

}  // namespace privhp

#endif  // PRIVHP_COMMON_HASH_H_
