// Small bit-manipulation helpers used by domains, sketches and trees.

#ifndef PRIVHP_COMMON_BITS_H_
#define PRIVHP_COMMON_BITS_H_

#include <cstdint>

#include "common/macros.h"

namespace privhp {

/// \brief Number of leading zero bits in \p x; 64 when x == 0.
/// (C++17 stand-in for std::countl_zero.)
inline int CountLeadingZeros64(uint64_t x) {
  return x == 0 ? 64 : __builtin_clzll(x);
}

/// \brief floor(log2(x)); requires x >= 1.
inline int FloorLog2(uint64_t x) {
  PRIVHP_DCHECK(x >= 1);
  return 63 - CountLeadingZeros64(x);
}

/// \brief ceil(log2(x)); requires x >= 1. CeilLog2(1) == 0.
inline int CeilLog2(uint64_t x) {
  PRIVHP_DCHECK(x >= 1);
  return x == 1 ? 0 : 64 - CountLeadingZeros64(x - 1);
}

/// \brief Smallest power of two >= x (x >= 1, x <= 2^63).
inline uint64_t NextPow2(uint64_t x) { return uint64_t{1} << CeilLog2(x); }

/// \brief True iff x is a power of two (x >= 1).
inline bool IsPow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// \brief Extracts bit \p i (0 = most significant of a width-\p width
/// prefix code) from \p code.
inline int PrefixBit(uint64_t code, int width, int i) {
  PRIVHP_DCHECK(i < width);
  return static_cast<int>((code >> (width - 1 - i)) & 1u);
}

}  // namespace privhp

#endif  // PRIVHP_COMMON_BITS_H_
