// Status / Result error-handling primitives (Arrow/RocksDB style).
//
// Core library paths do not throw; fallible operations return Status or
// Result<T> and callers propagate with PRIVHP_RETURN_NOT_OK /
// PRIVHP_ASSIGN_OR_RETURN (see common/macros.h).

#ifndef PRIVHP_COMMON_STATUS_H_
#define PRIVHP_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace privhp {

/// \brief Machine-readable category for a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotImplemented = 4,
  kInternal = 5,
  kIOError = 6,
};

/// \brief Human-readable name of a StatusCode ("OK", "Invalid argument", ...).
std::string StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// The OK state carries no allocation; error states allocate a small state
/// block. Status is cheap to move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs a status with \p code and diagnostic \p msg.
  Status(StatusCode code, std::string msg);

  /// \brief Returns the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  /// \brief True iff the status is OK.
  bool ok() const { return state_ == nullptr; }

  /// \brief The status code (kOk when ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The diagnostic message (empty when ok()).
  const std::string& message() const;

  /// \brief "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessors ValueOrDie()/operator* assume ok();
/// violating that aborts in debug builds and is undefined in release, so
/// callers should check ok() or use the propagation macros.
template <typename T>
class Result {
 public:
  /// Constructs an errored result; \p status must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(status)) {}

  /// Constructs a successful result holding \p value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : repr_(std::move(value)) {}

  /// \brief True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// \brief Mutable access to the held value; requires ok().
  T& ValueOrDie() & { return std::get<T>(repr_); }
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::move(std::get<T>(repr_)); }

  /// \brief Moves the value out, or returns \p alternative on error.
  T ValueOr(T alternative) && {
    return ok() ? std::move(std::get<T>(repr_)) : std::move(alternative);
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace privhp

#endif  // PRIVHP_COMMON_STATUS_H_
