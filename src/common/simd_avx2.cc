// AVX2 kernel set (compiled with -mavx2 -ffp-contract=off; see simd.h).
//
// Every floating-point step is an explicit correctly-rounded intrinsic
// (sub/div/mul/add/compare), so each lane computes exactly what the
// scalar reference computes — no FMA, no reassociation.

#include "common/simd_kernels.h"

#if PRIVHP_SIMD_ENABLED

#include <immintrin.h>

namespace privhp {
namespace simd_detail {

namespace {

// 4-wide body shared by the tiled kernels: pattern offset k is always a
// multiple of 4 and < tile, so pattern loads never wrap mid-vector.
inline void ScaledCut4(const double* x, const double* lo_pat,
                       const double* ext_pat, const double* cells_pat,
                       size_t k, double* out) {
  const __m256d v = _mm256_loadu_pd(x);
  const __m256d t = _mm256_div_pd(_mm256_sub_pd(v, _mm256_loadu_pd(lo_pat + k)),
                                  _mm256_loadu_pd(ext_pat + k));
  _mm256_storeu_pd(out, _mm256_mul_pd(t, _mm256_loadu_pd(cells_pat + k)));
}

}  // namespace

void InCellTransformAvx2(const double* lo_tab, const double* ext_tab,
                         const uint32_t* slots, int dim, size_t m,
                         double* inout) {
  if (dim == 1) {
    // One coordinate per point: gather each lane's cell bounds by slot.
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(slots + i));
      // Masked gathers with an explicit zero source: the plain gather
      // intrinsic's undefined pass-through operand trips
      // -Wmaybe-uninitialized under -Werror.
      const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
      const __m256d lo =
          _mm256_mask_i32gather_pd(_mm256_setzero_pd(), lo_tab, idx, all, 8);
      const __m256d ext =
          _mm256_mask_i32gather_pd(_mm256_setzero_pd(), ext_tab, idx, all, 8);
      const __m256d u = _mm256_loadu_pd(inout + i);
      _mm256_storeu_pd(inout + i,
                       _mm256_add_pd(lo, _mm256_mul_pd(ext, u)));
    }
    for (; i < m; ++i) {
      inout[i] = lo_tab[slots[i]] + ext_tab[slots[i]] * inout[i];
    }
    return;
  }
  // Multi-coordinate points: each point reads a different dim-long slot
  // row, so the profitable vector shape is per-point; fall through to the
  // scalar loop (still allocation-free over the arena). Compiled here
  // with contraction off, so it stays bit-identical to the reference.
  InCellTransformScalar(lo_tab, ext_tab, slots, dim, m, inout);
}

void ScaledCutPositionsAvx2(const double* x, size_t n, const double* lo_pat,
                            const double* ext_pat, const double* cells_pat,
                            size_t tile, double* out) {
  size_t j = 0;
  // Full tiles: pattern offset k walks 0..tile in vector steps (tile is a
  // multiple of 8, hence of 4).
  for (; j + tile <= n; j += tile) {
    for (size_t k = 0; k < tile; k += 4) {
      ScaledCut4(x + j + k, lo_pat, ext_pat, cells_pat, k, out + j + k);
    }
  }
  // Tail tile: vector groups while they fit, then scalar.
  size_t k = 0;
  for (; j + 4 <= n; j += 4, k += 4) {
    ScaledCut4(x + j, lo_pat, ext_pat, cells_pat, k, out + j);
  }
  for (; j < n; ++j, ++k) {
    const double t = (x[j] - lo_pat[k]) / ext_pat[k];
    out[j] = t * cells_pat[k];
  }
}

size_t FindOutOfBoundsAvx2(const double* x, size_t n, const double* lo_pat,
                           const double* hi_pat, size_t tile) {
  const auto check4 = [&](size_t j, size_t k) -> size_t {
    const __m256d v = _mm256_loadu_pd(x + j);
    // Ordered-quiet compares: NaN makes both false, failing the check,
    // which matches the scalar negated-compare form.
    const __m256d ge = _mm256_cmp_pd(v, _mm256_loadu_pd(lo_pat + k),
                                     _CMP_GE_OQ);
    const __m256d le = _mm256_cmp_pd(v, _mm256_loadu_pd(hi_pat + k),
                                     _CMP_LE_OQ);
    const int ok = _mm256_movemask_pd(_mm256_and_pd(ge, le));
    if (ok == 0xF) return n;
    return j + static_cast<size_t>(__builtin_ctz(~ok & 0xF));
  };
  size_t j = 0;
  for (; j + tile <= n; j += tile) {
    for (size_t k = 0; k < tile; k += 4) {
      const size_t bad = check4(j + k, k);
      if (bad != n) return bad;
    }
  }
  size_t k = 0;
  for (; j + 4 <= n; j += 4, k += 4) {
    const size_t bad = check4(j, k);
    if (bad != n) return bad;
  }
  for (; j < n; ++j, ++k) {
    if (!(x[j] >= lo_pat[k] && x[j] <= hi_pat[k])) return j;
  }
  return n;
}

}  // namespace simd_detail
}  // namespace privhp

#endif  // PRIVHP_SIMD_ENABLED
