// Runtime-dispatched SIMD kernels for the columnar hot paths.
//
// Structure (avx_traits style): one translation unit per instruction set
// — simd.cc (portable scalar, always built), simd_avx2.cc (-mavx2) and
// simd_avx512.cc (-mavx512f -mavx512dq), both gated by the PRIVHP_SIMD
// configure option — each implementing the same small kernel vocabulary.
// The public entry points here pick an implementation at runtime from
// CPUID (__builtin_cpu_supports), so one binary runs everywhere and uses
// the widest vectors the host offers.
//
// Bit-identity contract: every kernel is REQUIRED to produce bit-identical
// output across scalar/AVX2/AVX-512. The kernels only use add/sub/mul/div
// and comparisons — all correctly rounded per IEEE-754, hence identical
// per lane to scalar — and the SIMD translation units are compiled with
// -ffp-contract=off so the compiler cannot fuse mul+add into an FMA
// (which rounds once instead of twice) in scalar tails. This is what lets
// the batched-vs-scalar bit-equality gates stay always-on regardless of
// which kernel ran.
//
// Overrides, strongest first:
//   * ForceSimdLevel()            — test/bench hook (clamped to detected);
//   * PRIVHP_SIMD_LEVEL=scalar|avx2|avx512 — environment, read once;
//   * CPUID detection, clamped to what was compiled in (PRIVHP_SIMD).

#ifndef PRIVHP_COMMON_SIMD_H_
#define PRIVHP_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace privhp {

/// \brief Instruction-set tiers the kernels are implemented for.
enum class SimdLevel : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// \brief Widest level this binary supports on this CPU (compile gate
/// intersected with CPUID). Independent of overrides.
SimdLevel DetectedSimdLevel();

/// \brief The level the kernels dispatch on: detection clamped by the
/// PRIVHP_SIMD_LEVEL environment variable and ForceSimdLevel().
SimdLevel ActiveSimdLevel();

/// \brief Overrides the active level (clamped to DetectedSimdLevel());
/// the runtime-dispatch smoke and the SIMD-vs-scalar tests use this to
/// force the scalar kernels on AVX hardware.
void ForceSimdLevel(SimdLevel level);

/// \brief Drops a ForceSimdLevel() override (environment still applies).
void ClearForcedSimdLevel();

/// \brief "scalar", "avx2" or "avx512".
std::string SimdLevelName(SimdLevel level);

/// \brief Parses a level name; returns false on unknown names.
bool ParseSimdLevel(const std::string& name, SimdLevel* out);

namespace simd {

/// \brief In-cell uniform sampling step over a row-major arena.
///
/// On entry inout[] holds m*dim uniform draws u in [0,1); on exit
/// element j (point j/dim, coordinate c = j%dim) holds
///   lo_tab[slots[j/dim]*dim + c] + u * ext_tab[slots[j/dim]*dim + c]
/// computed as separate multiply then add — exactly
/// RandomEngine::UniformDouble(lo, hi)'s arithmetic, so a batch equals
/// the per-point scalar sampler bit-for-bit.
void InCellTransform(const double* lo_tab, const double* ext_tab,
                     const uint32_t* slots, int dim, size_t m,
                     double* inout);

/// \brief Per-coordinate cut positions for batched Locate.
///
/// out[j] = ((x[j] - lo_pat[k]) / ext_pat[k]) * cells_pat[k] with
/// k = j mod tile; the caller pre-tiles the per-coordinate box bounds
/// and cell counts to a pattern length `tile` that is a multiple of both
/// the dimension and 8 (one AVX-512 vector), so vector loads of the
/// pattern stay aligned to the point grid. Division and multiplication
/// are kept as two rounded steps, matching BoxDomain::Locate exactly.
void ScaledCutPositions(const double* x, size_t n, const double* lo_pat,
                        const double* ext_pat, const double* cells_pat,
                        size_t tile, double* out);

/// \brief Batched bounds check (ValidateBatch hot path).
///
/// Returns the first j in [0, n) with !(x[j] >= lo_pat[j mod tile] &&
/// x[j] <= hi_pat[j mod tile]) — the negated-compare form, so NaN
/// coordinates fail — or n when every element is in bounds. \p tile as
/// in ScaledCutPositions.
size_t FindOutOfBounds(const double* x, size_t n, const double* lo_pat,
                       const double* hi_pat, size_t tile);

}  // namespace simd

}  // namespace privhp

#endif  // PRIVHP_COMMON_SIMD_H_
