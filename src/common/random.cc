#include "common/random.h"

#include <cmath>
#include <unordered_set>

#include "common/macros.h"

namespace privhp {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

RandomEngine::RandomEngine(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro's all-zero state is absorbing; SplitMix64 cannot emit four zero
  // words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t RandomEngine::NextUint64() {
  // xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double RandomEngine::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double RandomEngine::UniformDouble(double lo, double hi) {
  PRIVHP_DCHECK(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

uint64_t RandomEngine::UniformInt(uint64_t bound) {
  PRIVHP_DCHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

bool RandomEngine::Bernoulli(double p) { return UniformDouble() < p; }

double RandomEngine::Laplace(double scale) {
  PRIVHP_DCHECK(scale > 0);
  // Inverse-CDF on u in (-1/2, 1/2): -scale * sgn(u) * ln(1 - 2|u|).
  double u = UniformDouble() - 0.5;
  // Avoid log(0) at the (measure-zero but representable) endpoint.
  double a = 1.0 - 2.0 * std::abs(u);
  if (a <= 0.0) a = 0x1.0p-53;
  const double magnitude = -scale * std::log(a);
  return u < 0 ? -magnitude : magnitude;
}

double RandomEngine::Exponential(double scale) {
  PRIVHP_DCHECK(scale > 0);
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -scale * std::log(u);
}

double RandomEngine::Gaussian(double mean, double stddev) {
  double u1 = UniformDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(6.283185307179586476925286766559 * u2);
}

int64_t RandomEngine::DiscreteLaplace(double scale) {
  PRIVHP_DCHECK(scale > 0);
  // Difference of two Geometric(1 - alpha) variables, alpha = exp(-1/scale).
  const double alpha = std::exp(-1.0 / scale);
  auto geometric = [&]() -> int64_t {
    double u = UniformDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
  };
  return geometric() - geometric();
}

RandomEngine RandomEngine::Fork(uint64_t stream_id) {
  // Derive the child seed from fresh parent output and the stream id, so
  // forked streams neither overlap the parent stream nor each other.
  const uint64_t child_seed =
      Mix64(NextUint64() ^ Mix64(stream_id ^ 0xa0761d6478bd642fULL));
  return RandomEngine(child_seed);
}

std::vector<uint64_t> SampleDistinct(RandomEngine* rng, uint64_t universe,
                                     uint64_t k) {
  PRIVHP_CHECK(k <= universe);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  // Floyd's algorithm: k iterations, each guaranteed to add one element.
  for (uint64_t j = universe - k; j < universe; ++j) {
    const uint64_t t = rng->UniformInt(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace privhp
