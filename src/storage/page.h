// Fixed-size page primitives for the paged artifact format
// (storage/paged_format.h).
//
// A paged artifact is a sequence of equal-size pages: one header page, a
// page-checksum table, then raw data pages. Data pages carry *no*
// interior headers — section starts are page-aligned and every element
// size divides the page size, so a section's pages form one contiguous
// array that an mmapped reader can hand to the query templates and to
// CompiledSampler::Borrow without copying. Integrity lives out-of-line:
// one Checksum64 per data page in the checksum table, the table itself
// covered by a checksum in the header.

#ifndef PRIVHP_STORAGE_PAGE_H_
#define PRIVHP_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/random.h"
#include "domain/domain.h"

namespace privhp {
namespace storage {

/// \brief Default page size: large enough that sequential scans are one
/// fetch per 2048 nodes, small enough that a tiny buffer pool still
/// holds several pages.
inline constexpr uint32_t kDefaultPageSize = 64u * 1024;
inline constexpr uint32_t kMinPageSize = 4096;
inline constexpr uint32_t kMaxPageSize = 1u << 20;

/// \brief Valid page sizes are powers of two in [kMinPageSize,
/// kMaxPageSize] — so every element size in the format (4/8/16/32 bytes)
/// divides the page size and no element ever straddles a page boundary.
inline constexpr bool IsValidPageSize(uint64_t s) {
  return s >= kMinPageSize && s <= kMaxPageSize && (s & (s - 1)) == 0;
}

/// \brief Checksum over a byte range: 8-byte words folded through the
/// SplitMix64 finalizer, length-seeded so zero padding of different
/// lengths cannot collide. Not cryptographic — it catches torn writes
/// and bit rot, not adversaries.
inline uint64_t Checksum64(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = Mix64(0x70726976687031ULL ^ n);  // "privhp1" ^ length
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = Mix64(h ^ w);
  }
  if (i < n) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, n - i);
    h = Mix64(h ^ w ^ (static_cast<uint64_t>(n - i) << 56));
  }
  return h;
}

/// \brief On-disk node record: TreeNode minus the parent link (no query
/// walks upward), padded to 32 bytes so records never straddle a page.
/// Fields are little-endian, like the wire format; pad bytes are written
/// as zero so packing is deterministic and pages checksum reproducibly.
struct PackedTreeNode {
  int32_t level = 0;
  uint32_t pad0 = 0;
  uint64_t index = 0;
  double count = 0.0;
  int32_t left = -1;
  int32_t right = -1;
};
static_assert(sizeof(PackedTreeNode) == 32,
              "PackedTreeNode must be exactly 32 bytes on disk");

/// \brief On-disk leaf-cell record, layout-compatible with CellId so an
/// mmapped cells section can be lent to CompiledSampler::Borrow without
/// a copy. The pad bytes are written as zero.
struct PackedCell {
  int32_t level = 0;
  uint32_t pad0 = 0;
  uint64_t index = 0;
};
static_assert(sizeof(PackedCell) == 16,
              "PackedCell must be exactly 16 bytes on disk");
static_assert(sizeof(CellId) == sizeof(PackedCell) &&
                  offsetof(CellId, index) == offsetof(PackedCell, index) &&
                  offsetof(CellId, level) == offsetof(PackedCell, level),
              "CellId must remain layout-compatible with PackedCell: the "
              "mmap read path reinterprets the cells section as CellId[]");

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_PAGE_H_
