#include "storage/paged_artifact.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/macros.h"
#include "domain/domain_factory.h"
#include "domain/point_batch.h"
#include "hierarchy/tree_serialization.h"

namespace privhp {
namespace storage {

namespace {

// Matches the CompiledSampler/TreeSampler streaming chunk: bounded
// footprint, amortized sink dispatch.
constexpr size_t kGenerateChunk = 1024;

}  // namespace

/// \brief Stack-local TreeLike over the artifact's on-disk node records,
/// consumed by the shared query templates. Read failures cannot throw
/// out of a template walk, so node() latches the first error and returns
/// a zero-count leaf — the walk then terminates benignly (leaves end
/// every descent, and the templates' step caps bound corrupt cycles)
/// and the caller converts the latched status into the query's error.
class PagedTreeView {
 public:
  explicit PagedTreeView(const PagedArtifact* artifact)
      : artifact_(artifact) {}

  NodeId root() const { return 0; }
  size_t num_nodes() const {
    return static_cast<size_t>(artifact_->header_.num_nodes);
  }
  const Domain* domain() const { return artifact_->domain_.get(); }

  TreeNode node(NodeId id) const {
    TreeNode safe;  // zero-count leaf
    if (!status_.ok()) return safe;
    if (id < 0 || static_cast<uint64_t>(id) >= artifact_->header_.num_nodes) {
      status_ = Status::IOError("corrupt artifact: node id " +
                                std::to_string(id) + " out of range");
      return safe;
    }
    PackedTreeNode rec;
    const Status read = artifact_->ReadElem(kSectionNodes,
                                            static_cast<uint64_t>(id), &rec,
                                            sizeof(rec));
    if (!read.ok()) {
      status_ = read;
      return safe;
    }
    // A node has both children or none; anything else is corruption and
    // must not steer the walk.
    const auto valid_child = [this](int32_t c) {
      return c > 0 && static_cast<uint64_t>(c) < artifact_->header_.num_nodes;
    };
    const bool leaf = rec.left == kInvalidNode && rec.right == kInvalidNode;
    if (!leaf && (!valid_child(rec.left) || !valid_child(rec.right))) {
      status_ = Status::IOError("corrupt artifact: node " +
                                std::to_string(id) +
                                " has an invalid child id");
      return safe;
    }
    TreeNode n;
    n.cell = CellId{rec.level, rec.index};
    n.count = rec.count;
    n.left = rec.left;
    n.right = rec.right;
    return n;
  }

  const Status& status() const { return status_; }

 private:
  const PagedArtifact* artifact_;
  mutable Status status_;
};

Result<std::unique_ptr<const PagedArtifact>> PagedArtifact::Open(
    const std::string& path, const PagedReadOptions& options) {
  std::unique_ptr<PagedArtifact> a(new PagedArtifact());

  if (!options.use_buffer_pool) {
    PRIVHP_ASSIGN_OR_RETURN(a->map_, MmapFile::Open(path));
    PRIVHP_ASSIGN_OR_RETURN(
        a->header_,
        ParseHeaderPage(a->map_.data(), a->map_.size(), a->map_.size()));
    const PagedHeader& h = a->header_;
    // Verify the checksum table, then every data page, up front: after
    // Open() succeeds the mapped bytes are known-good and the hot path
    // never checksums again.
    const uint8_t* table = a->map_.data() + h.checksum_table_offset;
    const uint64_t table_bytes =
        h.checksum_table_entries * sizeof(uint64_t);
    if (Checksum64(table, table_bytes) != h.checksum_table_checksum) {
      return Status::IOError(
          "paged artifact checksum table is corrupt: " + path);
    }
    for (uint64_t p = 0; p < h.data_pages(); ++p) {
      uint64_t expected;
      std::memcpy(&expected, table + p * sizeof(uint64_t),
                  sizeof(uint64_t));
      const uint8_t* page =
          a->map_.data() + h.data_offset + p * h.page_size;
      if (Checksum64(page, h.page_size) != expected) {
        return Status::IOError("paged artifact data page " +
                               std::to_string(p) +
                               " failed its checksum: " + path);
      }
    }
  } else {
    PRIVHP_ASSIGN_OR_RETURN(RandomAccessFile file,
                            RandomAccessFile::Open(path));
    // The header page is at most kMaxPageSize; read that much (or the
    // whole file if smaller) and let the parser sort truncation out.
    std::vector<uint8_t> head(
        static_cast<size_t>(std::min<uint64_t>(file.size(), kMaxPageSize)));
    if (!head.empty()) {
      PRIVHP_RETURN_NOT_OK(file.ReadAt(0, head.data(), head.size()));
    }
    PRIVHP_ASSIGN_OR_RETURN(
        a->header_, ParseHeaderPage(head.data(), head.size(), file.size()));
    const PagedHeader& h = a->header_;
    a->page_checksums_.resize(h.checksum_table_entries);
    const uint64_t table_bytes =
        h.checksum_table_entries * sizeof(uint64_t);
    PRIVHP_RETURN_NOT_OK(file.ReadAt(h.checksum_table_offset,
                                     a->page_checksums_.data(),
                                     table_bytes));
    if (Checksum64(a->page_checksums_.data(), table_bytes) !=
        h.checksum_table_checksum) {
      return Status::IOError(
          "paged artifact checksum table is corrupt: " + path);
    }
    a->file_.emplace(std::move(file));
    a->pool_ = std::make_unique<BufferPool>(
        h.page_size, std::max<size_t>(2, options.pool_bytes / h.page_size));
  }

  PRIVHP_ASSIGN_OR_RETURN(
      std::unique_ptr<Domain> domain,
      MakeDomainByName(a->header_.domain_name,
                       static_cast<int>(a->header_.dimension)));
  a->domain_ = std::move(domain);

  if (!options.use_buffer_pool) {
    // Borrow the mapped table: cells are reinterpreted in place
    // (PackedCell is layout-compatible with CellId by static_assert).
    const PagedHeader& h = a->header_;
    CompiledTableView view;
    view.cells = reinterpret_cast<const CellId*>(
        a->map_.data() + h.sections[kSectionCells].file_offset);
    view.accept = reinterpret_cast<const double*>(
        a->map_.data() + h.sections[kSectionAccept].file_offset);
    view.alias = reinterpret_cast<const uint32_t*>(
        a->map_.data() + h.sections[kSectionAlias].file_offset);
    view.num_slots = static_cast<size_t>(h.num_slots);
    if (h.has_bounds) {
      view.slot_lo = reinterpret_cast<const double*>(
          a->map_.data() + h.sections[kSectionSlotLo].file_offset);
      view.slot_ext = reinterpret_cast<const double*>(
          a->map_.data() + h.sections[kSectionSlotExt].file_offset);
    }
    a->sampler_.emplace(CompiledSampler::Borrow(a->domain_.get(), view,
                                                a->header_.total_mass));
  }

  PackedTreeNode root;
  PRIVHP_RETURN_NOT_OK(a->ReadElem(kSectionNodes, 0, &root, sizeof(root)));
  if (root.level != 0 || root.index != 0) {
    return Status::IOError(
        "corrupt artifact: node 0 is not the root cell: " + path);
  }
  a->root_count_ = root.count;
  return std::unique_ptr<const PagedArtifact>(std::move(a));
}

bool PagedArtifact::SniffPagedFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint8_t head[sizeof(kPagedMagic)];
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(head))) {
    return false;
  }
  return HasPagedMagic(head, sizeof(head));
}

size_t PagedArtifact::ResidentBytes() const {
  if (pool_ != nullptr) {
    return sizeof(*this) + pool_->MemoryBytes() +
           page_checksums_.capacity() * sizeof(uint64_t);
  }
  return sizeof(*this) + map_.size();
}

Status PagedArtifact::ReadElem(int section, uint64_t index, void* out,
                               size_t elem_bytes) const {
  PRIVHP_DCHECK(section >= 0 && section < kNumSections);
  PRIVHP_DCHECK(elem_bytes == kSectionElemSize[section]);
  const PagedSection& s = header_.sections[section];
  if (index >= s.num_elements) {
    return Status::IOError("paged read out of section bounds");
  }
  const uint64_t off = s.file_offset + index * elem_bytes;
  if (pool_ == nullptr) {
    std::memcpy(out, map_.data() + off, elem_bytes);
    return Status::OK();
  }
  // Element sizes divide the page size and sections are page-aligned,
  // so one element never straddles two pages.
  PRIVHP_ASSIGN_OR_RETURN(PageRef page, FetchPage(off / header_.page_size));
  std::memcpy(out, page.data() + off % header_.page_size, elem_bytes);
  return Status::OK();
}

Result<PageRef> PagedArtifact::FetchPage(uint64_t page_no) const {
  return pool_->Fetch(page_no, [this, page_no](uint8_t* dst) -> Status {
    PRIVHP_RETURN_NOT_OK(file_->ReadAt(page_no * header_.page_size, dst,
                                       header_.page_size));
    pool_->NoteChecksumVerify();
    const uint64_t expected =
        page_checksums_[page_no - header_.first_data_page()];
    if (Checksum64(dst, header_.page_size) != expected) {
      return Status::IOError("paged artifact data page " +
                             std::to_string(page_no) +
                             " failed its checksum");
    }
    return Status::OK();
  });
}

Result<double> PagedArtifact::RangeMass(CellId cell) const {
  PagedTreeView view(this);
  const double fraction = CellMassFractionOver(view, cell);
  PRIVHP_RETURN_NOT_OK(view.status());
  return fraction;
}

Result<std::vector<double>> PagedArtifact::Quantiles(
    const std::vector<double>& qs) const {
  PagedTreeView view(this);
  Result<std::vector<double>> out = TreeQuantilesOver(view, qs);
  PRIVHP_RETURN_NOT_OK(view.status());
  return out;
}

Result<std::vector<HeavyCell>> PagedArtifact::Heavy(double threshold) const {
  PagedTreeView view(this);
  Result<std::vector<HeavyCell>> out =
      HierarchicalHeavyHittersOver(view, threshold);
  PRIVHP_RETURN_NOT_OK(view.status());
  return out;
}

Status PagedArtifact::GenerateTo(size_t m, RandomEngine* rng,
                                 PointSink* sink) const {
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  if (pool_ == nullptr) {
    // mmap mode: the borrowed sampler runs the columnar hot path over
    // the mapped table.
    return sampler_->GenerateTo(m, rng, sink);
  }
  // Pooled mode: per-point alias draws through the pool, in exactly the
  // scalar Sample() RNG order (slot pick, coin, then the in-cell
  // uniforms inside SampleCell) — so the stream is bit-identical to the
  // mmap and heap paths for the same seed.
  const int dim = domain_->dimension();
  const uint64_t num_slots = header_.num_slots;
  PointBatch batch;
  for (size_t done = 0; done < m;) {
    const size_t n = std::min(kGenerateChunk, m - done);
    batch.Reset(dim);
    batch.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t slot = rng->UniformInt(num_slots);
      const double u = rng->UniformDouble();
      double accept;
      PRIVHP_RETURN_NOT_OK(
          ReadElem(kSectionAccept, slot, &accept, sizeof(accept)));
      if (!(u < accept)) {
        uint32_t alias;
        PRIVHP_RETURN_NOT_OK(
            ReadElem(kSectionAlias, slot, &alias, sizeof(alias)));
        slot = alias;
      }
      PackedCell cell;
      PRIVHP_RETURN_NOT_OK(
          ReadElem(kSectionCells, slot, &cell, sizeof(cell)));
      batch.AppendPoint(domain_->SampleCell(cell.level, cell.index, rng));
    }
    PRIVHP_RETURN_NOT_OK(sink->AddAll(batch));
    done += n;
  }
  return Status::OK();
}

Status PagedArtifact::ExportTo(std::ostream* os) const {
  PagedTreeView view(this);
  const Status saved = SaveTreeGeneric(view, os);
  PRIVHP_RETURN_NOT_OK(view.status());
  return saved;
}

}  // namespace storage
}  // namespace privhp
