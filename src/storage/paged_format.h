// On-disk layout of a paged artifact ("privhp-paged-v1").
//
// A packed artifact is the released tree plus its compiled alias table,
// laid out as fixed-size pages:
//
//   page 0            header (magic, geometry, section table, checksums)
//   pages [1, 1+C)    checksum table: one Checksum64 per data page
//   pages [1+C, N)    data pages: six sections, in order —
//                       nodes    PackedTreeNode[num_nodes]   32 B each
//                       cells    PackedCell[num_slots]       16 B each
//                       accept   double[num_slots]            8 B each
//                       alias    uint32[num_slots]            4 B each
//                       slot_lo  double[num_slots*dim]        8 B each
//                       slot_ext double[num_slots*dim]        8 B each
//                     (slot_lo/slot_ext absent when has_bounds is 0)
//
// Every section starts on a page boundary and every element size divides
// the page size, so a section occupies whole pages and its bytes form
// one contiguous array: an mmapped reader hands section pointers
// straight to the query templates and CompiledSampler::Borrow — no
// parse, no copy. A buffer-pool reader fetches individual pages and
// verifies each against the checksum table lazily.
//
// The layout is a pure function of (page_size, dimension, num_nodes,
// num_slots, has_bounds): ComputeLayout() is the single source of truth,
// used by the packer to place sections and by the parser to verify that
// a file's header claims exactly the canonical layout — any creative
// offsets in a corrupt or adversarial header fail validation instead of
// steering reads.
//
// All integers little-endian; the endian tag in the header rejects
// foreign-endian files instead of misreading them.

#ifndef PRIVHP_STORAGE_PAGED_FORMAT_H_
#define PRIVHP_STORAGE_PAGED_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/page.h"

namespace privhp {
namespace storage {

/// \brief File magic, padded with NULs to exactly 16 bytes on disk.
inline constexpr char kPagedMagic[] = "privhp-paged-v1";
inline constexpr uint32_t kPagedVersion = 1;
/// \brief Written as a native u32; reads as 0x04030201 on a
/// foreign-endian host, which the parser rejects.
inline constexpr uint32_t kPagedEndianTag = 0x01020304;
inline constexpr size_t kMaxDomainNameBytes = 256;
/// \brief Matches the registry's artifact dimension cap.
inline constexpr uint32_t kMaxPagedDimension = 64;

/// \brief Section order in the data region.
enum SectionId : int {
  kSectionNodes = 0,
  kSectionCells = 1,
  kSectionAccept = 2,
  kSectionAlias = 3,
  kSectionSlotLo = 4,
  kSectionSlotExt = 5,
  kNumSections = 6,
};

inline constexpr size_t kSectionElemSize[kNumSections] = {
    sizeof(PackedTreeNode), sizeof(PackedCell), sizeof(double),
    sizeof(uint32_t),       sizeof(double),     sizeof(double)};

struct PagedSection {
  uint64_t file_offset = 0;   // page-aligned; 0 when the section is empty
  uint64_t num_elements = 0;
};

/// \brief Decoded header page. Geometry fields are validated and
/// cross-checked against the canonical layout before this is handed to
/// a reader.
struct PagedHeader {
  uint32_t page_size = 0;
  uint32_t dimension = 0;
  uint64_t num_pages = 0;
  uint64_t num_nodes = 0;
  uint64_t num_slots = 0;
  bool has_bounds = false;
  double total_mass = 0.0;
  std::string domain_name;
  uint64_t checksum_table_offset = 0;
  uint64_t checksum_table_entries = 0;  // == number of data pages
  uint64_t checksum_table_checksum = 0;
  uint64_t data_offset = 0;
  PagedSection sections[kNumSections];

  uint64_t data_pages() const { return checksum_table_entries; }
  uint64_t first_data_page() const { return data_offset / page_size; }
  uint64_t file_bytes() const { return num_pages * page_size; }
};

/// \brief The canonical layout for the given shape: section offsets,
/// checksum-table geometry, and total page count. Validates every
/// range (page size, dimension, node/slot counts, name length, mass
/// finiteness) so both the packer and the parser reject bad shapes in
/// one place.
Result<PagedHeader> ComputeLayout(uint32_t page_size, uint32_t dimension,
                                  uint64_t num_nodes, uint64_t num_slots,
                                  bool has_bounds, double total_mass,
                                  const std::string& domain_name);

/// \brief Serializes \p header into one page_size-byte header page,
/// including the header checksum.
std::string EncodeHeaderPage(const PagedHeader& header);

/// \brief Parses and fully validates a header page. \p available is how
/// many bytes of \p page are readable (>= the claimed page size or the
/// parse fails); \p file_size must equal the claimed page count times
/// the page size. Beyond field ranges and the header checksum, the
/// claimed layout must match ComputeLayout bit-for-bit.
Result<PagedHeader> ParseHeaderPage(const uint8_t* page, size_t available,
                                    uint64_t file_size);

/// \brief True iff \p data begins with the paged magic (16 bytes).
bool HasPagedMagic(const uint8_t* data, size_t size);

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_PAGED_FORMAT_H_
