#include "storage/paged_format.h"

#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace privhp {
namespace storage {

namespace {

// Fixed byte offsets within the header page. The header checksum covers
// [kOffEndian, page_size): everything after the checksum field itself.
constexpr size_t kOffMagic = 0;            // 16 bytes, NUL-padded
constexpr size_t kOffHeaderChecksum = 16;  // u64
constexpr size_t kOffEndian = 24;          // u32
constexpr size_t kOffVersion = 28;         // u32
constexpr size_t kOffPageSize = 32;        // u32
constexpr size_t kOffDimension = 36;       // u32
constexpr size_t kOffNumPages = 40;        // u64
constexpr size_t kOffNumNodes = 48;        // u64
constexpr size_t kOffNumSlots = 56;        // u64
constexpr size_t kOffHasBounds = 64;       // u8 + 7 pad
constexpr size_t kOffTotalMass = 72;       // f64
constexpr size_t kOffTableChecksum = 80;   // u64
constexpr size_t kOffTableOffset = 88;     // u64
constexpr size_t kOffTableEntries = 96;    // u64
constexpr size_t kOffDataOffset = 104;     // u64
constexpr size_t kOffNameLen = 112;        // u64
constexpr size_t kOffSections = 120;       // 6 * {u64 offset, u64 count}
constexpr size_t kOffName = kOffSections + kNumSections * 16;  // = 216
static_assert(kOffName + kMaxDomainNameBytes <= kMinPageSize,
              "header fields must fit the smallest page");

template <typename T>
void Put(std::string* buf, size_t off, T value) {
  std::memcpy(&(*buf)[off], &value, sizeof(T));
}

template <typename T>
T Get(const uint8_t* p, size_t off) {
  T value;
  std::memcpy(&value, p + off, sizeof(T));
  return value;
}

uint64_t PagesFor(uint64_t bytes, uint32_t page_size) {
  return (bytes + page_size - 1) / page_size;
}

}  // namespace

Result<PagedHeader> ComputeLayout(uint32_t page_size, uint32_t dimension,
                                  uint64_t num_nodes, uint64_t num_slots,
                                  bool has_bounds, double total_mass,
                                  const std::string& domain_name) {
  if (!IsValidPageSize(page_size)) {
    return Status::InvalidArgument(
        "page size must be a power of two in [" +
        std::to_string(kMinPageSize) + ", " + std::to_string(kMaxPageSize) +
        "], got " + std::to_string(page_size));
  }
  if (dimension < 1 || dimension > kMaxPagedDimension) {
    return Status::InvalidArgument("dimension out of range: " +
                                   std::to_string(dimension));
  }
  if (num_nodes < 1 || num_nodes > static_cast<uint64_t>(INT32_MAX)) {
    return Status::InvalidArgument("node count out of range: " +
                                   std::to_string(num_nodes));
  }
  if (num_slots < 1 || num_slots > UINT32_MAX) {
    return Status::InvalidArgument("slot count out of range: " +
                                   std::to_string(num_slots));
  }
  if (domain_name.empty() || domain_name.size() > kMaxDomainNameBytes) {
    return Status::InvalidArgument("domain name must be 1.." +
                                   std::to_string(kMaxDomainNameBytes) +
                                   " bytes");
  }
  if (!std::isfinite(total_mass) || total_mass < 0.0) {
    return Status::InvalidArgument("total mass must be finite and >= 0");
  }

  PagedHeader h;
  h.page_size = page_size;
  h.dimension = dimension;
  h.num_nodes = num_nodes;
  h.num_slots = num_slots;
  h.has_bounds = has_bounds;
  h.total_mass = total_mass;
  h.domain_name = domain_name;

  const uint64_t bounds_elems =
      has_bounds ? num_slots * static_cast<uint64_t>(dimension) : 0;
  const uint64_t counts[kNumSections] = {num_nodes,    num_slots,
                                         num_slots,    num_slots,
                                         bounds_elems, bounds_elems};
  uint64_t data_pages = 0;
  for (int s = 0; s < kNumSections; ++s) {
    h.sections[s].num_elements = counts[s];
    data_pages += PagesFor(counts[s] * kSectionElemSize[s], page_size);
  }
  const uint64_t table_pages =
      PagesFor(data_pages * sizeof(uint64_t), page_size);

  h.checksum_table_offset = page_size;
  h.checksum_table_entries = data_pages;
  h.data_offset = static_cast<uint64_t>(page_size) * (1 + table_pages);
  h.num_pages = 1 + table_pages + data_pages;

  uint64_t offset = h.data_offset;
  for (int s = 0; s < kNumSections; ++s) {
    if (h.sections[s].num_elements == 0) {
      h.sections[s].file_offset = 0;
      continue;
    }
    h.sections[s].file_offset = offset;
    offset += page_size *
              PagesFor(h.sections[s].num_elements * kSectionElemSize[s],
                       page_size);
  }
  PRIVHP_CHECK(offset == h.file_bytes());
  return h;
}

std::string EncodeHeaderPage(const PagedHeader& header) {
  std::string page(header.page_size, '\0');
  std::memcpy(&page[kOffMagic], kPagedMagic, sizeof(kPagedMagic));
  Put<uint32_t>(&page, kOffEndian, kPagedEndianTag);
  Put<uint32_t>(&page, kOffVersion, kPagedVersion);
  Put<uint32_t>(&page, kOffPageSize, header.page_size);
  Put<uint32_t>(&page, kOffDimension, header.dimension);
  Put<uint64_t>(&page, kOffNumPages, header.num_pages);
  Put<uint64_t>(&page, kOffNumNodes, header.num_nodes);
  Put<uint64_t>(&page, kOffNumSlots, header.num_slots);
  Put<uint8_t>(&page, kOffHasBounds, header.has_bounds ? 1 : 0);
  Put<double>(&page, kOffTotalMass, header.total_mass);
  Put<uint64_t>(&page, kOffTableChecksum, header.checksum_table_checksum);
  Put<uint64_t>(&page, kOffTableOffset, header.checksum_table_offset);
  Put<uint64_t>(&page, kOffTableEntries, header.checksum_table_entries);
  Put<uint64_t>(&page, kOffDataOffset, header.data_offset);
  Put<uint64_t>(&page, kOffNameLen, header.domain_name.size());
  for (int s = 0; s < kNumSections; ++s) {
    Put<uint64_t>(&page, kOffSections + s * 16, header.sections[s].file_offset);
    Put<uint64_t>(&page, kOffSections + s * 16 + 8,
                  header.sections[s].num_elements);
  }
  std::memcpy(&page[kOffName], header.domain_name.data(),
              header.domain_name.size());
  Put<uint64_t>(&page, kOffHeaderChecksum,
                Checksum64(page.data() + kOffEndian,
                           header.page_size - kOffEndian));
  return page;
}

Result<PagedHeader> ParseHeaderPage(const uint8_t* page, size_t available,
                                    uint64_t file_size) {
  if (available < kMinPageSize) {
    return Status::IOError("paged artifact truncated: " +
                           std::to_string(available) +
                           " bytes is smaller than the minimum header page");
  }
  if (!HasPagedMagic(page, available)) {
    return Status::IOError("not a paged artifact (bad magic)");
  }
  const uint32_t endian = Get<uint32_t>(page, kOffEndian);
  if (endian != kPagedEndianTag) {
    return Status::IOError(
        "paged artifact was written on a foreign-endian host");
  }
  const uint32_t version = Get<uint32_t>(page, kOffVersion);
  if (version != kPagedVersion) {
    return Status::IOError("unsupported paged format version " +
                           std::to_string(version));
  }
  const uint32_t page_size = Get<uint32_t>(page, kOffPageSize);
  if (!IsValidPageSize(page_size)) {
    return Status::IOError("corrupt header: invalid page size " +
                           std::to_string(page_size));
  }
  if (available < page_size) {
    return Status::IOError("paged artifact truncated inside the header page");
  }
  const uint64_t claimed = Get<uint64_t>(page, kOffHeaderChecksum);
  const uint64_t actual =
      Checksum64(page + kOffEndian, page_size - kOffEndian);
  if (claimed != actual) {
    return Status::IOError("header page checksum mismatch (corrupt header)");
  }

  const uint64_t name_len = Get<uint64_t>(page, kOffNameLen);
  if (name_len == 0 || name_len > kMaxDomainNameBytes) {
    return Status::IOError("corrupt header: bad domain name length");
  }
  std::string name(reinterpret_cast<const char*>(page) + kOffName, name_len);

  // Recompute the canonical layout from the claimed shape and demand the
  // header matches it exactly: there is only one valid file for a given
  // shape, so no field-by-field offset arithmetic needs trusting.
  Result<PagedHeader> canonical = ComputeLayout(
      page_size, Get<uint32_t>(page, kOffDimension),
      Get<uint64_t>(page, kOffNumNodes), Get<uint64_t>(page, kOffNumSlots),
      Get<uint8_t>(page, kOffHasBounds) != 0,
      Get<double>(page, kOffTotalMass), name);
  if (!canonical.ok()) {
    return Status::IOError("corrupt header: " +
                           canonical.status().message());
  }
  PagedHeader h = std::move(canonical).ValueOrDie();
  if (Get<uint64_t>(page, kOffNumPages) != h.num_pages ||
      Get<uint64_t>(page, kOffTableOffset) != h.checksum_table_offset ||
      Get<uint64_t>(page, kOffTableEntries) != h.checksum_table_entries ||
      Get<uint64_t>(page, kOffDataOffset) != h.data_offset) {
    return Status::IOError(
        "corrupt header: layout fields disagree with the canonical layout "
        "for the claimed shape");
  }
  for (int s = 0; s < kNumSections; ++s) {
    if (Get<uint64_t>(page, kOffSections + s * 16) !=
            h.sections[s].file_offset ||
        Get<uint64_t>(page, kOffSections + s * 16 + 8) !=
            h.sections[s].num_elements) {
      return Status::IOError(
          "corrupt header: section table disagrees with the canonical "
          "layout");
    }
  }
  if (file_size != h.file_bytes()) {
    return Status::IOError(
        "paged artifact size mismatch: header claims " +
        std::to_string(h.file_bytes()) + " bytes, file has " +
        std::to_string(file_size));
  }
  h.checksum_table_checksum = Get<uint64_t>(page, kOffTableChecksum);
  return h;
}

bool HasPagedMagic(const uint8_t* data, size_t size) {
  if (size < sizeof(kPagedMagic)) return false;
  return std::memcmp(data, kPagedMagic, sizeof(kPagedMagic)) == 0;
}

}  // namespace storage
}  // namespace privhp
