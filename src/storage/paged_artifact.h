// A released artifact served in place from its packed file.
//
// Opening a paged artifact never rebuilds the heap representation: the
// file's sections *are* the node arena and the compiled alias table.
// Two read modes share one class:
//
//  - mmap (default): the whole file is mapped read-only, every data
//    page is verified against the checksum table once at open, and the
//    query templates / CompiledSampler::Borrow walk the mapped bytes
//    directly. Startup cost is the map plus one checksum sweep;
//    resident memory is whatever the OS keeps paged in.
//
//  - buffer pool: for artifacts over the registry's memory budget. A
//    RandomAccessFile plus a fixed-frame BufferPool serve individual
//    pages on demand (verified lazily, on first load), so resident
//    memory is bounded by the pool no matter how large the file is.
//
// Both modes answer RANGE/QUANTILE/HEAVY through the same `...Over`
// query templates the heap path uses, and draw samples in the same RNG
// order as CompiledSampler::Sample — so results are bit-identical
// across heap, mmap and pooled serving (the property the storage tests
// gate on).

#ifndef PRIVHP_STORAGE_PAGED_ARTIFACT_H_
#define PRIVHP_STORAGE_PAGED_ARTIFACT_H_

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/queries.h"
#include "domain/domain.h"
#include "hierarchy/compiled_sampler.h"
#include "io/point_sink.h"
#include "storage/buffer_pool.h"
#include "storage/file_io.h"
#include "storage/paged_format.h"

namespace privhp {
namespace storage {

struct PagedReadOptions {
  /// \brief Serve through a bounded buffer pool instead of mmapping the
  /// whole file.
  bool use_buffer_pool = false;
  /// \brief Pool capacity in bytes (rounded down to whole pages, floor
  /// two frames). Only used when use_buffer_pool is true.
  size_t pool_bytes = 4u << 20;
};

/// \brief A packed artifact opened for serving. Immutable and
/// internally synchronized (the buffer pool carries the only mutable
/// state), so concurrent readers share one instance.
class PagedArtifact {
 public:
  static Result<std::unique_ptr<const PagedArtifact>> Open(
      const std::string& path, const PagedReadOptions& options = {});

  /// \brief True iff \p path starts with the paged magic — how the
  /// registry tells a packed artifact from a v2 tree file.
  static bool SniffPagedFile(const std::string& path);

  const Domain& domain() const { return *domain_; }
  const PagedHeader& header() const { return header_; }
  uint64_t num_nodes() const { return header_.num_nodes; }

  /// \brief Noisy root count (same quantity as PrivHPGenerator's).
  double TotalMass() const { return root_count_; }

  bool pooled() const { return pool_ != nullptr; }
  const BufferPool* pool() const { return pool_.get(); }

  /// \brief Bytes this artifact keeps addressable: the mapped file in
  /// mmap mode, the pool arena plus bookkeeping in pooled mode.
  size_t ResidentBytes() const;

  // Queries: the shared `...Over` templates run against the on-disk
  // node records. An unreadable or structurally corrupt page surfaces
  // as IOError, never a crash or a silent wrong answer.
  Result<double> RangeMass(CellId cell) const;
  Result<std::vector<double>> Quantiles(const std::vector<double>& qs) const;
  Result<std::vector<HeavyCell>> Heavy(double threshold) const;

  /// \brief Streams \p m synthetic points into \p sink, drawing the
  /// exact RNG sequence of m CompiledSampler::Sample calls.
  Status GenerateTo(size_t m, RandomEngine* rng, PointSink* sink) const;

  /// \brief Serializes the tree in text format v2 — byte-identical to
  /// SaveTree of the heap-loaded tree (EXPORT parity).
  Status ExportTo(std::ostream* os) const;

 private:
  friend class PagedTreeView;

  PagedArtifact() = default;

  /// Reads one section element (no page straddling by format
  /// construction). \p elem_bytes must match the section's element size.
  Status ReadElem(int section, uint64_t index, void* out,
                  size_t elem_bytes) const;

  /// Pooled mode: pins data page \p page_no, loading + verifying it on
  /// a miss.
  Result<PageRef> FetchPage(uint64_t page_no) const;

  std::unique_ptr<const Domain> domain_;
  PagedHeader header_;
  double root_count_ = 0.0;

  // mmap mode.
  MmapFile map_;
  std::optional<CompiledSampler> sampler_;  // borrows the mapped table

  // pooled mode.
  std::optional<RandomAccessFile> file_;
  std::vector<uint64_t> page_checksums_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_PAGED_ARTIFACT_H_
