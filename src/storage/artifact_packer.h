// Packs a released tree into the paged artifact format.
//
// Packing compiles the tree's alias table (the same CompiledSampler
// construction the heap serving path runs at load time) and writes the
// node arena plus the table's exact arrays as paged sections — so a
// reader that mmaps the file and Borrow()s the table draws the very
// bytes a heap-loaded sampler would, and serving a packed artifact
// needs no compile step at all. Packing is deterministic: the same tree
// packs to byte-identical files.
//
// The write is atomic (io/file_util.h): the pages are staged in a temp
// file and renamed over the target only after fsync.

#ifndef PRIVHP_STORAGE_ARTIFACT_PACKER_H_
#define PRIVHP_STORAGE_ARTIFACT_PACKER_H_

#include <string>

#include "common/status.h"
#include "hierarchy/partition_tree.h"
#include "storage/paged_format.h"

namespace privhp {
namespace storage {

struct PackOptions {
  uint32_t page_size = kDefaultPageSize;
};

/// \brief Packs \p tree (and its compiled alias table) into a paged
/// artifact at \p path, atomically.
Status PackArtifact(const PartitionTree& tree, const std::string& path,
                    const PackOptions& options = {});

/// \brief Convenience: loads a format-v2 tree file (reconstructing the
/// domain from its header, as the registry does) and packs it to
/// \p out_path. The privhp CLI's `pack` subcommand is this function.
Status PackTreeFile(const std::string& tree_path, const std::string& out_path,
                    const PackOptions& options = {});

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_ARTIFACT_PACKER_H_
