#include "storage/buffer_pool.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace privhp {
namespace storage {

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      frame_(std::exchange(other.frame_, 0)),
      data_(std::exchange(other.data_, nullptr)) {}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->Unpin(frame_);
    pool_ = std::exchange(other.pool_, nullptr);
    frame_ = std::exchange(other.frame_, 0);
    data_ = std::exchange(other.data_, nullptr);
  }
  return *this;
}

PageRef::~PageRef() {
  if (pool_ != nullptr) pool_->Unpin(frame_);
}

BufferPool::BufferPool(size_t page_bytes, size_t num_frames)
    : page_bytes_(page_bytes), num_frames_(std::max<size_t>(1, num_frames)) {
  PRIVHP_CHECK(page_bytes > 0);
  frames_.resize(num_frames_);
  arena_.resize(page_bytes_ * num_frames_);
  resident_.reserve(num_frames_);
}

size_t BufferPool::PickVictimLocked() const {
  // Linear scan — pools are tens of frames, not thousands.
  size_t victim = frames_.size();
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].occupied) {
      return i;
    }
    if (frames_[i].pins == 0 &&
        (victim == frames_.size() ||
         frames_[i].last_use < frames_[victim].last_use)) {
      victim = i;
    }
  }
  return victim;
}

Result<PageRef> BufferPool::Fetch(uint64_t page_no, const PageLoader& loader) {
  MutexLock lock(mu_);
  ++tick_;
  auto it = resident_.find(page_no);
  if (it != resident_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    f.last_use = tick_;
    ++stats_.hits;
    return PageRef(this, it->second,
                   arena_.data() + it->second * page_bytes_);
  }
  ++stats_.misses;

  const size_t victim = PickVictimLocked();
  if (victim == frames_.size()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: every frame is pinned (" +
        std::to_string(frames_.size()) + " frames)");
  }
  Frame& f = frames_[victim];
  if (f.occupied) {
    resident_.erase(f.page_no);
    f.occupied = false;
    ++stats_.evictions;
  }
  uint8_t* dst = arena_.data() + victim * page_bytes_;
  const Status loaded = loader(dst);
  if (!loaded.ok()) return loaded;  // frame stays free
  f.page_no = page_no;
  f.occupied = true;
  f.pins = 1;
  f.last_use = tick_;
  resident_.emplace(page_no, victim);
  return PageRef(this, victim, dst);
}

void BufferPool::Unpin(size_t frame) {
  MutexLock lock(mu_);
  PRIVHP_DCHECK(frame < frames_.size());
  PRIVHP_DCHECK(frames_[frame].pins > 0);
  --frames_[frame].pins;
}

size_t BufferPool::MemoryBytes() const {
  MutexLock lock(mu_);
  return sizeof(*this) + arena_.capacity() +
         frames_.capacity() * sizeof(Frame) +
         resident_.size() * (sizeof(uint64_t) + sizeof(size_t));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  {
    MutexLock lock(mu_);
    s = stats_;
  }
  s.checksum_verifies = checksum_verifies_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace storage
}  // namespace privhp
