// Fixed-capacity page cache fronting a paged artifact file.
//
// The pool owns one contiguous arena of page-size frames. Readers call
// Fetch(page_no, loader): a hit pins the resident frame; a miss picks a
// free frame (else evicts the least-recently-used *unpinned* frame),
// runs the caller's loader to fill it, and pins it. Pins are RAII
// (PageRef): a pinned frame is never evicted, so the bytes a query is
// reading stay valid exactly as long as the ref lives. If every frame
// is pinned a miss fails with FailedPrecondition rather than blocking —
// callers hold at most a couple of pins at a time, so this only fires
// on a misconfigured (too-small) pool.
//
// Concurrency: one mutex guards the frame table, pins, and the loader
// call itself. Loading under the lock serializes cold misses, which is
// deliberate — the pool exists to bound memory on the cold/over-budget
// path, not to win throughput races (the mmap path serves the hot
// case), and it keeps the invariant "a resident frame's bytes are
// immutable" trivially race-free under TSan.

#ifndef PRIVHP_STORAGE_BUFFER_POOL_H_
#define PRIVHP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace privhp {
namespace storage {

class BufferPool;

/// \brief RAII pin on a resident page frame. While alive, the frame's
/// bytes are immutable and the frame cannot be evicted.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  const uint8_t* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }

 private:
  friend class BufferPool;
  PageRef(BufferPool* pool, size_t frame, const uint8_t* data)
      : pool_(pool), frame_(frame), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  const uint8_t* data_ = nullptr;
};

/// \brief Fills a frame with the page's bytes (exactly page_bytes of
/// them); called under the pool lock on a miss.
using PageLoader = std::function<Status(uint8_t* dst)>;

/// \brief LRU page cache with pinning. Total memory = page_bytes *
/// num_frames, allocated once up front.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Page checksum verifications loaders reported via
    /// NoteChecksumVerify() — every miss that re-reads from disk should
    /// bump this once, so misses >> checksum_verifies means a loader
    /// path is skipping integrity checks.
    uint64_t checksum_verifies = 0;
  };

  /// \brief \p num_frames is clamped up to 1: a pool that can hold no
  /// page at all cannot serve anything.
  BufferPool(size_t page_bytes, size_t num_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Pins page \p page_no, loading it via \p loader if absent.
  /// Fails with FailedPrecondition if every frame is pinned, or with
  /// the loader's error (the frame is then left free). The loader runs
  /// under mu_, so it must not touch the pool (NoteChecksumVerify is
  /// the sanctioned lock-free exception).
  Result<PageRef> Fetch(uint64_t page_no, const PageLoader& loader)
      EXCLUDES(mu_);

  size_t page_bytes() const { return page_bytes_; }
  size_t num_frames() const { return num_frames_; }

  /// \brief Bytes held by the pool arena and bookkeeping.
  size_t MemoryBytes() const EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);

  /// \brief Records one page checksum verification. Lock-free on a
  /// separate atomic, so a PageLoader — which runs *under* the pool
  /// mutex — can call it without deadlocking.
  void NoteChecksumVerify() {
    checksum_verifies_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class PageRef;

  struct Frame {
    uint64_t page_no = 0;
    uint64_t last_use = 0;
    uint32_t pins = 0;
    bool occupied = false;
  };

  void Unpin(size_t frame) EXCLUDES(mu_);

  /// \brief Picks the frame a miss should load into: any unoccupied
  /// frame first, else the LRU unpinned one; frames_.size() when every
  /// frame is pinned.
  size_t PickVictimLocked() const REQUIRES(mu_);

  const size_t page_bytes_;
  const size_t num_frames_;
  mutable Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  /// The arena vector itself is immutable after the constructor (sized
  /// once, never reallocated), so reads through it need no lock; which
  /// *frame slots* hold valid bytes is what mu_ and the pin protocol
  /// govern. PageRef::data() stays valid lock-free exactly because a
  /// pinned frame is never reloaded.
  std::vector<uint8_t> arena_;
  std::unordered_map<uint64_t, size_t> resident_
      GUARDED_BY(mu_);  // page_no -> frame
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
  std::atomic<uint64_t> checksum_verifies_{0};
};

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_BUFFER_POOL_H_
