#include "storage/artifact_packer.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "domain/domain_factory.h"
#include "hierarchy/compiled_sampler.h"
#include "hierarchy/tree_serialization.h"
#include "io/file_util.h"

namespace privhp {
namespace storage {

namespace {

// Appends one section's raw bytes as whole zero-padded pages, recording
// one Checksum64 per page written.
Status WriteSection(AtomicFileWriter* w, const uint8_t* data, uint64_t bytes,
                    uint32_t page_size, std::vector<uint64_t>* checksums) {
  std::vector<uint8_t> page(page_size);
  for (uint64_t off = 0; off < bytes; off += page_size) {
    const uint64_t n = std::min<uint64_t>(page_size, bytes - off);
    std::memcpy(page.data(), data + off, n);
    if (n < page_size) std::memset(page.data() + n, 0, page_size - n);
    checksums->push_back(Checksum64(page.data(), page_size));
    PRIVHP_RETURN_NOT_OK(w->Append(page.data(), page_size));
  }
  return Status::OK();
}

}  // namespace

Status PackArtifact(const PartitionTree& tree, const std::string& path,
                    const PackOptions& options) {
  const Domain* domain = tree.domain();
  if (domain == nullptr) {
    return Status::InvalidArgument("tree has no domain");
  }
  // Compile exactly the table the heap serving path would build, then
  // serialize its arrays verbatim: a Borrow()ing reader is bit-identical
  // by construction.
  const CompiledSampler sampler(tree);
  const CompiledTableView& view = sampler.view();
  const bool has_bounds = view.slot_lo != nullptr;

  PRIVHP_ASSIGN_OR_RETURN(
      PagedHeader header,
      ComputeLayout(options.page_size, static_cast<uint32_t>(
                                           domain->dimension()),
                    tree.num_nodes(), view.num_slots, has_bounds,
                    sampler.total_mass(), domain->Name()));

  // Stage node and cell records explicitly so the on-disk pad bytes are
  // zero regardless of what the in-memory structs carry.
  std::vector<PackedTreeNode> nodes(tree.num_nodes());
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const TreeNode& n = tree.node(static_cast<NodeId>(i));
    nodes[i].level = n.cell.level;
    nodes[i].index = n.cell.index;
    nodes[i].count = n.count;
    nodes[i].left = n.left;
    nodes[i].right = n.right;
  }
  std::vector<PackedCell> cells(view.num_slots);
  for (size_t i = 0; i < view.num_slots; ++i) {
    cells[i].level = view.cells[i].level;
    cells[i].index = view.cells[i].index;
  }

  const uint8_t* section_data[kNumSections] = {
      reinterpret_cast<const uint8_t*>(nodes.data()),
      reinterpret_cast<const uint8_t*>(cells.data()),
      reinterpret_cast<const uint8_t*>(view.accept),
      reinterpret_cast<const uint8_t*>(view.alias),
      reinterpret_cast<const uint8_t*>(view.slot_lo),
      reinterpret_cast<const uint8_t*>(view.slot_ext)};

  PRIVHP_ASSIGN_OR_RETURN(AtomicFileWriter w, AtomicFileWriter::Create(path));

  // Placeholder header + checksum-table pages; both are patched once the
  // data pages (and their checksums) exist.
  const uint64_t table_pages = header.data_offset / header.page_size - 1;
  {
    const std::vector<uint8_t> zero(header.page_size, 0);
    for (uint64_t p = 0; p < 1 + table_pages; ++p) {
      PRIVHP_RETURN_NOT_OK(w.Append(zero.data(), zero.size()));
    }
  }

  std::vector<uint64_t> page_checksums;
  page_checksums.reserve(header.data_pages());
  for (int s = 0; s < kNumSections; ++s) {
    if (header.sections[s].num_elements == 0) continue;
    PRIVHP_CHECK(w.size() == header.sections[s].file_offset);
    PRIVHP_RETURN_NOT_OK(WriteSection(
        &w, section_data[s],
        header.sections[s].num_elements * kSectionElemSize[s],
        header.page_size, &page_checksums));
  }
  PRIVHP_CHECK(page_checksums.size() == header.data_pages());
  PRIVHP_CHECK(w.size() == header.file_bytes());

  const uint64_t table_bytes = page_checksums.size() * sizeof(uint64_t);
  PRIVHP_RETURN_NOT_OK(w.WriteAt(header.checksum_table_offset,
                                 page_checksums.data(), table_bytes));
  header.checksum_table_checksum =
      Checksum64(page_checksums.data(), table_bytes);

  const std::string header_page = EncodeHeaderPage(header);
  PRIVHP_RETURN_NOT_OK(w.WriteAt(0, header_page.data(), header_page.size()));
  return w.Commit();
}

Status PackTreeFile(const std::string& tree_path, const std::string& out_path,
                    const PackOptions& options) {
  // Same header peek the registry does: the v2 header names the domain
  // the tree was released over.
  std::string magic;
  std::string domain_name;
  int dimension = 0;
  {
    std::ifstream in(tree_path);
    if (!in) return Status::IOError("cannot open for read: " + tree_path);
    if (!std::getline(in, magic) || !std::getline(in, domain_name)) {
      return Status::IOError("truncated tree header in " + tree_path);
    }
    if (magic == "privhp-tree-v1") {
      return Status::InvalidArgument(
          "pack requires tree format v2 (v1 files carry no dimension): " +
          tree_path);
    }
    if (!(in >> dimension)) {
      return Status::IOError("missing dimension line in " + tree_path);
    }
  }
  PRIVHP_ASSIGN_OR_RETURN(std::unique_ptr<Domain> domain,
                          MakeDomainByName(domain_name, dimension));
  PRIVHP_ASSIGN_OR_RETURN(PartitionTree tree,
                          LoadTreeFromFile(domain.get(), tree_path));
  return PackArtifact(tree, out_path, options);
}

}  // namespace storage
}  // namespace privhp
