// Read-side file primitives for the paged storage tier: a read-only
// memory map (the hot, fits-in-budget path) and a positional-read file
// handle (the buffer-pool path). POSIX-only, like the socket layer.

#ifndef PRIVHP_STORAGE_FILE_IO_H_
#define PRIVHP_STORAGE_FILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace privhp {
namespace storage {

/// \brief Whole-file read-only memory map.
class MmapFile {
 public:
  /// \brief Maps \p path read-only. Fails cleanly on empty files.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

 private:
  MmapFile(uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Read-only file handle for positional page reads (pread).
/// Thread-safe: pread carries its own offset, so concurrent readers
/// share one handle without seeking.
class RandomAccessFile {
 public:
  static Result<RandomAccessFile> Open(const std::string& path);

  RandomAccessFile() = default;
  RandomAccessFile(RandomAccessFile&& other) noexcept;
  RandomAccessFile& operator=(RandomAccessFile&& other) noexcept;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;
  ~RandomAccessFile();

  /// \brief Reads exactly \p n bytes at \p offset into \p dst; a short
  /// read (EOF inside the range) is an IOError.
  Status ReadAt(uint64_t offset, void* dst, size_t n) const;

  uint64_t size() const { return size_; }
  bool open() const { return fd_ >= 0; }

 private:
  RandomAccessFile(int fd, uint64_t size) : fd_(fd), size_(size) {}

  int fd_ = -1;
  uint64_t size_ = 0;
};

/// \brief Size of \p path in bytes (stat).
Result<uint64_t> FileSize(const std::string& path);

}  // namespace storage
}  // namespace privhp

#endif  // PRIVHP_STORAGE_FILE_IO_H_
