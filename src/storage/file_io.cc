#include "storage/file_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace privhp {
namespace storage {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open for read:", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status error =
        Status::IOError(ErrnoMessage("cannot stat:", path));
    ::close(fd);
    return error;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IOError("cannot map empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is not needed
  // after mmap succeeds.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IOError(ErrnoMessage("mmap failed for", path));
  }
  return MmapFile(static_cast<uint8_t*>(addr), size);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

Result<RandomAccessFile> RandomAccessFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open for read:", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status error =
        Status::IOError(ErrnoMessage("cannot stat:", path));
    ::close(fd);
    return error;
  }
  return RandomAccessFile(fd, static_cast<uint64_t>(st.st_size));
}

RandomAccessFile::RandomAccessFile(RandomAccessFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)) {}

RandomAccessFile& RandomAccessFile::operator=(
    RandomAccessFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::ReadAt(uint64_t offset, void* dst, size_t n) const {
  if (fd_ < 0) return Status::FailedPrecondition("file is not open");
  char* p = static_cast<char*>(dst);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd_, p + got, n - got,
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      return Status::IOError(
          "short read at offset " + std::to_string(offset) + ": wanted " +
          std::to_string(n) + " bytes, file ends after " +
          std::to_string(got) + " (truncated artifact?)");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("cannot stat:", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace storage
}  // namespace privhp
