#include "service/server.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "core/builder.h"
#include "core/queries.h"
#include "domain/hypercube_domain.h"
#include "io/socket_point_stream.h"

namespace privhp {

PrivHPServer::PrivHPServer(ArtifactRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  metrics_registry_ = options_.metrics;
  if (metrics_registry_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_registry_ = owned_metrics_.get();
  }
  // Resolve every handle now: the request loop records through raw
  // pointers and never touches the registry mutex.
  metrics_ = std::make_unique<ServiceMetrics>(metrics_registry_);
  metrics_->workers_total->Set(options_.num_workers);
}

Result<std::unique_ptr<PrivHPServer>> PrivHPServer::Start(
    ArtifactRegistry* registry, const ServerOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "server needs at least one listener (unix_path or tcp_port)");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  std::unique_ptr<PrivHPServer> server(
      new PrivHPServer(registry, options));
  PRIVHP_RETURN_NOT_OK(server->StartListeners());
  for (size_t i = 0; i < server->listeners_.size(); ++i) {
    server->acceptors_.emplace_back(
        [srv = server.get(), i]() {
          srv->AcceptLoop(std::move(srv->listeners_[i]));
        });
  }
  for (int w = 0; w < options.num_workers; ++w) {
    server->workers_.emplace_back(
        [srv = server.get(), w]() { srv->WorkerLoop(w); });
  }
  return server;
}

Status PrivHPServer::StartListeners() {
  if (!options_.unix_path.empty()) {
    PRIVHP_ASSIGN_OR_RETURN(Socket listener, ListenUnix(options_.unix_path));
    listeners_.push_back(std::move(listener));
  }
  if (options_.tcp_port >= 0) {
    uint16_t bound = 0;
    PRIVHP_ASSIGN_OR_RETURN(
        Socket listener,
        ListenTcp(options_.tcp_host,
                  static_cast<uint16_t>(options_.tcp_port), &bound));
    tcp_port_ = bound;
    listeners_.push_back(std::move(listener));
  }
  return Status::OK();
}

PrivHPServer::~PrivHPServer() { Stop(); }

void PrivHPServer::Stop() {
  if (stopping_.exchange(true)) return;
  // Pairing the flag flip with the queue lock closes the lost-wakeup
  // race: a worker that read stopping_ == false under the lock is
  // guaranteed to be inside wait() by the time we notify.
  { std::lock_guard<std::mutex> lock(queue_mu_); }
  queue_cv_.notify_all();
  for (std::thread& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

PrivHPServer::Stats PrivHPServer::stats() const {
  Stats s;
  s.connections = stats_.connections.load(std::memory_order_relaxed);
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.errors = stats_.errors.load(std::memory_order_relaxed);
  s.sampled_points = stats_.sampled_points.load(std::memory_order_relaxed);
  s.ingested_points = stats_.ingested_points.load(std::memory_order_relaxed);
  s.ingests_published =
      stats_.ingests_published.load(std::memory_order_relaxed);
  s.listener_failure_streaks =
      stats_.listener_failure_streaks.load(std::memory_order_relaxed);
  return s;
}

void PrivHPServer::AcceptLoop(Socket listener) {
  const CancelFn cancel = [this]() { return stopping_.load(); };
  int consecutive_failures = 0;
  while (!stopping_.load()) {
    Result<Socket> conn = Accept(listener, cancel);
    if (!conn.ok()) {
      if (stopping_.load()) return;
      // Accept failures are retried forever: transient causes
      // (ECONNABORTED under load, EMFILE during fd exhaustion) can
      // outlast any fixed budget, and abandoning the listener would
      // leave a healthy-looking server that never accepts again. The
      // backoff cap keeps even a structurally dead fd (EBADF) from
      // spinning, and a sustained streak is surfaced via stderr and
      // Stats::listener_failure_streaks.
      ++consecutive_failures;
      if (consecutive_failures == 16) {
        stats_.listener_failure_streaks.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      if (consecutive_failures % 16 == 0) {
        std::fprintf(stderr,
                     "privhp server: listener failing, %d consecutive "
                     "accept failures, last: %s\n",
                     consecutive_failures, conn.status().message().c_str());
      }
      // Sliced sleep so shutdown is not delayed by the full backoff.
      const int backoff_ms = std::min(10 * consecutive_failures, 1000);
      for (int slept = 0; slept < backoff_ms && !stopping_.load();
           slept += 50) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      continue;
    }
    consecutive_failures = 0;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    if (options_.send_timeout_seconds > 0) {
      struct timeval tv;
      tv.tv_sec = options_.send_timeout_seconds;
      tv.tv_usec = 0;
      ::setsockopt(conn->fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_.push_back(
          PendingConn{std::move(*conn), std::chrono::steady_clock::now()});
    }
    metrics_->queue_depth->Add(1);
    queue_cv_.notify_one();
  }
}

void PrivHPServer::WorkerLoop(int worker_index) {
  RandomEngine engine =
      RandomEngine(options_.seed).Fork(static_cast<uint64_t>(worker_index));
  for (;;) {
    Socket conn;
    std::chrono::steady_clock::time_point enqueued;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_.empty();
      });
      if (stopping_.load()) return;
      conn = std::move(pending_.front().sock);
      enqueued = pending_.front().enqueued;
      pending_.pop_front();
    }
    metrics_->queue_depth->Add(-1);
    metrics_->queue_wait_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - enqueued)
            .count()));
    metrics_->workers_busy->Add(1);
    ServeConnection(conn, &engine);
    metrics_->workers_busy->Add(-1);
  }
}

void PrivHPServer::ServeConnection(const Socket& conn, RandomEngine* engine) {
  std::string frame;
  while (!stopping_.load()) {
    // The deadline restarts per request: it bounds idle time between
    // frames, not the lifetime of a busy connection.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::seconds(options_.idle_timeout_seconds);
    const CancelFn cancel = [this, deadline]() {
      return stopping_.load() ||
             (options_.idle_timeout_seconds > 0 &&
              std::chrono::steady_clock::now() >= deadline);
    };
    Result<bool> more = RecvFrame(conn, &frame, cancel);
    if (!more.ok() || !*more) return;  // cancelled, error, or clean EOF
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    Result<ServiceRequest> req = ParseRequest(frame);
    if (!req.ok()) {
      // A frame we cannot parse means the peer speaks a different
      // protocol; answer once and drop the connection. There is no
      // endpoint to charge the error to, so only the server totals see
      // it.
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      (void)SendFrame(conn, EncodeErrorResponse(req.status()));
      return;
    }
    // Latency covers dispatch through the last response frame (send
    // included: a slow-reading peer IS tail latency to the next request
    // on this connection). Bytes in/out are per-request wire payloads —
    // INGEST adds its streamed point frames, SAMPLE its response stream.
    const auto started = std::chrono::steady_clock::now();
    RequestScope scope;
    scope.ep = &metrics_->ForOp(req->op);
    scope.bytes_in = frame.size();
    scope.ep->requests->Inc();
    const Status handled = Dispatch(conn, *req, engine, &scope);
    scope.ep->latency_ns->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started)
            .count()));
    scope.ep->bytes_in->Record(scope.bytes_in);
    scope.ep->bytes_out->Record(scope.bytes_out);
    if (!handled.ok()) return;
  }
}

Status PrivHPServer::SendError(const Socket& conn, const Status& error,
                               RequestScope* scope) {
  stats_.errors.fetch_add(1, std::memory_order_relaxed);
  if (scope != nullptr && scope->ep != nullptr) scope->ep->errors->Inc();
  return SendCounted(conn, EncodeErrorResponse(error), scope);
}

Status PrivHPServer::SendCounted(const Socket& conn, const std::string& frame,
                                 RequestScope* scope) {
  if (scope != nullptr) scope->bytes_out += frame.size();
  return SendFrame(conn, frame);
}

Status PrivHPServer::Dispatch(const Socket& conn, const ServiceRequest& req,
                              RandomEngine* engine, RequestScope* scope) {
  switch (req.op) {
    case ServiceOp::kPing:
      return SendCounted(conn, BeginOkResponse().Take(), scope);
    case ServiceOp::kList: {
      WireWriter w = BeginOkResponse();
      const std::vector<std::string> names = registry_->List();
      w.PutU32(static_cast<uint32_t>(names.size()));
      for (const std::string& name : names) w.PutString(name);
      return SendCounted(conn, w.Take(), scope);
    }
    case ServiceOp::kStats:
      return HandleStats(conn, scope);
    case ServiceOp::kSample:
      return HandleSample(conn, req, engine, scope);
    case ServiceOp::kIngest:
      return HandleIngest(conn, req, scope);
    default:
      break;
  }

  // The remaining reads resolve an artifact first. They go through the
  // representation-independent ServedArtifact query surface, so a
  // heap-loaded tree, an mmapped paged file and a buffer-pooled paged
  // file all answer with identical bytes.
  Result<std::shared_ptr<const ServedArtifact>> artifact =
      registry_->Get(req.artifact);
  if (!artifact.ok()) return SendError(conn, artifact.status(), scope);

  switch (req.op) {
    case ServiceOp::kRange: {
      if (req.level > 62 || (req.index >> req.level) != 0) {
        return SendError(conn,
                         Status::InvalidArgument(
                             "cell index out of range for level " +
                             std::to_string(req.level)),
                         scope);
      }
      Result<double> fraction = (*artifact)->RangeMass(
          CellId{static_cast<int>(req.level), req.index});
      if (!fraction.ok()) return SendError(conn, fraction.status(), scope);
      WireWriter w = BeginOkResponse();
      w.PutDouble(*fraction);
      return SendCounted(conn, w.Take(), scope);
    }
    case ServiceOp::kQuantile: {
      Result<std::vector<double>> values = (*artifact)->Quantiles(req.qs);
      if (!values.ok()) return SendError(conn, values.status(), scope);
      WireWriter w = BeginOkResponse();
      w.PutU32(static_cast<uint32_t>(values->size()));
      for (double v : *values) w.PutDouble(v);
      return SendCounted(conn, w.Take(), scope);
    }
    case ServiceOp::kHeavy: {
      Result<std::vector<HeavyCell>> heavy =
          (*artifact)->Heavy(req.threshold);
      if (!heavy.ok()) return SendError(conn, heavy.status(), scope);
      WireWriter w = BeginOkResponse();
      w.PutU32(static_cast<uint32_t>(heavy->size()));
      for (const HeavyCell& cell : *heavy) {
        w.PutU32(static_cast<uint32_t>(cell.cell.level));
        w.PutU64(cell.cell.index);
        w.PutDouble(cell.fraction);
      }
      return SendCounted(conn, w.Take(), scope);
    }
    case ServiceOp::kExport:
      return HandleExport(conn, **artifact, scope);
    default:
      return SendError(conn,
                       Status::Internal("unhandled opcode in dispatch"),
                       scope);
  }
}

Status PrivHPServer::HandleExport(const Socket& conn,
                                  const ServedArtifact& artifact,
                                  RequestScope* scope) {
  Result<std::string> blob = artifact.ExportBlob();
  if (!blob.ok()) return SendError(conn, blob.status(), scope);

  // Stream the blob across as many chunk frames as it needs: the OK
  // header promises the total, each chunk carries raw bytes, and the
  // end frame echoes the total as a completeness check. No artifact
  // size can hit the frame limit.
  WireWriter header = BeginOkResponse();
  header.PutU64(blob->size());
  PRIVHP_RETURN_NOT_OK(SendCounted(conn, header.Take(), scope));

  const size_t chunk_bytes = std::min<size_t>(
      std::max<size_t>(1, options_.export_chunk_bytes), kMaxFrameBytes - 16);
  for (size_t off = 0; off < blob->size(); off += chunk_bytes) {
    const size_t n = std::min(chunk_bytes, blob->size() - off);
    WireWriter w;
    w.PutU8(kExportChunkTag);
    w.PutBytes(blob->data() + off, n);
    PRIVHP_RETURN_NOT_OK(SendCounted(conn, w.Take(), scope));
  }
  WireWriter end;
  end.PutU8(kExportEndTag);
  end.PutU64(blob->size());
  return SendCounted(conn, end.Take(), scope);
}

Status PrivHPServer::HandleSample(const Socket& conn,
                                  const ServiceRequest& req,
                                  RandomEngine* engine,
                                  RequestScope* scope) {
  Result<std::shared_ptr<const ServedArtifact>> artifact =
      registry_->Get(req.artifact);
  if (!artifact.ok()) return SendError(conn, artifact.status(), scope);
  if (options_.max_sample_points > 0 && req.m > options_.max_sample_points) {
    return SendError(conn,
                     Status::InvalidArgument(
                         "m exceeds the server's per-request limit "
                         "of " +
                         std::to_string(options_.max_sample_points)),
                     scope);
  }
  WireWriter header = BeginOkResponse();
  header.PutU32(static_cast<uint32_t>((*artifact)->domain().dimension()));
  header.PutU64(req.m);
  PRIVHP_RETURN_NOT_OK(SendCounted(conn, header.Take(), scope));

  // seed != 0: a dedicated engine, so the response depends only on
  // (artifact, m, seed) — not on which worker served it or what it served
  // before. seed == 0: the worker's own engine, advancing per request.
  RandomEngine seeded(req.seed);
  RandomEngine* rng = req.seed != 0 ? &seeded : engine;
  SocketPointSink sink(&conn, options_.sample_batch);
  // Generate one wire batch at a time so shutdown can interrupt a large
  // response between frames. The artifact's sampling state (a compiled
  // alias table for heap artifacts, the mmapped table or buffer pool
  // for paged ones) was set up once at publish/load time and is shared
  // by every concurrent request through the registry's shared_ptr —
  // nothing is rebuilt per request or per chunk, and the point stream
  // is bit-identical whichever representation serves it.
  for (uint64_t generated = 0; generated < req.m;) {
    if (stopping_.load()) {
      scope->bytes_out += sink.bytes_sent();
      return Status::FailedPrecondition("server stopping");
    }
    const uint64_t chunk = std::min<uint64_t>(options_.sample_batch,
                                              req.m - generated);
    const Status chunked = (*artifact)->GenerateTo(chunk, rng, &sink);
    if (!chunked.ok()) {
      scope->bytes_out += sink.bytes_sent();
      return chunked;
    }
    generated += chunk;
  }
  const Status finished = sink.FinishStream();
  scope->bytes_out += sink.bytes_sent();
  PRIVHP_RETURN_NOT_OK(finished);
  stats_.sampled_points.fetch_add(req.m, std::memory_order_relaxed);
  metrics_->sample_points->Add(req.m);
  return Status::OK();
}

Status PrivHPServer::HandleIngest(const Socket& conn,
                                  const ServiceRequest& req,
                                  RequestScope* scope) {
  // Validate before acknowledging: the client only starts streaming after
  // the OK, so an error response here leaves the connection in sync.
  Status invalid = Status::OK();
  if (req.artifact.empty()) {
    invalid = Status::InvalidArgument("ingest needs an artifact name");
  } else if (req.dim < 1 || req.dim > 64) {
    invalid = Status::InvalidArgument("ingest dim must be in [1, 64]");
  } else if (req.n == 0) {
    invalid = Status::InvalidArgument(
        "ingest needs the expected stream length n (the streaming horizon)");
  } else if (req.threads < 1 ||
             req.threads >
                 static_cast<uint32_t>(options_.max_ingest_threads)) {
    invalid = Status::InvalidArgument(
        "ingest threads must be in [1, " +
        std::to_string(options_.max_ingest_threads) + "]");
  }
  if (!invalid.ok()) return SendError(conn, invalid, scope);

  auto domain = std::make_unique<HypercubeDomain>(static_cast<int>(req.dim));
  PrivHPOptions options;
  options.epsilon = req.epsilon;
  options.k = req.k;
  options.expected_n = req.n;
  options.seed = req.seed;

  // Resolve the plan before acknowledging, so bad parameters (epsilon <= 0,
  // ...) are rejected without the client streaming anything.
  {
    Result<PrivHPBuilder> probe = PrivHPBuilder::Make(domain.get(), options);
    if (!probe.ok()) return SendError(conn, probe.status(), scope);
  }
  PRIVHP_RETURN_NOT_OK(SendCounted(conn, BeginOkResponse().Take(), scope));

  // The idle timeout rides the source so a peer that opens an ingest
  // session and goes silent frees the worker, same as between requests.
  SocketPointSource source(&conn, static_cast<int>(req.dim),
                           [this]() { return stopping_.load(); },
                           options_.idle_timeout_seconds);
  Result<PrivHPGenerator> generator = PrivHPBuilder::BuildParallel(
      domain.get(), options, &source, static_cast<int>(req.threads));
  // The streamed point frames are this request's real bytes-in, whether
  // or not the build succeeded; the batch counter feeds ingest.batches.
  scope->bytes_in += source.bytes_received();
  metrics_->ingest_batches->Add(source.num_batches());
  if (!generator.ok()) {
    // A cancelled stream (shutdown, or the peer idle-timing out) has no
    // live sender to resync with — draining would just park the worker
    // for a second timeout window, so drop the connection instead.
    if (source.cancelled()) {
      return generator.status();
    }
    // Otherwise regain frame sync so the error reaches the client; if
    // the drain itself fails the connection is beyond saving, and the
    // build error (not the drain error) is what is worth reporting.
    if (!source.SkipToEnd().ok()) return generator.status();
    return SendError(conn, generator.status(), scope);
  }
  stats_.ingested_points.fetch_add(source.num_received(),
                                   std::memory_order_relaxed);
  metrics_->ingest_points->Add(source.num_received());

  const uint64_t nodes = generator->tree().num_nodes();
  const double mass = generator->TotalMass();
  const Status published = registry_->Publish(
      req.artifact,
      ServedArtifact::Make(std::move(domain), std::move(*generator),
                           "ingest"));
  if (!published.ok()) return SendError(conn, published, scope);
  stats_.ingests_published.fetch_add(1, std::memory_order_relaxed);

  WireWriter w = BeginOkResponse();
  w.PutU64(nodes);
  w.PutDouble(mass);
  return SendCounted(conn, w.Take(), scope);
}

Status PrivHPServer::HandleStats(const Socket& conn, RequestScope* scope) {
  WireWriter w = BeginOkResponse();
  EncodeStatsSnapshot(StatsSnapshot(), &w);
  return SendCounted(conn, w.Take(), scope);
}

obs::MetricsSnapshot PrivHPServer::StatsSnapshot() const {
  obs::MetricsSnapshot snap = metrics_registry_->Snapshot();
  auto counter = [&snap](std::string name, uint64_t value) {
    snap.counters.push_back({std::move(name), value});
  };
  auto gauge = [&snap](std::string name, int64_t value) {
    snap.gauges.push_back({std::move(name), value});
  };

  // The pre-metrics AtomicStats counters, under "server.*" — they are
  // bumped on paths the per-op metrics do not see (unparseable frames,
  // listener trouble), so both inventories stay in the one snapshot.
  const Stats s = stats();
  counter("server.connections", s.connections);
  counter("server.requests", s.requests);
  counter("server.errors", s.errors);
  counter("server.sampled_points", s.sampled_points);
  counter("server.ingested_points", s.ingested_points);
  counter("server.ingests_published", s.ingests_published);
  counter("server.listener_failure_streaks", s.listener_failure_streaks);

  // Serving-tier state is read at snapshot time rather than maintained
  // by hot-path increments: the registry and pools already keep these
  // totals, so the STATS op just asks them.
  counter("registry.publishes", registry_->publishes());
  gauge("registry.artifacts", static_cast<int64_t>(registry_->size()));
  gauge("registry.resident_bytes",
        static_cast<int64_t>(registry_->resident_bytes()));

  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_verifies = 0;
  for (const std::string& name : registry_->List()) {
    Result<std::shared_ptr<const ServedArtifact>> artifact =
        registry_->Get(name);
    if (!artifact.ok()) continue;  // raced with Remove; skip
    const std::string prefix = "artifact." + name + ".";
    gauge(prefix + "resident_bytes",
          static_cast<int64_t>((*artifact)->ResidentBytes()));
    gauge(prefix + "nodes", static_cast<int64_t>((*artifact)->num_nodes()));
    gauge(prefix + "repr",
          static_cast<int64_t>((*artifact)->representation()));
    if (const storage::BufferPool* pool = (*artifact)->buffer_pool()) {
      const storage::BufferPool::Stats ps = pool->stats();
      pool_hits += ps.hits;
      pool_misses += ps.misses;
      pool_evictions += ps.evictions;
      pool_verifies += ps.checksum_verifies;
    }
  }
  counter("pool.hits", pool_hits);
  counter("pool.misses", pool_misses);
  counter("pool.evictions", pool_evictions);
  counter("pool.checksum_verifies", pool_verifies);

  // Re-establish the sorted-by-name invariant the appends broke.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  return snap;
}

}  // namespace privhp
