#include "service/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/macros.h"
#include "core/builder.h"
#include "core/queries.h"
#include "domain/hypercube_domain.h"
#include "io/socket_point_stream.h"

namespace privhp {

namespace {

// Listener fds are tagged with their index; connection tags start here.
// The fd space can never reach this many listeners.
constexpr uint64_t kConnTagBase = uint64_t{1} << 16;

// Reactor tick: epoll_wait timeout, which also bounds how stale the
// idle/backpressure deadline sweep can get.
constexpr int kReactorTickMs = 100;

// Fairness bounds: how much one readable connection or one listener may
// consume of a single reactor round before others get a turn.
constexpr int kMaxFramesPerRound = 32;
constexpr int kMaxAcceptsPerRound = 64;

// Bounds on the per-connection ingest frame channel (reactor-to-worker
// hand-off of streamed point frames). When full, the reactor stops
// reading the connection, which the peer sees as TCP backpressure.
constexpr size_t kIngestChannelMaxBytes = size_t{8} << 20;
constexpr size_t kIngestChannelMaxFrames = 256;

// How many pipelined requests one worker may drain from a single
// connection before handing the execution slot back through the task
// queue. Inline continuation is what makes pipelining pay (no two
// thread wake-ups between back-to-back requests), but an unbounded
// drain would let one pipelining peer monopolize a worker.
constexpr int kMaxInlineRequestsPerTask = 32;

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection: the reactor's per-peer state plus the worker-facing
// hand-off surfaces. Field ownership is strict — the reactor-owned block
// is touched by the reactor thread only and never locked; everything
// shared with workers goes through mu / ingest_mu / the atomics.
// ---------------------------------------------------------------------------

struct PrivHPServer::Connection {
  /// What the next inbound frame on this connection means.
  enum class InputMode {
    kAuth,     ///< TCP with a configured token, handshake not done
    kRequest,  ///< frames are ServiceRequests
    kIngest,   ///< frames belong to an expected ingest point stream
  };

  uint64_t tag = 0;
  Socket sock;
  bool needs_auth = false;

  // ---- reactor-owned (single thread, never locked) ----
  FrameReader reader;
  FrameWriter writer;
  InputMode mode = InputMode::kRequest;
  bool authed = false;
  /// Ingest point streams the peer still owes us (one per INGEST request
  /// parsed and not yet released). While > 0 inbound frames route to the
  /// ingest channel instead of the request parser.
  int streams_expected = 0;
  bool want_read = true;   ///< current EPOLLIN interest
  bool want_write = false; ///< current EPOLLOUT interest
  /// Stop consuming input for good (unparseable frame / failed auth):
  /// the queued response still flushes, then the connection closes.
  bool reading_disabled = false;
  bool close_after_flush = false;
  DropReason flush_drop_reason = DropReason::kNone;
  bool dropped = false;
  uint64_t last_bytes_received = 0;
  std::chrono::steady_clock::time_point last_activity;
  std::chrono::steady_clock::time_point last_write_progress;

  // ---- shared with workers (guarded by mu) ----
  Mutex mu;
  bool closed GUARDED_BY(mu) = false;  ///< worker-visible mirror of dropped
  /// Parsed requests awaiting execution. The reactor pushes; either the
  /// reactor pops (MaybeStartNext, when no worker holds the slot) or
  /// the worker finishing the previous request pops the next one inline
  /// — that continuation is what lets pipelined requests run
  /// back-to-back without two thread wake-ups in between.
  std::deque<PendingRequest> pending GUARDED_BY(mu);
  /// A worker owns a request or parked stream.
  bool executing GUARDED_BY(mu) = false;
  /// Response frames awaiting the writer.
  std::deque<std::string> outbox GUARDED_BY(mu);
  /// Request-completion hand-off, consumed by the reactor in
  /// DrainReadyList: the executing request finished; optionally asks for
  /// a drop and/or releases an unconsumed ingest stream expectation.
  bool request_done GUARDED_BY(mu) = false;
  bool done_drop GUARDED_BY(mu) = false;
  DropReason done_drop_reason GUARDED_BY(mu) = DropReason::kNone;
  bool done_release_stream GUARDED_BY(mu) = false;
  /// A SAMPLE/EXPORT response that hit the output high-water mark,
  /// waiting for the peer to drain. The request slot stays occupied
  /// (executing == true) but no worker is held.
  std::unique_ptr<ResponseStream> parked GUARDED_BY(mu);
  bool resume_scheduled GUARDED_BY(mu) = false;

  /// Bytes queued toward the peer (outbox + writer, frame headers
  /// included) — atomic so stream producers can check the high-water
  /// mark without taking the reactor's state apart.
  std::atomic<size_t> queued_bytes{0};

  /// Membership in the reactor's ready list (dedup for NotifyConn).
  std::atomic<bool> in_ready{false};

  // ---- ingest frame channel (guarded by ingest_mu) ----
  // The reactor pushes raw point-stream frames; the worker executing the
  // INGEST pops them through a SocketPointSource. Bounded by
  // kIngestChannelMax*; when full the reactor pauses reads.
  Mutex ingest_mu;
  CondVar ingest_cv;
  std::deque<std::string> ingest_frames GUARDED_BY(ingest_mu);
  size_t ingest_bytes GUARDED_BY(ingest_mu) = 0;
  bool ingest_closed GUARDED_BY(ingest_mu) = false;
};

// ---------------------------------------------------------------------------
// Response streams: resumable generation state for responses larger than
// the output queue. Pump() produces frames until done, failure, or the
// high-water mark; a parked stream holds whatever it needs (including
// the artifact pin) until the reactor reschedules it.
// ---------------------------------------------------------------------------

struct PrivHPServer::ResponseStream {
  enum class PumpResult { kDone, kParked, kFailed };

  virtual ~ResponseStream() = default;
  virtual PumpResult Pump() = 0;

  PrivHPServer* server = nullptr;
  std::shared_ptr<Connection> conn;
  RequestScope scope;
};

struct PrivHPServer::SampleStream : ResponseStream {
  std::shared_ptr<const ServedArtifact> artifact;
  RandomEngine engine;
  uint64_t remaining = 0;
  uint64_t total = 0;
  std::unique_ptr<SocketPointSink> sink;

  PumpResult Pump() override {
    const size_t high = server->options_.max_output_queue_bytes;
    // Generate one wire batch at a time so a park (or shutdown) can
    // interrupt a large response between frames. The artifact's
    // sampling state (compiled alias table, mmapped table or buffer
    // pool) was set up once at publish/load time and is shared by every
    // concurrent request through the registry's shared_ptr — nothing is
    // rebuilt per request or per chunk, and the point stream is
    // bit-identical whichever representation serves it.
    while (remaining > 0) {
      if (server->stopping_.load()) return PumpResult::kFailed;
      if (conn->queued_bytes.load(std::memory_order_relaxed) >= high) {
        return PumpResult::kParked;
      }
      const uint64_t chunk = std::min<uint64_t>(
          std::max<size_t>(1, server->options_.sample_batch), remaining);
      if (!artifact->GenerateTo(chunk, &engine, sink.get()).ok()) {
        return PumpResult::kFailed;
      }
      remaining -= chunk;
    }
    if (!sink->FinishStream().ok()) return PumpResult::kFailed;
    server->stats_.sampled_points.fetch_add(total,
                                            std::memory_order_relaxed);
    server->metrics_->sample_points->Add(static_cast<int64_t>(total));
    return PumpResult::kDone;
  }
};

struct PrivHPServer::ExportStream : ResponseStream {
  std::string blob;
  size_t offset = 0;
  size_t chunk_bytes = 0;

  PumpResult Pump() override {
    const size_t high = server->options_.max_output_queue_bytes;
    while (offset < blob.size()) {
      if (server->stopping_.load()) return PumpResult::kFailed;
      if (conn->queued_bytes.load(std::memory_order_relaxed) >= high) {
        return PumpResult::kParked;
      }
      const size_t n = std::min(chunk_bytes, blob.size() - offset);
      WireWriter w;
      w.PutU8(kExportChunkTag);
      w.PutBytes(blob.data() + offset, n);
      if (!server->EnqueueFrame(conn, w.Take(), &scope).ok()) {
        return PumpResult::kFailed;
      }
      offset += n;
    }
    WireWriter end;
    end.PutU8(kExportEndTag);
    end.PutU64(blob.size());
    if (!server->EnqueueFrame(conn, end.Take(), &scope).ok()) {
      return PumpResult::kFailed;
    }
    return PumpResult::kDone;
  }
};

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

PrivHPServer::PrivHPServer(ArtifactRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)) {
  metrics_registry_ = options_.metrics;
  if (metrics_registry_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_registry_ = owned_metrics_.get();
  }
  // Resolve every handle now: the request path records through raw
  // pointers and never touches the registry mutex.
  metrics_ = std::make_unique<ServiceMetrics>(metrics_registry_);
  metrics_->workers_total->Set(options_.num_workers);
}

Result<std::unique_ptr<PrivHPServer>> PrivHPServer::Start(
    ArtifactRegistry* registry, const ServerOptions& options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must not be null");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "server needs at least one listener (unix_path or tcp_port)");
  }
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.max_output_queue_bytes == 0) {
    return Status::InvalidArgument("max_output_queue_bytes must be > 0");
  }
  if (options.max_pipeline_requests < 1) {
    return Status::InvalidArgument("max_pipeline_requests must be >= 1");
  }
  std::unique_ptr<PrivHPServer> server(new PrivHPServer(registry, options));
  PRIVHP_ASSIGN_OR_RETURN(server->loop_, EventLoop::Make());
  PRIVHP_RETURN_NOT_OK(server->StartListeners());
  server->reactor_ = std::thread([srv = server.get()]() {
    srv->ReactorLoop();
  });
  for (int w = 0; w < options.num_workers; ++w) {
    server->workers_.emplace_back(
        [srv = server.get(), w]() { srv->WorkerLoop(w); });
  }
  return server;
}

Status PrivHPServer::StartListeners() {
  if (!options_.unix_path.empty()) {
    PRIVHP_ASSIGN_OR_RETURN(Socket listener, ListenUnix(options_.unix_path));
    listeners_.push_back(std::move(listener));
    ListenerState state;
    state.is_tcp = false;
    listener_state_.push_back(state);
  }
  if (options_.tcp_port >= 0) {
    uint16_t bound = 0;
    PRIVHP_ASSIGN_OR_RETURN(
        Socket listener,
        ListenTcp(options_.tcp_host,
                  static_cast<uint16_t>(options_.tcp_port), &bound));
    tcp_port_ = bound;
    listeners_.push_back(std::move(listener));
    ListenerState state;
    state.is_tcp = true;
    listener_state_.push_back(state);
  }
  for (size_t i = 0; i < listeners_.size(); ++i) {
    // Listeners must not block the reactor in accept().
    PRIVHP_RETURN_NOT_OK(SetSocketNonBlocking(listeners_[i], true));
    PRIVHP_RETURN_NOT_OK(loop_.Add(listeners_[i].fd(), true, false, i));
  }
  return Status::OK();
}

PrivHPServer::~PrivHPServer() { Stop(); }

void PrivHPServer::Stop() {
  if (stopping_.exchange(true)) return;
  loop_.Wake();
  // The reactor drops every connection on its way out, which closes the
  // ingest channels and unblocks any worker waiting on streamed frames.
  if (reactor_.joinable()) reactor_.join();
  // Pairing the flag flip with the queue lock closes the lost-wakeup
  // race: a worker that read stopping_ == false under the lock is
  // guaranteed to be inside wait() by the time we notify.
  { MutexLock lock(task_mu_); }
  task_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

PrivHPServer::Stats PrivHPServer::stats() const {
  Stats s;
  s.connections = stats_.connections.load(std::memory_order_relaxed);
  s.requests = stats_.requests.load(std::memory_order_relaxed);
  s.errors = stats_.errors.load(std::memory_order_relaxed);
  s.sampled_points = stats_.sampled_points.load(std::memory_order_relaxed);
  s.ingested_points = stats_.ingested_points.load(std::memory_order_relaxed);
  s.ingests_published =
      stats_.ingests_published.load(std::memory_order_relaxed);
  s.listener_failure_streaks =
      stats_.listener_failure_streaks.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Reactor side
// ---------------------------------------------------------------------------

void PrivHPServer::ReactorLoop() {
  std::vector<EventLoop::Event> events;
  while (!stopping_.load()) {
    events.clear();
    const Status polled = loop_.Poll(kReactorTickMs, &events);
    if (!polled.ok()) {
      // A broken epoll fd is unrecoverable; stop serving rather than
      // spin. Stop() still joins cleanly.
      std::fprintf(stderr, "privhp server: reactor poll failed: %s\n",
                   polled.message().c_str());
      break;
    }
    for (const EventLoop::Event& ev : events) {
      if (ev.tag < kConnTagBase) {
        if (ev.tag < listeners_.size()) {
          AcceptPending(static_cast<size_t>(ev.tag));
        }
        continue;
      }
      auto it = conns_.find(ev.tag);
      if (it == conns_.end()) continue;  // dropped earlier this round
      std::shared_ptr<Connection> conn = it->second;
      // EPOLLHUP/EPOLLERR surface through the read path: recv() reports
      // the EOF or the socket error with a usable message.
      if (ev.readable || ev.hangup) HandleReadable(conn);
      if (!conn->dropped && ev.writable) PumpConnection(conn);
    }
    DrainReadyList();
    SweepDeadlines(std::chrono::steady_clock::now());
  }
  // Shutdown: close every connection. This marks the worker-visible
  // closed flags and ingest channels, so in-flight builds and streams
  // fail fast instead of waiting out their timeouts.
  std::vector<std::shared_ptr<Connection>> all;
  all.reserve(conns_.size());
  for (const auto& entry : conns_) all.push_back(entry.second);
  for (const std::shared_ptr<Connection>& conn : all) {
    DropConnection(conn, DropReason::kNone);
  }
}

void PrivHPServer::AcceptPending(size_t listener_index) {
  ListenerState& state = listener_state_[listener_index];
  for (int i = 0; i < kMaxAcceptsPerRound; ++i) {
    bool would_block = false;
    Result<Socket> accepted =
        AcceptReady(listeners_[listener_index], &would_block);
    if (!accepted.ok()) {
      PauseListener(listener_index, accepted.status());
      return;
    }
    if (would_block) break;
    state.consecutive_failures = 0;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    metrics_->connections_open->Add(1);
    if (state.is_tcp) {
      // Responses are written as soon as the peer can take them; never
      // let Nagle hold a finished response frame hostage.
      int one = 1;
      ::setsockopt(accepted->fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
    }
    auto conn = std::make_shared<Connection>();
    conn->tag = kConnTagBase + next_conn_tag_++;
    conn->sock = std::move(*accepted);
    conn->needs_auth = state.is_tcp && !options_.auth_token.empty();
    RecomputeMode(conn);
    const auto now = std::chrono::steady_clock::now();
    conn->last_activity = now;
    conn->last_write_progress = now;
    if (!loop_.Add(conn->sock.fd(), true, false, conn->tag).ok()) {
      metrics_->connections_open->Add(-1);
      continue;  // the Socket destructor closes the fd
    }
    conn->want_read = true;
    conn->want_write = false;
    conns_[conn->tag] = std::move(conn);
  }
}

void PrivHPServer::PauseListener(size_t listener_index, const Status& error) {
  ListenerState& state = listener_state_[listener_index];
  // Accept failures are retried forever: transient causes (ECONNABORTED
  // under load, EMFILE during fd exhaustion) can outlast any fixed
  // budget, and abandoning the listener would leave a healthy-looking
  // server that never accepts again. The backoff cap keeps even a
  // structurally dead fd (EBADF) from hogging the reactor, and a
  // sustained streak is surfaced via stderr and
  // Stats::listener_failure_streaks.
  ++state.consecutive_failures;
  if (state.consecutive_failures == 16) {
    stats_.listener_failure_streaks.fetch_add(1, std::memory_order_relaxed);
  }
  if (state.consecutive_failures % 16 == 0) {
    std::fprintf(stderr,
                 "privhp server: listener failing, %d consecutive "
                 "accept failures, last: %s\n",
                 state.consecutive_failures, error.message().c_str());
  }
  (void)loop_.Del(listeners_[listener_index].fd());
  state.paused = true;
  const int backoff_ms = std::min(10 * state.consecutive_failures, 1000);
  state.rearm_at = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(backoff_ms);
}

void PrivHPServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  bool socket_drained = false;
  for (int i = 0; i < kMaxFramesPerRound; ++i) {
    if (conn->dropped) return;
    // Routing may have paused input mid-round (pipeline cap, full
    // ingest channel, failed auth); stop pulling frames immediately.
    if (!WantRead(conn)) break;
    Result<FrameReader::Event> event = conn->reader.Poll(conn->sock);
    const uint64_t received = conn->reader.bytes_received();
    if (received != conn->last_bytes_received) {
      conn->last_bytes_received = received;
      conn->last_activity = std::chrono::steady_clock::now();
    }
    if (!event.ok() || *event == FrameReader::Event::kEof) {
      // EOF or a socket error: the peer is gone. In-flight work fails
      // fast through the closed flags; this is an ordinary close, not a
      // policy drop.
      DropConnection(conn, DropReason::kNone);
      return;
    }
    if (*event == FrameReader::Event::kNeedMore) {
      socket_drained = true;
      break;
    }
    RouteFrame(conn, std::move(conn->reader.frame()));
  }
  if (conn->dropped) return;
  UpdateInterest(conn);
  // The reader over-reads: stopping for a fairness cap or a paused
  // pipeline can leave complete frames in its buffer with the kernel
  // side drained, so EPOLLIN alone would never deliver them. Reschedule
  // through the ready list (a kNeedMore exit means the buffer holds at
  // most a partial frame — EPOLLIN is the right wake-up for that).
  if (!socket_drained && conn->reader.has_buffered()) NotifyConn(conn);
}

void PrivHPServer::RouteFrame(const std::shared_ptr<Connection>& conn,
                              std::string frame) {
  switch (conn->mode) {
    case Connection::InputMode::kAuth:
      HandleAuthFrame(conn, frame);
      return;
    case Connection::InputMode::kIngest: {
      // The frame belongs to an expected point stream: hand it to the
      // ingest worker through the bounded channel without decoding.
      const bool is_end =
          !frame.empty() &&
          static_cast<uint8_t>(frame[0]) == kPointStreamEndTag;
      {
        MutexLock lock(conn->ingest_mu);
        if (!conn->ingest_closed) {
          conn->ingest_bytes += frame.size();
          conn->ingest_frames.push_back(std::move(frame));
        }
      }
      conn->ingest_cv.NotifyOne();
      if (is_end) {
        if (conn->streams_expected > 0) --conn->streams_expected;
        RecomputeMode(conn);
      }
      return;
    }
    case Connection::InputMode::kRequest:
      break;
  }
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  PendingRequest pending;
  pending.bytes_in = frame.size();
  Result<ServiceRequest> parsed = ParseRequest(frame);
  if (!parsed.ok()) {
    // A frame we cannot parse means the peer speaks a different
    // protocol: stop reading, answer this one in pipeline order (behind
    // any responses already owed), then close.
    pending.parse_error = parsed.status();
    conn->reading_disabled = true;
  } else {
    pending.req = std::move(*parsed);
    if (pending.req.op == ServiceOp::kIngest) {
      // The peer will follow up with a point stream once (if) the
      // request is acknowledged; route those frames to the channel. An
      // INGEST therefore acts as a pipeline barrier: a conforming
      // client waits for the verdict before sending more requests.
      ++conn->streams_expected;
      RecomputeMode(conn);
    }
  }
  {
    MutexLock lock(conn->mu);
    conn->pending.push_back(std::move(pending));
  }
  MaybeStartNext(conn);
}

void PrivHPServer::HandleAuthFrame(const std::shared_ptr<Connection>& conn,
                                   const std::string& frame) {
  // The handshake is answered by the reactor itself: no artifact state
  // is involved, and keeping unauthenticated peers away from the worker
  // pool means a flood of bad handshakes cannot starve real requests.
  const auto started = std::chrono::steady_clock::now();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  EndpointMetrics& ep = metrics_->ForOp(ServiceOp::kAuth);
  ep.requests->Inc();
  Result<ServiceRequest> parsed = ParseRequest(frame);
  Status verdict = Status::OK();
  if (!parsed.ok()) {
    verdict = parsed.status();
  } else if (parsed->op != ServiceOp::kAuth) {
    verdict = Status::FailedPrecondition(
        "authentication required: first frame must be AUTH");
  } else if (parsed->token != options_.auth_token) {
    verdict = Status::FailedPrecondition("authentication failed");
  }
  uint64_t bytes_out = 0;
  if (verdict.ok()) {
    conn->authed = true;
    RecomputeMode(conn);
    std::string ok = BeginOkResponse().Take();
    bytes_out = ok.size();
    (void)EnqueueFrame(conn, std::move(ok), nullptr);
  } else {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    ep.errors->Inc();
    std::string err = EncodeErrorResponse(verdict);
    bytes_out = err.size();
    (void)EnqueueFrame(conn, std::move(err), nullptr);
    conn->reading_disabled = true;
    conn->close_after_flush = true;
    conn->flush_drop_reason = DropReason::kAuth;
  }
  ep.latency_ns->Record(
      ElapsedNs(started, std::chrono::steady_clock::now()));
  ep.bytes_in->Record(frame.size());
  ep.bytes_out->Record(bytes_out);
}

void PrivHPServer::MaybeStartNext(const std::shared_ptr<Connection>& conn) {
  // One request executes per connection at a time: responses come back
  // in request order because nothing else can produce them out of turn.
  if (conn->dropped || conn->close_after_flush) return;
  Task task;
  {
    MutexLock lock(conn->mu);
    if (conn->executing || conn->pending.empty()) return;
    task.request = std::move(conn->pending.front());
    conn->pending.pop_front();
    conn->executing = true;
  }
  task.conn = conn;
  task.enqueued = std::chrono::steady_clock::now();
  SubmitTask(std::move(task));
}

void PrivHPServer::RecomputeMode(const std::shared_ptr<Connection>& conn) {
  if (conn->needs_auth && !conn->authed) {
    conn->mode = Connection::InputMode::kAuth;
  } else if (conn->streams_expected > 0) {
    conn->mode = Connection::InputMode::kIngest;
  } else {
    conn->mode = Connection::InputMode::kRequest;
  }
}

bool PrivHPServer::WantRead(const std::shared_ptr<Connection>& conn) {
  if (conn->reading_disabled || conn->close_after_flush) return false;
  if (conn->mode == Connection::InputMode::kIngest) {
    MutexLock lock(conn->ingest_mu);
    return conn->ingest_bytes < kIngestChannelMaxBytes &&
           conn->ingest_frames.size() < kIngestChannelMaxFrames;
  }
  MutexLock lock(conn->mu);
  return conn->pending.size() <
         static_cast<size_t>(options_.max_pipeline_requests);
}

void PrivHPServer::PumpConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->dropped) return;
  {
    MutexLock lock(conn->mu);
    while (!conn->outbox.empty()) {
      // Frames were size-checked when the worker encoded them.
      const Status queued =
          conn->writer.Enqueue(std::move(conn->outbox.front()));
      PRIVHP_DCHECK(queued.ok());
      (void)queued;
      conn->outbox.pop_front();
    }
  }
  if (!conn->writer.empty()) {
    const size_t before = conn->writer.pending_bytes();
    Result<bool> drained = conn->writer.Pump(conn->sock);
    const size_t flushed = before - conn->writer.pending_bytes();
    if (flushed > 0) {
      conn->queued_bytes.fetch_sub(flushed, std::memory_order_relaxed);
      metrics_->output_queue_bytes->Add(-static_cast<int64_t>(flushed));
      const auto now = std::chrono::steady_clock::now();
      conn->last_write_progress = now;
      conn->last_activity = now;
    }
    if (!drained.ok()) {
      DropConnection(conn, DropReason::kNone);
      return;
    }
  }
  // Resume a parked stream once the peer drained below the low-water
  // mark (half the cap — hysteresis, so a stream does not thrash between
  // parking and resuming on every frame).
  if (conn->queued_bytes.load(std::memory_order_relaxed) <=
      options_.max_output_queue_bytes / 2) {
    bool submit = false;
    {
      MutexLock lock(conn->mu);
      if (conn->parked != nullptr && !conn->resume_scheduled) {
        conn->resume_scheduled = true;
        submit = true;
      }
    }
    if (submit) {
      Task task;
      task.conn = conn;
      task.resume = true;
      task.enqueued = std::chrono::steady_clock::now();
      SubmitTask(std::move(task));
    }
  }
  if (conn->close_after_flush && conn->writer.empty()) {
    bool flushed_and_idle;
    {
      MutexLock lock(conn->mu);
      flushed_and_idle = conn->outbox.empty() && !conn->executing;
    }
    if (flushed_and_idle) {
      DropConnection(conn, conn->flush_drop_reason);
      return;
    }
  }
  UpdateInterest(conn);
}

void PrivHPServer::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->dropped) return;
  const bool want_read = WantRead(conn);
  const bool want_write = !conn->writer.empty();
  if (want_read == conn->want_read && want_write == conn->want_write) {
    return;
  }
  conn->want_read = want_read;
  conn->want_write = want_write;
  if (!loop_.Mod(conn->sock.fd(), want_read, want_write, conn->tag).ok()) {
    DropConnection(conn, DropReason::kNone);
  }
}

void PrivHPServer::DrainReadyList() {
  std::vector<std::shared_ptr<Connection>> ready;
  {
    MutexLock lock(ready_mu_);
    ready.swap(ready_);
  }
  for (const std::shared_ptr<Connection>& conn : ready) {
    // Clear membership before reading the flags: a worker notification
    // racing with this pass just re-queues the connection for the next
    // round instead of being lost.
    conn->in_ready.store(false, std::memory_order_release);
    if (conn->dropped) continue;
    bool done = false;
    bool drop = false;
    bool release_stream = false;
    DropReason reason = DropReason::kNone;
    {
      MutexLock lock(conn->mu);
      done = conn->request_done;
      if (done) {
        conn->request_done = false;
        drop = conn->done_drop;
        conn->done_drop = false;
        reason = conn->done_drop_reason;
        conn->done_drop_reason = DropReason::kNone;
        release_stream = conn->done_release_stream;
        conn->done_release_stream = false;
        conn->executing = false;
      }
    }
    if (done) {
      if (release_stream && conn->streams_expected > 0) {
        // The INGEST finished without consuming its point stream (it
        // was rejected before the ack): the peer will not send one.
        --conn->streams_expected;
      }
      RecomputeMode(conn);
      if (drop) {
        conn->close_after_flush = true;
        conn->flush_drop_reason = reason;
        conn->reading_disabled = true;
      } else {
        MaybeStartNext(conn);
      }
    }
    // A pipeline un-pausing (request slots freed, ingest channel
    // drained) is signalled through this list, not by EPOLLIN: continue
    // parsing any frames the reader buffered past an earlier round's
    // fairness cap.
    if (conn->reader.has_buffered() && WantRead(conn)) {
      HandleReadable(conn);
      if (conn->dropped) continue;
    }
    PumpConnection(conn);
  }
}

void PrivHPServer::SweepDeadlines(std::chrono::steady_clock::time_point now) {
  for (size_t i = 0; i < listener_state_.size(); ++i) {
    ListenerState& state = listener_state_[i];
    if (state.paused && now >= state.rearm_at) {
      if (loop_.Add(listeners_[i].fd(), true, false, i).ok()) {
        state.paused = false;
      } else {
        state.rearm_at = now + std::chrono::milliseconds(std::min(
                                   10 * state.consecutive_failures, 1000));
      }
    }
  }
  if (conns_.empty()) return;
  const auto send_limit = std::chrono::seconds(options_.send_timeout_seconds);
  const auto idle_limit = std::chrono::seconds(options_.idle_timeout_seconds);
  std::vector<std::pair<std::shared_ptr<Connection>, DropReason>> expired;
  for (const auto& entry : conns_) {
    const std::shared_ptr<Connection>& conn = entry.second;
    if (conn->queued_bytes.load(std::memory_order_relaxed) > 0) {
      // Output is pending: the clock that matters is write progress. A
      // peer that stopped reading is a backpressure casualty, whatever
      // else it is doing.
      const auto stalled = now - conn->last_write_progress;
      const bool hit =
          (options_.send_timeout_seconds > 0 && stalled >= send_limit) ||
          (options_.idle_timeout_seconds > 0 && stalled >= idle_limit);
      if (hit) {
        // A failed handshake waiting out its flush keeps its own label.
        const DropReason reason =
            conn->close_after_flush &&
                    conn->flush_drop_reason != DropReason::kNone
                ? conn->flush_drop_reason
                : DropReason::kBackpressure;
        expired.emplace_back(conn, reason);
      }
      continue;
    }
    // A worker owns the connection (request running, stream parked, or
    // ingest consuming its channel — which applies the idle bound per
    // frame itself); the sweep leaves it alone.
    bool executing;
    {
      MutexLock lock(conn->mu);
      executing = conn->executing;
    }
    if (executing) continue;
    if (options_.idle_timeout_seconds > 0 &&
        now - conn->last_activity >= idle_limit) {
      expired.emplace_back(conn, DropReason::kIdle);
    }
  }
  for (const auto& entry : expired) {
    DropConnection(entry.first, entry.second);
  }
}

void PrivHPServer::DropConnection(const std::shared_ptr<Connection>& conn,
                                  DropReason reason) {
  if (conn->dropped) return;
  conn->dropped = true;
  (void)loop_.Del(conn->sock.fd());
  switch (reason) {
    case DropReason::kIdle:
      metrics_->dropped_idle->Inc();
      break;
    case DropReason::kBackpressure:
      metrics_->dropped_backpressure->Inc();
      break;
    case DropReason::kAuth:
      metrics_->dropped_auth->Inc();
      break;
    case DropReason::kNone:
      break;
  }
  metrics_->connections_open->Add(-1);
  size_t queued = 0;
  {
    MutexLock lock(conn->mu);
    conn->closed = true;
    conn->pending.clear();
    conn->outbox.clear();
    conn->parked.reset();
    // Exchanged under mu so a racing EnqueueFrame either lands before
    // (its bytes are in `queued`) or observes closed and adds nothing.
    queued = conn->queued_bytes.exchange(0, std::memory_order_relaxed);
  }
  if (queued > 0) {
    metrics_->output_queue_bytes->Add(-static_cast<int64_t>(queued));
  }
  {
    MutexLock lock(conn->ingest_mu);
    conn->ingest_closed = true;
    conn->ingest_frames.clear();
    conn->ingest_bytes = 0;
  }
  conn->ingest_cv.NotifyAll();
  conn->sock.Close();
  conns_.erase(conn->tag);
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

void PrivHPServer::SubmitTask(Task task) {
  {
    MutexLock lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  metrics_->queue_depth->Add(1);
  task_cv_.NotifyOne();
}

void PrivHPServer::WorkerLoop(int worker_index) {
  RandomEngine engine =
      RandomEngine(options_.seed).Fork(static_cast<uint64_t>(worker_index));
  for (;;) {
    Task task;
    {
      MutexLock lock(task_mu_);
      // Explicit wait loop (not wait-with-predicate): the thread-safety
      // analysis needs to see the guarded tasks_ read under the lock in
      // this function, not inside a lambda.
      while (!stopping_.load() && tasks_.empty()) task_cv_.Wait(task_mu_);
      if (stopping_.load()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    metrics_->queue_depth->Add(-1);
    metrics_->queue_wait_ns->Record(
        ElapsedNs(task.enqueued, std::chrono::steady_clock::now()));
    metrics_->workers_busy->Add(1);
    ExecuteTask(std::move(task), &engine);
    metrics_->workers_busy->Add(-1);
  }
}

void PrivHPServer::ExecuteTask(Task task, RandomEngine* engine) {
  bool continuable;
  if (task.resume) {
    std::unique_ptr<ResponseStream> stream;
    {
      MutexLock lock(task.conn->mu);
      stream = std::move(task.conn->parked);
      task.conn->resume_scheduled = false;
    }
    // A null stream means the connection dropped between scheduling and
    // execution; there is nothing left to finish.
    if (stream == nullptr) return;
    continuable = RunStream(std::move(stream));
  } else {
    continuable = ExecuteRequest(task.conn, std::move(task.request), engine);
  }
  // Inline continuation: while the connection has pipelined requests
  // waiting and the last one completed cleanly, keep the execution slot
  // and run the next one right here — bouncing through the reactor and
  // the task queue would cost two thread wake-ups per request. Bounded
  // so one pipelining peer cannot monopolize a worker: past the budget
  // the slot goes back through the reactor, which re-submits the
  // connection at the tail of the task queue.
  int budget = kMaxInlineRequestsPerTask;
  while (continuable) {
    PendingRequest next;
    {
      MutexLock lock(task.conn->mu);
      if (task.conn->closed || task.conn->pending.empty()) {
        task.conn->executing = false;
        return;
      }
      if (--budget <= 0) {
        task.conn->request_done = true;
        break;
      }
      next = std::move(task.conn->pending.front());
      task.conn->pending.pop_front();
    }
    continuable = ExecuteRequest(task.conn, std::move(next), engine);
  }
  NotifyConn(task.conn);
}

bool PrivHPServer::ExecuteRequest(const std::shared_ptr<Connection>& conn,
                                  PendingRequest pending,
                                  RandomEngine* engine) {
  // Latency covers dispatch through the last response frame enqueued
  // (parked stream time included: a slow-reading peer IS tail latency to
  // the next request on this connection). Bytes in/out are per-request
  // wire payloads — INGEST adds its streamed point frames, SAMPLE its
  // response stream.
  RequestScope scope;
  scope.started = std::chrono::steady_clock::now();
  scope.bytes_in = pending.bytes_in;
  if (!pending.parse_error.ok()) {
    // Unparseable frame: answer once and close. There is no endpoint to
    // charge the error to, so only the server totals see it.
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    (void)EnqueueFrame(conn, EncodeErrorResponse(pending.parse_error),
                       &scope);
    return FinalizeRequest(conn, &scope, /*drop_connection=*/true,
                           DropReason::kNone,
                           /*ingest_stream_consumed=*/true);
  }
  scope.ep = &metrics_->ForOp(pending.req.op);
  scope.ep->requests->Inc();
  bool drop = false;
  DropReason reason = DropReason::kNone;
  bool stream_consumed = true;
  std::unique_ptr<ResponseStream> stream;
  DispatchRequest(conn, pending.req, engine, &scope, &drop, &reason,
                  &stream_consumed, &stream);
  if (stream != nullptr) {
    stream->scope = scope;
    return RunStream(std::move(stream));
  }
  return FinalizeRequest(conn, &scope, drop, reason, stream_consumed);
}

bool PrivHPServer::RunStream(std::unique_ptr<ResponseStream> stream) {
  const std::shared_ptr<Connection> conn = stream->conn;
  const ResponseStream::PumpResult result = stream->Pump();
  if (result == ResponseStream::PumpResult::kParked) {
    bool parked_ok = false;
    {
      MutexLock lock(conn->mu);
      if (!conn->closed) {
        conn->parked = std::move(stream);
        parked_ok = true;
      }
    }
    if (!parked_ok) {
      // The connection dropped while we streamed (stream was not taken);
      // finish the request so its slot is not stuck (no one will read
      // the response anyway).
      return FinalizeRequest(conn, &stream->scope,
                             /*drop_connection=*/false, DropReason::kNone,
                             /*ingest_stream_consumed=*/true);
    }
    NotifyConn(conn);
    return false;
  }
  return FinalizeRequest(conn, &stream->scope,
                         result == ResponseStream::PumpResult::kFailed,
                         DropReason::kNone, /*ingest_stream_consumed=*/true);
}

bool PrivHPServer::FinalizeRequest(const std::shared_ptr<Connection>& conn,
                                   RequestScope* scope, bool drop_connection,
                                   DropReason reason,
                                   bool ingest_stream_consumed) {
  // Record before the slot can move on: the connection's next pipelined
  // request (a STATS, say — whether started inline by this worker or by
  // the reactor once it sees request_done) must observe this one's
  // metrics.
  if (scope->ep != nullptr) {
    scope->ep->latency_ns->Record(
        ElapsedNs(scope->started, std::chrono::steady_clock::now()));
    scope->ep->bytes_in->Record(scope->bytes_in);
    scope->ep->bytes_out->Record(scope->bytes_out);
  }
  if (drop_connection || !ingest_stream_consumed) {
    // The reactor has cleanup to do (close after flush / release the
    // expected ingest stream); hand the slot back through request_done.
    {
      MutexLock lock(conn->mu);
      conn->request_done = true;
      if (drop_connection) {
        conn->done_drop = true;
        conn->done_drop_reason = reason;
      }
      if (!ingest_stream_consumed) conn->done_release_stream = true;
    }
    NotifyConn(conn);
    return false;
  }
  // Clean completion: the worker keeps the execution slot and may
  // continue with the connection's next pending request inline. Output
  // pumping was already scheduled by EnqueueFrame's NotifyConn.
  return true;
}

Status PrivHPServer::EnqueueFrame(const std::shared_ptr<Connection>& conn,
                                  std::string frame, RequestScope* scope) {
  if (scope != nullptr) scope->bytes_out += frame.size();
  // Account the 4-byte frame header too, matching the writer's
  // pending_bytes so queued_bytes drains exactly to zero.
  const size_t wire_bytes = frame.size() + 4;
  {
    MutexLock lock(conn->mu);
    if (conn->closed) return Status::IOError("connection dropped");
    conn->outbox.push_back(std::move(frame));
    conn->queued_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  }
  metrics_->output_queue_bytes->Add(static_cast<int64_t>(wire_bytes));
  NotifyConn(conn);
  return Status::OK();
}

Status PrivHPServer::EnqueueError(const std::shared_ptr<Connection>& conn,
                                  const Status& error, RequestScope* scope) {
  stats_.errors.fetch_add(1, std::memory_order_relaxed);
  if (scope != nullptr && scope->ep != nullptr) scope->ep->errors->Inc();
  return EnqueueFrame(conn, EncodeErrorResponse(error), scope);
}

void PrivHPServer::NotifyConn(const std::shared_ptr<Connection>& conn) {
  if (conn->in_ready.exchange(true, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(ready_mu_);
    ready_.push_back(conn);
  }
  loop_.Wake();
}

// ---------------------------------------------------------------------------
// Request dispatch (worker threads)
// ---------------------------------------------------------------------------

void PrivHPServer::DispatchRequest(
    const std::shared_ptr<Connection>& conn, const ServiceRequest& req,
    RandomEngine* engine, RequestScope* scope, bool* drop,
    DropReason* reason, bool* stream_consumed,
    std::unique_ptr<ResponseStream>* stream_out) {
  switch (req.op) {
    case ServiceOp::kPing:
      (void)EnqueueFrame(conn, BeginOkResponse().Take(), scope);
      return;
    case ServiceOp::kList: {
      WireWriter w = BeginOkResponse();
      const std::vector<std::string> names = registry_->List();
      w.PutU32(static_cast<uint32_t>(names.size()));
      for (const std::string& name : names) w.PutString(name);
      (void)EnqueueFrame(conn, w.Take(), scope);
      return;
    }
    case ServiceOp::kStats: {
      WireWriter w = BeginOkResponse();
      EncodeStatsSnapshot(StatsSnapshot(), &w);
      (void)EnqueueFrame(conn, w.Take(), scope);
      return;
    }
    case ServiceOp::kAuth: {
      // Reached only when the reactor did not demand the handshake up
      // front (Unix transport, or no token configured): a correct or
      // unnecessary token is fine, a wrong one is rejected on any
      // transport.
      if (options_.auth_token.empty() || req.token == options_.auth_token) {
        (void)EnqueueFrame(conn, BeginOkResponse().Take(), scope);
      } else {
        (void)EnqueueError(
            conn, Status::FailedPrecondition("authentication failed"),
            scope);
        *drop = true;
        *reason = DropReason::kAuth;
      }
      return;
    }
    case ServiceOp::kSample:
      HandleSampleRequest(conn, req, engine, scope, drop, stream_out);
      return;
    case ServiceOp::kIngest:
      HandleIngestRequest(conn, req, scope, drop, reason, stream_consumed);
      return;
    default:
      break;
  }

  // The remaining reads resolve an artifact first. They go through the
  // representation-independent ServedArtifact query surface, so a
  // heap-loaded tree, an mmapped paged file and a buffer-pooled paged
  // file all answer with identical bytes.
  Result<std::shared_ptr<const ServedArtifact>> artifact =
      registry_->Get(req.artifact);
  if (!artifact.ok()) {
    (void)EnqueueError(conn, artifact.status(), scope);
    return;
  }

  switch (req.op) {
    case ServiceOp::kRange: {
      if (req.level > 62 || (req.index >> req.level) != 0) {
        (void)EnqueueError(conn,
                           Status::InvalidArgument(
                               "cell index out of range for level " +
                               std::to_string(req.level)),
                           scope);
        return;
      }
      Result<double> fraction = (*artifact)->RangeMass(
          CellId{static_cast<int>(req.level), req.index});
      if (!fraction.ok()) {
        (void)EnqueueError(conn, fraction.status(), scope);
        return;
      }
      WireWriter w = BeginOkResponse();
      w.PutDouble(*fraction);
      (void)EnqueueFrame(conn, w.Take(), scope);
      return;
    }
    case ServiceOp::kQuantile: {
      Result<std::vector<double>> values = (*artifact)->Quantiles(req.qs);
      if (!values.ok()) {
        (void)EnqueueError(conn, values.status(), scope);
        return;
      }
      WireWriter w = BeginOkResponse();
      w.PutU32(static_cast<uint32_t>(values->size()));
      for (double v : *values) w.PutDouble(v);
      (void)EnqueueFrame(conn, w.Take(), scope);
      return;
    }
    case ServiceOp::kHeavy: {
      Result<std::vector<HeavyCell>> heavy =
          (*artifact)->Heavy(req.threshold);
      if (!heavy.ok()) {
        (void)EnqueueError(conn, heavy.status(), scope);
        return;
      }
      WireWriter w = BeginOkResponse();
      w.PutU32(static_cast<uint32_t>(heavy->size()));
      for (const HeavyCell& cell : *heavy) {
        w.PutU32(static_cast<uint32_t>(cell.cell.level));
        w.PutU64(cell.cell.index);
        w.PutDouble(cell.fraction);
      }
      (void)EnqueueFrame(conn, w.Take(), scope);
      return;
    }
    case ServiceOp::kExport: {
      // The artifact pin moves into the stream via ExportBlob's copy.
      HandleExportRequest(conn, req, scope, drop, stream_out);
      return;
    }
    default:
      (void)EnqueueError(
          conn, Status::Internal("unhandled opcode in dispatch"), scope);
      return;
  }
}

void PrivHPServer::HandleSampleRequest(
    const std::shared_ptr<Connection>& conn, const ServiceRequest& req,
    RandomEngine* engine, RequestScope* scope, bool* drop,
    std::unique_ptr<ResponseStream>* stream_out) {
  Result<std::shared_ptr<const ServedArtifact>> artifact =
      registry_->Get(req.artifact);
  if (!artifact.ok()) {
    (void)EnqueueError(conn, artifact.status(), scope);
    return;
  }
  if (options_.max_sample_points > 0 && req.m > options_.max_sample_points) {
    (void)EnqueueError(conn,
                       Status::InvalidArgument(
                           "m exceeds the server's per-request limit "
                           "of " +
                           std::to_string(options_.max_sample_points)),
                       scope);
    return;
  }
  WireWriter header = BeginOkResponse();
  header.PutU32(static_cast<uint32_t>((*artifact)->domain().dimension()));
  header.PutU64(req.m);
  if (!EnqueueFrame(conn, header.Take(), scope).ok()) {
    *drop = true;
    return;
  }

  auto stream = std::make_unique<SampleStream>();
  stream->server = this;
  stream->conn = conn;
  stream->artifact = std::move(*artifact);
  stream->remaining = req.m;
  stream->total = req.m;
  // seed != 0: a dedicated engine, so the response depends only on
  // (artifact, m, seed) — not on which worker served it or what it
  // served before. seed == 0: an engine derived from (and advancing)
  // the worker's own, so concurrent fresh samples never correlate.
  stream->engine =
      req.seed != 0 ? RandomEngine(req.seed) : RandomEngine(engine->NextUint64());
  SampleStream* raw = stream.get();
  stream->sink = std::make_unique<SocketPointSink>(
      FrameSendFn([this, raw](std::string payload) {
        return EnqueueFrame(raw->conn, std::move(payload), &raw->scope);
      }),
      options_.sample_batch);
  *stream_out = std::move(stream);
}

void PrivHPServer::HandleExportRequest(
    const std::shared_ptr<Connection>& conn, const ServiceRequest& req,
    RequestScope* scope, bool* drop,
    std::unique_ptr<ResponseStream>* stream_out) {
  Result<std::shared_ptr<const ServedArtifact>> artifact =
      registry_->Get(req.artifact);
  if (!artifact.ok()) {
    (void)EnqueueError(conn, artifact.status(), scope);
    return;
  }
  Result<std::string> blob = (*artifact)->ExportBlob();
  if (!blob.ok()) {
    (void)EnqueueError(conn, blob.status(), scope);
    return;
  }

  // Stream the blob across as many chunk frames as it needs: the OK
  // header promises the total, each chunk carries raw bytes, and the
  // end frame echoes the total as a completeness check. No artifact
  // size can hit the frame limit.
  WireWriter header = BeginOkResponse();
  header.PutU64(blob->size());
  if (!EnqueueFrame(conn, header.Take(), scope).ok()) {
    *drop = true;
    return;
  }
  auto stream = std::make_unique<ExportStream>();
  stream->server = this;
  stream->conn = conn;
  stream->blob = std::move(*blob);
  stream->chunk_bytes = std::min<size_t>(
      std::max<size_t>(1, options_.export_chunk_bytes), kMaxFrameBytes - 16);
  *stream_out = std::move(stream);
}

void PrivHPServer::HandleIngestRequest(
    const std::shared_ptr<Connection>& conn, const ServiceRequest& req,
    RequestScope* scope, bool* drop, DropReason* reason,
    bool* stream_consumed) {
  // Until the stream's end frame is consumed (or the reactor releases
  // the expectation on a pre-ack rejection), the request owes one.
  *stream_consumed = false;

  // Validate before acknowledging: the client only starts streaming
  // after the OK, so an error response here leaves the connection in
  // sync (the reactor releases the expected stream when we finish).
  Status invalid = Status::OK();
  if (req.artifact.empty()) {
    invalid = Status::InvalidArgument("ingest needs an artifact name");
  } else if (req.dim < 1 || req.dim > 64) {
    invalid = Status::InvalidArgument("ingest dim must be in [1, 64]");
  } else if (req.n == 0) {
    invalid = Status::InvalidArgument(
        "ingest needs the expected stream length n (the streaming horizon)");
  } else if (req.threads < 1 ||
             req.threads >
                 static_cast<uint32_t>(options_.max_ingest_threads)) {
    invalid = Status::InvalidArgument(
        "ingest threads must be in [1, " +
        std::to_string(options_.max_ingest_threads) + "]");
  }
  if (!invalid.ok()) {
    (void)EnqueueError(conn, invalid, scope);
    return;
  }

  auto domain = std::make_unique<HypercubeDomain>(static_cast<int>(req.dim));
  PrivHPOptions options;
  options.epsilon = req.epsilon;
  options.k = req.k;
  options.expected_n = req.n;
  options.seed = req.seed;

  // Resolve the plan before acknowledging, so bad parameters
  // (epsilon <= 0, ...) are rejected without the client streaming
  // anything.
  {
    Result<PrivHPBuilder> probe = PrivHPBuilder::Make(domain.get(), options);
    if (!probe.ok()) {
      (void)EnqueueError(conn, probe.status(), scope);
      return;
    }
  }
  if (!EnqueueFrame(conn, BeginOkResponse().Take(), scope).ok()) {
    *drop = true;
    return;
  }

  // The point stream arrives through the connection's ingest channel:
  // the reactor forwards raw frames, this worker decodes them. The idle
  // deadline restarts per frame — it bounds silence, not the lifetime
  // of a steadily streaming peer.
  bool timed_out = false;
  FrameRecvFn recv = [this, conn, &timed_out](std::string* payload)
      -> Result<bool> {
    MutexLock lock(conn->ingest_mu);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::seconds(options_.idle_timeout_seconds);
    for (;;) {
      if (!conn->ingest_frames.empty()) {
        *payload = std::move(conn->ingest_frames.front());
        conn->ingest_frames.pop_front();
        conn->ingest_bytes -= payload->size();
        lock.Unlock();
        // The channel may have been full; let the reactor re-arm reads.
        NotifyConn(conn);
        return true;
      }
      if (conn->ingest_closed) {
        return Status::IOError("connection dropped mid point stream");
      }
      if (stopping_.load()) {
        return Status::FailedPrecondition("server stopping");
      }
      if (options_.idle_timeout_seconds > 0 &&
          std::chrono::steady_clock::now() >= deadline) {
        timed_out = true;
        return Status::FailedPrecondition("point stream idle timeout");
      }
      (void)conn->ingest_cv.WaitFor(conn->ingest_mu,
                                    std::chrono::milliseconds(100));
    }
  };
  SocketPointSource source(std::move(recv), static_cast<int>(req.dim));
  Result<PrivHPGenerator> generator = PrivHPBuilder::BuildParallel(
      domain.get(), options, &source, static_cast<int>(req.threads));
  // The streamed point frames are this request's real bytes-in, whether
  // or not the build succeeded; the batch counter feeds ingest.batches.
  scope->bytes_in += source.bytes_received();
  metrics_->ingest_batches->Add(
      static_cast<int64_t>(source.num_batches()));
  *stream_consumed = source.finished();
  if (!generator.ok()) {
    // A cancelled stream (shutdown, or the peer idle-timing out) has no
    // live sender to resync with — draining would just park the worker
    // for a second timeout window, so drop the connection instead.
    if (source.cancelled()) {
      *drop = true;
      *reason = timed_out ? DropReason::kIdle : DropReason::kNone;
      return;
    }
    // Otherwise regain frame sync so the error reaches the client; if
    // the drain itself fails the connection is beyond saving, and the
    // build error (not the drain error) is what is worth reporting.
    if (!source.SkipToEnd().ok()) {
      *drop = true;
      return;
    }
    *stream_consumed = source.finished();
    (void)EnqueueError(conn, generator.status(), scope);
    return;
  }
  stats_.ingested_points.fetch_add(source.num_received(),
                                   std::memory_order_relaxed);
  metrics_->ingest_points->Add(static_cast<int64_t>(source.num_received()));

  const uint64_t nodes = generator->tree().num_nodes();
  const double mass = generator->TotalMass();
  const Status published = registry_->Publish(
      req.artifact,
      ServedArtifact::Make(std::move(domain), std::move(*generator),
                           "ingest"));
  if (!published.ok()) {
    (void)EnqueueError(conn, published, scope);
    return;
  }
  stats_.ingests_published.fetch_add(1, std::memory_order_relaxed);

  WireWriter w = BeginOkResponse();
  w.PutU64(nodes);
  w.PutDouble(mass);
  (void)EnqueueFrame(conn, w.Take(), scope);
}

// ---------------------------------------------------------------------------
// Stats snapshot (unchanged wire surface)
// ---------------------------------------------------------------------------

obs::MetricsSnapshot PrivHPServer::StatsSnapshot() const {
  obs::MetricsSnapshot snap = metrics_registry_->Snapshot();
  auto counter = [&snap](std::string name, uint64_t value) {
    snap.counters.push_back({std::move(name), value});
  };
  auto gauge = [&snap](std::string name, int64_t value) {
    snap.gauges.push_back({std::move(name), value});
  };

  // The pre-metrics AtomicStats counters, under "server.*" — they are
  // bumped on paths the per-op metrics do not see (unparseable frames,
  // listener trouble), so both inventories stay in the one snapshot.
  const Stats s = stats();
  counter("server.connections", s.connections);
  counter("server.requests", s.requests);
  counter("server.errors", s.errors);
  counter("server.sampled_points", s.sampled_points);
  counter("server.ingested_points", s.ingested_points);
  counter("server.ingests_published", s.ingests_published);
  counter("server.listener_failure_streaks", s.listener_failure_streaks);

  // Serving-tier state is read at snapshot time rather than maintained
  // by hot-path increments: the registry and pools already keep these
  // totals, so the STATS op just asks them.
  counter("registry.publishes", registry_->publishes());
  gauge("registry.artifacts", static_cast<int64_t>(registry_->size()));
  gauge("registry.resident_bytes",
        static_cast<int64_t>(registry_->resident_bytes()));

  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  uint64_t pool_verifies = 0;
  for (const std::string& name : registry_->List()) {
    Result<std::shared_ptr<const ServedArtifact>> artifact =
        registry_->Get(name);
    if (!artifact.ok()) continue;  // raced with Remove; skip
    const std::string prefix = "artifact." + name + ".";
    gauge(prefix + "resident_bytes",
          static_cast<int64_t>((*artifact)->ResidentBytes()));
    gauge(prefix + "nodes", static_cast<int64_t>((*artifact)->num_nodes()));
    gauge(prefix + "repr",
          static_cast<int64_t>((*artifact)->representation()));
    if (const storage::BufferPool* pool = (*artifact)->buffer_pool()) {
      const storage::BufferPool::Stats ps = pool->stats();
      pool_hits += ps.hits;
      pool_misses += ps.misses;
      pool_evictions += ps.evictions;
      pool_verifies += ps.checksum_verifies;
    }
  }
  counter("pool.hits", pool_hits);
  counter("pool.misses", pool_misses);
  counter("pool.evictions", pool_evictions);
  counter("pool.checksum_verifies", pool_verifies);

  // Re-establish the sorted-by-name invariant the appends broke.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  return snap;
}

}  // namespace privhp
