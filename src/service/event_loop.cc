#include "service/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"

namespace privhp {

namespace {

// The wakeup eventfd is registered under a tag no connection or listener
// can use (connection tags are bounded by the fd space).
constexpr uint64_t kWakeTag = ~uint64_t{0};

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

uint32_t EpollMask(bool read, bool write) {
  uint32_t mask = 0;
  if (read) mask |= EPOLLIN;
  if (write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Result<EventLoop> EventLoop::Make() {
  EventLoop loop;
  loop.epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop.epoll_fd_ < 0) return ErrnoStatus("epoll_create1");
  loop.wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (loop.wake_fd_ < 0) return ErrnoStatus("eventfd");
  PRIVHP_RETURN_NOT_OK(loop.Add(loop.wake_fd_, true, false, kWakeTag));
  return loop;
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

EventLoop::EventLoop(EventLoop&& other) noexcept
    : epoll_fd_(other.epoll_fd_), wake_fd_(other.wake_fd_) {
  other.epoll_fd_ = -1;
  other.wake_fd_ = -1;
}

EventLoop& EventLoop::operator=(EventLoop&& other) noexcept {
  if (this != &other) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = other.epoll_fd_;
    wake_fd_ = other.wake_fd_;
    other.epoll_fd_ = -1;
    other.wake_fd_ = -1;
  }
  return *this;
}

Status EventLoop::Add(int fd, bool read, bool write, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EpollMask(read, write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EventLoop::Mod(int fd, bool read, bool write, uint64_t tag) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EpollMask(read, write);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoStatus("epoll_ctl(MOD)");
  }
  return Status::OK();
}

Status EventLoop::Del(int fd) {
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return ErrnoStatus("epoll_ctl(DEL)");
  }
  return Status::OK();
}

Status EventLoop::Poll(int timeout_ms, std::vector<Event>* out) {
  struct epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return ErrnoStatus("epoll_wait");
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeTag) {
      uint64_t drained = 0;
      // Non-blocking read resets the counter; failure just means another
      // Wake() races in, which only causes an extra (harmless) poll round.
      (void)!::read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    Event e;
    e.tag = events[i].data.u64;
    e.readable = (events[i].events & EPOLLIN) != 0;
    e.writable = (events[i].events & EPOLLOUT) != 0;
    e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    out->push_back(e);
  }
  return Status::OK();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace privhp
