#include "service/client.h"

#include <limits>
#include <utility>

#include "common/macros.h"
#include "io/socket_point_stream.h"

namespace privhp {

Result<PrivHPClient> PrivHPClient::ConnectTcp(const std::string& host,
                                              uint16_t port,
                                              const std::string& auth_token) {
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, privhp::ConnectTcp(host, port));
  PrivHPClient client(std::move(sock));
  if (!auth_token.empty()) {
    PRIVHP_RETURN_NOT_OK(client.Auth(auth_token));
  }
  return client;
}

Result<PrivHPClient> PrivHPClient::ConnectUnix(const std::string& path) {
  PRIVHP_ASSIGN_OR_RETURN(Socket sock, privhp::ConnectUnix(path));
  return PrivHPClient(std::move(sock));
}

Status PrivHPClient::Call(const std::string& request, std::string* frame,
                          WireReader* payload) {
  PRIVHP_RETURN_NOT_OK(SendFrame(sock_, request));
  return RecvResponse(frame, payload);
}

Status PrivHPClient::RecvResponse(std::string* frame, WireReader* payload) {
  PRIVHP_ASSIGN_OR_RETURN(bool more, RecvFrame(sock_, frame));
  if (!more) return Status::IOError("server closed the connection");
  return ParseResponse(*frame, payload);
}

Status PrivHPClient::Auth(const std::string& token) {
  std::string frame;
  WireReader payload;
  return Call(EncodeAuthRequest(token), &frame, &payload);
}

Status PrivHPClient::Ping() {
  std::string frame;
  WireReader payload;
  return Call(EncodePingRequest(), &frame, &payload);
}

// --- Pipelined mode -------------------------------------------------

Status PrivHPClient::SendPing() {
  return SendFrame(sock_, EncodePingRequest());
}

Status PrivHPClient::SendRangeMass(const std::string& artifact, CellId cell) {
  return SendFrame(sock_, EncodeRangeRequest(
                              artifact, static_cast<uint32_t>(cell.level),
                              cell.index));
}

Status PrivHPClient::SendQuantiles(const std::string& artifact,
                                   const std::vector<double>& qs) {
  return SendFrame(sock_, EncodeQuantileRequest(artifact, qs));
}

Status PrivHPClient::SendSample(const std::string& artifact, uint64_t m,
                                uint64_t seed) {
  return SendFrame(sock_, EncodeSampleRequest(artifact, m, seed));
}

Status PrivHPClient::CollectPing() {
  std::string frame;
  WireReader payload;
  return RecvResponse(&frame, &payload);
}

Result<double> PrivHPClient::CollectRangeMass() {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(RecvResponse(&frame, &payload));
  return payload.Double();
}

Result<std::vector<double>> PrivHPClient::CollectQuantiles(size_t expected) {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(RecvResponse(&frame, &payload));
  // 8 bytes per double.
  PRIVHP_ASSIGN_OR_RETURN(uint32_t count, payload.BoundedCount(8));
  // Callers index the result by the position of the quantile they asked
  // for, so a count mismatch must fail here, not corrupt them there.
  if (count != expected) {
    return Status::IOError("server returned " + std::to_string(count) +
                           " quantile values, requested " +
                           std::to_string(expected));
  }
  std::vector<double> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(double v, payload.Double());
    values.push_back(v);
  }
  return values;
}

Result<std::vector<std::string>> PrivHPClient::List() {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(Call(EncodeListRequest(), &frame, &payload));
  // Each name carries at least its 4-byte length prefix.
  PRIVHP_ASSIGN_OR_RETURN(uint32_t count, payload.BoundedCount(4));
  std::vector<std::string> names;
  names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PRIVHP_ASSIGN_OR_RETURN(std::string name, payload.String());
    names.push_back(std::move(name));
  }
  return names;
}

Result<obs::MetricsSnapshot> PrivHPClient::Stats() {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(Call(EncodeStatsRequest(), &frame, &payload));
  PRIVHP_ASSIGN_OR_RETURN(obs::MetricsSnapshot snapshot,
                          DecodeStatsSnapshot(&payload));
  PRIVHP_RETURN_NOT_OK(payload.ExpectEnd());
  return snapshot;
}

Status PrivHPClient::Sample(const std::string& artifact, uint64_t m,
                            uint64_t seed, PointSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  PRIVHP_RETURN_NOT_OK(SendSample(artifact, m, seed));
  return CollectSample(m, sink);
}

Status PrivHPClient::CollectSample(uint64_t m, PointSink* sink) {
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(RecvResponse(&frame, &payload));
  // Once the server answers OK it streams its point frames no matter
  // what goes wrong on our side, so every failure from here on must
  // funnel through the resync below — including header-parse failures.
  const Result<uint32_t> dim = payload.U32();
  const Result<uint64_t> promised = payload.U64();
  Status verdict = !dim.ok() ? dim.status() : promised.status();
  if (verdict.ok() && *promised != m) {
    verdict = Status::IOError("server promised " + std::to_string(*promised) +
                              " points, requested " + std::to_string(m));
  } else if (verdict.ok() &&
             (*dim == 0 ||
              *dim > static_cast<uint32_t>(
                         std::numeric_limits<int>::max()))) {
    // dim must survive the cast to int below as a positive value, or the
    // per-batch dimension check in DecodePointBatch is silently disabled.
    verdict = Status::IOError("server sent invalid sample dimension " +
                              std::to_string(*dim));
  }
  SocketPointSource source(&sock_, verdict.ok() ? static_cast<int>(*dim) : 0);
  if (verdict.ok()) {
    verdict = Drain(&source, sink);
    if (verdict.ok() && source.num_received() != m) {
      verdict = Status::IOError("sample stream delivered " +
                                std::to_string(source.num_received()) +
                                " points, expected " + std::to_string(m));
    }
  }
  if (!verdict.ok()) {
    // The server streams its point frames regardless of what went wrong
    // on our side, so regain frame sync before the next Call; if resync
    // fails the connection is beyond saving — close it so later calls
    // fail loudly instead of parsing leftover point frames as responses.
    if (!source.SkipToEnd().ok()) sock_.Close();
  }
  return verdict;
}

Result<std::vector<Point>> PrivHPClient::Sample(const std::string& artifact,
                                                uint64_t m, uint64_t seed) {
  CollectingSink sink;
  PRIVHP_RETURN_NOT_OK(Sample(artifact, m, seed, &sink));
  return sink.TakePoints();
}

Result<double> PrivHPClient::RangeMass(const std::string& artifact,
                                       CellId cell) {
  PRIVHP_RETURN_NOT_OK(SendRangeMass(artifact, cell));
  return CollectRangeMass();
}

Result<std::vector<double>> PrivHPClient::Quantiles(
    const std::string& artifact, const std::vector<double>& qs) {
  PRIVHP_RETURN_NOT_OK(SendQuantiles(artifact, qs));
  return CollectQuantiles(qs.size());
}

Result<std::vector<HeavyCell>> PrivHPClient::Heavy(
    const std::string& artifact, double threshold) {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(
      Call(EncodeHeavyRequest(artifact, threshold), &frame, &payload));
  // Each cell is u32 + u64 + double = 20 bytes.
  PRIVHP_ASSIGN_OR_RETURN(uint32_t count, payload.BoundedCount(20));
  std::vector<HeavyCell> cells;
  cells.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HeavyCell cell;
    PRIVHP_ASSIGN_OR_RETURN(uint32_t level, payload.U32());
    cell.cell.level = static_cast<int>(level);
    PRIVHP_ASSIGN_OR_RETURN(cell.cell.index, payload.U64());
    PRIVHP_ASSIGN_OR_RETURN(cell.fraction, payload.Double());
    cells.push_back(cell);
  }
  return cells;
}

Result<std::string> PrivHPClient::Export(const std::string& artifact) {
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(Call(EncodeExportRequest(artifact), &frame, &payload));
  PRIVHP_ASSIGN_OR_RETURN(const uint64_t total, payload.U64());

  // The blob streams across chunk frames after the OK header. Unlike
  // SAMPLE there is no resync possible mid-stream (chunks carry no
  // self-describing count), so any failure closes the connection to
  // keep later calls from parsing leftover chunks as responses.
  std::string blob;
  blob.reserve(static_cast<size_t>(std::min<uint64_t>(total, 64u << 20)));
  for (;;) {
    Result<bool> more = RecvFrame(sock_, &frame);
    if (!more.ok() || !*more) {
      sock_.Close();
      return more.ok() ? Status::IOError(
                             "server closed the connection mid-export")
                       : more.status();
    }
    if (frame.empty()) {
      sock_.Close();
      return Status::IOError("empty frame inside export stream");
    }
    const uint8_t tag = static_cast<uint8_t>(frame[0]);
    if (tag == kExportChunkTag) {
      if (blob.size() + (frame.size() - 1) > total) {
        sock_.Close();
        return Status::IOError("export stream overran the promised " +
                               std::to_string(total) + " bytes");
      }
      blob.append(frame, 1, frame.size() - 1);
      continue;
    }
    if (tag == kExportEndTag) {
      WireReader end(frame.data() + 1, frame.size() - 1);
      const Result<uint64_t> echoed = end.U64();
      if (!echoed.ok() || *echoed != total || blob.size() != total) {
        sock_.Close();
        return Status::IOError(
            "export stream ended inconsistently: promised " +
            std::to_string(total) + " bytes, received " +
            std::to_string(blob.size()));
      }
      return blob;
    }
    sock_.Close();
    return Status::IOError("unexpected frame tag 0x" +
                           std::to_string(tag) + " inside export stream");
  }
}

Result<PrivHPClient::IngestReport> PrivHPClient::Ingest(
    const std::string& artifact, const IngestSpec& spec,
    PointSource* source) {
  if (source == nullptr) {
    return Status::InvalidArgument("source must not be null");
  }
  ServiceRequest req;
  req.op = ServiceOp::kIngest;
  req.artifact = artifact;
  req.dim = spec.dim;
  req.epsilon = spec.epsilon;
  req.k = spec.k;
  req.n = spec.n;
  req.seed = spec.seed;
  req.threads = spec.threads;

  // Phase 1: the server validates parameters before we stream anything.
  std::string frame;
  WireReader payload;
  PRIVHP_RETURN_NOT_OK(Call(EncodeIngestRequest(req), &frame, &payload));

  // Phase 2: stream the points, then the end frame. A failure here
  // leaves the server owed points we cannot deliver, and a clean end
  // frame would make it publish a silently truncated artifact — so the
  // only sound recovery is closing the connection, which aborts the
  // server-side build and makes later calls on this client fail loudly
  // instead of desyncing.
  SocketPointSink sink(&sock_, spec.batch);
  Status streamed = Drain(source, &sink);
  if (streamed.ok()) streamed = sink.FinishStream();
  if (!streamed.ok()) {
    sock_.Close();
    return streamed;
  }

  // Phase 3: the build + publish verdict.
  Result<bool> more = RecvFrame(sock_, &frame);
  if (!more.ok() || !*more) {
    sock_.Close();
    return more.ok() ? Status::IOError("server closed the connection")
                     : more.status();
  }
  PRIVHP_RETURN_NOT_OK(ParseResponse(frame, &payload));
  IngestReport report;
  report.points_sent = sink.num_processed();
  PRIVHP_ASSIGN_OR_RETURN(report.nodes, payload.U64());
  PRIVHP_ASSIGN_OR_RETURN(report.total_mass, payload.Double());
  return report;
}

}  // namespace privhp
