#include "service/artifact_registry.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/macros.h"
#include "domain/domain_factory.h"
#include "hierarchy/tree_serialization.h"
#include "storage/file_io.h"

namespace privhp {

std::shared_ptr<const ServedArtifact> ServedArtifact::Make(
    std::unique_ptr<const Domain> domain, PrivHPGenerator generator,
    std::string source) {
  PRIVHP_CHECK(domain != nullptr);
  PRIVHP_CHECK(generator.tree().domain() == domain.get());
  auto artifact = std::shared_ptr<ServedArtifact>(new ServedArtifact());
  artifact->domain_ = std::move(domain);
  artifact->generator_.emplace(std::move(generator));
  artifact->source_ = std::move(source);
  return artifact;
}

Result<std::shared_ptr<const ServedArtifact>> ServedArtifact::FromFile(
    const std::string& path) {
  if (storage::PagedArtifact::SniffPagedFile(path)) {
    return FromPagedFile(path, storage::PagedReadOptions{});
  }
  // Peek the header to learn which domain the tree was released over;
  // PrivHPGenerator::Load then re-validates name, dimension and structure
  // against the reconstructed domain (the format v2 checks).
  std::string magic;
  std::string domain_name;
  int dimension = 0;
  {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open for read: " + path);
    if (!std::getline(in, magic) || !std::getline(in, domain_name)) {
      return Status::IOError("truncated tree header in " + path);
    }
    if (magic == "privhp-tree-v1") {
      return Status::InvalidArgument(
          "registry requires tree format v2 (v1 files carry no dimension "
          "and cannot be validated): " +
          path);
    }
    if (!(in >> dimension)) {
      return Status::IOError("missing dimension line in " + path);
    }
  }
  PRIVHP_ASSIGN_OR_RETURN(std::unique_ptr<Domain> domain,
                          MakeDomainByName(domain_name, dimension));
  PRIVHP_ASSIGN_OR_RETURN(PrivHPGenerator generator,
                          PrivHPGenerator::Load(domain.get(), path));
  return Make(std::unique_ptr<const Domain>(std::move(domain)),
              std::move(generator), "file:" + path);
}

Result<std::shared_ptr<const ServedArtifact>> ServedArtifact::FromPagedFile(
    const std::string& path, const storage::PagedReadOptions& options) {
  PRIVHP_ASSIGN_OR_RETURN(std::unique_ptr<const storage::PagedArtifact> paged,
                          storage::PagedArtifact::Open(path, options));
  auto artifact = std::shared_ptr<ServedArtifact>(new ServedArtifact());
  artifact->paged_ = std::move(paged);
  artifact->source_ = std::string(options.use_buffer_pool
                                      ? "paged-pool:"
                                      : "paged-mmap:") +
                      path;
  return std::shared_ptr<const ServedArtifact>(std::move(artifact));
}

const PrivHPGenerator& ServedArtifact::generator() const {
  PRIVHP_CHECK(generator_.has_value());
  return *generator_;
}

Result<double> ServedArtifact::RangeMass(CellId cell) const {
  if (paged_) return paged_->RangeMass(cell);
  return CellMassFraction(generator_->tree(), cell);
}

Result<std::vector<double>> ServedArtifact::Quantiles(
    const std::vector<double>& qs) const {
  if (paged_) return paged_->Quantiles(qs);
  return TreeQuantiles(generator_->tree(), qs);
}

Result<std::vector<HeavyCell>> ServedArtifact::Heavy(double threshold) const {
  if (paged_) return paged_->Heavy(threshold);
  return HierarchicalHeavyHitters(generator_->tree(), threshold);
}

Status ServedArtifact::GenerateTo(size_t m, RandomEngine* rng,
                                  PointSink* sink) const {
  if (paged_) return paged_->GenerateTo(m, rng, sink);
  return generator_->GenerateTo(m, rng, sink);
}

Result<std::string> ServedArtifact::ExportBlob() const {
  std::ostringstream os;
  if (paged_) {
    PRIVHP_RETURN_NOT_OK(paged_->ExportTo(&os));
  } else {
    PRIVHP_RETURN_NOT_OK(SaveTree(generator_->tree(), &os));
  }
  return os.str();
}

uint64_t ServedArtifact::num_nodes() const {
  return paged_ ? paged_->num_nodes() : generator_->tree().num_nodes();
}

double ServedArtifact::TotalMass() const {
  return paged_ ? paged_->TotalMass() : generator_->TotalMass();
}

size_t ServedArtifact::ResidentBytes() const {
  if (paged_) return paged_->ResidentBytes();
  return generator_->MemoryBytes() + generator_->sampler().MemoryBytes();
}

Status ArtifactRegistry::Publish(
    const std::string& name, std::shared_ptr<const ServedArtifact> artifact) {
  if (name.empty()) {
    return Status::InvalidArgument("artifact name must not be empty");
  }
  if (artifact == nullptr) {
    return Status::InvalidArgument("artifact must not be null");
  }
  std::shared_ptr<const ServedArtifact> replaced;
  {
    MutexLock lock(mu_);
    // Swap under the lock but destroy the displaced artifact outside it:
    // the last reference may be ours, and tearing down a large tree while
    // holding mu_ would stall every concurrent Get().
    replaced = std::exchange(artifacts_[name], std::move(artifact));
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ArtifactRegistry::LoadFile(const std::string& name,
                                  const std::string& path) {
  std::shared_ptr<const ServedArtifact> artifact;
  if (storage::PagedArtifact::SniffPagedFile(path)) {
    storage::PagedReadOptions read;
    if (options_.memory_budget_bytes > 0) {
      // Budget check: mapping the file whole adds ~file_size of
      // addressable bytes. Over budget, serve through a bounded pool.
      // resident_bytes() takes and drops mu_ here, so two concurrent
      // LoadFiles can both pass the check — the budget is a soft cap by
      // contract (see RegistryOptions), so the benign TOCTOU is fine and
      // not worth holding mu_ across file IO.
      PRIVHP_ASSIGN_OR_RETURN(const uint64_t file_size,
                              storage::FileSize(path));
      if (resident_bytes() + file_size > options_.memory_budget_bytes) {
        read.use_buffer_pool = true;
        read.pool_bytes = options_.pool_bytes_per_artifact;
      }
    }
    PRIVHP_ASSIGN_OR_RETURN(artifact,
                            ServedArtifact::FromPagedFile(path, read));
  } else {
    PRIVHP_ASSIGN_OR_RETURN(artifact, ServedArtifact::FromFile(path));
  }
  return Publish(name, std::move(artifact));
}

Result<std::shared_ptr<const ServedArtifact>> ArtifactRegistry::Get(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = artifacts_.find(name);
  if (it == artifacts_.end()) {
    return Status::InvalidArgument("no artifact named '" + name + "'");
  }
  return it->second;
}

bool ArtifactRegistry::Remove(const std::string& name) {
  std::shared_ptr<const ServedArtifact> removed;
  {
    MutexLock lock(mu_);
    auto it = artifacts_.find(name);
    if (it == artifacts_.end()) return false;
    removed = std::move(it->second);
    artifacts_.erase(it);
  }
  return true;
}

std::vector<std::string> ArtifactRegistry::List() const {
  std::vector<std::string> names;
  MutexLock lock(mu_);
  names.reserve(artifacts_.size());
  for (const auto& entry : artifacts_) names.push_back(entry.first);
  return names;
}

size_t ArtifactRegistry::size() const {
  MutexLock lock(mu_);
  return artifacts_.size();
}

size_t ArtifactRegistry::resident_bytes() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& entry : artifacts_) total += entry.second->ResidentBytes();
  return total;
}

}  // namespace privhp
