#include "service/artifact_registry.h"

#include <fstream>
#include <utility>

#include "common/macros.h"
#include "domain/domain_factory.h"

namespace privhp {

ServedArtifact::ServedArtifact(std::unique_ptr<const Domain> domain,
                               PrivHPGenerator generator, std::string source)
    : domain_(std::move(domain)),
      generator_(std::move(generator)),
      source_(std::move(source)) {}

std::shared_ptr<const ServedArtifact> ServedArtifact::Make(
    std::unique_ptr<const Domain> domain, PrivHPGenerator generator,
    std::string source) {
  PRIVHP_CHECK(domain != nullptr);
  PRIVHP_CHECK(generator.tree().domain() == domain.get());
  return std::shared_ptr<const ServedArtifact>(new ServedArtifact(
      std::move(domain), std::move(generator), std::move(source)));
}

Result<std::shared_ptr<const ServedArtifact>> ServedArtifact::FromFile(
    const std::string& path) {
  // Peek the header to learn which domain the tree was released over;
  // PrivHPGenerator::Load then re-validates name, dimension and structure
  // against the reconstructed domain (the format v2 checks).
  std::string magic;
  std::string domain_name;
  int dimension = 0;
  {
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open for read: " + path);
    if (!std::getline(in, magic) || !std::getline(in, domain_name)) {
      return Status::IOError("truncated tree header in " + path);
    }
    if (magic == "privhp-tree-v1") {
      return Status::InvalidArgument(
          "registry requires tree format v2 (v1 files carry no dimension "
          "and cannot be validated): " +
          path);
    }
    if (!(in >> dimension)) {
      return Status::IOError("missing dimension line in " + path);
    }
  }
  PRIVHP_ASSIGN_OR_RETURN(std::unique_ptr<Domain> domain,
                          MakeDomainByName(domain_name, dimension));
  PRIVHP_ASSIGN_OR_RETURN(PrivHPGenerator generator,
                          PrivHPGenerator::Load(domain.get(), path));
  return Make(std::unique_ptr<const Domain>(std::move(domain)),
              std::move(generator), "file:" + path);
}

Status ArtifactRegistry::Publish(
    const std::string& name, std::shared_ptr<const ServedArtifact> artifact) {
  if (name.empty()) {
    return Status::InvalidArgument("artifact name must not be empty");
  }
  if (artifact == nullptr) {
    return Status::InvalidArgument("artifact must not be null");
  }
  std::shared_ptr<const ServedArtifact> replaced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Swap under the lock but destroy the displaced artifact outside it:
    // the last reference may be ours, and tearing down a large tree while
    // holding mu_ would stall every concurrent Get().
    replaced = std::exchange(artifacts_[name], std::move(artifact));
  }
  return Status::OK();
}

Status ArtifactRegistry::LoadFile(const std::string& name,
                                  const std::string& path) {
  PRIVHP_ASSIGN_OR_RETURN(std::shared_ptr<const ServedArtifact> artifact,
                          ServedArtifact::FromFile(path));
  return Publish(name, std::move(artifact));
}

Result<std::shared_ptr<const ServedArtifact>> ArtifactRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = artifacts_.find(name);
  if (it == artifacts_.end()) {
    return Status::InvalidArgument("no artifact named '" + name + "'");
  }
  return it->second;
}

bool ArtifactRegistry::Remove(const std::string& name) {
  std::shared_ptr<const ServedArtifact> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = artifacts_.find(name);
    if (it == artifacts_.end()) return false;
    removed = std::move(it->second);
    artifacts_.erase(it);
  }
  return true;
}

std::vector<std::string> ArtifactRegistry::List() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(artifacts_.size());
  for (const auto& entry : artifacts_) names.push_back(entry.first);
  return names;
}

size_t ArtifactRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return artifacts_.size();
}

}  // namespace privhp
