// A thin epoll wrapper for the service reactor.
//
// One EventLoop is owned by exactly one thread (the reactor), which
// registers fds with opaque u64 tags and blocks in Poll(). The only
// cross-thread entry point is Wake(): worker threads ring an eventfd to
// pull the reactor out of epoll_wait after handing it response frames.
// The wakeup is consumed inside Poll() and never surfaces as an event —
// callers just see Poll() return early.
//
// Concurrency contract: this class deliberately has no mutex and no
// thread-safety annotations (see common/sync.h for the annotated
// primitives the rest of the service tier uses). Its safety argument is
// thread *ownership*, which Clang's analysis cannot express: every
// method except Wake() must be called from the reactor thread only, and
// Wake() is safe from any thread because its entire cross-thread
// surface is one write(2) on an eventfd the kernel serializes. The same
// convention covers the reactor-owned block of the server's Connection
// state — single-thread-owned data is documented as such instead of
// being wrapped in a lock it does not need.

#ifndef PRIVHP_SERVICE_EVENT_LOOP_H_
#define PRIVHP_SERVICE_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "io/frame_socket.h"

namespace privhp {

class EventLoop {
 public:
  struct Event {
    uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< EPOLLHUP/EPOLLERR: peer is gone or broken
  };

  static Result<EventLoop> Make();

  EventLoop() = default;
  ~EventLoop();
  EventLoop(EventLoop&& other) noexcept;
  EventLoop& operator=(EventLoop&& other) noexcept;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Registers \p fd with read and/or write interest under \p tag
  /// (delivered back in Event::tag). Level-triggered.
  Status Add(int fd, bool read, bool write, uint64_t tag);
  /// \brief Updates interest for a registered fd.
  Status Mod(int fd, bool read, bool write, uint64_t tag);
  /// \brief Unregisters \p fd.
  Status Del(int fd);

  /// \brief Waits up to \p timeout_ms (-1 = forever) and appends ready
  /// events to \p out. Wakeups from Wake() return early with no event.
  Status Poll(int timeout_ms, std::vector<Event>* out);

  /// \brief Thread-safe: makes a concurrent/subsequent Poll() return.
  void Wake();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_EVENT_LOOP_H_
