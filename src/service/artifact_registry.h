// Named, refcounted, hot-swappable released artifacts.
//
// The paper's deployment model (and e.g. Jordon et al.'s "Synthetic Data
// — what, why and how?") is release-once / serve-many: the bounded-memory
// builder runs once per stream, and the released noisy partition tree is
// then queried and resampled indefinitely at no further privacy cost
// (Lemma 2). The registry is the serving half of that split: it owns the
// released artifacts by name, validates them on load (tree format v2
// domain name + dimension checks), and lets a re-ingest atomically
// replace a live artifact while readers keep sampling the version they
// hold — publication is a shared_ptr swap, so readers are never blocked
// by a swap and an unpublished artifact stays alive until its last
// in-flight request drops it.

#ifndef PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_
#define PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/generator.h"
#include "domain/domain.h"

namespace privhp {

/// \brief One released generator plus the domain it samples through.
///
/// Immutable after construction: concurrent readers share it through
/// const shared_ptrs, so serving needs no per-artifact locking. The
/// domain is owned here because a loaded tree holds a raw pointer to it.
/// The generator carries its CompiledSampler alias table (built once at
/// publish/load time), so the registry is also the cache of compiled
/// sampling tables: every concurrent SAMPLE request against an artifact
/// shares the one table its generator holds.
class ServedArtifact {
 public:
  /// \brief Wraps a generator built over \p domain (which the generator's
  /// tree must already point at). \p source describes provenance for
  /// reports ("file:gen.tree", "ingest", ...).
  static std::shared_ptr<const ServedArtifact> Make(
      std::unique_ptr<const Domain> domain, PrivHPGenerator generator,
      std::string source);

  /// \brief Loads a tree file, reconstructing the domain from the v2
  /// header (name + dimension; v1 files are rejected — they predate the
  /// dimension check and cannot be validated).
  static Result<std::shared_ptr<const ServedArtifact>> FromFile(
      const std::string& path);

  const Domain& domain() const { return *domain_; }
  const PrivHPGenerator& generator() const { return generator_; }
  const std::string& source() const { return source_; }

 private:
  ServedArtifact(std::unique_ptr<const Domain> domain,
                 PrivHPGenerator generator, std::string source);

  std::unique_ptr<const Domain> domain_;
  PrivHPGenerator generator_;
  std::string source_;
};

/// \brief Thread-safe name -> artifact map with atomic hot-swap.
class ArtifactRegistry {
 public:
  /// \brief Publishes \p artifact under \p name, atomically replacing any
  /// previous artifact of that name (readers holding the old shared_ptr
  /// are unaffected).
  Status Publish(const std::string& name,
                 std::shared_ptr<const ServedArtifact> artifact);

  /// \brief Loads a v2 tree file and publishes it under \p name.
  Status LoadFile(const std::string& name, const std::string& path);

  /// \brief The artifact currently published under \p name.
  Result<std::shared_ptr<const ServedArtifact>> Get(
      const std::string& name) const;

  /// \brief Unpublishes \p name; returns false if absent. In-flight
  /// readers keep their reference.
  bool Remove(const std::string& name);

  /// \brief Published names, sorted.
  std::vector<std::string> List() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedArtifact>> artifacts_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_
