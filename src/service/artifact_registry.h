// Named, refcounted, hot-swappable released artifacts.
//
// The paper's deployment model (and e.g. Jordon et al.'s "Synthetic Data
// — what, why and how?") is release-once / serve-many: the bounded-memory
// builder runs once per stream, and the released noisy partition tree is
// then queried and resampled indefinitely at no further privacy cost
// (Lemma 2). The registry is the serving half of that split: it owns the
// released artifacts by name, validates them on load, and lets a
// re-ingest atomically replace a live artifact while readers keep
// sampling the version they hold — publication is a shared_ptr swap, so
// readers are never blocked by a swap and an unpublished artifact stays
// alive until its last in-flight request drops it.
//
// An artifact is served from one of three representations behind the
// same query surface, chosen at load time:
//   - heap: a v2 tree file parsed into a PartitionTree + freshly
//     compiled sampler (also the shape INGEST publishes);
//   - mmap: a packed paged file (storage/paged_artifact.h) mapped and
//     walked in place — near-zero startup, no heap copy of the tree;
//   - pooled: the same paged file behind a bounded buffer pool, picked
//     when mapping it would exceed the registry's memory budget.
// All three answer queries bit-identically (the storage tests gate it),
// so callers never know or care which representation they hit.

#ifndef PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_
#define PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "core/generator.h"
#include "core/queries.h"
#include "domain/domain.h"
#include "io/point_sink.h"
#include "storage/paged_artifact.h"

namespace privhp {

/// \brief One released artifact plus everything needed to serve it.
///
/// Immutable after construction: concurrent readers share it through
/// const shared_ptrs, so serving needs no per-artifact locking (the
/// pooled representation synchronizes internally). Heap-backed
/// artifacts carry their CompiledSampler alias table (built once at
/// publish/load time); paged artifacts borrow the table straight from
/// the file.
class ServedArtifact {
 public:
  /// \brief Wraps a generator built over \p domain (which the generator's
  /// tree must already point at). \p source describes provenance for
  /// reports ("file:gen.tree", "ingest", ...).
  static std::shared_ptr<const ServedArtifact> Make(
      std::unique_ptr<const Domain> domain, PrivHPGenerator generator,
      std::string source);

  /// \brief Loads an artifact file of either format: a packed paged
  /// artifact (sniffed by magic) is opened mmapped in place; a v2 tree
  /// file is parsed onto the heap, reconstructing the domain from its
  /// header (v1 files are rejected — they predate the dimension check
  /// and cannot be validated).
  static Result<std::shared_ptr<const ServedArtifact>> FromFile(
      const std::string& path);

  /// \brief Opens a packed paged artifact with explicit read options
  /// (the registry uses this to force buffer-pool mode over budget).
  static Result<std::shared_ptr<const ServedArtifact>> FromPagedFile(
      const std::string& path, const storage::PagedReadOptions& options);

  const Domain& domain() const {
    return paged_ ? paged_->domain() : *domain_;
  }
  const std::string& source() const { return source_; }

  /// \brief The heap generator; only valid when !is_paged() (aborts
  /// otherwise — serving code must go through the query surface below).
  const PrivHPGenerator& generator() const;

  bool is_paged() const { return paged_ != nullptr; }
  const storage::PagedArtifact* paged() const { return paged_.get(); }

  /// \brief Which serving representation backs this artifact. The
  /// numeric values are what the STATS snapshot reports in
  /// "artifact.<name>.repr" gauges, so they are part of the wire
  /// contract — append, never renumber.
  enum class Representation { kHeap = 0, kMmap = 1, kPool = 2 };
  Representation representation() const {
    if (!paged_) return Representation::kHeap;
    return paged_->pooled() ? Representation::kPool : Representation::kMmap;
  }

  /// \brief The buffer pool serving this artifact, or nullptr for the
  /// heap and mmap representations (observability surface for the
  /// pool's hit/miss/eviction/checksum-verify counters).
  const storage::BufferPool* buffer_pool() const {
    return paged_ ? paged_->pool() : nullptr;
  }

  // ---- Representation-independent query surface (what the server
  // handlers call). Bit-identical across heap/mmap/pooled.

  /// \brief Mass fraction inside \p cell (RANGE).
  Result<double> RangeMass(CellId cell) const;

  /// \brief Quantiles of a 1-D artifact (QUANTILE).
  Result<std::vector<double>> Quantiles(const std::vector<double>& qs) const;

  /// \brief Hierarchical heavy hitters at \p threshold (HEAVY).
  Result<std::vector<HeavyCell>> Heavy(double threshold) const;

  /// \brief Streams \p m synthetic points into \p sink (SAMPLE).
  Status GenerateTo(size_t m, RandomEngine* rng, PointSink* sink) const;

  /// \brief The artifact serialized in tree format v2 (EXPORT) —
  /// byte-identical whichever representation serves it.
  Result<std::string> ExportBlob() const;

  /// \brief Node count of the released tree.
  uint64_t num_nodes() const;

  /// \brief Noisy root count.
  double TotalMass() const;

  /// \brief Bytes this artifact keeps addressable (tree + table on the
  /// heap path; map or pool on the paged paths) — what the registry's
  /// memory budget meters.
  size_t ResidentBytes() const;

 private:
  ServedArtifact() = default;

  std::unique_ptr<const Domain> domain_;     // heap mode only
  std::optional<PrivHPGenerator> generator_;  // heap mode only
  std::unique_ptr<const storage::PagedArtifact> paged_;
  std::string source_;
};

/// \brief Serving-tier memory policy.
struct RegistryOptions {
  /// \brief Soft cap on summed artifact ResidentBytes. 0 = unlimited.
  /// When loading a paged file would push the total past the cap, the
  /// registry serves it through a bounded buffer pool instead of
  /// mapping it whole.
  size_t memory_budget_bytes = 0;

  /// \brief Buffer-pool capacity given to each over-budget artifact.
  size_t pool_bytes_per_artifact = 4u << 20;
};

/// \brief Thread-safe name -> artifact map with atomic hot-swap.
class ArtifactRegistry {
 public:
  ArtifactRegistry() = default;
  explicit ArtifactRegistry(RegistryOptions options)
      : options_(options) {}

  /// \brief Publishes \p artifact under \p name, atomically replacing any
  /// previous artifact of that name (readers holding the old shared_ptr
  /// are unaffected).
  Status Publish(const std::string& name,
                 std::shared_ptr<const ServedArtifact> artifact)
      EXCLUDES(mu_);

  /// \brief Loads an artifact file (paged or v2 tree) and publishes it
  /// under \p name, honouring the memory budget for paged files.
  Status LoadFile(const std::string& name, const std::string& path)
      EXCLUDES(mu_);

  /// \brief The artifact currently published under \p name.
  Result<std::shared_ptr<const ServedArtifact>> Get(
      const std::string& name) const EXCLUDES(mu_);

  /// \brief Unpublishes \p name; returns false if absent. In-flight
  /// readers keep their reference.
  bool Remove(const std::string& name) EXCLUDES(mu_);

  /// \brief Published names, sorted.
  std::vector<std::string> List() const EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);

  /// \brief Summed ResidentBytes of the published artifacts.
  size_t resident_bytes() const EXCLUDES(mu_);

  /// \brief Successful Publish() calls over the registry's lifetime
  /// (LoadFile and INGEST both land here) — monotonic, unlike size().
  uint64_t publishes() const {
    return publishes_.load(std::memory_order_relaxed);
  }

  const RegistryOptions& options() const { return options_; }

 private:
  RegistryOptions options_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedArtifact>> artifacts_
      GUARDED_BY(mu_);
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_ARTIFACT_REGISTRY_H_
