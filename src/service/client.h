// Client for the PrivHP service protocol — used by `privhp query` /
// `privhp ingest`, the serve bench, and the service tests.
//
// A client wraps one connection. The plain methods issue one request and
// wait for its response; the Send*/Collect* pairs pipeline — many
// requests go out before the first response is read, and responses come
// back strictly in request order, so calls must pair FIFO (Send A,
// Send B, Collect A, Collect B). Keep the number of uncollected sends
// at or below the server's max_pipeline_requests: past it the server
// stops reading and a client that never collects deadlocks itself
// against TCP backpressure. Not thread-safe; open one client per thread
// (connections are cheap and the server multiplexes them onto its
// worker pool).

#ifndef PRIVHP_SERVICE_CLIENT_H_
#define PRIVHP_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/queries.h"
#include "domain/domain.h"
#include "io/frame_socket.h"
#include "io/point_sink.h"
#include "obs/metrics_registry.h"
#include "service/protocol.h"

namespace privhp {

/// \brief Synchronous client over one service connection.
class PrivHPClient {
 public:
  /// \brief Connects over TCP. When \p auth_token is non-empty the AUTH
  /// handshake runs before returning (servers started with a token
  /// demand it as the connection's first frame).
  static Result<PrivHPClient> ConnectTcp(const std::string& host,
                                         uint16_t port,
                                         const std::string& auth_token = "");
  static Result<PrivHPClient> ConnectUnix(const std::string& path);

  /// \brief Presents \p token to the server (the AUTH op). Required as
  /// the first exchange on TCP when the server has a token configured;
  /// harmless anywhere else (a wrong token is rejected on any
  /// transport).
  Status Auth(const std::string& token);

  Status Ping();

  /// \brief Published artifact names.
  Result<std::vector<std::string>> List();

  /// \brief Streams \p m synthetic points from \p artifact into \p sink
  /// (bounded memory: batches are forwarded as they arrive). seed != 0
  /// makes the response reproducible; seed == 0 asks for fresh points.
  Status Sample(const std::string& artifact, uint64_t m, uint64_t seed,
                PointSink* sink);

  /// \brief Convenience overload materializing the sample.
  Result<std::vector<Point>> Sample(const std::string& artifact, uint64_t m,
                                    uint64_t seed);

  /// \brief Mass fraction of cell (level, index).
  Result<double> RangeMass(const std::string& artifact, CellId cell);

  /// \brief Quantiles of a 1-D artifact.
  Result<std::vector<double>> Quantiles(const std::string& artifact,
                                        const std::vector<double>& qs);

  /// \brief Hierarchical heavy hitters at \p threshold.
  Result<std::vector<HeavyCell>> Heavy(const std::string& artifact,
                                       double threshold);

  /// \brief The serialized v2 tree — byte-identical to Save() on the
  /// server, so a served artifact can be compared bit-for-bit against a
  /// file-built one (or re-persisted locally).
  Result<std::string> Export(const std::string& artifact);

  /// \brief The server's metrics snapshot (the STATS op): per-endpoint
  /// latency/byte histograms, queue and worker gauges, registry and
  /// buffer-pool state. Drives `privhp stats` and `privhp top`.
  Result<obs::MetricsSnapshot> Stats();

  /// \brief Ingest parameters (mirrors `privhp build` flags).
  struct IngestSpec {
    uint32_t dim = 1;
    double epsilon = 1.0;
    uint64_t k = 32;
    uint64_t n = 0;  ///< Expected stream length (required, > 0).
    uint64_t seed = 42;
    uint32_t threads = 1;
    size_t batch = 1024;  ///< Points per frame on the wire.
  };
  struct IngestReport {
    uint64_t points_sent = 0;
    uint64_t nodes = 0;
    double total_mass = 0.0;
  };

  /// \brief Streams \p source into the server's builder and publishes the
  /// result under \p artifact (the INGEST...FINISH session).
  Result<IngestReport> Ingest(const std::string& artifact,
                              const IngestSpec& spec, PointSource* source);

  // --- Pipelined mode ----------------------------------------------
  // Send* writes a request frame without waiting; Collect* reads the
  // next response. Pair them FIFO — the server answers in request
  // order. A Collect that fails with a transport error leaves the
  // connection unusable (close and reconnect); a server-reported error
  // (unknown artifact, ...) is per-request and the pipeline continues.

  Status SendPing();
  Status SendRangeMass(const std::string& artifact, CellId cell);
  Status SendQuantiles(const std::string& artifact,
                       const std::vector<double>& qs);
  Status SendSample(const std::string& artifact, uint64_t m, uint64_t seed);

  Status CollectPing();
  Result<double> CollectRangeMass();
  /// \brief \p expected must be the size of the qs the paired Send sent.
  Result<std::vector<double>> CollectQuantiles(size_t expected);
  /// \brief \p m must match the paired SendSample's m.
  Status CollectSample(uint64_t m, PointSink* sink);

 private:
  explicit PrivHPClient(Socket sock) : sock_(std::move(sock)) {}

  /// \brief Sends \p request, receives one response frame into \p frame,
  /// and positions \p payload after the status byte.
  Status Call(const std::string& request, std::string* frame,
              WireReader* payload);
  /// \brief Receives one response frame and positions \p payload after
  /// the status byte (the collect half of Call).
  Status RecvResponse(std::string* frame, WireReader* payload);

  Socket sock_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_CLIENT_H_
