// Client for the PrivHP service protocol — used by `privhp query` /
// `privhp ingest`, the serve bench, and the service tests.
//
// A client wraps one connection and issues requests synchronously. It is
// not thread-safe; open one client per thread (connections are cheap and
// the server pairs each with a pooled worker).

#ifndef PRIVHP_SERVICE_CLIENT_H_
#define PRIVHP_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/queries.h"
#include "domain/domain.h"
#include "io/frame_socket.h"
#include "io/point_sink.h"
#include "obs/metrics_registry.h"
#include "service/protocol.h"

namespace privhp {

/// \brief Synchronous client over one service connection.
class PrivHPClient {
 public:
  static Result<PrivHPClient> ConnectTcp(const std::string& host,
                                         uint16_t port);
  static Result<PrivHPClient> ConnectUnix(const std::string& path);

  Status Ping();

  /// \brief Published artifact names.
  Result<std::vector<std::string>> List();

  /// \brief Streams \p m synthetic points from \p artifact into \p sink
  /// (bounded memory: batches are forwarded as they arrive). seed != 0
  /// makes the response reproducible; seed == 0 asks for fresh points.
  Status Sample(const std::string& artifact, uint64_t m, uint64_t seed,
                PointSink* sink);

  /// \brief Convenience overload materializing the sample.
  Result<std::vector<Point>> Sample(const std::string& artifact, uint64_t m,
                                    uint64_t seed);

  /// \brief Mass fraction of cell (level, index).
  Result<double> RangeMass(const std::string& artifact, CellId cell);

  /// \brief Quantiles of a 1-D artifact.
  Result<std::vector<double>> Quantiles(const std::string& artifact,
                                        const std::vector<double>& qs);

  /// \brief Hierarchical heavy hitters at \p threshold.
  Result<std::vector<HeavyCell>> Heavy(const std::string& artifact,
                                       double threshold);

  /// \brief The serialized v2 tree — byte-identical to Save() on the
  /// server, so a served artifact can be compared bit-for-bit against a
  /// file-built one (or re-persisted locally).
  Result<std::string> Export(const std::string& artifact);

  /// \brief The server's metrics snapshot (the STATS op): per-endpoint
  /// latency/byte histograms, queue and worker gauges, registry and
  /// buffer-pool state. Drives `privhp stats` and `privhp top`.
  Result<obs::MetricsSnapshot> Stats();

  /// \brief Ingest parameters (mirrors `privhp build` flags).
  struct IngestSpec {
    uint32_t dim = 1;
    double epsilon = 1.0;
    uint64_t k = 32;
    uint64_t n = 0;  ///< Expected stream length (required, > 0).
    uint64_t seed = 42;
    uint32_t threads = 1;
    size_t batch = 1024;  ///< Points per frame on the wire.
  };
  struct IngestReport {
    uint64_t points_sent = 0;
    uint64_t nodes = 0;
    double total_mass = 0.0;
  };

  /// \brief Streams \p source into the server's builder and publishes the
  /// result under \p artifact (the INGEST...FINISH session).
  Result<IngestReport> Ingest(const std::string& artifact,
                              const IngestSpec& spec, PointSource* source);

 private:
  explicit PrivHPClient(Socket sock) : sock_(std::move(sock)) {}

  /// \brief Sends \p request, receives one response frame into \p frame,
  /// and positions \p payload after the status byte.
  Status Call(const std::string& request, std::string* frame,
              WireReader* payload);

  Socket sock_;
};

}  // namespace privhp

#endif  // PRIVHP_SERVICE_CLIENT_H_
