// The PrivHP service wire protocol (version 1).
//
// Transport: length-prefixed frames (io/frame_socket.h). A request is one
// frame whose first byte is the opcode; a response is one frame whose
// first byte is a status code (0 = OK, otherwise a StatusCode value
// followed by a string message). Data-bearing responses append their
// payload after the OK byte.
//
//   PING                               -> OK
//   LIST                               -> OK [count:u32][name:string...]
//   SAMPLE   name m seed               -> OK [dim:u32][m:u64],
//                                         then point frames, then end
//                                         (io/socket_point_stream.h)
//   RANGE    name level index          -> OK [fraction:double]
//   QUANTILE name q...                 -> OK [count:u32][value:double...]
//   HEAVY    name threshold            -> OK [count:u32]
//                                         [(level:u32,index:u64,frac:f64)...]
//   STATS                              -> OK, versioned metrics snapshot
//                                         (counters, gauges, fixed-bucket
//                                         histograms; see
//                                         EncodeStatsSnapshot below)
//   EXPORT   name                      -> OK [total:u64], then chunk
//                                         frames [kExportChunkTag:u8]
//                                         [raw bytes], then an end frame
//                                         [kExportEndTag:u8][total:u64].
//                                         The reassembled bytes are the
//                                         serialized v2 tree — byte-equal
//                                         to Save() on the server side,
//                                         with no frame-size ceiling on
//                                         the artifact.
//   INGEST   name dim eps k n seed thr -> OK, then the client streams
//                                         point frames + end, then a final
//                                         OK [nodes:u64][total_mass:f64]
//   AUTH     token                     -> OK
//
// SAMPLE's seed makes a request reproducible: the same (artifact, m,
// seed) yields the identical point sequence on every worker. seed = 0
// requests "fresh" points from the worker's own engine instead.
//
// AUTH is the preshared-token handshake: when the server is started with
// `ServerOptions::auth_token`, a TCP connection's FIRST frame must be an
// AUTH request carrying the matching token — anything else gets an error
// response and the connection is closed. Unix-domain connections are
// exempt (filesystem permissions already gate them) but may still send
// AUTH; a wrong token is rejected on any transport.

#ifndef PRIVHP_SERVICE_PROTOCOL_H_
#define PRIVHP_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/queries.h"
#include "io/wire_format.h"
#include "obs/metrics_registry.h"

namespace privhp {

inline constexpr uint32_t kServiceProtocolVersion = 1;

/// \brief EXPORT stream frame tags (first byte of the frames following
/// the OK header; disjoint from the point-stream tags 0x20/0x21).
inline constexpr uint8_t kExportChunkTag = 0x30;
inline constexpr uint8_t kExportEndTag = 0x31;

/// \brief Request opcodes (first payload byte of a request frame).
enum class ServiceOp : uint8_t {
  kPing = 0x01,
  kList = 0x02,
  kSample = 0x03,
  kRange = 0x04,
  kQuantile = 0x05,
  kHeavy = 0x06,
  kExport = 0x07,
  kStats = 0x08,
  kAuth = 0x09,
  kIngest = 0x10,
};

/// \brief A decoded request (fields used depend on `op`).
struct ServiceRequest {
  ServiceOp op = ServiceOp::kPing;
  std::string artifact;

  // kSample
  uint64_t m = 0;
  uint64_t seed = 0;

  // kRange
  uint32_t level = 0;
  uint64_t index = 0;

  // kQuantile
  std::vector<double> qs;

  // kHeavy
  double threshold = 0.0;

  // kIngest
  uint32_t dim = 0;
  double epsilon = 1.0;
  uint64_t k = 32;
  uint64_t n = 0;
  uint32_t threads = 1;

  // kAuth
  std::string token;
};

/// \brief Request encoders (client side).
std::string EncodePingRequest();
std::string EncodeListRequest();
std::string EncodeSampleRequest(const std::string& artifact, uint64_t m,
                                uint64_t seed);
std::string EncodeRangeRequest(const std::string& artifact, uint32_t level,
                               uint64_t index);
std::string EncodeQuantileRequest(const std::string& artifact,
                                  const std::vector<double>& qs);
std::string EncodeHeavyRequest(const std::string& artifact, double threshold);
std::string EncodeExportRequest(const std::string& artifact);
std::string EncodeStatsRequest();
std::string EncodeIngestRequest(const ServiceRequest& spec);
std::string EncodeAuthRequest(const std::string& token);

/// \brief Decodes any request frame (server side).
Result<ServiceRequest> ParseRequest(const std::string& frame);

/// \brief Response framing: OK header byte (plus payload appended by the
/// caller via the returned writer) or an error carrying a Status.
std::string EncodeErrorResponse(const Status& status);
/// \brief Starts an OK response; append payload fields to the writer.
WireWriter BeginOkResponse();

/// \brief Splits a response frame: returns the embedded error Status, or
/// OK with \p payload positioned after the status byte.
Status ParseResponse(const std::string& frame, WireReader* payload);

/// \brief STATS snapshot payload version. Version 1 fixes both the field
/// layout and the histogram bucket scheme (obs/histogram.h), so a peer
/// that decodes version 1 can map bucket indices back to value bounds.
inline constexpr uint32_t kStatsSnapshotVersion = 1;

/// \brief Appends a STATS snapshot payload after the OK byte:
///   [version:u32]
///   [count:u32] { name:string value:u64 }        counters
///   [count:u32] { name:string value:u64 }        gauges (two's complement)
///   [count:u32] { name:string sum:u64 max:u64
///                 [buckets:u32] { index:u32 count:u64 } }   histograms
/// Histogram buckets are sparse (zero buckets are skipped), so a
/// snapshot frame stays small no matter how wide the bucket array is.
void EncodeStatsSnapshot(const obs::MetricsSnapshot& snapshot, WireWriter* w);

/// \brief Decodes a STATS snapshot payload. Every peer-declared count is
/// bounded against the remaining payload (WireReader::BoundedCount), and
/// bucket indices are validated against the fixed bucket array, so a
/// lying server cannot force a large allocation or an out-of-range
/// write. Rejects unknown snapshot versions.
Result<obs::MetricsSnapshot> DecodeStatsSnapshot(WireReader* payload);

}  // namespace privhp

#endif  // PRIVHP_SERVICE_PROTOCOL_H_
