#include "service/service_metrics.h"

#include <string>

#include "common/macros.h"

namespace privhp {

namespace {

constexpr ServiceOp kOpOrder[kStatsNumOps] = {
    ServiceOp::kPing,  ServiceOp::kList,   ServiceOp::kSample,
    ServiceOp::kRange, ServiceOp::kQuantile, ServiceOp::kHeavy,
    ServiceOp::kExport, ServiceOp::kStats, ServiceOp::kAuth,
    ServiceOp::kIngest,
};

}  // namespace

const char* ServiceOpName(ServiceOp op) {
  switch (op) {
    case ServiceOp::kPing:
      return "ping";
    case ServiceOp::kList:
      return "list";
    case ServiceOp::kSample:
      return "sample";
    case ServiceOp::kRange:
      return "range";
    case ServiceOp::kQuantile:
      return "quantile";
    case ServiceOp::kHeavy:
      return "heavy";
    case ServiceOp::kExport:
      return "export";
    case ServiceOp::kStats:
      return "stats";
    case ServiceOp::kAuth:
      return "auth";
    case ServiceOp::kIngest:
      return "ingest";
  }
  return "unknown";
}

int ServiceOpIndex(ServiceOp op) {
  for (int i = 0; i < kStatsNumOps; ++i) {
    if (kOpOrder[i] == op) return i;
  }
  PRIVHP_CHECK(false);
  return 0;
}

ServiceOp ServiceOpAt(int index) {
  PRIVHP_DCHECK(index >= 0 && index < kStatsNumOps);
  return kOpOrder[index];
}

ServiceMetrics::ServiceMetrics(obs::MetricsRegistry* registry) {
  for (int i = 0; i < kStatsNumOps; ++i) {
    const std::string prefix =
        std::string("op.") + ServiceOpName(kOpOrder[i]) + ".";
    ops_[i].requests = registry->GetCounter(prefix + "requests");
    ops_[i].errors = registry->GetCounter(prefix + "errors");
    ops_[i].latency_ns = registry->GetHistogram(prefix + "latency_ns");
    ops_[i].bytes_in = registry->GetHistogram(prefix + "bytes_in");
    ops_[i].bytes_out = registry->GetHistogram(prefix + "bytes_out");
  }
  queue_wait_ns = registry->GetHistogram("server.queue_wait_ns");
  queue_depth = registry->GetGauge("server.queue_depth");
  workers_busy = registry->GetGauge("server.workers_busy");
  workers_total = registry->GetGauge("server.workers_total");
  connections_open = registry->GetGauge("server.connections_open");
  dropped_idle = registry->GetCounter("server.connections_dropped.idle");
  dropped_backpressure =
      registry->GetCounter("server.connections_dropped.backpressure");
  dropped_auth = registry->GetCounter("server.connections_dropped.auth");
  output_queue_bytes = registry->GetGauge("server.output_queue_bytes");
  ingest_points = registry->GetCounter("ingest.points");
  ingest_batches = registry->GetCounter("ingest.batches");
  sample_points = registry->GetCounter("sample.points");
}

}  // namespace privhp
